//! Quickstart: compile a tiny Hamiltonian-simulation program with PHOENIX
//! and compare against the conventional synthesis.
//!
//! Run with: `cargo run --release --example quickstart`

use phoenix::baselines::Baseline;
use phoenix::core::PhoenixCompiler;
use phoenix::pauli::PauliString;
use phoenix::sim::{circuit_unitary, infidelity, trotter_unitary};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The motivating example of the paper's Fig. 1(b): four weight-3 Pauli
    // exponentiations over the same qubits.
    let terms: Vec<(PauliString, f64)> =
        [("ZYY", 0.12), ("ZZY", -0.34), ("XYY", 0.56), ("XZY", 0.78)]
            .iter()
            .map(|(s, c)| Ok::<_, phoenix::pauli::ParsePauliStringError>((s.parse()?, *c)))
            .collect::<Result<_, _>>()?;

    // Conventional synthesis: one CNOT chain per exponentiation.
    let naive = Baseline::Naive.compile_logical(3, &terms);
    println!(
        "conventional: {:3} CNOTs, 2Q depth {:3}",
        naive.counts().cnot,
        naive.depth_2q()
    );

    // PHOENIX: one simultaneous Clifford conjugation simplifies the whole
    // group to ≤2-qubit rotations.
    let compiler = PhoenixCompiler::default();
    let compiled = compiler.compile(3, &terms);
    let cnot = compiler.compile_to_cnot(3, &terms);
    println!(
        "PHOENIX     : {:3} CNOTs, 2Q depth {:3}  ({} IR group)",
        cnot.counts().cnot,
        cnot.depth_2q(),
        compiled.num_groups
    );

    // The emitted circuit is *exactly* a Trotter product of the input terms
    // (in the compiler's chosen order) — verify with the simulator.
    let err = infidelity(
        &circuit_unitary(&compiled.circuit),
        &trotter_unitary(3, &compiled.term_order),
    );
    println!("unitary deviation from the exact Trotter product: {err:.2e}");

    // And the SU(4)-ISA view: the whole group fuses into a few blocks.
    let su4 = compiler.compile_to_su4(3, &terms);
    println!(
        "SU(4) ISA   : {:3} native 2Q instructions",
        su4.counts().su4
    );
    Ok(())
}
