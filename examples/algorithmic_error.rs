//! Algorithmic-error analysis: measure the unitary infidelity between a
//! compiled circuit and the exact Hamiltonian evolution, the paper's Fig. 8
//! metric, on a Heisenberg chain small enough to run in seconds.
//!
//! Run with: `cargo run --release --example algorithmic_error`

use phoenix::baselines::Baseline;
use phoenix::circuit::peephole;
use phoenix::core::PhoenixCompiler;
use phoenix::hamil::models::heisenberg_chain;
use phoenix::sim::{circuit_unitary, exact_evolution, infidelity};

fn main() {
    let base = heisenberg_chain(6, 0.4, 0.3, 0.5);
    println!("program: {base}\n");
    println!("scale | TKET-style error | PHOENIX error");
    for scale in [0.25, 0.5, 1.0, 2.0] {
        let h = base.rescaled(scale);
        let exact = exact_evolution(h.num_qubits(), h.terms());

        let tket = circuit_unitary(&peephole::optimize(
            &Baseline::TketStyle.compile_logical(h.num_qubits(), h.terms()),
        ));
        let phoenix = circuit_unitary(
            &PhoenixCompiler::default()
                .compile(h.num_qubits(), h.terms())
                .circuit,
        );
        println!(
            "{scale:>5} | {:>16.3e} | {:>13.3e}",
            infidelity(&exact, &tket),
            infidelity(&exact, &phoenix)
        );
    }
    println!("\nBoth circuits are exact Trotter products; the error is purely");
    println!("the Trotterization error of each compiler's chosen term order.");
}
