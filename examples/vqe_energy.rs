//! VQE-style energy evaluation: prepare a UCCSD ansatz state with the
//! PHOENIX-compiled circuit and measure a molecular Hamiltonian's energy —
//! demonstrating that aggressive compilation leaves the physics untouched.
//!
//! Run with: `cargo run --release --example vqe_energy`

use phoenix::baselines::Baseline;
use phoenix::core::PhoenixCompiler;
use phoenix::hamil::{molecular, uccsd, FermionEncoding, Molecule};
use phoenix::sim::{energy, State};

fn main() {
    // A 10-spin-orbital synthetic molecule and the LiH UCCSD ansatz.
    let enc = FermionEncoding::jordan_wigner(10);
    let hamiltonian = molecular::synthetic(&enc, 42);
    let ansatz = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, 7);
    let n = ansatz.num_qubits();
    println!("hamiltonian: {hamiltonian}");
    println!("ansatz     : {ansatz}\n");

    // Reference: the conventional (uncompiled) circuit.
    let reference = Baseline::Naive.compile_logical(n, ansatz.terms());
    let e_ref = energy(&State::zero(n).evolved(&reference), hamiltonian.terms());

    // PHOENIX in each ISA.
    let compiler = PhoenixCompiler::default();
    let cnot = compiler.compile_to_cnot(n, ansatz.terms());
    let su4 = compiler.compile_to_su4(n, ansatz.terms());
    let e_cnot = energy(&State::zero(n).evolved(&cnot), hamiltonian.terms());
    let e_su4 = energy(&State::zero(n).evolved(&su4), hamiltonian.terms());

    println!("energy, conventional circuit : {e_ref:+.10}");
    println!(
        "energy, PHOENIX CNOT ISA     : {e_cnot:+.10}   ({} vs {} CNOTs)",
        cnot.counts().cnot,
        reference.counts().cnot
    );
    println!(
        "energy, PHOENIX SU(4) ISA    : {e_su4:+.10}   ({} native 2Q gates)",
        su4.counts().su4
    );
    println!(
        "\nmax deviation: {:.2e}  (term reordering only shifts Trotter error,\nnot the prepared state's physics at these amplitudes)",
        (e_cnot - e_ref).abs().max((e_su4 - e_ref).abs())
    );
}
