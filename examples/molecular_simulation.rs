//! Molecular simulation end to end: build a UCCSD ansatz for LiH under both
//! fermion encodings, compile it with PHOENIX and the baselines, and map it
//! onto a heavy-hex device.
//!
//! Run with: `cargo run --release --example molecular_simulation`

use phoenix::baselines::{hardware_aware, Baseline};
use phoenix::circuit::peephole;
use phoenix::core::PhoenixCompiler;
use phoenix::hamil::{uccsd, Molecule};
use phoenix::topology::CouplingGraph;

fn main() {
    let device = CouplingGraph::manhattan65();
    println!("device: {device}\n");

    for encoding in [uccsd::Encoding::JordanWigner, uccsd::Encoding::BravyiKitaev] {
        let program = uccsd::ansatz(Molecule::lih(), true, encoding, 7);
        println!("== {program}");

        // Logical level (all-to-all).
        let naive = Baseline::Naive.compile_logical(program.num_qubits(), program.terms());
        println!(
            "  original            : {:5} CNOTs, 2Q depth {:5}",
            naive.counts().cnot,
            naive.depth_2q()
        );
        for baseline in [
            Baseline::TketStyle,
            Baseline::PaulihedralStyle,
            Baseline::TetrisStyle,
        ] {
            let c = peephole::optimize(
                &baseline.compile_logical(program.num_qubits(), program.terms()),
            );
            println!(
                "  {:20}: {:5} CNOTs, 2Q depth {:5}",
                baseline.name(),
                c.counts().cnot,
                c.depth_2q()
            );
        }
        let compiler = PhoenixCompiler::default();
        let phoenix = compiler.compile_to_cnot(program.num_qubits(), program.terms());
        println!(
            "  {:20}: {:5} CNOTs, 2Q depth {:5}",
            "PHOENIX",
            phoenix.counts().cnot,
            phoenix.depth_2q()
        );

        // Hardware-aware on the heavy-hex device.
        let hw = compiler.compile_hardware_aware(program.num_qubits(), program.terms(), &device);
        println!(
            "  PHOENIX on heavy-hex: {:5} CNOTs, 2Q depth {:5}, {} SWAPs, {:.2}x routing overhead",
            hw.circuit.counts().cnot,
            hw.circuit.depth_2q(),
            hw.num_swaps,
            hw.routing_overhead()
        );
        let ph_hw = hardware_aware(
            &Baseline::PaulihedralStyle.compile_logical(program.num_qubits(), program.terms()),
            &device,
        );
        println!(
            "  Paulihedral-style   : {:5} CNOTs, 2Q depth {:5}, {} SWAPs, {:.2}x routing overhead\n",
            ph_hw.circuit.counts().cnot,
            ph_hw.circuit.depth_2q(),
            ph_hw.num_swaps,
            ph_hw.routing_overhead()
        );
    }
}
