//! QAOA MaxCut compilation: generate a random-regular-graph cost layer,
//! schedule it depth-optimally, and route it onto heavy-hex hardware —
//! PHOENIX versus the 2-local specialist baseline.
//!
//! Run with: `cargo run --release --example qaoa_maxcut`

use phoenix::baselines::{hardware_aware, Baseline};
use phoenix::core::PhoenixCompiler;
use phoenix::hamil::qaoa;
use phoenix::topology::CouplingGraph;

fn main() {
    let device = CouplingGraph::manhattan65();
    for (kind, label) in [
        (qaoa::QaoaKind::Rand4, "random 4-regular"),
        (qaoa::QaoaKind::Reg3, "3-regular"),
    ] {
        for n in [16, 20] {
            let program = qaoa::benchmark(kind, n, 7 + n as u64);
            println!("== {} ({label}, {} edges)", program.name(), program.len());

            let qan = hardware_aware(
                &Baseline::TwoQanStyle.compile_logical(n, program.terms()),
                &device,
            );
            println!(
                "  2QAN-style : logical 2Q depth {:2} | mapped: {:3} CNOTs, depth {:3}, {:2} SWAPs",
                qan.logical.depth_2q(),
                qan.circuit.counts().cnot,
                qan.circuit.depth_2q(),
                qan.num_swaps
            );

            let hw = PhoenixCompiler::default().compile_hardware_aware(n, program.terms(), &device);
            println!(
                "  PHOENIX    : logical 2Q depth {:2} | mapped: {:3} CNOTs, depth {:3}, {:2} SWAPs",
                hw.logical.depth_2q(),
                hw.circuit.counts().cnot,
                hw.circuit.depth_2q(),
                hw.num_swaps
            );
        }
    }
}
