//! Circuit inspection tour: render a compiled circuit as ASCII, classify
//! its SU(4) blocks by Weyl-chamber CNOT cost, KAK-resynthesize them, and
//! estimate device success probabilities under a noise model.
//!
//! Run with: `cargo run --release --example inspect_circuit`

use phoenix::circuit::{draw, kak, rebase, weyl, Gate};
use phoenix::core::PhoenixCompiler;
use phoenix::pauli::PauliString;
use phoenix::sim::noise::ErrorModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let terms: Vec<(PauliString, f64)> =
        [("ZYY", 0.12), ("ZZY", -0.34), ("XYY", 0.56), ("XZY", 0.78)]
            .iter()
            .map(|(s, c)| Ok::<_, phoenix::pauli::ParsePauliStringError>((s.parse()?, *c)))
            .collect::<Result<_, _>>()?;

    let compiler = PhoenixCompiler::default();
    let high = compiler.compile(3, &terms).circuit;
    println!("High-level PHOENIX output (Clifford2Q + ≤2Q rotations):\n");
    println!("{}", draw::ascii(&high));

    let su4 = rebase::to_su4(&high);
    println!("SU(4) ISA view, with Weyl-chamber classification per block:\n");
    for g in su4.gates() {
        if let Gate::Su4(blk) = g {
            let cost = weyl::su4_block_cost(blk);
            println!(
                "  block on (q{}, q{}): {} fused gates, minimal CNOT cost {}",
                blk.a,
                blk.b,
                blk.inner.len(),
                cost
            );
        }
    }

    let resynth = kak::resynthesize(&su4);
    let cnot = compiler.compile_to_cnot(3, &terms);
    let via_kak = compiler.compile_to_cnot_via_kak(3, &terms);
    println!("\nCNOT ISA             : {} CNOTs", cnot.counts().cnot);
    println!("CNOT ISA via KAK     : {} CNOTs", via_kak.counts().cnot);
    println!("\nKAK-resynthesized circuit:\n");
    println!("{}", draw::ascii(&resynth));

    let model = ErrorModel::ibm_like();
    println!(
        "estimated success: plain {:.4}, via KAK {:.4}",
        model.success_probability(&cnot),
        model.success_probability(&via_kak)
    );
    Ok(())
}
