//! PHOENIX — a Pauli-based high-level optimization engine for instruction
//! execution on NISQ devices (DAC 2025), reproduced in Rust.
//!
//! This umbrella crate re-exports the whole workspace under one roof:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`mathkit`] | `phoenix-mathkit` | complex matrices, `expm`, deterministic PRNG |
//! | [`pauli`] | `phoenix-pauli` | Pauli strings, BSF tableaux, Clifford conjugation |
//! | [`circuit`] | `phoenix-circuit` | circuit IR, peephole optimizer, SU(4) rebase, endian vectors |
//! | [`topology`] | `phoenix-topology` | coupling graphs (heavy-hex et al.) |
//! | [`hamil`] | `phoenix-hamil` | UCCSD (JW/BK), QAOA and spin-model program generators |
//! | [`router`] | `phoenix-router` | SABRE routing and layout search |
//! | [`sim`] | `phoenix-sim` | state-vector/unitary simulation, infidelity |
//! | [`core`] | `phoenix-core` | **the PHOENIX compiler** (Algorithm 1 + Tetris ordering) |
//! | [`baselines`] | `phoenix-baselines` | TKET-/Paulihedral-/Tetris-/2QAN-style baselines |
//! | [`serve`] | `phoenix-serve` | `phoenixd`: fault-tolerant compile service + client |
//!
//! # Quickstart
//!
//! ```
//! use phoenix::core::PhoenixCompiler;
//! use phoenix::hamil::{uccsd, Molecule};
//!
//! // Build a molecular-simulation program and compile it.
//! let program = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, 7);
//! let circuit = PhoenixCompiler::default()
//!     .compile_to_cnot(program.num_qubits(), program.terms());
//! println!("{} CNOTs, 2Q depth {}", circuit.counts().cnot, circuit.depth_2q());
//! # assert!(circuit.counts().cnot > 0);
//! ```

pub use phoenix_baselines as baselines;
pub use phoenix_circuit as circuit;
pub use phoenix_core as core;
pub use phoenix_hamil as hamil;
pub use phoenix_mathkit as mathkit;
pub use phoenix_pauli as pauli;
pub use phoenix_router as router;
pub use phoenix_serve as serve;
pub use phoenix_sim as sim;
pub use phoenix_topology as topology;
