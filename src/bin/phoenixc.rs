//! `phoenixc` — command-line driver for the PHOENIX compiler.
//!
//! ```text
//! phoenixc compile --input program.txt [--isa cnot|su4] [--topology all|<device-spec>]
//!                  [--qasm out.qasm] [--no-simplify] [--no-order] [--lookahead K]
//! phoenixc demo uccsd|qaoa
//! ```
//!
//! Device specs are resolved through the [`DeviceRegistry`]: `line:N`,
//! `ring:N`, `grid:RxC`, `heavy-hex:RxL`, `ion-trap:N`, or a preset name
//! (`falcon27`, `manhattan65`, `eagle127`), optionally with an `@isa`
//! suffix (`@cnot`, `@su4`, `@kak`).
//!
//! Program files list one Pauli exponentiation per line as
//! `<coefficient> <pauli string>` after a `qubits <n>` header; `#` starts a
//! comment. Example:
//!
//! ```text
//! qubits 3
//! 0.12  ZYY
//! -0.34 ZZY
//! ```

use phoenix::circuit::qasm;
use phoenix::core::phoenix_obs::perfetto;
use phoenix::core::{CompileRequest, Device, DeviceRegistry, PhoenixOptions, Target};
use phoenix::hamil::{qaoa, uccsd, Molecule};
use phoenix::pauli::PauliString;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("demo") => cmd_demo(&args[1..]),
        Some("--serve-stdin") => cmd_serve_stdin(),
        Some("--help") | Some("-h") | None => {
            eprintln!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", USAGE);
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  phoenixc compile --input <file> [--isa cnot|su4] [--topology all|<device-spec>]
                   [--qasm <out.qasm>] [--no-simplify] [--no-order] [--lookahead K]
                   [--obs [--obs-trace <out.json>]]
  phoenixc demo uccsd|qaoa
  phoenixc --serve-stdin

  device specs resolve through the registry: line:N, ring:N, grid:RxC,
  heavy-hex:RxL, ion-trap:N, or a preset (falcon27, manhattan65,
  eagle127), optionally with an @isa suffix (@cnot, @su4, @kak).
  'heavyhex' is accepted as an alias for manhattan65.

  --obs prints a compile report (per-pass timing, gate/depth deltas,
  stage-2 groups, metrics) to stderr; --obs-trace additionally writes a
  Chrome/Perfetto-loadable trace-event JSON.

  --serve-stdin answers phoenixd protocol frames one per stdin line
  (uncached, no server state) until EOF — the wire format without the
  daemon. See `phoenixd --help` for the long-running service.";

/// One-shot protocol mode: each stdin line is an independent `phoenixd`
/// request frame, answered on stdout with exactly one reply line.
fn cmd_serve_stdin() -> Result<(), String> {
    use std::io::BufRead;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        println!("{}", phoenix_serve::serve_one_line(&line));
    }
    Ok(())
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let mut input = None;
    let mut isa = "cnot".to_string();
    let mut topology = "all".to_string();
    let mut qasm_out = None;
    let mut via_kak = false;
    let mut obs = false;
    let mut obs_trace = None;
    let mut options = PhoenixOptions::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--input" => input = Some(value()?),
            "--isa" => isa = value()?,
            "--topology" => topology = value()?,
            "--qasm" => qasm_out = Some(value()?),
            "--via-kak" => via_kak = true,
            "--obs" => obs = true,
            "--obs-trace" => obs_trace = Some(value()?),
            "--no-simplify" => options.enable_simplification = false,
            "--no-order" => options.enable_ordering = false,
            "--lookahead" => {
                options.lookahead = value()?
                    .parse()
                    .map_err(|e| format!("bad lookahead: {e}"))?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let input = input.ok_or("missing --input")?;
    let text = std::fs::read_to_string(&input).map_err(|e| format!("{input}: {e}"))?;
    let (n, terms) = parse_program(&text)?;
    eprintln!("program: {n} qubits, {} pauli exponentiations", terms.len());

    let target = match topology.as_str() {
        "all" => match isa.as_str() {
            "cnot" if via_kak => Target::CnotViaKak,
            "cnot" => Target::Cnot,
            "su4" => Target::Su4,
            other => return Err(format!("unknown isa '{other}'")),
        },
        spec => {
            if isa != "cnot" && isa != "su4" {
                return Err(format!("unknown isa '{isa}'"));
            }
            Target::Device(parse_device(spec, &isa, via_kak)?)
        }
    };
    let outcome = CompileRequest::new(n, &terms)
        .options(options)
        .target(target)
        .obs(obs || obs_trace.is_some())
        .run()
        .map_err(|e| e.to_string())?;
    if let Some(hw) = &outcome.hardware {
        eprintln!(
            "routing: {} swaps, {:.2}x overhead on {topology}",
            hw.num_swaps,
            hw.routing_overhead(),
        );
    }
    if let Some(report) = &outcome.obs {
        if obs {
            eprint!("{}", report.render());
        }
        if let Some(path) = obs_trace {
            let file = perfetto::to_trace_file(&input, report);
            let json = perfetto::to_json(&file).map_err(|e| format!("{path}: {e}"))?;
            std::fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
    }
    let circuit = outcome.circuit;
    let k = circuit.counts();
    println!(
        "compiled: {} gates | {} CNOT | {} SU(4) | depth {} | 2Q depth {}",
        k.total,
        k.cnot,
        k.su4,
        circuit.depth(),
        circuit.depth_2q()
    );
    if let Some(path) = qasm_out {
        std::fs::write(&path, qasm::to_qasm(&circuit)).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("uccsd") => {
            let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, 7);
            let c = CompileRequest::new(h.num_qubits(), h.terms())
                .target(Target::Cnot)
                .run()
                .map_err(|e| e.to_string())?
                .circuit;
            println!(
                "{h}\nPHOENIX: {} CNOTs, 2Q depth {}",
                c.counts().cnot,
                c.depth_2q()
            );
            Ok(())
        }
        Some("qaoa") => {
            let h = qaoa::benchmark(qaoa::QaoaKind::Reg3, 16, 7);
            let device = DeviceRegistry::new()
                .build("manhattan65")
                .map_err(|e| e.to_string())?;
            let hw = CompileRequest::new(h.num_qubits(), h.terms())
                .target(Target::Device(device))
                .run()
                .map_err(|e| e.to_string())?
                .hardware
                .ok_or("hardware program missing")?;
            println!(
                "{h}\nPHOENIX on heavy-hex: {} CNOTs, {} SWAPs, 2Q depth {}",
                hw.circuit.counts().cnot,
                hw.num_swaps,
                hw.circuit.depth_2q()
            );
            Ok(())
        }
        _ => Err("demo needs 'uccsd' or 'qaoa'".to_string()),
    }
}

/// Parses the `qubits N` + `<coeff> <string>` program format.
fn parse_program(text: &str) -> Result<(usize, Vec<(PauliString, f64)>), String> {
    let mut n = None;
    let mut terms = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("qubits") {
            n = Some(
                rest.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("line {}: bad qubit count: {e}", ln + 1))?,
            );
            continue;
        }
        let n = n.ok_or_else(|| format!("line {}: term before 'qubits' header", ln + 1))?;
        let (coeff, pauli) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("line {}: expected '<coeff> <pauli>'", ln + 1))?;
        let c: f64 = coeff
            .parse()
            .map_err(|e| format!("line {}: bad coefficient: {e}", ln + 1))?;
        let p: PauliString = pauli
            .trim()
            .parse()
            .map_err(|e| format!("line {}: {e}", ln + 1))?;
        if p.num_qubits() != n {
            return Err(format!(
                "line {}: string has {} qubits, header says {n}",
                ln + 1,
                p.num_qubits()
            ));
        }
        terms.push((p, c));
    }
    Ok((n.ok_or("missing 'qubits N' header")?, terms))
}

/// Resolves a `--topology` spec through the [`DeviceRegistry`], honoring
/// `--isa`/`--via-kak` when the spec carries no `@isa` suffix of its own.
fn parse_device(spec: &str, isa: &str, via_kak: bool) -> Result<Device, String> {
    // Legacy alias from the pre-registry CLI surface.
    let spec = if spec == "heavyhex" {
        "manhattan65"
    } else {
        spec
    };
    let spec = if spec.contains('@') {
        spec.to_string()
    } else {
        match (isa, via_kak) {
            ("su4", _) => format!("{spec}@su4"),
            ("cnot", true) => format!("{spec}@kak"),
            _ => format!("{spec}@cnot"),
        }
    };
    DeviceRegistry::new()
        .build(&spec)
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_program_happy_path() {
        let (n, terms) = parse_program("# demo\nqubits 3\n0.5 XYZ\n-1 ZZI\n").unwrap();
        assert_eq!(n, 3);
        assert_eq!(terms.len(), 2);
        assert_eq!(terms[1].1, -1.0);
    }

    #[test]
    fn parse_program_errors() {
        assert!(parse_program("0.5 XX\n").is_err(), "missing header");
        assert!(parse_program("qubits 2\n0.5 XXX\n").is_err(), "arity");
        assert!(parse_program("qubits 2\nnope XX\n").is_err(), "coeff");
    }

    #[test]
    fn parse_device_specs() {
        use phoenix::core::NativeIsa;
        let line = parse_device("line:5", "cnot", false).unwrap();
        assert_eq!(line.graph().num_qubits(), 5);
        assert_eq!(line.isa(), NativeIsa::Cnot);
        let grid = parse_device("grid:2x3", "su4", false).unwrap();
        assert_eq!(grid.graph().num_qubits(), 6);
        assert_eq!(grid.isa(), NativeIsa::Su4);
        let hex = parse_device("heavyhex", "cnot", true).unwrap();
        assert_eq!(hex.graph().num_qubits(), 65);
        assert_eq!(hex.isa(), NativeIsa::CnotViaKak);
        // An explicit @isa suffix on the spec wins over --isa.
        let pinned = parse_device("ring:4@su4", "cnot", false).unwrap();
        assert_eq!(pinned.isa(), NativeIsa::Su4);
        assert!(parse_device("torus:9", "cnot", false).is_err());
    }
}
