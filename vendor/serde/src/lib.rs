//! A minimal, self-contained stand-in for the `serde` crate.
//!
//! This build environment has no crates.io access, so the workspace vendors
//! the small slice of serde it actually uses: a self-describing [`Content`]
//! tree, [`Serialize`]/[`Deserialize`] traits that convert to and from it,
//! and derive macros (re-exported from the sibling `serde_derive` stub) for
//! plain structs with named fields.
//!
//! The data model is deliberately tiny — exactly what JSON can express —
//! because the only consumer in this workspace is `serde_json`.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;

/// A self-describing serialized value: the stub's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An integer (all Rust integer types funnel here).
    Int(i64),
    /// A non-integral or explicitly floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence (JSON array).
    Seq(Vec<Content>),
    /// An ordered map with string keys (JSON object). Insertion order is
    /// preserved so serialization is deterministic.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Looks up a key in a [`Content::Map`].
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Content::Int(i) => Some(*i as f64),
            Content::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(v) => Some(v),
            _ => None,
        }
    }
}

/// Serialization into the [`Content`] tree.
pub trait Serialize {
    /// Converts `self` into a content tree.
    fn to_content(&self) -> Content;
}

/// Deserialization out of the [`Content`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a content tree.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the tree's shape does not
    /// match `Self`.
    fn from_content(content: &Content) -> Result<Self, String>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| format!("integer {i} out of range for {}", stringify!($t))),
                    other => Err(format!("expected integer, got {other:?}")),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, String> {
                match content {
                    Content::Float(f) => Ok(*f as $t),
                    Content::Int(i) => Ok(*i as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, String> {
        Ok(content.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Seq(v) => v.iter().map(T::from_content).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, String> {
        match content {
            Content::Map(m) => m
                .iter()
                .map(|(k, v)| V::from_content(v).map(|v| (k.clone(), v)))
                .collect(),
            other => Err(format!("expected object, got {other:?}")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, String> {
                const LEN: usize = [$($idx),+].len();
                match content {
                    Content::Seq(v) if v.len() == LEN => {
                        Ok(($($name::from_content(&v[$idx])?,)+))
                    }
                    other => Err(format!("expected {LEN}-tuple, got {other:?}")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(usize::from_content(&42usize.to_content()).unwrap(), 42);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
        assert!(bool::from_content(&true.to_content()).unwrap());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2.0f64), (3, 4.0)];
        let back: Vec<(usize, f64)> = Vec::from_content(&v.to_content()).unwrap();
        assert_eq!(back, v);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        let back: BTreeMap<String, u64> = BTreeMap::from_content(&m.to_content()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn option_uses_null() {
        assert_eq!(Option::<u32>::None.to_content(), Content::Null);
        assert_eq!(Option::<u32>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_content(), Content::Int(3));
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        assert!(u32::from_content(&Content::Str("x".into())).is_err());
        assert!(u8::from_content(&Content::Int(300)).is_err());
    }
}
