//! A minimal, self-contained stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the benchmark-harness surface it uses: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery, each benchmark runs one
//! warm-up iteration plus `sample_size` timed iterations and prints the
//! mean/min wall-clock time — enough to compare implementations locally.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark harness root.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("[bench group] {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        run_benchmark(&name.into(), self.sample_size, &mut f);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.0), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Closes the group (a no-op beyond parity with criterion).
    pub fn finish(self) {}
}

/// A benchmark identifier, usually `BenchmarkId::new(function, parameter)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    budget: usize,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One untimed warm-up draw.
        std_black_box(routine());
        for _ in 0..self.budget {
            let t0 = Instant::now();
            std_black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_benchmark(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        budget: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("  {label}: no samples");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().expect("nonempty samples");
    eprintln!(
        "  {label}: mean {:.3} ms, min {:.3} ms ({} samples)",
        mean.as_secs_f64() * 1e3,
        min.as_secs_f64() * 1e3,
        b.samples.len(),
    );
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0usize;
        g.bench_function("count", |b| {
            b.iter(|| runs += 1);
        });
        g.finish();
        // 1 warm-up + 3 timed.
        assert_eq!(runs, 4);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("id", 42), &41usize, |b, &x| {
            b.iter(|| assert_eq!(x + 1, 42));
        });
        g.finish();
    }
}
