//! A minimal, self-contained stand-in for the `serde_json` crate.
//!
//! Serializes the vendored [`serde::Content`] tree to JSON text and parses
//! JSON text back into it. Covers the workspace's needs: `to_string`,
//! `to_string_pretty`, `to_value`, `from_value`, and `from_str`.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// The generic JSON value — an alias for the serde stub's content tree
/// (`Null` / `Bool` / `Int` / `Float` / `Str` / `Seq` / `Map`).
pub type Value = Content;

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible in this stub (kept in the signature for serde_json parity).
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_content())
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns an error when the tree's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_content(value).map_err(Error)
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible in this stub (kept in the signature for serde_json parity).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_content(), None, 0, &mut out);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible in this stub (kept in the signature for serde_json parity).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_content(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    from_value(&v)
}

fn write_json(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            write_seq('[', ']', items.iter(), indent, level, out, |v, out, lvl| {
                write_json(v, indent, lvl, out)
            })
        }
        Value::Map(entries) => write_seq(
            '{',
            '}',
            entries.iter(),
            indent,
            level,
            out,
            |(k, v), out, lvl| {
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(v, indent, lvl, out);
            },
        ),
    }
}

fn write_seq<T>(
    open: char,
    close: char,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    mut write_item: impl FnMut(T, &mut String, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (level + 1)));
        }
        write_item(item, out, level + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * level));
        }
    }
    out.push(close);
}

/// Floats print via Rust's shortest round-trip formatting, with a decimal
/// point forced so the text re-parses as a float (JSON has no float/int
/// type distinction; this keeps `parse(print(x)) == x` on the stub's
/// tagged model). Non-finite values become `null`, as in serde_json.
fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    let needs_dot = !s.contains(['.', 'e', 'E']);
    out.push_str(&s);
    if needs_dot {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| Error(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| Error(e.to_string()))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error(format!("bad escape '\\{}'", other as char))),
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| Error(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        } else {
            // Integers overflowing i64 fall back to f64, as serde_json's
            // arbitrary-precision mode would.
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|e| Error(format!("bad number {text:?}: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_parse_back() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("pass \"x\"\n".into())),
            ("count".into(), Value::Int(-3)),
            ("time".into(), Value::Float(1.0)),
            (
                "seq".into(),
                Value::Seq(vec![Value::Bool(true), Value::Null, Value::Float(0.25)]),
            ),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "{text}");
        }
    }

    #[test]
    fn floats_keep_their_tag() {
        let text = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(from_str::<Value>(&text).unwrap(), Value::Float(2.0));
        assert_eq!(from_str::<Value>("7").unwrap(), Value::Int(7));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            from_str::<String>("\"a\\u0041\\n\"").unwrap(),
            "aA\n".to_string()
        );
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let rows = vec![(1usize, 0.5f64), (2, 1.5)];
        let text = to_string_pretty(&rows).unwrap();
        let back: Vec<(usize, f64)> = from_str(&text).unwrap();
        assert_eq!(back, rows);
    }
}
