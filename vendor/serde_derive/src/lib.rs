//! Derive macros for the vendored `serde` stub.
//!
//! Supports exactly what this workspace needs: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` on non-generic structs with named fields. The
//! input is parsed directly from the token stream (the environment has no
//! crates.io access, so `syn`/`quote` are unavailable).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let fields: String = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_content(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 ::serde::Content::Map(::std::vec![{fields}])\n\
             }}\n\
         }}",
        name = s.name,
    )
    .parse()
    .expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let s = parse_struct(input);
    let fields: String = s
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: {{\n\
                     let v = map.iter().find(|(k, _)| k == \"{f}\")\n\
                         .ok_or_else(|| ::std::format!(\"missing field `{f}` in {name}\"))?;\n\
                     ::serde::Deserialize::from_content(&v.1)?\n\
                 }},",
                name = s.name,
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(content: &::serde::Content) -> ::std::result::Result<Self, ::std::string::String> {{\n\
                 let map = match content {{\n\
                     ::serde::Content::Map(m) => m,\n\
                     other => return ::std::result::Result::Err(\n\
                         ::std::format!(\"expected object for {name}, got {{other:?}}\")),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{ {fields} }})\n\
             }}\n\
         }}",
        name = s.name,
    )
    .parse()
    .expect("derived Deserialize impl parses")
}

struct StructDef {
    name: String,
    fields: Vec<String>,
}

/// Extracts the struct name and its named-field identifiers from a derive
/// input stream. Panics (a compile error at the derive site) on tuple
/// structs, enums, or generic structs — none of which this workspace
/// serializes.
fn parse_struct(input: TokenStream) -> StructDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility, find `struct Name`.
    let mut name = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + `[...]`
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match &tokens[i + 1] {
                    TokenTree::Ident(n) => name = Some(n.to_string()),
                    other => panic!("expected struct name, got {other}"),
                }
                i += 2;
                break;
            }
            _ => i += 1,
        }
    }
    let name = name.expect("derive input contains `struct`");

    // The next top-level token must be the `{ ... }` field group (generics
    // and tuple structs are unsupported).
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("#[derive(Serialize/Deserialize)] stub does not support generic structs")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("#[derive(Serialize/Deserialize)] stub does not support tuple structs")
            }
            Some(_) => i += 1,
            None => panic!(
                "#[derive(Serialize/Deserialize)] stub supports only structs with named fields"
            ),
        }
    };

    // Walk the field list: [attrs] [vis] name `:` type `,`
    let body: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut j = 0;
    while j < body.len() {
        // Skip field attributes (`#[...]`, includes doc comments).
        while matches!(&body[j], TokenTree::Punct(p) if p.as_char() == '#') {
            j += 2;
        }
        // Skip visibility.
        if matches!(&body[j], TokenTree::Ident(id) if id.to_string() == "pub") {
            j += 1;
            if matches!(&body[j], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
                j += 1; // `pub(crate)` etc.
            }
        }
        match &body[j] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("expected field name, got {other}"),
        }
        j += 1; // past the name
        assert!(
            matches!(&body[j], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field name"
        );
        j += 1;
        // Skip the type up to the next top-level comma. Angle brackets are
        // plain punctuation in token streams, so track their nesting.
        let mut angle = 0i32;
        while j < body.len() {
            match &body[j] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }
    StructDef { name, fields }
}
