//! Deterministic RNG, run configuration, and case-level error type.

/// Per-test configuration; only `cases` is honored by the stub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated inputs that must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` failed or a filter rejected
    /// the input); it does not count toward the case budget.
    Reject(String),
    /// A `prop_assert*!` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A deterministic xorshift64* stream. Seeded from the test name so every
/// test sees a stable but distinct input sequence.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from raw state (zero is remapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        TestRng(if seed == 0 {
            0x9e37_79b9_7f4a_7c15
        } else {
            seed
        })
    }

    /// Seeds from a test name via FNV-1a.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "empty sample range");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // the small bounds used in tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bounded_sampling_stays_in_range() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(13) < 13);
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
