//! The [`Strategy`] trait and the core combinators/instances.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// `generate` returns `None` when the drawn sample is rejected (e.g. by
/// [`Strategy::prop_filter`]); the harness then redraws.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value from `rng`, or `None` to reject this draw.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; `whence` labels the filter in
    /// exhaustion errors (unused by the stub beyond documentation).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        let _ = whence;
        Filter { inner: self, pred }
    }

    /// Simultaneously filters and maps: draws where `f` returns `None` are
    /// rejected.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        let _ = whence;
        FilterMap { inner: self, f }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range {self:?}");
                let span = self.end.abs_diff(self.start);
                let offset = rng.next_below(span as u64);
                Some(self.start.wrapping_add(offset as $t))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range {self:?}");
                let span = hi.abs_diff(lo) as u64;
                let offset = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_below(span + 1)
                };
                Some(lo.wrapping_add(offset as $t))
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty strategy range {self:?}");
        Some(self.start + rng.next_f64() * (self.end - self.start))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> Option<f32> {
        assert!(self.start < self.end, "empty strategy range {self:?}");
        Some(self.start + rng.next_f64() as f32 * (self.end - self.start))
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = (2usize..7).generate(&mut rng).unwrap();
            assert!((2..7).contains(&v));
            let f = (-1.5f64..2.5).generate(&mut rng).unwrap();
            assert!((-1.5..2.5).contains(&f));
            let i = (1usize..=3).generate(&mut rng).unwrap();
            assert!((1..=3).contains(&i));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(5);
        let s = (0usize..10)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v * 100);
        let mut saw_some = false;
        for _ in 0..100 {
            if let Some(v) = s.generate(&mut rng) {
                assert_eq!(v % 200, 0);
                saw_some = true;
            }
        }
        assert!(saw_some);
    }

    #[test]
    fn tuples_and_just() {
        let mut rng = TestRng::new(9);
        let (a, b, c) = (0usize..3, Just("x"), -1.0f64..1.0)
            .generate(&mut rng)
            .unwrap();
        assert!(a < 3);
        assert_eq!(b, "x");
        assert!((-1.0..1.0).contains(&c));
    }
}
