//! A minimal, self-contained stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest its test suites actually use:
//!
//! - the [`Strategy`] trait with `prop_map` / `prop_filter` /
//!   `prop_filter_map` combinators;
//! - range strategies over integers and floats, tuple strategies,
//!   [`strategy::Just`], [`collection::vec`], and [`arbitrary::any`];
//! - the [`proptest!`] macro with `#![proptest_config(...)]` support plus
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//!   [`prop_assume!`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! corpus: generation is a deterministic xorshift stream seeded from the
//! test name, so failures reproduce run-to-run.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The usual `use proptest::prelude::*` import surface.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs the body against
/// [`ProptestConfig::cases`](crate::test_runner::ProptestConfig) generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(256).max(4096);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest '{}': too many rejected inputs ({} cases passed)",
                    stringify!($name),
                    passed,
                );
                $(
                    let $arg = match $crate::strategy::Strategy::generate(&($strat), &mut rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => continue,
                    };
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => continue,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!(
                        "proptest '{}' failed after {} passing cases: {}",
                        stringify!($name),
                        passed,
                        msg,
                    ),
                }
            }
        }
        $crate::__proptest_cases! { ($config) $($rest)* }
    };
}

/// `assert!` for property bodies: fails the current case without aborting
/// the whole process state, reporting through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    l, r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                    l, r, ::std::format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!("assertion failed: `left != right`\n  both: {:?}", l,),
            ));
        }
    }};
}

/// Discards the current case (without counting it as passed) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}
