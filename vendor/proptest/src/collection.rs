//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A length specification for [`vec`]: a fixed `usize`, `lo..hi`, or
/// `lo..=hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range {r:?}");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range {r:?}");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = self.size.hi - self.size.lo;
        let len = self.size.lo + rng.next_below(span as u64 + 1) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            // Redraw rejected elements a bounded number of times before
            // rejecting the whole vector.
            let mut element = None;
            for _ in 0..100 {
                if let Some(v) = self.element.generate(rng) {
                    element = Some(v);
                    break;
                }
            }
            out.push(element?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_from_all_three_forms() {
        let mut rng = TestRng::new(11);
        for _ in 0..100 {
            assert_eq!(vec(0usize..5, 3usize).generate(&mut rng).unwrap().len(), 3);
            let l = vec(0usize..5, 1..4).generate(&mut rng).unwrap().len();
            assert!((1..4).contains(&l));
            let l = vec(0usize..5, 1..=4).generate(&mut rng).unwrap().len();
            assert!((1..=4).contains(&l));
        }
    }

    #[test]
    fn filtered_elements_redraw() {
        let mut rng = TestRng::new(13);
        let s = vec((0usize..10).prop_filter("even", |v| v % 2 == 0), 4usize);
        let v = s.generate(&mut rng).unwrap();
        assert_eq!(v.len(), 4);
        assert!(v.iter().all(|x| x % 2 == 0));
    }
}
