//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A` (`any::<u64>()` etc.).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy for integers and `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyOf<T>(PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyOf<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                Some(rng.next_u64() as $t)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyOf<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyOf(PhantomData)
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyOf<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> Option<bool> {
        Some(rng.next_u64() & 1 == 1)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyOf<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyOf(PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::new(17);
        let s = any::<u64>();
        let a = s.generate(&mut rng).unwrap();
        let b = s.generate(&mut rng).unwrap();
        assert_ne!(a, b);
    }
}
