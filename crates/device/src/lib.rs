//! Device abstraction for PHOENIX hardware compilation.
//!
//! A [`Device`] is what a compile actually targets: a named piece of
//! hardware with a [`CouplingGraph`] topology, a native two-qubit ISA
//! ([`NativeIsa`]), and a [`NoiseProfile`] of per-edge 2Q, per-qubit 1Q,
//! and per-qubit readout error rates. The [`DeviceRegistry`] builds
//! devices from compact specs (`heavy-hex:3x5`, `grid:4x4@su4`,
//! `ion-trap:12`, …) with seedable error-rate profiles, so fleets of
//! heterogeneous devices can be described by name.
//!
//! The fidelity side of the story is [`Device::predicted_fidelity`]: the
//! product of per-gate success probabilities under the device's error
//! model, plus readout success over the circuit's support. It is the
//! score `Target::Fleet` ranks by.
//!
//! # Examples
//!
//! ```
//! use phoenix_device::{DeviceRegistry, NativeIsa};
//!
//! let registry = DeviceRegistry::new();
//! let dev = registry.build("heavy-hex:2x3").unwrap();
//! assert!(dev.graph().num_qubits() > 6);
//! assert_eq!(dev.isa(), NativeIsa::Cnot);
//!
//! let trap = registry.build("ion-trap:8").unwrap();
//! assert_eq!(trap.isa(), NativeIsa::Su4);
//! assert_eq!(trap.graph().num_qubits(), 8);
//! ```

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

mod registry;

pub use registry::{DeviceRegistry, DeviceSpecError};

use phoenix_circuit::Circuit;
use phoenix_topology::CouplingGraph;
use std::collections::BTreeMap;

/// The native two-qubit instruction set of a device.
///
/// Superconducting devices typically expose a CNOT-class gate; trapped-ion
/// and tunable-coupler devices can execute an arbitrary SU(4) block as one
/// native instruction (the AshN scheme of the paper's §V-D). `CnotViaKak`
/// is the CNOT ISA reached by KAK-resynthesising fused SU(4) blocks —
/// fewer CNOTs than direct lowering at extra compile cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NativeIsa {
    /// CNOT + single-qubit rotations (direct lowering).
    #[default]
    Cnot,
    /// Arbitrary fused SU(4) blocks as native 2Q instructions.
    Su4,
    /// CNOT + 1Q, reached via KAK resynthesis of fused SU(4) blocks.
    CnotViaKak,
}

impl NativeIsa {
    /// Stable lowercase name (`cnot`, `su4`, `cnot-kak`).
    pub fn name(self) -> &'static str {
        match self {
            NativeIsa::Cnot => "cnot",
            NativeIsa::Su4 => "su4",
            NativeIsa::CnotViaKak => "cnot-kak",
        }
    }
}

/// Per-edge / per-qubit error rates for a device.
///
/// Rates are probabilities of failure per operation: `eps_1q[q]` for a
/// single-qubit gate on qubit `q`, `eps_2q[&(a, b)]` for a two-qubit gate
/// on coupled pair `(a, b)` (keyed with `a < b`), and `eps_readout[q]`
/// for measuring qubit `q`. All constructors keep every rate in
/// `[0, 1)`, and edge keys follow the device graph exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct NoiseProfile {
    /// Single-qubit gate error per qubit, length `num_qubits`.
    pub eps_1q: Vec<f64>,
    /// Two-qubit gate error per coupled edge, keyed `(min, max)`.
    pub eps_2q: BTreeMap<(usize, usize), f64>,
    /// Readout error per qubit, length `num_qubits`.
    pub eps_readout: Vec<f64>,
}

/// Baseline error magnitudes for seeded profiles, matching
/// `phoenix_sim::noise::ErrorModel::ibm_like` (Falcon-era medians).
const BASE_EPS_1Q: f64 = 3e-4;
const BASE_EPS_2Q: f64 = 8e-3;
const BASE_EPS_READOUT: f64 = 1.5e-2;

impl NoiseProfile {
    /// A profile with every rate zero (ideal hardware).
    pub fn noiseless(graph: &CouplingGraph) -> Self {
        Self::uniform(graph, 0.0, 0.0, 0.0)
    }

    /// A profile with the same rate on every qubit / edge.
    pub fn uniform(graph: &CouplingGraph, eps_1q: f64, eps_2q: f64, eps_readout: f64) -> Self {
        let n = graph.num_qubits();
        NoiseProfile {
            eps_1q: vec![eps_1q; n],
            eps_2q: graph.edges().iter().map(|&e| (e, eps_2q)).collect(),
            eps_readout: vec![eps_readout; n],
        }
    }

    /// A deterministic pseudo-random profile: rates jittered around
    /// IBM-like medians (±50%), reproducible from `seed`. Edge rates are
    /// drawn in the graph's sorted edge order, so equal seeds on equal
    /// graphs give identical profiles.
    pub fn seeded(graph: &CouplingGraph, seed: u64) -> Self {
        let mut rng = phoenix_mathkit::Xoshiro256::seed_from_u64(seed);
        let n = graph.num_qubits();
        let jitter =
            |rng: &mut phoenix_mathkit::Xoshiro256, base: f64| rng.next_range_f64(0.5, 1.5) * base;
        let eps_1q = (0..n).map(|_| jitter(&mut rng, BASE_EPS_1Q)).collect();
        let eps_2q = graph
            .edges()
            .iter()
            .map(|&e| (e, jitter(&mut rng, BASE_EPS_2Q)))
            .collect();
        let eps_readout = (0..n).map(|_| jitter(&mut rng, BASE_EPS_READOUT)).collect();
        NoiseProfile {
            eps_1q,
            eps_2q,
            eps_readout,
        }
    }

    /// The worst (largest) two-qubit error rate, or 0 with no edges.
    pub fn worst_2q(&self) -> f64 {
        self.eps_2q.values().fold(0.0, |a, &b| a.max(b))
    }
}

/// A compilation target device: topology + native ISA + error model.
///
/// Construct by hand with [`Device::new`], or from a registry spec with
/// [`DeviceRegistry::build`]. [`Device::bare`] wraps a plain
/// [`CouplingGraph`] as a noiseless CNOT-ISA device — the exact semantics
/// of the deprecated `Target::Hardware`.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    name: String,
    graph: CouplingGraph,
    isa: NativeIsa,
    noise: NoiseProfile,
}

impl Device {
    /// A device from explicit parts.
    pub fn new(
        name: impl Into<String>,
        graph: CouplingGraph,
        isa: NativeIsa,
        noise: NoiseProfile,
    ) -> Self {
        Device {
            name: name.into(),
            graph,
            isa,
            noise,
        }
    }

    /// Wrap a bare coupling graph as a noiseless CNOT-ISA device.
    ///
    /// This is what the deprecated `Target::Hardware(graph)` normalizes
    /// to, so legacy hardware compiles stay bit-for-bit identical.
    pub fn bare(graph: CouplingGraph) -> Self {
        let noise = NoiseProfile::noiseless(&graph);
        Device {
            name: "hardware".to_string(),
            graph,
            isa: NativeIsa::Cnot,
            noise,
        }
    }

    /// The device's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The coupling topology.
    pub fn graph(&self) -> &CouplingGraph {
        &self.graph
    }

    /// The native two-qubit ISA.
    pub fn isa(&self) -> NativeIsa {
        self.isa
    }

    /// The error model.
    pub fn noise(&self) -> &NoiseProfile {
        &self.noise
    }

    /// Replace the native ISA (builder-style).
    pub fn with_isa(mut self, isa: NativeIsa) -> Self {
        self.isa = isa;
        self
    }

    /// Replace the noise profile (builder-style).
    pub fn with_noise(mut self, noise: NoiseProfile) -> Self {
        self.noise = noise;
        self
    }

    /// Predicted fidelity of running `circuit` on this device: the
    /// product of per-gate success probabilities `(1 − ε)` under the
    /// error model, times readout success over the circuit's support.
    ///
    /// A two-qubit gate on an uncoupled pair (which routing should have
    /// eliminated) is charged the device's worst 2Q rate rather than
    /// panicking, so the estimate stays total. An SU(4) block counts as
    /// one native 2Q instruction — that is the point of the SU(4) ISA.
    /// Returns a value in `(0, 1]`; the empty circuit scores 1.
    pub fn predicted_fidelity(&self, circuit: &Circuit) -> f64 {
        let n = self.graph.num_qubits();
        let worst_2q = self.noise.worst_2q();
        let mut touched = vec![false; n];
        let mut fidelity = 1.0_f64;
        for gate in circuit.gates() {
            match gate.qubits() {
                (q, None) => {
                    if let Some(&eps) = self.noise.eps_1q.get(q) {
                        fidelity *= 1.0 - eps;
                    }
                    if q < n {
                        touched[q] = true;
                    }
                }
                (a, Some(b)) => {
                    let key = (a.min(b), a.max(b));
                    let eps = self.noise.eps_2q.get(&key).copied().unwrap_or(worst_2q);
                    fidelity *= 1.0 - eps;
                    if a < n {
                        touched[a] = true;
                    }
                    if b < n {
                        touched[b] = true;
                    }
                }
            }
        }
        for (q, hit) in touched.iter().enumerate() {
            if *hit {
                fidelity *= 1.0 - self.noise.eps_readout[q];
            }
        }
        fidelity
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use phoenix_circuit::Gate;

    #[test]
    fn bare_device_is_noiseless_cnot() {
        let dev = Device::bare(CouplingGraph::line(4));
        assert_eq!(dev.name(), "hardware");
        assert_eq!(dev.isa(), NativeIsa::Cnot);
        let mut c = Circuit::new(4);
        c.push(Gate::H(0));
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(2, 3));
        assert_eq!(dev.predicted_fidelity(&c), 1.0);
    }

    #[test]
    fn fidelity_pins_on_hand_computed_circuits() {
        // line:3 with ε₁=0.01, ε₂=0.1, ε_ro=0.02.
        let graph = CouplingGraph::line(3);
        let dev = Device::new(
            "toy",
            graph.clone(),
            NativeIsa::Cnot,
            NoiseProfile::uniform(&graph, 0.01, 0.1, 0.02),
        );

        // H(0); CNOT(0,1): support {0,1}.
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Cnot(0, 1));
        let expect = 0.99 * 0.9 * 0.98 * 0.98;
        assert!((dev.predicted_fidelity(&c) - expect).abs() < 1e-12);

        // CNOT(0,1); CNOT(1,2); Rz(2): support {0,1,2}.
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(1, 2));
        c.push(Gate::Rz(2, 0.5));
        let expect = 0.9 * 0.9 * 0.99 * 0.98_f64.powi(3);
        assert!((dev.predicted_fidelity(&c) - expect).abs() < 1e-12);
    }

    #[test]
    fn per_edge_rates_are_respected() {
        let graph = CouplingGraph::line(3);
        let mut noise = NoiseProfile::noiseless(&graph);
        noise.eps_2q.insert((0, 1), 0.25);
        let dev = Device::new("edgy", graph, NativeIsa::Cnot, noise);
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot(1, 2)); // clean edge
        assert!((dev.predicted_fidelity(&c) - 1.0).abs() < 1e-12);
        c.push(Gate::Cnot(1, 0)); // noisy edge, reversed orientation
        assert!((dev.predicted_fidelity(&c) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn uncoupled_pair_is_charged_worst_edge_rate() {
        let graph = CouplingGraph::line(3);
        let dev = Device::new(
            "toy",
            graph.clone(),
            NativeIsa::Cnot,
            NoiseProfile::uniform(&graph, 0.0, 0.2, 0.0),
        );
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot(0, 2)); // not an edge of line:3
        assert!((dev.predicted_fidelity(&c) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn su4_block_counts_as_one_native_instruction() {
        let graph = CouplingGraph::line(2);
        let dev = Device::new(
            "trap",
            graph.clone(),
            NativeIsa::Su4,
            NoiseProfile::uniform(&graph, 0.01, 0.1, 0.0),
        );
        let mut c = Circuit::new(2);
        c.push(Gate::Su4(Box::new(phoenix_circuit::Su4Block {
            a: 0,
            b: 1,
            inner: vec![Gate::Cnot(0, 1), Gate::H(0), Gate::Cnot(0, 1)],
        })));
        // One 2Q instruction, not 2 CNOTs + 1H.
        assert!((dev.predicted_fidelity(&c) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn seeded_profiles_are_deterministic_and_bounded() {
        let graph = CouplingGraph::grid(3, 3);
        let a = NoiseProfile::seeded(&graph, 42);
        let b = NoiseProfile::seeded(&graph, 42);
        assert_eq!(a, b);
        let c = NoiseProfile::seeded(&graph, 43);
        assert_ne!(a, c);
        for &e in a.eps_1q.iter().chain(a.eps_readout.iter()) {
            assert!(e > 0.0 && e < 1.0);
        }
        for &e in a.eps_2q.values() {
            assert!(e > 0.0 && e < 1.0);
        }
        assert_eq!(a.eps_2q.len(), graph.edges().len());
    }
}
