//! A registry of named device builders.
//!
//! Specs follow the grammar `family:dims[@isa]`:
//!
//! | family            | dims    | topology                         | default ISA |
//! |-------------------|---------|----------------------------------|-------------|
//! | `line:N`          | `N`     | open chain                       | `cnot`      |
//! | `ring:N`          | `N`     | closed chain                     | `cnot`      |
//! | `grid:RxC`        | `RxC`   | 2D lattice                       | `cnot`      |
//! | `heavy-hex:RxL`   | `RxL`   | IBM heavy-hex, R rows of L       | `cnot`      |
//! | `ion-trap:N`      | `N`     | all-to-all                       | `su4`       |
//!
//! plus the fixed presets `falcon27`, `manhattan65`, and `eagle127`. The
//! optional `@cnot` / `@su4` / `@kak` suffix overrides the native ISA.
//! Every device gets a noise profile seeded deterministically from the
//! registry seed and the topology part of the spec, so `grid:4x4` and
//! `grid:4x4@su4` share error rates and repeated builds are identical.

use crate::{Device, NativeIsa, NoiseProfile};
use phoenix_topology::CouplingGraph;
use std::fmt;

/// A typed error from [`DeviceRegistry::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceSpecError {
    /// The family (the part before `:`) is not in the registry.
    UnknownDevice(String),
    /// The size part is missing, non-numeric, zero, or over the cap.
    MalformedSize(String),
    /// The `@isa` suffix is not `cnot`, `su4`, or `kak`.
    UnknownIsa(String),
}

impl fmt::Display for DeviceSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceSpecError::UnknownDevice(spec) => write!(
                f,
                "unknown device '{spec}' (expected line:N, ring:N, grid:RxC, \
                 heavy-hex:RxL, ion-trap:N, falcon27, manhattan65, or eagle127)"
            ),
            DeviceSpecError::MalformedSize(spec) => write!(
                f,
                "malformed device size in '{spec}' (sizes must be positive \
                 integers, at most {MAX_DIM})"
            ),
            DeviceSpecError::UnknownIsa(isa) => {
                write!(f, "unknown ISA '@{isa}' (expected @cnot, @su4, or @kak)")
            }
        }
    }
}

impl std::error::Error for DeviceSpecError {}

/// Per-dimension cap on registry-built device sizes, so a hostile spec
/// like `grid:99999x99999` cannot allocate an absurd graph.
const MAX_DIM: usize = 4096;

/// Builds [`Device`]s from compact named specs with seeded noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceRegistry {
    seed: u64,
}

impl Default for DeviceRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl DeviceRegistry {
    /// The registry with the default noise seed.
    pub fn new() -> Self {
        DeviceRegistry { seed: 7 }
    }

    /// A registry whose noise profiles derive from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        DeviceRegistry { seed }
    }

    /// Build a device from a spec like `heavy-hex:3x5` or `ion-trap:12@su4`.
    pub fn build(&self, spec: &str) -> Result<Device, DeviceSpecError> {
        let spec = spec.trim();
        let (topo_spec, isa_override) = match spec.split_once('@') {
            Some((topo, isa)) => (topo, Some(parse_isa(isa)?)),
            None => (spec, None),
        };
        let (graph, default_isa) = build_graph(topo_spec)?;
        let isa = isa_override.unwrap_or(default_isa);
        let noise = NoiseProfile::seeded(&graph, mix(self.seed, fnv1a(topo_spec)));
        Ok(Device::new(spec, graph, isa, noise))
    }
}

fn parse_isa(isa: &str) -> Result<NativeIsa, DeviceSpecError> {
    match isa {
        "cnot" => Ok(NativeIsa::Cnot),
        "su4" => Ok(NativeIsa::Su4),
        "kak" | "cnot-kak" => Ok(NativeIsa::CnotViaKak),
        other => Err(DeviceSpecError::UnknownIsa(other.to_string())),
    }
}

fn build_graph(spec: &str) -> Result<(CouplingGraph, NativeIsa), DeviceSpecError> {
    match spec {
        "falcon27" => return Ok((CouplingGraph::falcon27(), NativeIsa::Cnot)),
        "manhattan65" => return Ok((CouplingGraph::manhattan65(), NativeIsa::Cnot)),
        "eagle127" => return Ok((CouplingGraph::eagle127(), NativeIsa::Cnot)),
        _ => {}
    }
    let Some((family, size)) = spec.split_once(':') else {
        return Err(DeviceSpecError::UnknownDevice(spec.to_string()));
    };
    match family {
        "line" => Ok((CouplingGraph::line(parse_dim(spec, size)?), NativeIsa::Cnot)),
        "ring" => Ok((CouplingGraph::ring(parse_dim(spec, size)?), NativeIsa::Cnot)),
        "grid" => {
            let (r, c) = parse_dims(spec, size)?;
            Ok((CouplingGraph::grid(r, c), NativeIsa::Cnot))
        }
        "heavy-hex" => {
            let (rows, row_len) = parse_dims(spec, size)?;
            Ok((CouplingGraph::heavy_hex(rows, row_len), NativeIsa::Cnot))
        }
        "ion-trap" => Ok((
            CouplingGraph::all_to_all(parse_dim(spec, size)?),
            NativeIsa::Su4,
        )),
        _ => Err(DeviceSpecError::UnknownDevice(spec.to_string())),
    }
}

fn parse_dim(spec: &str, size: &str) -> Result<usize, DeviceSpecError> {
    match size.parse::<usize>() {
        Ok(n) if (1..=MAX_DIM).contains(&n) => Ok(n),
        _ => Err(DeviceSpecError::MalformedSize(spec.to_string())),
    }
}

fn parse_dims(spec: &str, size: &str) -> Result<(usize, usize), DeviceSpecError> {
    let Some((a, b)) = size.split_once('x') else {
        return Err(DeviceSpecError::MalformedSize(spec.to_string()));
    };
    Ok((parse_dim(spec, a)?, parse_dim(spec, b)?))
}

/// SplitMix64 finalizer, for combining the registry seed with a spec hash.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the spec bytes (stable across platforms, unlike `Hash`).
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in s.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn builds_every_family() {
        let reg = DeviceRegistry::new();
        let cases = [
            ("line:6", 6, NativeIsa::Cnot),
            ("ring:8", 8, NativeIsa::Cnot),
            ("grid:3x4", 12, NativeIsa::Cnot),
            ("ion-trap:10", 10, NativeIsa::Su4),
            ("falcon27", 27, NativeIsa::Cnot),
            ("manhattan65", 65, NativeIsa::Cnot),
            ("eagle127", 127, NativeIsa::Cnot),
        ];
        for (spec, qubits, isa) in cases {
            let dev = reg.build(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(dev.graph().num_qubits(), qubits, "{spec}");
            assert_eq!(dev.isa(), isa, "{spec}");
            assert_eq!(dev.name(), spec);
            assert!(dev.graph().is_connected(), "{spec}");
        }
        let hh = reg.build("heavy-hex:2x3").expect("heavy-hex");
        assert!(hh.graph().is_connected());
        assert!(hh.graph().num_qubits() > 6);
    }

    #[test]
    fn isa_suffix_overrides_but_not_noise() {
        let reg = DeviceRegistry::new();
        let plain = reg.build("grid:4x4").expect("plain");
        let su4 = reg.build("grid:4x4@su4").expect("su4");
        let kak = reg.build("grid:4x4@kak").expect("kak");
        assert_eq!(su4.isa(), NativeIsa::Su4);
        assert_eq!(kak.isa(), NativeIsa::CnotViaKak);
        assert_eq!(plain.noise(), su4.noise());
        assert_eq!(plain.noise(), kak.noise());
        assert_eq!(
            reg.build("ion-trap:6@cnot").expect("cnot trap").isa(),
            NativeIsa::Cnot
        );
    }

    #[test]
    fn builds_are_deterministic_and_seed_sensitive() {
        let a = DeviceRegistry::new().build("heavy-hex:2x3").expect("a");
        let b = DeviceRegistry::new().build("heavy-hex:2x3").expect("b");
        assert_eq!(a, b);
        let c = DeviceRegistry::with_seed(99)
            .build("heavy-hex:2x3")
            .expect("c");
        assert_ne!(a.noise(), c.noise());
    }

    #[test]
    fn typed_errors_for_bad_specs() {
        let reg = DeviceRegistry::new();
        assert!(matches!(
            reg.build("torus:4x4"),
            Err(DeviceSpecError::UnknownDevice(_))
        ));
        assert!(matches!(
            reg.build("banana"),
            Err(DeviceSpecError::UnknownDevice(_))
        ));
        assert!(matches!(
            reg.build("line:0"),
            Err(DeviceSpecError::MalformedSize(_))
        ));
        assert!(matches!(
            reg.build("grid:4"),
            Err(DeviceSpecError::MalformedSize(_))
        ));
        assert!(matches!(
            reg.build("grid:4xfour"),
            Err(DeviceSpecError::MalformedSize(_))
        ));
        assert!(matches!(
            reg.build("line:99999999"),
            Err(DeviceSpecError::MalformedSize(_))
        ));
        assert!(matches!(
            reg.build("line:6@pulse"),
            Err(DeviceSpecError::UnknownIsa(_))
        ));
        // Errors render with guidance.
        let msg = reg.build("torus:4x4").unwrap_err().to_string();
        assert!(msg.contains("heavy-hex"));
    }
}
