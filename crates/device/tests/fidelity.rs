//! Property tests for the predicted-fidelity estimator.

use phoenix_circuit::{Circuit, Gate};
use phoenix_device::{Device, DeviceRegistry, NativeIsa, NoiseProfile};
use phoenix_mathkit::Xoshiro256;
use phoenix_topology::CouplingGraph;
use proptest::prelude::*;

/// A random circuit over `line:n`, using only coupled pairs.
fn random_circuit(n: usize, len: usize, seed: u64) -> Circuit {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..len {
        match rng.next_below(4) {
            0 => c.push(Gate::H(rng.next_below(n))),
            1 => c.push(Gate::Rz(rng.next_below(n), rng.next_range_f64(-1.0, 1.0))),
            _ => {
                let a = rng.next_below(n - 1);
                c.push(Gate::Cnot(a, a + 1));
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fidelity is monotone non-increasing as any single error rate
    /// increases, across all three rate families.
    #[test]
    fn fidelity_is_monotone_in_every_single_rate(
        n in 2usize..6,
        len in 0usize..24,
        seed in 0u64..1000,
        slot in 0usize..32,
        bump in 1e-4f64..0.3,
    ) {
        let graph = CouplingGraph::line(n);
        let circuit = random_circuit(n, len, seed);
        let base = NoiseProfile::seeded(&graph, seed ^ 0xdead);
        let dev = Device::new("base", graph.clone(), NativeIsa::Cnot, base.clone());
        let f0 = dev.predicted_fidelity(&circuit);

        // Bump exactly one rate, chosen by `slot` across the three
        // families, and require fidelity not to increase.
        let mut bumped = base.clone();
        let n_edges = bumped.eps_2q.len();
        match slot % 3 {
            0 => bumped.eps_1q[slot % n] += bump,
            1 => {
                let key = *bumped.eps_2q.keys().nth(slot % n_edges).expect("edge");
                *bumped.eps_2q.get_mut(&key).expect("edge") += bump;
            }
            _ => bumped.eps_readout[slot % n] += bump,
        }
        let dev2 = Device::new("bumped", graph, NativeIsa::Cnot, bumped);
        let f1 = dev2.predicted_fidelity(&circuit);
        prop_assert!(
            f1 <= f0 + 1e-12,
            "fidelity increased after bumping a rate: {f0} -> {f1}"
        );
    }

    /// Fidelity is always in (0, 1] for registry devices with seeded
    /// (sub-unity) rates, and exactly 1 for noiseless hardware.
    #[test]
    fn fidelity_stays_in_unit_interval(
        n in 2usize..6,
        len in 0usize..24,
        seed in 0u64..1000,
    ) {
        let circuit = random_circuit(n, len, seed);
        let dev = DeviceRegistry::new()
            .build(&format!("line:{n}"))
            .expect("registry line");
        let f = dev.predicted_fidelity(&circuit);
        prop_assert!(f > 0.0 && f <= 1.0, "fidelity {f} out of range");

        let bare = Device::bare(CouplingGraph::line(n));
        prop_assert_eq!(bare.predicted_fidelity(&circuit), 1.0);
    }
}
