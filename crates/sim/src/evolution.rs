//! Exact Hamiltonian evolution and Trotter-product references.

use phoenix_mathkit::{CMatrix, Complex};
use phoenix_pauli::PauliString;

/// Builds the dense matrix `H = Σⱼ cⱼ Pⱼ`.
///
/// # Panics
///
/// Panics if the terms span more than 14 qubits (dense limit) or disagree on
/// qubit count.
pub fn hamiltonian_matrix(n: usize, terms: &[(PauliString, f64)]) -> CMatrix {
    assert!(n <= 14, "dense evolution supports at most 14 qubits");
    let dim = 1usize << n;
    let mut h = CMatrix::zeros(dim, dim);
    for (p, c) in terms {
        assert_eq!(p.num_qubits(), n, "term qubit count mismatch");
        h = &h + &p.to_matrix().scale(Complex::from_re(*c));
    }
    h
}

/// Applies a Pauli string on the left of a matrix: `P · M`.
///
/// `P` acts as a phased row permutation, so this costs `O(4ⁿ)` instead of a
/// dense matmul — the workhorse of the fast evolution paths below.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn pauli_apply_left(p: &PauliString, m: &CMatrix) -> CMatrix {
    let dim = 1usize << p.num_qubits();
    assert_eq!(m.rows(), dim, "dimension mismatch");
    let x = p.x_mask().low_u128() as usize;
    let z = p.z_mask().low_u128();
    let ycnt = p.x_mask().and_count(p.z_mask()) % 4;
    let ybase = [Complex::ONE, Complex::I, -Complex::ONE, -Complex::I][ycnt as usize];
    let mut out = CMatrix::zeros(dim, m.cols());
    for r in 0..dim {
        let k = r ^ x;
        // P[r, k] = i^{|x∧z|} (−1)^{|k∧z|}
        let phase = if ((k as u128) & z).count_ones() % 2 == 1 {
            -ybase
        } else {
            ybase
        };
        for c in 0..m.cols() {
            out[(r, c)] = phase * m[(k, c)];
        }
    }
    out
}

/// Applies `exp(-i·c·P)` on the left: `cos(c)·M − i·sin(c)·(P·M)`.
pub fn pauli_exp_apply_left(p: &PauliString, c: f64, m: &CMatrix) -> CMatrix {
    let pm = pauli_apply_left(p, m);
    &m.scale(Complex::from_re(c.cos())) + &pm.scale(Complex::new(0.0, -c.sin()))
}

/// The ideal evolution `U = exp(-iH)` for `H = Σⱼ cⱼ Pⱼ` (the evolution
/// duration is absorbed into the coefficients, as in the paper's Fig. 8
/// rescaling protocol).
///
/// Uses scaling-and-squaring with the Hamiltonian applied term-wise as
/// phased row permutations, so only the squaring stage pays for dense
/// matmuls — this keeps 10-qubit molecular evolutions tractable.
pub fn exact_evolution(n: usize, terms: &[(PauliString, f64)]) -> CMatrix {
    let dim = 1usize << n;
    assert!(n <= 14, "dense evolution supports at most 14 qubits");
    // Spectral norm bound: Σ|cⱼ|.
    let norm: f64 = terms.iter().map(|(_, c)| c.abs()).sum();
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let scale = 1.0 / f64::powi(2.0, s as i32);
    // Taylor series of exp(-i·scale·H).
    let apply_a = |m: &CMatrix| -> CMatrix {
        let mut acc = CMatrix::zeros(dim, dim);
        for (p, c) in terms {
            assert_eq!(p.num_qubits(), n, "term qubit count mismatch");
            acc = &acc + &pauli_apply_left(p, m).scale(Complex::new(0.0, -c * scale));
        }
        acc
    };
    let mut result = CMatrix::identity(dim);
    let mut term = CMatrix::identity(dim);
    for k in 1..=24u32 {
        term = apply_a(&term).scale(Complex::from_re(1.0 / k as f64));
        result = &result + &term;
        if term.norm_inf() < 1e-18 {
            break;
        }
    }
    for _ in 0..s {
        result = result.matmul(&result);
    }
    result
}

/// The first-order Trotter product `Πⱼ exp(-i·cⱼ·Pⱼ)` in the given term
/// order — the unitary every compiled circuit must implement exactly (up to
/// global phase and the compiler's own term reordering).
pub fn trotter_unitary(n: usize, terms: &[(PauliString, f64)]) -> CMatrix {
    let dim = 1usize << n;
    let mut u = CMatrix::identity(dim);
    for (p, c) in terms {
        assert_eq!(p.num_qubits(), n, "term qubit count mismatch");
        u = pauli_exp_apply_left(p, *c, &u);
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{circuit_unitary, infidelity};
    use phoenix_circuit::{Circuit, Gate};
    use phoenix_pauli::Pauli;

    fn ps(l: &str) -> PauliString {
        l.parse().unwrap()
    }

    #[test]
    fn single_term_exact_equals_trotter() {
        let terms = vec![(ps("XZ"), 0.37)];
        let u = exact_evolution(2, &terms);
        let v = trotter_unitary(2, &terms);
        assert!(u.approx_eq(&v, 1e-12));
    }

    #[test]
    fn commuting_terms_have_zero_trotter_error() {
        let terms = vec![(ps("ZZI"), 0.3), (ps("IZZ"), -0.5), (ps("ZIZ"), 0.1)];
        let u = exact_evolution(3, &terms);
        let v = trotter_unitary(3, &terms);
        assert!(infidelity(&u, &v) < 1e-12);
    }

    #[test]
    fn noncommuting_terms_have_positive_trotter_error() {
        let terms = vec![(ps("XI"), 0.8), (ps("ZI"), 0.8)];
        let err = infidelity(&exact_evolution(2, &terms), &trotter_unitary(2, &terms));
        assert!(err > 1e-4, "got {err}");
    }

    #[test]
    fn trotter_error_shrinks_with_coefficients() {
        // Rescaling coefficients by s shrinks first-order error ~ s².
        let terms = |s: f64| {
            vec![
                (ps("XY"), 0.4 * s),
                (ps("ZZ"), 0.3 * s),
                (ps("YX"), 0.2 * s),
            ]
        };
        let err = |s: f64| {
            infidelity(
                &exact_evolution(2, &terms(s)),
                &trotter_unitary(2, &terms(s)),
            )
        };
        let e1 = err(1.0);
        let e2 = err(0.25);
        assert!(
            e2 < e1 / 8.0,
            "error should shrink superlinearly: {e1} vs {e2}"
        );
    }

    #[test]
    fn weight_one_term_matches_rotation_gate() {
        // Term (Z on qubit 0, c) ⇔ Rz(2c).
        let c = 0.41;
        let u = trotter_unitary(1, &[(ps("Z"), c)]);
        let mut circ = Circuit::new(1);
        circ.push(Gate::Rz(0, 2.0 * c));
        let v = circuit_unitary(&circ);
        assert!(u.approx_eq(&v, 1e-12));
    }

    #[test]
    fn weight_two_term_matches_pauli_rot2_gate() {
        let c = -0.23;
        let u = trotter_unitary(2, &[(ps("YX"), c)]);
        let mut circ = Circuit::new(2);
        circ.push(Gate::PauliRot2 {
            a: 0,
            b: 1,
            pa: Pauli::Y,
            pb: Pauli::X,
            theta: 2.0 * c,
        });
        let v = circuit_unitary(&circ);
        assert!(u.approx_eq(&v, 1e-12));
    }

    #[test]
    fn naive_cnot_tree_synthesis_of_weight3_term() {
        // exp(-i c ZZZ) = CNOT-tree + Rz(2c) + mirrored tree.
        let c = 0.57;
        let u = trotter_unitary(3, &[(ps("ZZZ"), c)]);
        let mut circ = Circuit::new(3);
        circ.push(Gate::Cnot(0, 1));
        circ.push(Gate::Cnot(1, 2));
        circ.push(Gate::Rz(2, 2.0 * c));
        circ.push(Gate::Cnot(1, 2));
        circ.push(Gate::Cnot(0, 1));
        assert!(infidelity(&u, &circuit_unitary(&circ)) < 1e-12);
    }

    #[test]
    fn evolution_is_unitary() {
        let terms = vec![(ps("XYZ"), 0.3), (ps("ZZI"), 0.7)];
        assert!(exact_evolution(3, &terms).is_unitary(1e-10));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn arity_mismatch_panics() {
        let _ = trotter_unitary(3, &[(ps("XX"), 1.0)]);
    }
}
