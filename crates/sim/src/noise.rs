//! Coarse noise-aware success estimation.
//!
//! The NISQ motivation for gate-count/depth reduction is fidelity: with
//! per-gate error rates `ε`, a circuit's success probability is roughly
//! `Π (1 − ε_g)`, with idling (decoherence) decaying per 2Q layer. This
//! module provides that standard first-order estimate so compiled circuits
//! can be compared in the currency the paper ultimately cares about.

use phoenix_circuit::Circuit;

/// A depolarizing-style device error model.
///
/// # Examples
///
/// ```
/// use phoenix_circuit::{Circuit, Gate};
/// use phoenix_sim::noise::ErrorModel;
///
/// let mut a = Circuit::new(2);
/// a.push(Gate::Cnot(0, 1));
/// let mut b = a.clone();
/// b.push(Gate::Cnot(0, 1));
/// let model = ErrorModel::ibm_like();
/// assert!(model.success_probability(&a) > model.success_probability(&b));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorModel {
    /// Error probability per 1Q gate.
    pub eps_1q: f64,
    /// Error probability per 2Q gate (any flavour).
    pub eps_2q: f64,
    /// Per-qubit idle decay per 2Q layer (`T1/T2` proxy).
    pub eps_idle: f64,
}

impl ErrorModel {
    /// Typical superconducting-device magnitudes (`ε₁q = 3·10⁻⁴`,
    /// `ε₂q = 8·10⁻³`, idle `10⁻⁴` per layer).
    pub fn ibm_like() -> Self {
        ErrorModel {
            eps_1q: 3e-4,
            eps_2q: 8e-3,
            eps_idle: 1e-4,
        }
    }

    /// A noiseless model (success always 1).
    pub fn noiseless() -> Self {
        ErrorModel {
            eps_1q: 0.0,
            eps_2q: 0.0,
            eps_idle: 0.0,
        }
    }

    /// First-order success probability
    /// `(1−ε₁)^{n₁} (1−ε₂)^{n₂} (1−ε_idle)^{width·depth₂q}`.
    ///
    /// High-level gates count as single 2Q gates (the SU(4)-ISA view); lower
    /// to the CNOT ISA first for CNOT-based accounting.
    pub fn success_probability(&self, c: &Circuit) -> f64 {
        let k = c.counts();
        let idle_slots = (c.support_mask().count_ones() as usize) * c.depth_2q();
        (1.0 - self.eps_1q).powi(k.oneq as i32)
            * (1.0 - self.eps_2q).powi(k.two_qubit() as i32)
            * (1.0 - self.eps_idle).powi(idle_slots as i32)
    }

    /// The estimated log-infidelity `−ln(success)`; additive across
    /// circuit segments, convenient for comparisons.
    pub fn log_infidelity(&self, c: &Circuit) -> f64 {
        -self.success_probability(c).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_circuit::Gate;

    fn chain(n: usize, gates: usize) -> Circuit {
        let mut c = Circuit::new(n);
        for i in 0..gates {
            c.push(Gate::Cnot(i % (n - 1), i % (n - 1) + 1));
        }
        c
    }

    #[test]
    fn noiseless_is_certain() {
        let m = ErrorModel::noiseless();
        assert_eq!(m.success_probability(&chain(4, 20)), 1.0);
    }

    #[test]
    fn success_decreases_with_gates() {
        let m = ErrorModel::ibm_like();
        let p1 = m.success_probability(&chain(4, 10));
        let p2 = m.success_probability(&chain(4, 40));
        assert!(p2 < p1);
        assert!((0.0..=1.0).contains(&p1));
    }

    #[test]
    fn empty_circuit_is_certain() {
        let m = ErrorModel::ibm_like();
        assert_eq!(m.success_probability(&Circuit::new(3)), 1.0);
    }

    #[test]
    fn log_infidelity_is_additive_in_gate_count() {
        // With idle off, −ln p is exactly linear in gate counts.
        let m = ErrorModel {
            eps_1q: 1e-3,
            eps_2q: 1e-2,
            eps_idle: 0.0,
        };
        let a = m.log_infidelity(&chain(4, 10));
        let b = m.log_infidelity(&chain(4, 20));
        assert!((b - 2.0 * a).abs() < 1e-9);
    }

    #[test]
    fn fewer_cnots_means_higher_success() {
        // The end-to-end motivation: a compiled circuit with 4× fewer CNOTs
        // has measurably better predicted success.
        let m = ErrorModel::ibm_like();
        let naive = chain(4, 1376);
        let compiled = chain(4, 348);
        let ratio = m.success_probability(&compiled) / m.success_probability(&naive);
        assert!(ratio > 100.0, "ratio {ratio}");
    }
}
