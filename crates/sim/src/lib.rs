//! State-vector and unitary simulation for verifying compiled circuits and
//! measuring algorithmic error.
//!
//! The paper's Fig. 8 quantifies *algorithmic error* as the unitary
//! infidelity `1 − |Tr(U†V)|/N` between a synthesized circuit `V` and the
//! ideal evolution `U = exp(-iH)`. This crate provides the three pieces:
//!
//! - [`State`] / [`circuit_unitary`]: exact simulation of any
//!   [`Circuit`](phoenix_circuit::Circuit) (all gate flavours, including
//!   fused SU(4) blocks);
//! - [`exact_evolution`] / [`trotter_unitary`]: the ideal evolution of a
//!   Pauli-term Hamiltonian via dense `expm`, and the per-term Trotter
//!   product that every correct compilation must reproduce up to term
//!   reordering;
//! - [`infidelity`]: the paper's metric.
//!
//! Sizes up to ~12 qubits are practical (dense `2ⁿ` arithmetic), matching
//! the paper's "within the matrix computation capabilities of standard PCs".
//!
//! # Examples
//!
//! ```
//! use phoenix_circuit::{Circuit, Gate};
//! use phoenix_sim::{circuit_unitary, infidelity};
//!
//! let mut a = Circuit::new(1);
//! a.push(Gate::H(0));
//! a.push(Gate::H(0));
//! let u = circuit_unitary(&a);
//! let id = circuit_unitary(&Circuit::new(1));
//! assert!(infidelity(&u, &id) < 1e-12);
//! ```

mod evolution;
pub mod noise;
mod observable;
mod stabilizer;
mod statevector;

pub use evolution::{
    exact_evolution, hamiltonian_matrix, pauli_apply_left, pauli_exp_apply_left, trotter_unitary,
};
pub use observable::{energy, expectation};
pub use stabilizer::{conjugate_pauli, NonCliffordGateError, StabilizerState};
pub use statevector::{circuit_unitary, State};

use phoenix_mathkit::CMatrix;

/// The paper's algorithmic-error metric: `1 − |Tr(U†V)|/N`.
///
/// Zero iff the unitaries agree up to a global phase.
///
/// # Panics
///
/// Panics if the matrices are not square with equal shapes.
pub fn infidelity(u: &CMatrix, v: &CMatrix) -> f64 {
    1.0 - u.unitary_overlap(v)
}
