//! Dense state-vector simulation.

use phoenix_circuit::{Circuit, Gate};
use phoenix_mathkit::{CMatrix, Complex, Xoshiro256};
use phoenix_pauli::PauliString;

/// A dense `2ⁿ` state vector in little-endian qubit order (qubit 0 is the
/// least-significant basis bit).
///
/// # Examples
///
/// ```
/// use phoenix_circuit::{Circuit, Gate};
/// use phoenix_sim::State;
///
/// let mut bell = Circuit::new(2);
/// bell.push(Gate::H(0));
/// bell.push(Gate::Cnot(0, 1));
/// let s = State::zero(2).evolved(&bell);
/// assert!((s.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
/// assert!(s.probability(0b01) < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct State {
    n: usize,
    amps: Vec<Complex>,
}

impl State {
    /// The all-zeros computational basis state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 24` (dense simulation limit).
    pub fn zero(n: usize) -> Self {
        State::basis(n, 0)
    }

    /// The computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `n > 24` or `index >= 2ⁿ`.
    pub fn basis(n: usize, index: usize) -> Self {
        assert!(n <= 24, "dense simulation supports at most 24 qubits");
        let dim = 1usize << n;
        assert!(index < dim, "basis index out of range");
        let mut amps = vec![Complex::ZERO; dim];
        amps[index] = Complex::ONE;
        State { n, amps }
    }

    /// A random product state `⊗ᵩ (cos θᵩ|0⟩ + e^{iφᵩ} sin θᵩ|1⟩)`,
    /// deterministic in the generator state.
    ///
    /// Product states are the cheap-to-prepare inputs of tier-3
    /// observable spot checks: they are expressive enough that two
    /// different unitaries almost surely disagree on some product-state
    /// expectation, yet need no reference circuit to construct.
    ///
    /// # Panics
    ///
    /// Panics if `n > 24` (dense simulation limit).
    pub fn random_product(n: usize, rng: &mut Xoshiro256) -> Self {
        assert!(n <= 24, "dense simulation supports at most 24 qubits");
        let mut amps = vec![Complex::ONE; 1];
        for _ in 0..n {
            let theta = rng.next_range_f64(0.0, std::f64::consts::PI);
            let phi = rng.next_range_f64(0.0, 2.0 * std::f64::consts::PI);
            let a0 = Complex::from_re((theta / 2.0).cos());
            let a1 = Complex::new(phi.cos(), phi.sin()) * Complex::from_re((theta / 2.0).sin());
            // New qubit becomes the most-significant bit: |ψ⟩ ⊗ (a0|0⟩+a1|1⟩).
            let mut next = Vec::with_capacity(amps.len() * 2);
            next.extend(amps.iter().map(|&a| a0 * a));
            next.extend(amps.iter().map(|&a| a1 * a));
            amps = next;
        }
        State { n, amps }
    }

    /// Applies a Pauli string in place: `|ψ⟩ ← P|ψ⟩` (a phased bit-flip
    /// permutation, `O(2ⁿ)`).
    ///
    /// # Panics
    ///
    /// Panics if the string's qubit count differs from the state's.
    pub fn apply_pauli(&mut self, p: &PauliString) {
        assert_eq!(p.num_qubits(), self.n, "pauli arity mismatch");
        let x = p.x_mask().low_u128() as usize;
        let z = p.z_mask().low_u128();
        let ycnt = p.x_mask().and_count(p.z_mask()) % 4;
        let ybase = [Complex::ONE, Complex::I, -Complex::ONE, -Complex::I][ycnt as usize];
        let mut out = vec![Complex::ZERO; self.amps.len()];
        for (r, slot) in out.iter_mut().enumerate() {
            let k = r ^ x;
            // P[r, k] = i^{|x∧z|} (−1)^{|k∧z|}, as in `pauli_apply_left`.
            let phase = if ((k as u128) & z).count_ones() % 2 == 1 {
                -ybase
            } else {
                ybase
            };
            *slot = phase * self.amps[k];
        }
        self.amps = out;
    }

    /// Applies a Pauli exponential in place:
    /// `|ψ⟩ ← exp(-i·c·P)|ψ⟩ = cos(c)|ψ⟩ − i·sin(c)·P|ψ⟩`.
    ///
    /// Chaining this over a term list evolves a state by the exact Trotter
    /// product without ever materializing a `2ⁿ × 2ⁿ` matrix — the
    /// reference evolution of tier-3 checks at sizes where
    /// [`trotter_unitary`](crate::trotter_unitary) is out of reach.
    ///
    /// # Panics
    ///
    /// Panics if the string's qubit count differs from the state's.
    pub fn apply_pauli_exp(&mut self, p: &PauliString, c: f64) {
        let mut flipped = self.clone();
        flipped.apply_pauli(p);
        let (cos, sin) = (Complex::from_re(c.cos()), Complex::new(0.0, -c.sin()));
        for (a, f) in self.amps.iter_mut().zip(&flipped.amps) {
            *a = cos * *a + sin * *f;
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The amplitude vector.
    pub fn amplitudes(&self) -> &[Complex] {
        &self.amps
    }

    /// `|⟨index|ψ⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Applies a gate in place.
    ///
    /// # Panics
    ///
    /// Panics if the gate addresses a qubit outside the register.
    pub fn apply(&mut self, g: &Gate) {
        match g.qubits() {
            (q, None) => {
                let m = g.matrix1().expect("1q gate has a 2x2 matrix");
                self.apply_1q(q, &m);
            }
            (a, Some(b)) => {
                let m = g.matrix2().expect("2q gate has a 4x4 matrix");
                self.apply_2q(a, b, &m);
            }
        }
    }

    fn apply_1q(&mut self, q: usize, m: &CMatrix) {
        assert!(q < self.n, "qubit {q} out of range");
        let bit = 1usize << q;
        // Enumerate only the 2ⁿ⁻¹ base indices (bit q clear) by splicing a
        // zero into position q, instead of scanning and mask-filtering all
        // 2ⁿ amplitudes.
        let low = bit - 1;
        for k in 0..self.amps.len() >> 1 {
            let i = ((k & !low) << 1) | (k & low);
            let (a0, a1) = (self.amps[i], self.amps[i | bit]);
            self.amps[i] = m[(0, 0)] * a0 + m[(0, 1)] * a1;
            self.amps[i | bit] = m[(1, 0)] * a0 + m[(1, 1)] * a1;
        }
    }

    /// Applies a 4×4 matrix in *local little-endian* order: qubit `a` is the
    /// local LSB (matching [`Gate::matrix2`]).
    fn apply_2q(&mut self, a: usize, b: usize, m: &CMatrix) {
        assert!(a < self.n && b < self.n, "qubit out of range");
        assert_ne!(a, b, "2q gate needs distinct qubits");
        let (ba, bb) = (1usize << a, 1usize << b);
        // Enumerate only the 2ⁿ⁻² base indices (both bits clear) by
        // splicing zeros into the two bit positions, low bit first.
        let (lo, hi) = (ba.min(bb) - 1, ba.max(bb) - 1);
        for k in 0..self.amps.len() >> 2 {
            let t = ((k & !lo) << 1) | (k & lo);
            let i = ((t & !hi) << 1) | (t & hi);
            let idx = [i, i | ba, i | bb, i | ba | bb];
            let old = idx.map(|k| self.amps[k]);
            for (r, &k) in idx.iter().enumerate() {
                let mut acc = Complex::ZERO;
                for (c, &o) in old.iter().enumerate() {
                    acc += m[(r, c)] * o;
                }
                self.amps[k] = acc;
            }
        }
    }

    /// Applies every gate of a circuit in place.
    ///
    /// # Panics
    ///
    /// Panics if the circuit uses more qubits than the state has.
    pub fn apply_circuit(&mut self, c: &Circuit) {
        assert!(c.num_qubits() <= self.n, "circuit too wide for state");
        if phoenix_obs::metrics::enabled() {
            phoenix_obs::metrics::global()
                .add(phoenix_obs::metrics::MetricId::SimGateOps, c.len() as u64);
        }
        for g in c.gates() {
            self.apply(g);
        }
    }

    /// Returns a copy evolved by `c`.
    pub fn evolved(&self, c: &Circuit) -> State {
        let mut s = self.clone();
        s.apply_circuit(c);
        s
    }

    /// `|⟨other|self⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn fidelity(&self, other: &State) -> f64 {
        assert_eq!(self.n, other.n, "state sizes must match");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(&a, &b)| a.conj() * b)
            .sum::<Complex>()
            .norm_sqr()
    }
}

/// Builds the full `2ⁿ × 2ⁿ` unitary of a circuit by evolving every basis
/// column.
///
/// # Panics
///
/// Panics if the circuit has more than 24 qubits.
pub fn circuit_unitary(c: &Circuit) -> CMatrix {
    let n = c.num_qubits();
    let dim = 1usize << n;
    let mut u = CMatrix::zeros(dim, dim);
    for col in 0..dim {
        let s = State::basis(n, col).evolved(c);
        for (row, &amp) in s.amplitudes().iter().enumerate() {
            u[(row, col)] = amp;
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_pauli::{Clifford2Q, Pauli};

    #[test]
    fn cnot_truth_table() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot(0, 1));
        // |01⟩ (qubit0=1) → |11⟩
        let s = State::basis(2, 0b01).evolved(&c);
        assert!((s.probability(0b11) - 1.0).abs() < 1e-12);
        // |10⟩ (qubit0=0) unchanged
        let s = State::basis(2, 0b10).evolved(&c);
        assert!((s.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unitary_of_clifford2_matches_its_matrix4() {
        for kind in phoenix_pauli::CLIFFORD2Q_GENERATORS {
            let mut c = Circuit::new(2);
            c.push(Gate::Clifford2(Clifford2Q::new(kind, 0, 1)));
            let u = circuit_unitary(&c);
            assert!(u.approx_eq(&kind.matrix4(), 1e-12), "{kind}");
        }
    }

    #[test]
    fn clifford2_lowering_is_exact_up_to_phase() {
        // The {1Q, CNOT} lowering must implement the same unitary.
        for kind in phoenix_pauli::CLIFFORD2Q_GENERATORS {
            let mut c = Circuit::new(2);
            c.push(Gate::Clifford2(Clifford2Q::new(kind, 0, 1)));
            let hi = circuit_unitary(&c);
            let lo = circuit_unitary(&c.lower_to_cnot());
            assert!(
                (hi.unitary_overlap(&lo) - 1.0).abs() < 1e-12,
                "{kind} lowering"
            );
        }
    }

    #[test]
    fn pauli_rot2_lowering_is_exact_up_to_phase() {
        for pa in Pauli::XYZ {
            for pb in Pauli::XYZ {
                let mut c = Circuit::new(2);
                c.push(Gate::PauliRot2 {
                    a: 0,
                    b: 1,
                    pa,
                    pb,
                    theta: 0.731,
                });
                let hi = circuit_unitary(&c);
                let lo = circuit_unitary(&c.lower_to_cnot());
                assert!(
                    (hi.unitary_overlap(&lo) - 1.0).abs() < 1e-12,
                    "rot {pa}{pb}"
                );
            }
        }
    }

    #[test]
    fn swap_lowering_is_exact() {
        let mut c = Circuit::new(2);
        c.push(Gate::Swap(0, 1));
        let hi = circuit_unitary(&c);
        let lo = circuit_unitary(&c.lower_to_cnot());
        assert!(hi.approx_eq(&lo, 1e-12));
    }

    #[test]
    fn gate_order_convention_2q_on_nonadjacent_qubits() {
        // CNOT(2, 0) inside a 3-qubit register: control qubit 2, target 0.
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot(2, 0));
        let s = State::basis(3, 0b100).evolved(&c);
        assert!((s.probability(0b101) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn su4_block_simulates_like_its_contents() {
        let inner = vec![Gate::H(1), Gate::Cnot(1, 2), Gate::Rz(2, 0.4)];
        let mut flat = Circuit::new(3);
        for g in &inner {
            flat.push(g.clone());
        }
        let mut fused = Circuit::new(3);
        fused.push(Gate::Su4(Box::new(phoenix_circuit::Su4Block {
            a: 1,
            b: 2,
            inner,
        })));
        let u1 = circuit_unitary(&flat);
        let u2 = circuit_unitary(&fused);
        assert!(u1.approx_eq(&u2, 1e-12));
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = State::basis(2, 0);
        let b = State::basis(2, 3);
        assert!(a.fidelity(&b) < 1e-15);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn circuit_unitaries_are_unitary() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::PauliRot2 {
            a: 0,
            b: 2,
            pa: Pauli::Y,
            pb: Pauli::X,
            theta: 1.1,
        });
        c.push(Gate::Cnot(1, 2));
        assert!(circuit_unitary(&c).is_unitary(1e-12));
    }
}
