//! Expectation values of Pauli observables — the measurement side of a VQE
//! workflow.

use crate::State;
use phoenix_mathkit::Complex;
use phoenix_pauli::PauliString;

/// `⟨ψ| P |ψ⟩` for a Pauli string (always real; the imaginary residue is
/// numerical noise and is discarded).
///
/// # Panics
///
/// Panics if the string's qubit count differs from the state's.
///
/// # Examples
///
/// ```
/// use phoenix_sim::{expectation, State};
/// use phoenix_pauli::PauliString;
///
/// let zero = State::zero(2);
/// let zz: PauliString = "ZZ".parse()?;
/// assert!((expectation(&zero, &zz) - 1.0).abs() < 1e-12);
/// # Ok::<(), phoenix_pauli::ParsePauliStringError>(())
/// ```
pub fn expectation(state: &State, p: &PauliString) -> f64 {
    assert_eq!(
        p.num_qubits(),
        state.num_qubits(),
        "observable arity mismatch"
    );
    let amps = state.amplitudes();
    let x = p.x_mask().low_u128() as usize;
    let z = p.z_mask().low_u128();
    let ycnt = p.x_mask().and_count(p.z_mask()) % 4;
    let ybase = [Complex::ONE, Complex::I, -Complex::ONE, -Complex::I][ycnt as usize];
    let mut acc = Complex::ZERO;
    for (b, &amp) in amps.iter().enumerate() {
        // ⟨ψ|P|ψ⟩ = Σ_b conj(ψ[b·⊕x... ]) — P|b⟩ = phase(b)|b⊕x⟩.
        let target = b ^ x;
        let phase = if ((b as u128) & z).count_ones() % 2 == 1 {
            -ybase
        } else {
            ybase
        };
        acc += amps[target].conj() * phase * amp;
    }
    acc.re
}

/// `⟨ψ| H |ψ⟩` for `H = Σ cⱼ Pⱼ` — the VQE energy of a prepared state.
///
/// # Panics
///
/// Panics if any term's qubit count differs from the state's.
pub fn energy(state: &State, terms: &[(PauliString, f64)]) -> f64 {
    terms.iter().map(|(p, c)| c * expectation(state, p)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_circuit::{Circuit, Gate};

    fn ps(l: &str) -> PauliString {
        l.parse().unwrap()
    }

    #[test]
    fn computational_basis_z_values() {
        let s = State::basis(3, 0b101);
        assert_eq!(expectation(&s, &ps("ZII")), -1.0);
        assert_eq!(expectation(&s, &ps("IZI")), 1.0);
        assert_eq!(expectation(&s, &ps("IIZ")), -1.0);
        assert_eq!(expectation(&s, &ps("ZIZ")), 1.0);
    }

    #[test]
    fn x_vanishes_on_basis_states() {
        let s = State::basis(2, 0b01);
        assert!(expectation(&s, &ps("XI")).abs() < 1e-15);
        assert!(expectation(&s, &ps("XX")).abs() < 1e-15);
    }

    #[test]
    fn plus_state_has_unit_x() {
        let mut c = Circuit::new(1);
        c.push(Gate::H(0));
        let s = State::zero(1).evolved(&c);
        assert!((expectation(&s, &ps("X")) - 1.0).abs() < 1e-12);
        assert!(expectation(&s, &ps("Z")).abs() < 1e-12);
    }

    #[test]
    fn bell_state_correlations() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot(0, 1));
        let s = State::zero(2).evolved(&c);
        for label in ["XX", "ZZ"] {
            assert!((expectation(&s, &ps(label)) - 1.0).abs() < 1e-12, "{label}");
        }
        assert!((expectation(&s, &ps("YY")) + 1.0).abs() < 1e-12);
        assert!(expectation(&s, &ps("ZI")).abs() < 1e-12);
    }

    #[test]
    fn energy_is_linear_in_terms() {
        let s = State::basis(2, 0b00);
        let h = vec![(ps("ZI"), 0.5), (ps("IZ"), -0.25), (ps("ZZ"), 2.0)];
        assert!((energy(&s, &h) - (0.5 - 0.25 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn expectation_matches_matrix_form() {
        let mut c = Circuit::new(2);
        c.push(Gate::Ry(0, 0.7));
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Rz(1, -0.4));
        let s = State::zero(2).evolved(&c);
        for label in ["XY", "ZX", "YZ", "II"] {
            let p = ps(label);
            let m = p.to_matrix();
            let v = s.amplitudes();
            let mv = m.matvec(v);
            let want: Complex = v.iter().zip(&mv).map(|(a, b)| a.conj() * *b).sum();
            assert!((expectation(&s, &p) - want.re).abs() < 1e-12, "{label}");
        }
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = expectation(&State::zero(2), &ps("XXX"));
    }
}
