//! Stabilizer-vs-statevector cross-check.
//!
//! The two simulators are independent implementations of Clifford
//! semantics (binary symplectic tableau vs dense 2ⁿ amplitudes). On random
//! Clifford circuits at `n ≤ 8` they must agree on every Pauli
//! expectation, and `conjugate_pauli` must match dense conjugation
//! `U P U†`. This agreement is what lets translation validation trust the
//! tableau at 65 qubits, where the statevector cannot follow.

use phoenix_circuit::{Circuit, Gate};
use phoenix_mathkit::Xoshiro256;
use phoenix_pauli::{Pauli, PauliString};
use phoenix_sim::{circuit_unitary, conjugate_pauli, StabilizerState, State};

fn random_clifford(n: usize, gates: usize, rng: &mut Xoshiro256) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let a = rng.next_below(n);
        let b = (a + 1 + rng.next_below(n - 1)) % n;
        match rng.next_below(8) {
            0 => c.push(Gate::H(a)),
            1 => c.push(Gate::S(a)),
            2 => c.push(Gate::Sdg(a)),
            3 => c.push(Gate::X(a)),
            4 => c.push(Gate::Y(a)),
            5 => c.push(Gate::Z(a)),
            6 => c.push(Gate::Cnot(a, b)),
            _ => c.push(Gate::Swap(a, b)),
        }
    }
    c
}

fn random_pauli(n: usize, rng: &mut Xoshiro256) -> PauliString {
    let mut p = PauliString::identity(n);
    for q in 0..n {
        p.set(
            q,
            [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z][rng.next_below(4)],
        );
    }
    p
}

#[test]
fn expectations_agree_with_the_statevector() {
    let mut rng = Xoshiro256::seed_from_u64(0x7ab1e);
    for n in 2..=8 {
        for trial in 0..4 {
            let c = random_clifford(n, 12 * n, &mut rng);
            let tableau = StabilizerState::zero(n).evolved(&c).expect("clifford");
            let dense = State::zero(n).evolved(&c);
            for _ in 0..16 {
                let obs = random_pauli(n, &mut rng);
                let from_tableau = tableau.expectation(&obs);
                let from_dense = phoenix_sim::expectation(&dense, &obs);
                assert!(
                    (from_tableau - from_dense).abs() < 1e-9,
                    "n={n} trial={trial} obs={obs}: tableau {from_tableau} vs dense {from_dense}"
                );
            }
        }
    }
}

#[test]
fn conjugate_pauli_matches_dense_conjugation() {
    let mut rng = Xoshiro256::seed_from_u64(0xc0de);
    for n in 2..=5 {
        for _ in 0..6 {
            let c = random_clifford(n, 10 * n, &mut rng);
            let u = circuit_unitary(&c);
            let p = random_pauli(n, &mut rng);
            let (q, sign) = conjugate_pauli(&c, &p, 1).expect("clifford");

            // Dense check: U · P · U† == sign · Q.
            let lhs = u.matmul(&p.to_matrix()).matmul(&u.dagger());
            let rhs = q
                .to_matrix()
                .scale(phoenix_mathkit::Complex::from_re(sign as f64));
            assert!(
                lhs.approx_eq(&rhs, 1e-9),
                "n={n} P={p}: U P U† does not equal {sign}·{q}"
            );
        }
    }
}

#[test]
fn from_generators_reconstructs_evolved_stabilizers() {
    // Seeding a tableau with the conjugated generators of |0…0⟩ must give
    // the same state as evolving |0…0⟩ directly.
    let mut rng = Xoshiro256::seed_from_u64(0x9e9e);
    for n in [3usize, 6, 8] {
        let c = random_clifford(n, 15 * n, &mut rng);
        let direct = StabilizerState::zero(n).evolved(&c).expect("clifford");
        let gens: Vec<(PauliString, i8)> = (0..n)
            .map(|q| {
                let mut z = PauliString::identity(n);
                z.set(q, Pauli::Z);
                conjugate_pauli(&c, &z, 1).expect("clifford")
            })
            .collect();
        let rebuilt = StabilizerState::from_generators(n, gens);
        for _ in 0..24 {
            let obs = random_pauli(n, &mut rng);
            assert_eq!(
                direct.expectation(&obs),
                rebuilt.expectation(&obs),
                "n={n} obs={obs}"
            );
        }
    }
}
