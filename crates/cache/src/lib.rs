//! Content-addressed parametric compilation cache for the PHOENIX compiler.
//!
//! PHOENIX's expensive work — grouping, BSF simplification, Clifford search,
//! Tetris ordering, routing — depends only on the *structure* of a Pauli
//! program (which strings appear, in which order), never on the rotation
//! angles. A VQE outer loop recompiles the same ansatz thousands of times
//! with nothing but the angles changed. This crate makes the second and
//! every subsequent compile nearly free:
//!
//! 1. The structure phase runs the unmodified pipeline with each term's
//!    coefficient replaced by a **slot encoding** `(slot + 1) as f64`. Every
//!    angle the synthesizer emits is then `±2·(slot+1)` — exactly decodable,
//!    because small-integer arithmetic, negation and doubling are exact in
//!    IEEE-754. The decoded circuit-position → (slot, sign) map is a
//!    [`StructureArtifact`].
//! 2. The angle phase ([`StructureArtifact::bind`]) clones the skeleton's
//!    gate list and patches `θ = 2·fold_conjugation_sign(angle[slot], sign)`
//!    into each recorded position — the *same* float operations the cold
//!    pipeline would have performed, so warm and cold outputs are
//!    bit-for-bit identical.
//!
//! Artifacts are keyed by the Zobrist digest of the angle-erased canonical
//! IR ([`phoenix_pauli::CanonicalIr`]) plus an options fingerprint, behind
//! the concurrent [`CompileCache`] at two granularities: whole-program
//! [`StructureArtifact`]s and per-group [`GroupArtifact`]s (the latter keyed
//! only by the group's own terms, so they are shared across programs that
//! contain the same group).

use phoenix_circuit::{Circuit, Gate};
use phoenix_pauli::{fold_conjugation_sign, CanonicalIr, PauliString};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Largest slot payload that is exactly representable through the pipeline's
/// float arithmetic (integer magnitudes up to 2^52 survive `×2`, negation
/// and addition-free routing untouched).
const MAX_SLOT_MAGNITUDE: f64 = (1u64 << 52) as f64;

/// Encode a parameter slot index as a structure-phase coefficient.
///
/// The structure phase compiles the program with `coeff = encode_slot(i)` in
/// place of the `i`-th real coefficient; [`decode_coeff`] inverts this after
/// sign folding.
#[inline]
pub fn encode_slot(slot: usize) -> f64 {
    (slot + 1) as f64
}

/// Decode a (possibly sign-folded) slot-encoded coefficient back to
/// `(slot, sign)`. Returns `None` if the value is not `±(k+1)` for an
/// integer `k` — i.e. the pipeline did something other than flip signs,
/// which would make the skeleton unsafe to rebind.
#[inline]
pub fn decode_coeff(coeff: f64) -> Option<(usize, i8)> {
    if !coeff.is_finite() {
        return None;
    }
    let sign: i8 = if coeff < 0.0 { -1 } else { 1 };
    let mag = coeff.abs();
    if !(1.0..=MAX_SLOT_MAGNITUDE).contains(&mag) || mag.fract() != 0.0 {
        return None;
    }
    Some((mag as usize - 1, sign))
}

/// Decode a slot-encoded rotation angle `θ = 2·(±(slot+1))` back to
/// `(slot, sign)`.
#[inline]
pub fn decode_slot(theta: f64) -> Option<(usize, i8)> {
    decode_coeff(theta / 2.0)
}

/// A structure-phase skeleton failed to decode: some emitted angle is not a
/// recognizable slot encoding, so the circuit cannot be safely rebound.
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// A theta-bearing gate carries an angle that is not `±2(k+1)`.
    UnencodedTheta {
        /// Index of the offending gate in the skeleton.
        gate_index: usize,
        /// The angle that failed to decode.
        theta: f64,
    },
    /// A decoded slot index exceeds the number of parameters.
    SlotOutOfRange {
        /// Index of the offending gate in the skeleton.
        gate_index: usize,
        /// The decoded slot.
        slot: usize,
        /// Number of parameter slots in the program.
        num_slots: usize,
    },
    /// The skeleton contains a gate whose angles are baked into an opaque
    /// payload (e.g. a fused SU(4) matrix) and cannot be rebound.
    OpaqueGate {
        /// Index of the offending gate in the skeleton.
        gate_index: usize,
    },
    /// An ordered term's coefficient is not a recognizable slot encoding.
    UnencodedCoeff {
        /// Index of the offending term in the emission order.
        term_index: usize,
        /// The coefficient that failed to decode.
        coeff: f64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnencodedTheta { gate_index, theta } => write!(
                f,
                "gate {gate_index}: angle {theta} is not a slot encoding ±2(k+1)"
            ),
            DecodeError::SlotOutOfRange { gate_index, slot, num_slots } => write!(
                f,
                "gate {gate_index}: decoded slot {slot} out of range (program has {num_slots} slots)"
            ),
            DecodeError::OpaqueGate { gate_index } => write!(
                f,
                "gate {gate_index}: opaque angle payload (SU(4) block) cannot be rebound"
            ),
            DecodeError::UnencodedCoeff { term_index, coeff } => write!(
                f,
                "ordered term {term_index}: coefficient {coeff} is not a slot encoding ±(k+1)"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Binding concrete angles into a cached skeleton failed.
#[derive(Debug, Clone, PartialEq)]
pub enum BindError {
    /// The angle vector length does not match the artifact's slot count.
    AngleCount {
        /// Number of parameter slots the artifact expects.
        expected: usize,
        /// Number of angles supplied.
        got: usize,
    },
    /// An angle is NaN or infinite.
    NonFiniteAngle {
        /// Slot of the offending angle.
        slot: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::AngleCount { expected, got } => {
                write!(f, "expected {expected} angles, got {got}")
            }
            BindError::NonFiniteAngle { slot, value } => {
                write!(f, "angle for slot {slot} is not finite ({value})")
            }
        }
    }
}

impl std::error::Error for BindError {}

/// Scan a slot-encoded circuit and record, for every theta-bearing gate,
/// `(gate_index, slot, sign)`.
fn decode_bindings(
    gates: &[Gate],
    num_slots: usize,
) -> Result<Vec<(usize, usize, i8)>, DecodeError> {
    let mut bindings = Vec::new();
    for (gate_index, gate) in gates.iter().enumerate() {
        let theta = match gate {
            Gate::Rx(_, t) | Gate::Ry(_, t) | Gate::Rz(_, t) => *t,
            Gate::PauliRot2 { theta, .. } => *theta,
            Gate::Su4(_) => return Err(DecodeError::OpaqueGate { gate_index }),
            _ => continue,
        };
        let (slot, sign) =
            decode_slot(theta).ok_or(DecodeError::UnencodedTheta { gate_index, theta })?;
        if slot >= num_slots {
            return Err(DecodeError::SlotOutOfRange {
                gate_index,
                slot,
                num_slots,
            });
        }
        bindings.push((gate_index, slot, sign));
    }
    Ok(bindings)
}

/// Decode a slot-encoded ordered term list into `(string, slot, sign)`.
fn decode_term_slots(
    terms: &[(PauliString, f64)],
    num_slots: usize,
) -> Result<Vec<(PauliString, usize, i8)>, DecodeError> {
    terms
        .iter()
        .enumerate()
        .map(|(term_index, (p, coeff))| {
            let (slot, sign) = decode_coeff(*coeff).ok_or(DecodeError::UnencodedCoeff {
                term_index,
                coeff: *coeff,
            })?;
            if slot >= num_slots {
                return Err(DecodeError::UnencodedCoeff {
                    term_index,
                    coeff: *coeff,
                });
            }
            Ok((p.clone(), slot, sign))
        })
        .collect()
}

/// Patch concrete thetas into a cloned gate list, in place.
fn patch_gates(gates: &mut [Gate], bindings: &[(usize, usize, i8)], angles: &[f64]) {
    for &(gate_index, slot, sign) in bindings {
        let theta = 2.0 * fold_conjugation_sign(angles[slot], sign);
        match &mut gates[gate_index] {
            Gate::Rx(_, t) | Gate::Ry(_, t) | Gate::Rz(_, t) => *t = theta,
            Gate::PauliRot2 { theta: t, .. } => *t = theta,
            // decode_bindings only records theta-bearing gates.
            _ => debug_assert!(false, "binding points at a parameterless gate"),
        }
    }
}

fn check_angles(angles: &[f64], expected: usize) -> Result<(), BindError> {
    if angles.len() != expected {
        return Err(BindError::AngleCount {
            expected,
            got: angles.len(),
        });
    }
    if let Some(slot) = angles.iter().position(|a| !a.is_finite()) {
        return Err(BindError::NonFiniteAngle {
            slot,
            value: angles[slot],
        });
    }
    Ok(())
}

/// The output of binding angles into a whole-program [`StructureArtifact`]:
/// everything the legacy pipeline would have produced for the same program.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundProgram {
    /// The synthesized circuit with concrete angles.
    pub circuit: Circuit,
    /// Emission order with concrete (sign-folded) coefficients.
    pub term_order: Vec<(PauliString, f64)>,
    /// Number of commuting groups the program was partitioned into.
    pub num_groups: usize,
}

/// The angle-independent result of a whole-program structure compile: a
/// slot-encoded skeleton circuit plus the decoded rebinding map.
#[derive(Debug, Clone)]
pub struct StructureArtifact {
    num_qubits: usize,
    num_slots: usize,
    num_groups: usize,
    skeleton: Circuit,
    bindings: Vec<(usize, usize, i8)>,
    term_slots: Vec<(PauliString, usize, i8)>,
    digest: u64,
}

impl StructureArtifact {
    /// Decode a slot-encoded structure compile into a rebindable artifact.
    ///
    /// `skeleton` and `term_order` must come from a pipeline run where the
    /// `i`-th input term's coefficient was [`encode_slot`]`(i)`; `num_slots`
    /// is the number of input terms (= expected angle-vector length) and
    /// `digest` the Zobrist digest of the canonical IR the artifact is
    /// keyed by.
    pub fn from_slot_encoded(
        num_qubits: usize,
        num_slots: usize,
        num_groups: usize,
        skeleton: Circuit,
        term_order: &[(PauliString, f64)],
        digest: u64,
    ) -> Result<Self, DecodeError> {
        let bindings = decode_bindings(skeleton.gates(), num_slots)?;
        let term_slots = decode_term_slots(term_order, num_slots)?;
        Ok(StructureArtifact {
            num_qubits,
            num_slots,
            num_groups,
            skeleton,
            bindings,
            term_slots,
            digest,
        })
    }

    /// Number of qubits of the skeleton circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of parameter slots (= length of the angle vector `bind` expects).
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Number of commuting groups in the structure.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// Number of theta-bearing gate positions that get patched per bind.
    pub fn num_bindings(&self) -> usize {
        self.bindings.len()
    }

    /// Zobrist digest of the canonical IR this artifact was compiled from.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The slot-encoded skeleton circuit.
    pub fn skeleton(&self) -> &Circuit {
        &self.skeleton
    }

    /// Substitute concrete angles into the skeleton.
    ///
    /// This performs exactly the float operations the cold pipeline would
    /// have performed on the same program (`θ = 2·(±angle)`), so the result
    /// is bit-for-bit identical to a from-scratch compile.
    pub fn bind(&self, angles: &[f64]) -> Result<BoundProgram, BindError> {
        check_angles(angles, self.num_slots)?;
        let mut gates = self.skeleton.gates().to_vec();
        patch_gates(&mut gates, &self.bindings, angles);
        let circuit = Circuit::from_gates(self.num_qubits, gates);
        let term_order = self
            .term_slots
            .iter()
            .map(|(p, slot, sign)| (p.clone(), fold_conjugation_sign(angles[*slot], *sign)))
            .collect();
        Ok(BoundProgram {
            circuit,
            term_order,
            num_groups: self.num_groups,
        })
    }
}

/// The angle-independent synthesis of a single commuting group, slot-encoded
/// against the group's *local* term indices so it can be reused by any
/// program containing the same group, whatever the coefficients.
#[derive(Debug, Clone)]
pub struct GroupArtifact {
    num_qubits: usize,
    /// The group's input terms, in order; local slot `i` is `terms[i]`.
    terms: Vec<PauliString>,
    skeleton: Circuit,
    bindings: Vec<(usize, usize, i8)>,
    term_slots: Vec<(PauliString, usize, i8)>,
}

impl GroupArtifact {
    /// Decode a group compiled with local slot encoding (`coeff[i] =`
    /// [`encode_slot`]`(i)` over the group's own terms).
    pub fn from_slot_encoded(
        num_qubits: usize,
        terms: Vec<PauliString>,
        skeleton: Circuit,
        term_order: &[(PauliString, f64)],
    ) -> Result<Self, DecodeError> {
        let num_slots = terms.len();
        let bindings = decode_bindings(skeleton.gates(), num_slots)?;
        let term_slots = decode_term_slots(term_order, num_slots)?;
        Ok(GroupArtifact {
            num_qubits,
            terms,
            skeleton,
            bindings,
            term_slots,
        })
    }

    /// The group's input terms in local-slot order.
    pub fn terms(&self) -> &[PauliString] {
        &self.terms
    }

    /// Number of qubits of the group subcircuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Substitute the group's concrete coefficients (one per input term, in
    /// the same order as [`GroupArtifact::terms`]). Returns the bound
    /// subcircuit and the emission-ordered terms with folded coefficients.
    pub fn bind(&self, coeffs: &[f64]) -> Result<(Circuit, Vec<(PauliString, f64)>), BindError> {
        check_angles(coeffs, self.terms.len())?;
        let mut gates = self.skeleton.gates().to_vec();
        patch_gates(&mut gates, &self.bindings, coeffs);
        let circuit = Circuit::from_gates(self.num_qubits, gates);
        let term_order = self
            .term_slots
            .iter()
            .map(|(p, slot, sign)| (p.clone(), fold_conjugation_sign(coeffs[*slot], *sign)))
            .collect();
        Ok((circuit, term_order))
    }
}

/// Cache key for whole-program artifacts: the Zobrist-canonicalized IR plus
/// a fingerprint of every compiler option that can change the structure
/// output (lookahead, simplification/ordering toggles, routing awareness).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProgramKey {
    ir: CanonicalIr,
    fingerprint: u64,
}

impl ProgramKey {
    /// Build a key from the canonical IR and an options fingerprint.
    pub fn new(ir: CanonicalIr, fingerprint: u64) -> Self {
        ProgramKey { ir, fingerprint }
    }

    /// The canonical IR this key wraps.
    pub fn ir(&self) -> &CanonicalIr {
        &self.ir
    }
}

/// A point-in-time snapshot of [`CompileCache`] hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Whole-program artifact lookups that hit.
    pub program_hits: u64,
    /// Whole-program artifact lookups that missed.
    pub program_misses: u64,
    /// Per-group artifact lookups that hit.
    pub group_hits: u64,
    /// Per-group artifact lookups that missed.
    pub group_misses: u64,
    /// Artifacts (programs + groups) evicted to honor a capacity bound.
    /// Always 0 for an unbounded cache.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of whole-program lookups that hit (0.0 when none occurred).
    pub fn program_hit_rate(&self) -> f64 {
        let total = self.program_hits + self.program_misses;
        if total == 0 {
            0.0
        } else {
            self.program_hits as f64 / total as f64
        }
    }

    /// Fraction of per-group lookups that hit (0.0 when none occurred).
    pub fn group_hit_rate(&self) -> f64 {
        let total = self.group_hits + self.group_misses;
        if total == 0 {
            0.0
        } else {
            self.group_hits as f64 / total as f64
        }
    }
}

/// A cached artifact stamped with the logical time of its last use, so a
/// bounded cache can evict coarsely least-recently-used entries without
/// taking a write lock on the hot lookup path.
#[derive(Debug)]
struct Stamped<T> {
    value: Arc<T>,
    last_used: AtomicU64,
}

impl<T> Stamped<T> {
    fn new(value: Arc<T>, tick: u64) -> Self {
        Stamped {
            value,
            last_used: AtomicU64::new(tick),
        }
    }
}

/// Evict the stalest entry from `map` while it exceeds `cap`. Called with
/// the write lock held, right after an insert.
fn evict_over_capacity<K: Clone + std::hash::Hash + Eq, V>(
    map: &mut HashMap<K, Stamped<V>>,
    cap: usize,
    evictions: &AtomicU64,
) {
    while map.len() > cap {
        let stalest = map
            .iter()
            .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
            .map(|(k, _)| k.clone());
        match stalest {
            Some(k) => {
                map.remove(&k);
                evictions.fetch_add(1, Ordering::Relaxed);
            }
            None => break,
        }
    }
}

/// A concurrent, content-addressed cache of structure-phase results.
///
/// Shared across threads behind an `Arc`; lookups take a read lock, inserts
/// a write lock, and hit/miss counters are lock-free atomics.
///
/// [`CompileCache::new`] is unbounded — right for a VQE sweep over one
/// ansatz. A long-lived server should use [`CompileCache::with_capacity`]
/// instead: each map (programs, groups) is bounded to `max_entries`
/// artifacts, and inserts over capacity evict the coarsely
/// least-recently-used entry (lookups stamp entries with a logical clock
/// under the read lock; eviction scans for the minimum stamp under the
/// write lock — O(n), fine at the few-hundred-entry capacities a server
/// uses). Evictions are counted in [`CacheStats::evictions`].
///
/// ```
/// use phoenix_cache::CompileCache;
/// use std::sync::Arc;
///
/// let cache = Arc::new(CompileCache::new());
/// assert_eq!(cache.stats().program_hits, 0);
/// assert_eq!(CompileCache::with_capacity(256).max_entries(), Some(256));
/// ```
#[derive(Debug, Default)]
pub struct CompileCache {
    programs: RwLock<HashMap<ProgramKey, Stamped<StructureArtifact>>>,
    groups: RwLock<HashMap<CanonicalIr, Stamped<GroupArtifact>>>,
    /// Per-map capacity bound; `None` = unbounded.
    max_entries: Option<usize>,
    /// Logical clock: bumped on every lookup/insert, stamped into entries.
    clock: AtomicU64,
    program_hits: AtomicU64,
    program_misses: AtomicU64,
    group_hits: AtomicU64,
    group_misses: AtomicU64,
    evictions: AtomicU64,
}

impl CompileCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        CompileCache::default()
    }

    /// An empty cache bounded to `max_entries` artifacts per map (programs
    /// and groups each). A capacity of 0 is clamped to 1 — an always-empty
    /// cache would silently disable caching; callers who want that should
    /// simply not attach one.
    pub fn with_capacity(max_entries: usize) -> Self {
        CompileCache {
            max_entries: Some(max_entries.max(1)),
            ..CompileCache::default()
        }
    }

    /// The per-map capacity bound, or `None` when unbounded.
    pub fn max_entries(&self) -> Option<usize> {
        self.max_entries
    }

    /// Advance and read the logical clock.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Look up a whole-program artifact, recording a hit or miss.
    pub fn get_program(&self, key: &ProgramKey) -> Option<Arc<StructureArtifact>> {
        let programs = self.programs.read().unwrap_or_else(|e| e.into_inner());
        match programs.get(key) {
            Some(entry) => {
                entry.last_used.store(self.tick(), Ordering::Relaxed);
                self.program_hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.program_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a whole-program artifact. First writer wins on a racing key:
    /// both racers produced identical artifacts (the pipeline is
    /// deterministic), so keeping the incumbent preserves sharing. On a
    /// bounded cache, inserting over capacity evicts the stalest entry.
    pub fn insert_program(
        &self,
        key: ProgramKey,
        artifact: Arc<StructureArtifact>,
    ) -> Arc<StructureArtifact> {
        let tick = self.tick();
        let mut programs = self.programs.write().unwrap_or_else(|e| e.into_inner());
        let kept = Arc::clone(
            &programs
                .entry(key)
                .or_insert_with(|| Stamped::new(artifact, tick))
                .value,
        );
        if let Some(cap) = self.max_entries {
            evict_over_capacity(&mut programs, cap, &self.evictions);
        }
        kept
    }

    /// Look up a per-group artifact, recording a hit or miss.
    pub fn get_group(&self, key: &CanonicalIr) -> Option<Arc<GroupArtifact>> {
        let groups = self.groups.read().unwrap_or_else(|e| e.into_inner());
        match groups.get(key) {
            Some(entry) => {
                entry.last_used.store(self.tick(), Ordering::Relaxed);
                self.group_hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.group_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a per-group artifact (first writer wins and capacity is
    /// enforced, as for programs).
    pub fn insert_group(
        &self,
        key: CanonicalIr,
        artifact: Arc<GroupArtifact>,
    ) -> Arc<GroupArtifact> {
        let tick = self.tick();
        let mut groups = self.groups.write().unwrap_or_else(|e| e.into_inner());
        let kept = Arc::clone(
            &groups
                .entry(key)
                .or_insert_with(|| Stamped::new(artifact, tick))
                .value,
        );
        if let Some(cap) = self.max_entries {
            evict_over_capacity(&mut groups, cap, &self.evictions);
        }
        kept
    }

    /// Number of cached whole-program artifacts.
    pub fn num_programs(&self) -> usize {
        self.programs
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Number of cached per-group artifacts.
    pub fn num_groups(&self) -> usize {
        self.groups.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Snapshot the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            program_hits: self.program_hits.load(Ordering::Relaxed),
            program_misses: self.program_misses.load(Ordering::Relaxed),
            group_hits: self.group_hits.load(Ordering::Relaxed),
            group_misses: self.group_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drop all cached artifacts and reset the counters.
    pub fn clear(&self) {
        self.programs
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.groups
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.program_hits.store(0, Ordering::Relaxed);
        self.program_misses.store(0, Ordering::Relaxed);
        self.group_hits.store(0, Ordering::Relaxed);
        self.group_misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrip_is_exact() {
        for slot in [0usize, 1, 2, 41, 999, 1_000_000] {
            let coeff = encode_slot(slot);
            assert_eq!(decode_coeff(coeff), Some((slot, 1)));
            assert_eq!(decode_coeff(-coeff), Some((slot, -1)));
            assert_eq!(decode_slot(2.0 * coeff), Some((slot, 1)));
            assert_eq!(decode_slot(-2.0 * coeff), Some((slot, -1)));
        }
    }

    #[test]
    fn decode_rejects_non_encodings() {
        assert_eq!(decode_coeff(0.0), None);
        assert_eq!(decode_coeff(0.5), None);
        assert_eq!(decode_coeff(1.5), None);
        assert_eq!(decode_coeff(f64::NAN), None);
        assert_eq!(decode_coeff(f64::INFINITY), None);
        assert_eq!(decode_coeff(1e300), None);
    }

    fn slot_encoded_skeleton() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Rz(0, 2.0 * encode_slot(0)));
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Rx(1, -2.0 * encode_slot(1)));
        c
    }

    #[test]
    fn structure_artifact_binds_angles_into_recorded_positions() {
        let skeleton = slot_encoded_skeleton();
        let order = vec![
            ("ZI".parse::<PauliString>().unwrap(), encode_slot(0)),
            ("IX".parse::<PauliString>().unwrap(), -encode_slot(1)),
        ];
        let art = StructureArtifact::from_slot_encoded(2, 2, 1, skeleton, &order, 0xfeed).unwrap();
        assert_eq!(art.num_bindings(), 2);

        let bound = art.bind(&[0.125, 0.75]).unwrap();
        assert_eq!(bound.circuit.gates()[1], Gate::Rz(0, 0.25));
        assert_eq!(bound.circuit.gates()[3], Gate::Rx(1, -1.5));
        assert_eq!(bound.term_order[0].1, 0.125);
        assert_eq!(bound.term_order[1].1, -0.75);
        assert_eq!(bound.num_groups, 1);
    }

    #[test]
    fn bind_validates_the_angle_vector() {
        let art =
            StructureArtifact::from_slot_encoded(2, 2, 1, slot_encoded_skeleton(), &[], 0).unwrap();
        assert_eq!(
            art.bind(&[0.1]),
            Err(BindError::AngleCount {
                expected: 2,
                got: 1
            })
        );
        assert!(matches!(
            art.bind(&[0.1, f64::NAN]),
            Err(BindError::NonFiniteAngle { slot: 1, .. })
        ));
    }

    #[test]
    fn undecodable_skeletons_are_rejected() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, 0.7));
        let err = StructureArtifact::from_slot_encoded(1, 1, 1, c, &[], 0).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::UnencodedTheta { gate_index: 0, .. }
        ));

        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, 2.0 * encode_slot(5)));
        let err = StructureArtifact::from_slot_encoded(1, 2, 1, c, &[], 0).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::SlotOutOfRange {
                slot: 5,
                num_slots: 2,
                ..
            }
        ));
    }

    #[test]
    fn group_artifact_rebinds_local_slots() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(0, 2.0 * encode_slot(0)));
        c.push(Gate::Rz(1, -2.0 * encode_slot(1)));
        let terms = vec![
            "ZI".parse::<PauliString>().unwrap(),
            "IZ".parse::<PauliString>().unwrap(),
        ];
        let order = vec![
            (terms[0].clone(), encode_slot(0)),
            (terms[1].clone(), -encode_slot(1)),
        ];
        let art = GroupArtifact::from_slot_encoded(2, terms, c, &order).unwrap();
        let (circuit, order) = art.bind(&[0.25, 0.5]).unwrap();
        assert_eq!(circuit.gates()[0], Gate::Rz(0, 0.5));
        assert_eq!(circuit.gates()[1], Gate::Rz(1, -1.0));
        assert_eq!(order[1], ("IZ".parse().unwrap(), -0.5));
    }

    #[test]
    fn cache_counts_hits_and_misses_per_granularity() {
        let cache = CompileCache::new();
        let ir = CanonicalIr::from_terms(2, &[("ZZ".parse().unwrap(), 1.0)]);
        let key = ProgramKey::new(ir.clone(), 42);

        assert!(cache.get_program(&key).is_none());
        let art = Arc::new(
            StructureArtifact::from_slot_encoded(2, 0, 0, Circuit::new(2), &[], ir.digest())
                .unwrap(),
        );
        cache.insert_program(key.clone(), Arc::clone(&art));
        assert!(cache.get_program(&key).is_some());
        assert!(cache.get_group(&ir).is_none());

        let stats = cache.stats();
        assert_eq!(stats.program_hits, 1);
        assert_eq!(stats.program_misses, 1);
        assert_eq!(stats.group_misses, 1);
        assert!((stats.program_hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.num_programs(), 1);

        cache.clear();
        assert_eq!(cache.num_programs(), 0);
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn racing_inserts_keep_the_incumbent() {
        let cache = CompileCache::new();
        let ir = CanonicalIr::from_terms(1, &[("Z".parse().unwrap(), 1.0)]);
        let key = ProgramKey::new(ir, 0);
        let a = Arc::new(
            StructureArtifact::from_slot_encoded(1, 0, 0, Circuit::new(1), &[], 1).unwrap(),
        );
        let b = Arc::new(
            StructureArtifact::from_slot_encoded(1, 0, 0, Circuit::new(1), &[], 2).unwrap(),
        );
        let first = cache.insert_program(key.clone(), a);
        let second = cache.insert_program(key, b);
        assert_eq!(first.digest(), 1);
        assert_eq!(second.digest(), 1);
    }

    fn empty_program_artifact() -> Arc<StructureArtifact> {
        Arc::new(StructureArtifact::from_slot_encoded(1, 0, 0, Circuit::new(1), &[], 0).unwrap())
    }

    fn program_key(fingerprint: u64) -> ProgramKey {
        let ir = CanonicalIr::from_terms(1, &[("Z".parse().unwrap(), 1.0)]);
        ProgramKey::new(ir, fingerprint)
    }

    #[test]
    fn bounded_cache_evicts_the_stalest_program() {
        let cache = CompileCache::with_capacity(2);
        cache.insert_program(program_key(0), empty_program_artifact());
        cache.insert_program(program_key(1), empty_program_artifact());
        // Touch key 0 so key 1 becomes the stalest entry.
        assert!(cache.get_program(&program_key(0)).is_some());
        cache.insert_program(program_key(2), empty_program_artifact());
        assert_eq!(cache.num_programs(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get_program(&program_key(0)).is_some());
        assert!(cache.get_program(&program_key(1)).is_none());
        assert!(cache.get_program(&program_key(2)).is_some());
    }

    #[test]
    fn bounded_cache_evicts_stale_groups_too() {
        let cache = CompileCache::with_capacity(1);
        let ir = |label: &str| CanonicalIr::from_terms(1, &[(label.parse().unwrap(), 1.0)]);
        let art = |label: &str| {
            let terms = vec![label.parse::<PauliString>().unwrap()];
            let order = vec![(terms[0].clone(), encode_slot(0))];
            let mut c = Circuit::new(1);
            c.push(Gate::Rz(0, 2.0 * encode_slot(0)));
            Arc::new(GroupArtifact::from_slot_encoded(1, terms, c, &order).unwrap())
        };
        cache.insert_group(ir("Z"), art("Z"));
        cache.insert_group(ir("X"), art("X"));
        assert_eq!(cache.num_groups(), 1);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get_group(&ir("Z")).is_none());
        assert!(cache.get_group(&ir("X")).is_some());
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = CompileCache::new();
        assert_eq!(cache.max_entries(), None);
        for fp in 0..64 {
            cache.insert_program(program_key(fp), empty_program_artifact());
        }
        assert_eq!(cache.num_programs(), 64);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let cache = CompileCache::with_capacity(0);
        assert_eq!(cache.max_entries(), Some(1));
        cache.insert_program(program_key(0), empty_program_artifact());
        assert_eq!(cache.num_programs(), 1);
        // Reinserting the same key is not an eviction.
        cache.insert_program(program_key(0), empty_program_artifact());
        assert_eq!(cache.stats().evictions, 0);
    }
}
