//! Quantum circuit IR and circuit-level analyses for the PHOENIX compiler.
//!
//! This crate is the gate-level substrate of the reproduction. It provides:
//!
//! - [`Gate`] / [`Circuit`]: a compact circuit IR whose vocabulary spans both
//!   the high-level objects PHOENIX manipulates (2Q Clifford generators,
//!   ≤2-qubit Pauli rotations, fused SU(4) blocks) and the basic gates of the
//!   CNOT ISA;
//! - [`Circuit::lower_to_cnot`]: structural synthesis into `{1Q, CNOT}`;
//! - [`rebase::to_su4`]: rebase into the SU(4) ISA by fusing maximal
//!   same-pair runs of 2Q gates (the "continuous ISA" of the paper's §V-D);
//! - [`peephole::optimize`]: a fixed-point gate-cancellation pass (adjacent
//!   and commuting CNOT cancellation, 1Q rotation merging) standing in for
//!   the Qiskit O2/O3 passes used in the paper's harness;
//! - [`layers`]: 2Q-depth, greedy 2Q layering, and the *endian vectors*
//!   `e_l`/`e_r` of Fig. 3 that drive Tetris-like ordering;
//! - [`interaction`]: qubit-interaction graphs, head/tail subgraphs, distance
//!   matrices, and the cosine similarity factor of Eq. (7).
//!
//! # Examples
//!
//! ```
//! use phoenix_circuit::{Circuit, Gate};
//!
//! let mut c = Circuit::new(3);
//! c.push(Gate::H(0));
//! c.push(Gate::Cnot(0, 1));
//! c.push(Gate::Cnot(1, 2));
//! assert_eq!(c.depth_2q(), 2);
//! assert_eq!(c.counts().cnot, 2);
//! ```

mod circuit;
pub mod draw;
mod gate;
pub mod interaction;
pub mod kak;
pub mod layers;
pub mod peephole;
pub mod qasm;
pub mod rebase;
pub mod synthesis;
pub mod transform;
pub mod weyl;

pub use circuit::{Circuit, GateCounts};
pub use gate::{Gate, Su4Block};
pub use layers::EndianVectors;
pub use transform::CircuitTransform;
