//! Greedy 2Q layering and the endian vectors of Fig. 3.
//!
//! The paper abstracts each subcircuit into a Tetris-block-like shape through
//! a pair of *endian vectors*: entry `i` of `e_l` (`e_r`) is how many 2Q
//! layers one traverses from the left (right) end before qubit `i` is first
//! acted upon. Layers group neighbouring 2Q gates acting on disjoint qubits.

use crate::Circuit;

/// The endian vectors and 2Q layer count of a circuit.
///
/// Untouched qubits get the full layer count in both vectors (the whole
/// circuit is traversed without meeting them).
///
/// # Examples
///
/// ```
/// use phoenix_circuit::{layers::endian_vectors, Circuit, Gate};
///
/// let mut c = Circuit::new(3);
/// c.push(Gate::Cnot(0, 1));
/// c.push(Gate::Cnot(1, 2));
/// let ev = endian_vectors(&c);
/// assert_eq!(ev.e_l, vec![0, 0, 1]);
/// assert_eq!(ev.e_r, vec![1, 0, 0]);
/// assert_eq!(ev.num_layers, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndianVectors {
    /// Layers to traverse from the left before each qubit is acted on.
    pub e_l: Vec<usize>,
    /// Layers to traverse from the right before each qubit is acted on.
    pub e_r: Vec<usize>,
    /// Total number of 2Q layers.
    pub num_layers: usize,
}

/// Greedy left-to-right 2Q layer assignment. Returns `(num_layers,
/// first_touch)` where `first_touch[q]` is the 0-based layer of the first 2Q
/// gate on `q`, or `usize::MAX` if untouched.
fn layer_scan<'a>(gates: impl Iterator<Item = &'a crate::Gate>, n: usize) -> (usize, Vec<usize>) {
    let mut frontier = vec![0usize; n];
    let mut first = vec![usize::MAX; n];
    let mut layers = 0;
    for g in gates {
        if let (a, Some(b)) = g.qubits() {
            let layer = frontier[a].max(frontier[b]) + 1;
            frontier[a] = layer;
            frontier[b] = layer;
            layers = layers.max(layer);
            if first[a] == usize::MAX {
                first[a] = layer - 1;
            }
            if first[b] == usize::MAX {
                first[b] = layer - 1;
            }
        }
    }
    (layers, first)
}

/// Computes the [`EndianVectors`] of a circuit.
pub fn endian_vectors(c: &Circuit) -> EndianVectors {
    let n = c.num_qubits();
    let (layers_l, first_l) = layer_scan(c.gates().iter(), n);
    let (layers_r, first_r) = layer_scan(c.gates().iter().rev(), n);
    debug_assert_eq!(layers_l, layers_r);
    let clamp = |v: Vec<usize>, total: usize| {
        v.into_iter()
            .map(|x| if x == usize::MAX { total } else { x })
            .collect()
    };
    EndianVectors {
        e_l: clamp(first_l, layers_l),
        e_r: clamp(first_r, layers_r),
        num_layers: layers_l,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    #[test]
    fn empty_circuit_has_zero_layers() {
        let c = Circuit::new(3);
        let ev = endian_vectors(&c);
        assert_eq!(ev.num_layers, 0);
        assert_eq!(ev.e_l, vec![0, 0, 0]);
    }

    #[test]
    fn untouched_qubits_get_full_depth() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(0, 1));
        let ev = endian_vectors(&c);
        assert_eq!(ev.num_layers, 2);
        assert_eq!(ev.e_l[2], 2);
        assert_eq!(ev.e_r[3], 2);
    }

    #[test]
    fn oneq_gates_are_invisible() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::H(1));
        c.push(Gate::Cnot(0, 1));
        let ev = endian_vectors(&c);
        assert_eq!(ev.e_l, vec![0, 0]);
        assert_eq!(ev.num_layers, 1);
    }

    #[test]
    fn staircase_endians() {
        // CNOT(0,1) CNOT(1,2) CNOT(2,3): e_l = [0,0,1,2], e_r = [2,1,0,0]
        let mut c = Circuit::new(4);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(1, 2));
        c.push(Gate::Cnot(2, 3));
        let ev = endian_vectors(&c);
        assert_eq!(ev.e_l, vec![0, 0, 1, 2]);
        assert_eq!(ev.e_r, vec![2, 1, 0, 0]);
        assert_eq!(ev.num_layers, 3);
    }

    #[test]
    fn parallel_blocks_share_layers() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(2, 3));
        c.push(Gate::Cnot(1, 2));
        let ev = endian_vectors(&c);
        assert_eq!(ev.num_layers, 2);
        assert_eq!(ev.e_l, vec![0, 0, 0, 0]);
        assert_eq!(ev.e_r, vec![1, 0, 0, 1]);
    }
}
