//! Conventional Pauli-exponentiation synthesis (Fig. 1(a) of the paper).
//!
//! A Pauli exponentiation `exp(-i·c·P)` is synthesized as a 1Q `Rz(2c)`
//! sandwiched by a pair of symmetric CNOT chains, conjugated by H/S basis
//! changes. This is the "original circuit" construction every compiler's
//! optimization rate is measured against, and the building block of the
//! tree-based baselines.

use crate::{Circuit, Gate};
use phoenix_pauli::{Pauli, PauliString};

/// Appends `exp(-i·coeff·P)` to `out` using a CNOT chain rooted at the last
/// support qubit.
///
/// Identity strings are ignored; weight-1 strings become free 1Q rotations.
///
/// # Panics
///
/// Panics if the string does not fit in the circuit's register.
pub fn append_pauli_rotation(out: &mut Circuit, p: &PauliString, coeff: f64) {
    append_pauli_rotation_ordered(out, p, coeff, &p.support());
}

/// As [`append_pauli_rotation`] but with an explicit chain order: the CNOT
/// chain runs through `order` and is rooted at its last element.
///
/// Choosing the order is the tree-shaping lever of the block-wise baselines:
/// placing qubits whose Pauli differs between neighbouring gadgets near the
/// root exposes the shared chain segments to cancellation.
///
/// # Panics
///
/// Panics if `order` is not exactly the support of `p`.
pub fn append_pauli_rotation_ordered(
    out: &mut Circuit,
    p: &PauliString,
    coeff: f64,
    order: &[usize],
) {
    {
        let mut sorted = order.to_vec();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            p.support(),
            "order must be a permutation of the support"
        );
    }
    let support = order;
    let theta = 2.0 * coeff;
    match support.len() {
        0 => {}
        1 => {
            let q = support[0];
            out.push(match p.get(q) {
                Pauli::X => Gate::Rx(q, theta),
                Pauli::Y => Gate::Ry(q, theta),
                Pauli::Z => Gate::Rz(q, theta),
                Pauli::I => unreachable!("support excludes identity"),
            });
        }
        _ => {
            // Basis changes into Z on every support qubit.
            for &q in support {
                match p.get(q) {
                    Pauli::X => out.push(Gate::H(q)),
                    Pauli::Y => {
                        out.push(Gate::Sdg(q));
                        out.push(Gate::H(q));
                    }
                    _ => {}
                }
            }
            // CNOT chain toward the last support qubit.
            for w in support.windows(2) {
                out.push(Gate::Cnot(w[0], w[1]));
            }
            let root = *support.last().expect("nonempty support");
            out.push(Gate::Rz(root, theta));
            for w in support.windows(2).rev() {
                out.push(Gate::Cnot(w[0], w[1]));
            }
            for &q in support {
                match p.get(q) {
                    Pauli::X => out.push(Gate::H(q)),
                    Pauli::Y => {
                        out.push(Gate::H(q));
                        out.push(Gate::S(q));
                    }
                    _ => {}
                }
            }
        }
    }
}

/// As [`append_pauli_rotation_ordered`] but accumulating parity with a
/// balanced CNOT *tree* instead of a chain (logarithmic depth; the tree
/// shape used by Paulihedral-style compilation).
///
/// # Panics
///
/// Panics if `order` is not exactly the support of `p`.
pub fn append_pauli_rotation_tree(out: &mut Circuit, p: &PauliString, coeff: f64, order: &[usize]) {
    {
        let mut sorted = order.to_vec();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            p.support(),
            "order must be a permutation of the support"
        );
    }
    if order.len() < 2 {
        append_pauli_rotation_ordered(out, p, coeff, order);
        return;
    }
    let basis = |out: &mut Circuit, opening: bool| {
        for &q in order {
            match (p.get(q), opening) {
                (Pauli::X, _) => out.push(Gate::H(q)),
                (Pauli::Y, true) => {
                    out.push(Gate::Sdg(q));
                    out.push(Gate::H(q));
                }
                (Pauli::Y, false) => {
                    out.push(Gate::H(q));
                    out.push(Gate::S(q));
                }
                _ => {}
            }
        }
    };
    basis(out, true);
    let mut up = Vec::new();
    let root = tree_cnots(order, &mut up);
    for &(c, t) in &up {
        out.push(Gate::Cnot(c, t));
    }
    out.push(Gate::Rz(root, 2.0 * coeff));
    for &(c, t) in up.iter().rev() {
        out.push(Gate::Cnot(c, t));
    }
    basis(out, false);
}

/// Emits the balanced parity tree over `qs`, returning the root qubit.
fn tree_cnots(qs: &[usize], out: &mut Vec<(usize, usize)>) -> usize {
    match qs.len() {
        0 => unreachable!("tree over empty support"),
        1 => qs[0],
        _ => {
            let mid = qs.len() / 2;
            let l = tree_cnots(&qs[..mid], out);
            let r = tree_cnots(&qs[mid..], out);
            out.push((l, r));
            r
        }
    }
}

/// Synthesizes a whole term list in the given order — the conventional
/// ("original") circuit of the paper's Table I.
///
/// # Examples
///
/// ```
/// use phoenix_circuit::synthesis::naive_circuit;
/// use phoenix_pauli::PauliString;
///
/// let c = naive_circuit(3, &[("ZZZ".parse::<PauliString>()?, 0.5)]);
/// assert_eq!(c.counts().cnot, 4); // 2(w−1) CNOTs for weight w
/// # Ok::<(), phoenix_pauli::ParsePauliStringError>(())
/// ```
pub fn naive_circuit(n: usize, terms: &[(PauliString, f64)]) -> Circuit {
    let mut out = Circuit::new(n);
    for (p, c) in terms {
        append_pauli_rotation(&mut out, p, *c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(l: &str) -> PauliString {
        l.parse().unwrap()
    }

    #[test]
    fn weight_w_costs_2w_minus_2_cnots() {
        for (label, want) in [("ZZ", 2), ("XYZ", 4), ("XXYY", 6)] {
            let c = naive_circuit(label.len(), &[(ps(label), 0.3)]);
            assert_eq!(c.counts().cnot, want, "{label}");
        }
    }

    #[test]
    fn weight_one_is_free() {
        let c = naive_circuit(2, &[(ps("IY"), 0.3)]);
        assert_eq!(c.counts().cnot, 0);
        assert_eq!(c.counts().oneq, 1);
    }

    #[test]
    fn identity_term_emits_nothing() {
        let c = naive_circuit(2, &[(ps("II"), 0.3)]);
        assert!(c.is_empty());
    }

    #[test]
    fn chain_is_symmetric() {
        let c = naive_circuit(3, &[(ps("XZY"), 0.4)]);
        let gates = c.gates();
        let cnots: Vec<&Gate> = gates
            .iter()
            .filter(|g| matches!(g, Gate::Cnot(..)))
            .collect();
        assert_eq!(cnots[0], cnots[3]);
        assert_eq!(cnots[1], cnots[2]);
    }
}
