//! Fixed-point peephole optimization over the CNOT ISA.
//!
//! This pass is the reproduction's stand-in for the Qiskit O2/O3 passes that
//! the paper attaches to every compiler: it repeatedly
//!
//! 1. cancels CNOT pairs, commuting them through diagonal gates on the
//!    control, X-axis gates on the target, shared-control and shared-target
//!    CNOTs;
//! 2. merges adjacent same-axis 1Q rotations (commuting Rz through CNOT
//!    controls and Rx through CNOT targets), cancels `H·H`, and removes
//!    identity rotations.
//!
//! Input circuits are lowered to `{1Q, CNOT}` first, so the pass is safe to
//! call on high-level circuits too.

use crate::{Circuit, Gate};

const TWO_PI: f64 = std::f64::consts::TAU;
const EPS: f64 = 1e-12;

/// Optimizes a circuit to a fixed point of the cancellation passes.
///
/// The result contains only 1Q gates and CNOTs.
///
/// # Examples
///
/// ```
/// use phoenix_circuit::{peephole, Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::Cnot(0, 1));
/// c.push(Gate::Rz(0, 0.4)); // commutes with the control
/// c.push(Gate::Cnot(0, 1));
/// let opt = peephole::optimize(&c);
/// assert_eq!(opt.counts().cnot, 0);
/// ```
pub fn optimize(c: &Circuit) -> Circuit {
    let lowered = c.lower_to_cnot();
    let mut gates: Vec<Option<Gate>> = lowered
        .gates()
        .iter()
        .map(|g| Some(normalize(g.clone())))
        .collect();
    for _ in 0..64 {
        let mut changed = cancel_cnot_pass(&mut gates);
        changed |= merge_1q_pass(&mut gates);
        if !changed {
            break;
        }
    }
    Circuit::from_gates(lowered.num_qubits(), gates.into_iter().flatten().collect())
}

/// Rewrites phase-like Cliffords as rotations (up to global phase) so the
/// merge pass sees a uniform representation.
fn normalize(g: Gate) -> Gate {
    use std::f64::consts::{FRAC_PI_2, PI};
    match g {
        Gate::S(q) => Gate::Rz(q, FRAC_PI_2),
        Gate::Sdg(q) => Gate::Rz(q, -FRAC_PI_2),
        Gate::Z(q) => Gate::Rz(q, PI),
        Gate::X(q) => Gate::Rx(q, PI),
        Gate::Y(q) => Gate::Ry(q, PI),
        other => other,
    }
}

/// Wraps an angle into `(-π, π]`.
fn wrap(theta: f64) -> f64 {
    let mut t = theta % TWO_PI;
    if t > std::f64::consts::PI {
        t -= TWO_PI;
    } else if t <= -std::f64::consts::PI {
        t += TWO_PI;
    }
    t
}

/// Whether `g` commutes with `CNOT(a, b)`.
fn commutes_with_cnot(g: &Gate, a: usize, b: usize) -> bool {
    match *g {
        // Diagonal rotations commute through the control; X-axis through
        // the target; disjoint qubits always commute.
        Gate::Rz(q, _) => q != b,
        Gate::Rx(q, _) => q != a,
        Gate::Cnot(a2, b2) => {
            if a2 == a && b2 == b {
                false // identical gate: handled as cancellation
            } else {
                // CNOTs commute unless one's control is the other's target.
                a2 != b && b2 != a
            }
        }
        _ => {
            // Other gates only commute when on disjoint qubits.
            !g.acts_on(a) && !g.acts_on(b)
        }
    }
}

fn cancel_cnot_pass(gates: &mut [Option<Gate>]) -> bool {
    let mut changed = false;
    for i in 0..gates.len() {
        let Some(Gate::Cnot(a, b)) = gates[i] else {
            continue;
        };
        let mut j = i + 1;
        while j < gates.len() {
            match &gates[j] {
                None => {}
                Some(Gate::Cnot(a2, b2)) if *a2 == a && *b2 == b => {
                    gates[i] = None;
                    gates[j] = None;
                    changed = true;
                    break;
                }
                Some(g) if !commutes_with_cnot(g, a, b) => break,
                Some(_) => {}
            }
            j += 1;
        }
    }
    changed
}

/// Axis of a 1Q rotation gate.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Axis {
    X,
    Y,
    Z,
}

fn rot_parts(g: &Gate) -> Option<(Axis, usize, f64)> {
    match *g {
        Gate::Rx(q, t) => Some((Axis::X, q, t)),
        Gate::Ry(q, t) => Some((Axis::Y, q, t)),
        Gate::Rz(q, t) => Some((Axis::Z, q, t)),
        _ => None,
    }
}

fn make_rot(axis: Axis, q: usize, t: f64) -> Gate {
    match axis {
        Axis::X => Gate::Rx(q, t),
        Axis::Y => Gate::Ry(q, t),
        Axis::Z => Gate::Rz(q, t),
    }
}

/// Whether `g` commutes with a rotation about `axis` on qubit `q`.
fn commutes_with_rot(g: &Gate, axis: Axis, q: usize) -> bool {
    if !g.acts_on(q) {
        return true;
    }
    match (axis, g) {
        (Axis::Z, Gate::Cnot(a, _)) => *a == q,
        (Axis::X, Gate::Cnot(_, b)) => *b == q,
        _ => false,
    }
}

fn merge_1q_pass(gates: &mut [Option<Gate>]) -> bool {
    let mut changed = false;
    for i in 0..gates.len() {
        let Some(gi) = gates[i].clone() else { continue };
        // H · H cancellation (only through non-acting gates).
        if let Gate::H(q) = gi {
            let mut j = i + 1;
            while j < gates.len() {
                match &gates[j] {
                    None => {}
                    Some(Gate::H(q2)) if *q2 == q => {
                        gates[i] = None;
                        gates[j] = None;
                        changed = true;
                        break;
                    }
                    Some(g) if !g.acts_on(q) => {}
                    _ => break,
                }
                j += 1;
            }
            continue;
        }
        let Some((axis, q, theta)) = rot_parts(&gi) else {
            continue;
        };
        if wrap(theta).abs() < EPS {
            gates[i] = None;
            changed = true;
            continue;
        }
        let mut j = i + 1;
        while j < gates.len() {
            match &gates[j] {
                None => {}
                Some(g) => {
                    if let Some((axis2, q2, theta2)) = rot_parts(g) {
                        if axis2 == axis && q2 == q {
                            let merged = wrap(theta + theta2);
                            gates[j] = None;
                            gates[i] = if merged.abs() < EPS {
                                None
                            } else {
                                Some(make_rot(axis, q, merged))
                            };
                            changed = true;
                            break;
                        }
                    }
                    if !commutes_with_rot(g, axis, q) {
                        break;
                    }
                }
            }
            j += 1;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_pauli::Pauli;

    #[test]
    fn adjacent_cnots_cancel() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(0, 1));
        assert_eq!(optimize(&c).counts().cnot, 0);
    }

    #[test]
    fn reversed_cnots_do_not_cancel() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(1, 0));
        assert_eq!(optimize(&c).counts().cnot, 2);
    }

    #[test]
    fn cnot_commutes_through_control_rz() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Rz(0, 0.3));
        c.push(Gate::Rx(1, 0.4));
        c.push(Gate::Cnot(0, 1));
        let opt = optimize(&c);
        assert_eq!(opt.counts().cnot, 0);
        assert_eq!(opt.counts().oneq, 2);
    }

    #[test]
    fn cnot_blocked_by_h() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::H(1));
        c.push(Gate::Cnot(0, 1));
        assert_eq!(optimize(&c).counts().cnot, 2);
    }

    #[test]
    fn shared_control_cnots_commute() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(0, 2));
        c.push(Gate::Cnot(0, 1));
        assert_eq!(optimize(&c).counts().cnot, 1);
    }

    #[test]
    fn crossing_cnots_block() {
        // CNOT(0,1) and CNOT(1,2) share qubit 1 as target/control: no commute.
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(1, 2));
        c.push(Gate::Cnot(0, 1));
        assert_eq!(optimize(&c).counts().cnot, 3);
    }

    #[test]
    fn rotations_merge_and_vanish() {
        let mut c = Circuit::new(1);
        c.push(Gate::Rz(0, 0.3));
        c.push(Gate::Rz(0, -0.3));
        c.push(Gate::Rx(0, 0.1));
        let opt = optimize(&c);
        assert_eq!(opt.counts().total, 1);
        assert!(matches!(opt.gates()[0], Gate::Rx(0, t) if (t - 0.1).abs() < EPS));
    }

    #[test]
    fn s_sdg_cancel_via_normalization() {
        let mut c = Circuit::new(1);
        c.push(Gate::S(0));
        c.push(Gate::Sdg(0));
        assert_eq!(optimize(&c).counts().total, 0);
    }

    #[test]
    fn h_h_cancels() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot(1, 0));
        c.push(Gate::H(0)); // blocked by the CNOT: must NOT cancel
        c.push(Gate::H(1));
        c.push(Gate::H(1));
        let opt = optimize(&c);
        let h_count = opt
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::H(_)))
            .count();
        assert_eq!(h_count, 2);
    }

    #[test]
    fn rz_merges_across_cnot_control() {
        let mut c = Circuit::new(2);
        c.push(Gate::Rz(0, 0.2));
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Rz(0, -0.2));
        let opt = optimize(&c);
        assert_eq!(opt.counts().oneq, 0);
        assert_eq!(opt.counts().cnot, 1);
    }

    #[test]
    fn zz_rotation_chain_shares_cnots() {
        // Two consecutive ZZ rotations on the same pair: the inner CNOT pair
        // cancels, leaving 2 CNOTs and 2 (merged to 1) Rz.
        let mut c = Circuit::new(2);
        for theta in [0.3, 0.5] {
            c.push(Gate::PauliRot2 {
                a: 0,
                b: 1,
                pa: Pauli::Z,
                pb: Pauli::Z,
                theta,
            });
        }
        let opt = optimize(&c);
        assert_eq!(opt.counts().cnot, 2);
        assert_eq!(opt.counts().oneq, 1);
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut c = Circuit::new(3);
        c.push(Gate::PauliRot2 {
            a: 0,
            b: 1,
            pa: Pauli::X,
            pb: Pauli::Y,
            theta: 0.7,
        });
        c.push(Gate::Cnot(1, 2));
        c.push(Gate::H(0));
        let once = optimize(&c);
        let twice = optimize(&once);
        assert_eq!(once, twice);
    }
}
