//! Weyl-chamber analysis of two-qubit unitaries.
//!
//! Every 2Q unitary is locally equivalent to a canonical gate
//! `exp(i(c₁·XX + c₂·YY + c₃·ZZ))`; the coordinates `(c₁, c₂, c₃)` (the
//! Weyl chamber point) are computed through the magic-basis Gram matrix and
//! determine the **minimal CNOT count** needed to implement the unitary
//! (Shende–Bullock–Markov):
//!
//! | class | coordinates | CNOTs |
//! |---|---|---|
//! | local | (0, 0, 0) | 0 |
//! | CNOT | (π/4, 0, 0) | 1 |
//! | `c₃ = 0` | (c₁, c₂, 0) | 2 |
//! | generic | c₃ ≠ 0 | 3 |
//!
//! This powers the SU(4)-ISA analysis: how close a compiler's fused blocks
//! are to their theoretical CNOT floors.

use crate::{Gate, Su4Block};
use phoenix_mathkit::{jacobi_simultaneous, CMatrix, Complex};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4};

/// Numerical tolerance for classifying coordinates.
const TOL: f64 = 1e-9;

/// The magic basis (columns), mapping local unitaries to real orthogonals.
fn magic_basis() -> CMatrix {
    let h = Complex::from_re(std::f64::consts::FRAC_1_SQRT_2);
    let ih = Complex::new(0.0, std::f64::consts::FRAC_1_SQRT_2);
    let o = Complex::ZERO;
    CMatrix::from_rows(&[
        &[h, o, o, ih],
        &[o, ih, h, o],
        &[o, ih, -h, o],
        &[h, o, o, -ih],
    ])
}

/// Computes the canonical Weyl coordinates `(c₁ ≥ c₂ ≥ |c₃|, c₁ ≤ π/4)` of a
/// 4×4 unitary (little-endian qubit convention, matching
/// [`Gate::matrix2`]).
///
/// # Panics
///
/// Panics if the matrix is not a 4×4 unitary.
pub fn weyl_coordinates(u: &CMatrix) -> [f64; 3] {
    assert_eq!(u.rows(), 4, "expected a 4×4 unitary");
    assert!(u.is_unitary(1e-9), "matrix must be unitary");
    // Normalize to SU(4) (4th-root ambiguity is absorbed mod π/2 below).
    let det = det4(u);
    let phase = Complex::cis(-det.im.atan2(det.re) / 4.0);
    let su = u.scale(phase);

    let m = magic_basis();
    let v = m.dagger().matmul(&su).matmul(&m);
    // Gram matrix W = Vᵀ V (complex symmetric unitary).
    let mut w = CMatrix::zeros(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            let mut acc = Complex::ZERO;
            for k in 0..4 {
                acc += v[(k, i)] * v[(k, j)];
            }
            w[(i, j)] = acc;
        }
    }
    let re: Vec<Vec<f64>> = (0..4)
        .map(|i| (0..4).map(|j| w[(i, j)].re).collect())
        .collect();
    let im: Vec<Vec<f64>> = (0..4)
        .map(|i| (0..4).map(|j| w[(i, j)].im).collect())
        .collect();
    let (alpha, beta, _) = jacobi_simultaneous(&re, &im);
    // Eigenphases θⱼ of √W.
    let mut theta: Vec<f64> = alpha
        .iter()
        .zip(&beta)
        .map(|(&a, &b)| b.atan2(a) / 2.0)
        .collect();
    // det W = 1 ⇒ Σθ ≡ 0 (mod π); pin it to zero exactly.
    let sigma: f64 = theta.iter().sum();
    theta[3] -= sigma;
    // Pair sums give (±, permuted) canonical coordinates.
    let raw = [
        (theta[0] + theta[1]) / 2.0,
        (theta[0] + theta[2]) / 2.0,
        (theta[0] + theta[3]) / 2.0,
    ];
    canonicalize(raw)
}

/// Folds raw coordinates into the canonical Weyl chamber using the
/// local-equivalence symmetries: shifts by π/2, pairwise sign flips,
/// permutations, and the `c₁ > π/4` reflection.
fn canonicalize(mut c: [f64; 3]) -> [f64; 3] {
    for _ in 0..16 {
        // Into [0, π/2), tracking signs via pairwise flips afterwards.
        for x in c.iter_mut() {
            *x = x.rem_euclid(FRAC_PI_2);
            if *x > FRAC_PI_2 - TOL {
                *x = 0.0;
            }
        }
        // Sort descending.
        c.sort_by(|a, b| b.total_cmp(a));
        if c[0] > FRAC_PI_4 + TOL {
            // (c₁, c₂, c₃) ~ (π/2 − c₁, c₂, −c₃): shift + double sign flip.
            c[0] = FRAC_PI_2 - c[0];
            c[2] = -c[2];
            continue;
        }
        break;
    }
    // Normalize the residual sign: c₃ may be negative; pairwise flips allow
    // moving the sign onto the smallest coordinate, and the mirror symmetry
    // at c₁ = π/4 removes it entirely there.
    if c[2] < 0.0 && (c[0] - FRAC_PI_4).abs() < TOL {
        c[2] = -c[2];
        c.sort_by(|a, b| b.total_cmp(a));
    }
    // Snap numerical dust.
    for x in c.iter_mut() {
        if x.abs() < TOL {
            *x = 0.0;
        }
    }
    c
}

/// The minimal number of CNOTs needed to implement the 4×4 unitary `u`
/// (0–3, Shende–Bullock–Markov).
///
/// # Panics
///
/// Panics if the matrix is not a 4×4 unitary.
pub fn cnot_cost(u: &CMatrix) -> usize {
    let c = weyl_coordinates(u);
    if c[0].abs() < TOL {
        0
    } else if (c[0] - FRAC_PI_4).abs() < TOL && c[1].abs() < TOL && c[2].abs() < TOL {
        1
    } else if c[2].abs() < TOL {
        2
    } else {
        3
    }
}

/// The minimal CNOT count of a fused SU(4) block.
pub fn su4_block_cost(block: &Su4Block) -> usize {
    let g = Gate::Su4(Box::new(block.clone()));
    cnot_cost(&g.matrix2().expect("su4 is a 2q gate"))
}

fn det4(u: &CMatrix) -> Complex {
    // Laplace expansion along the first row (4×4 only).
    let minor = |r: usize, c: usize| -> Complex {
        let rows: Vec<usize> = (0..4).filter(|&i| i != r).collect();
        let cols: Vec<usize> = (0..4).filter(|&j| j != c).collect();
        let m = |i: usize, j: usize| u[(rows[i], cols[j])];
        m(0, 0) * (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1))
            - m(0, 1) * (m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0))
            + m(0, 2) * (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0))
    };
    let mut det = Complex::ZERO;
    for c in 0..4 {
        let sign = if c % 2 == 0 {
            Complex::ONE
        } else {
            -Complex::ONE
        };
        det += sign * u[(0, c)] * minor(0, c);
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_mathkit::Xoshiro256;
    use phoenix_pauli::{Pauli, CLIFFORD2Q_GENERATORS};

    fn unitary_of(gates: Vec<Gate>) -> CMatrix {
        let blk = Gate::Su4(Box::new(Su4Block {
            a: 0,
            b: 1,
            inner: gates,
        }));
        blk.matrix2().unwrap()
    }

    fn random_local(rng: &mut Xoshiro256) -> Vec<Gate> {
        let mut gates = Vec::new();
        for q in 0..2 {
            gates.push(Gate::Rz(q, rng.next_range_f64(-3.0, 3.0)));
            gates.push(Gate::Ry(q, rng.next_range_f64(-3.0, 3.0)));
            gates.push(Gate::Rz(q, rng.next_range_f64(-3.0, 3.0)));
        }
        gates
    }

    #[test]
    fn identity_and_locals_cost_zero() {
        assert_eq!(cnot_cost(&CMatrix::identity(4)), 0);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..5 {
            let u = unitary_of(random_local(&mut rng));
            assert_eq!(cnot_cost(&u), 0);
            let c = weyl_coordinates(&u);
            assert!(c.iter().all(|x| x.abs() < 1e-7), "{c:?}");
        }
    }

    #[test]
    fn cnot_class_costs_one() {
        let cnot = Gate::Cnot(0, 1).matrix2().unwrap();
        assert_eq!(cnot_cost(&cnot), 1);
        let c = weyl_coordinates(&cnot);
        assert!((c[0] - FRAC_PI_4).abs() < 1e-9, "{c:?}");
        assert!(c[1].abs() < 1e-9 && c[2].abs() < 1e-9);
        // Every universal controlled gate is CNOT-equivalent.
        for kind in CLIFFORD2Q_GENERATORS {
            assert_eq!(cnot_cost(&kind.matrix4()), 1, "{kind}");
        }
    }

    #[test]
    fn generic_single_axis_rotation_costs_two() {
        for (pa, pb) in [(Pauli::X, Pauli::X), (Pauli::Z, Pauli::Y)] {
            let u = unitary_of(vec![Gate::PauliRot2 {
                a: 0,
                b: 1,
                pa,
                pb,
                theta: 0.7,
            }]);
            assert_eq!(cnot_cost(&u), 2, "{pa}{pb}");
        }
    }

    #[test]
    fn pi_half_rotation_is_cnot_class() {
        // exp(-i·(π/2)/2·XX) has Weyl point (π/4, 0, 0).
        let u = unitary_of(vec![Gate::PauliRot2 {
            a: 0,
            b: 1,
            pa: Pauli::X,
            pb: Pauli::X,
            theta: std::f64::consts::FRAC_PI_2,
        }]);
        assert_eq!(cnot_cost(&u), 1);
    }

    #[test]
    fn swap_costs_three() {
        let swap = Gate::Swap(0, 1).matrix2().unwrap();
        assert_eq!(cnot_cost(&swap), 3);
        let c = weyl_coordinates(&swap);
        for x in c {
            assert!((x.abs() - FRAC_PI_4).abs() < 1e-8, "{c:?}");
        }
    }

    #[test]
    fn cost_is_a_local_invariant() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        let cores: Vec<Vec<Gate>> = vec![
            vec![],
            vec![Gate::Cnot(0, 1)],
            vec![Gate::PauliRot2 {
                a: 0,
                b: 1,
                pa: Pauli::Z,
                pb: Pauli::Z,
                theta: 1.1,
            }],
            vec![Gate::Swap(0, 1)],
            vec![
                Gate::Cnot(0, 1),
                Gate::H(0),
                Gate::Cnot(1, 0),
                Gate::Rz(0, 0.3),
                Gate::Cnot(0, 1),
            ],
        ];
        for core in cores {
            let base = cnot_cost(&unitary_of(core.clone()));
            for _ in 0..4 {
                let mut dressed = random_local(&mut rng);
                dressed.extend(core.clone());
                dressed.extend(random_local(&mut rng));
                assert_eq!(cnot_cost(&unitary_of(dressed)), base);
            }
        }
    }

    #[test]
    fn rotation_products_classify_by_axis_count() {
        let rot = |pa, pb, theta| Gate::PauliRot2 {
            a: 0,
            b: 1,
            pa,
            pb,
            theta,
        };
        // Two commuting axes: coordinates (0.45, 0.2, 0) → 2-CNOT class.
        let two_axis = unitary_of(vec![
            rot(Pauli::X, Pauli::X, 0.9),
            rot(Pauli::Z, Pauli::Z, 0.4),
        ]);
        assert_eq!(cnot_cost(&two_axis), 2);
        // All three axes: c₃ ≠ 0 → generic 3-CNOT class.
        let three_axis = unitary_of(vec![
            rot(Pauli::X, Pauli::X, 0.9),
            rot(Pauli::Y, Pauli::Y, 0.6),
            rot(Pauli::Z, Pauli::Z, 0.4),
        ]);
        assert_eq!(cnot_cost(&three_axis), 3);
        let c = weyl_coordinates(&three_axis);
        assert!((c[0] - 0.45).abs() < 1e-8, "{c:?}");
        assert!((c[1] - 0.30).abs() < 1e-8, "{c:?}");
        assert!((c[2].abs() - 0.20).abs() < 1e-8, "{c:?}");
    }

    #[test]
    fn su4_block_cost_api() {
        let blk = Su4Block {
            a: 3,
            b: 5,
            inner: vec![Gate::Cnot(3, 5), Gate::Rz(5, 0.2), Gate::Cnot(3, 5)],
        };
        // CNOT·Rz·CNOT = ZZ-rotation-like: 2-CNOT class at most.
        assert!(su4_block_cost(&blk) <= 2);
    }

    #[test]
    fn coordinates_are_in_chamber() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..10 {
            let mut gates = random_local(&mut rng);
            gates.push(Gate::Cnot(0, 1));
            gates.extend(random_local(&mut rng));
            gates.push(Gate::Cnot(1, 0));
            gates.extend(random_local(&mut rng));
            let c = weyl_coordinates(&unitary_of(gates));
            assert!(c[0] <= FRAC_PI_4 + 1e-9, "{c:?}");
            assert!(c[0] >= c[1] - 1e-9 && c[1] >= c[2].abs() - 1e-9, "{c:?}");
            assert!(c[1] >= -1e-9);
        }
    }
}
