//! Named whole-circuit rewrites behind a common trait.
//!
//! [`CircuitTransform`] is the circuit-level counterpart of the compiler's
//! pass abstraction: a pure `Circuit -> Circuit` rewrite with a stable name.
//! The four unit structs here wrap the crate's existing back-end stages so
//! higher layers (the phoenix-core pass manager, ad-hoc tooling) can compose
//! and trace them uniformly without hard-coding free-function calls.

use crate::{kak, peephole, rebase, Circuit};

/// A named, pure circuit-to-circuit rewrite.
pub trait CircuitTransform {
    /// Stable display name (used in pass traces).
    fn name(&self) -> &str;

    /// Applies the rewrite, leaving the input untouched.
    fn apply(&self, circuit: &Circuit) -> Circuit;
}

/// Fixed-point gate cancellation ([`peephole::optimize`]); lowers to the
/// CNOT ISA first.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Peephole;

impl CircuitTransform for Peephole {
    fn name(&self) -> &str {
        "peephole"
    }

    fn apply(&self, circuit: &Circuit) -> Circuit {
        peephole::optimize(circuit)
    }
}

/// Rebase into the SU(4) ISA by fusing maximal same-pair runs
/// ([`rebase::to_su4`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Su4Rebase;

impl CircuitTransform for Su4Rebase {
    fn name(&self) -> &str {
        "su4-rebase"
    }

    fn apply(&self, circuit: &Circuit) -> Circuit {
        rebase::to_su4(circuit)
    }
}

/// KAK-resynthesize SU(4) blocks to their canonical ≤3-rotation forms
/// ([`kak::resynthesize`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KakResynthesis;

impl CircuitTransform for KakResynthesis {
    fn name(&self) -> &str {
        "kak-resynthesis"
    }

    fn apply(&self, circuit: &Circuit) -> Circuit {
        kak::resynthesize(circuit)
    }
}

/// Structural lowering into `{1Q, CNOT}` ([`Circuit::lower_to_cnot`]);
/// idempotent, and the step that expands routed SWAPs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CnotLower;

impl CircuitTransform for CnotLower {
    fn name(&self) -> &str {
        "cnot-lower"
    }

    fn apply(&self, circuit: &Circuit) -> Circuit {
        circuit.lower_to_cnot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(1, 2));
        c.push(Gate::Rz(2, 0.25));
        c.push(Gate::Cnot(1, 2));
        c.push(Gate::Cnot(0, 1));
        c
    }

    #[test]
    fn transforms_match_their_free_functions() {
        let c = sample();
        assert_eq!(Peephole.apply(&c), peephole::optimize(&c));
        assert_eq!(Su4Rebase.apply(&c), rebase::to_su4(&c));
        assert_eq!(KakResynthesis.apply(&c), kak::resynthesize(&c));
        assert_eq!(CnotLower.apply(&c), c.lower_to_cnot());
    }

    #[test]
    fn transforms_are_object_safe() {
        let passes: Vec<Box<dyn CircuitTransform>> = vec![
            Box::new(Peephole),
            Box::new(Su4Rebase),
            Box::new(KakResynthesis),
            Box::new(CnotLower),
        ];
        let names: Vec<&str> = passes.iter().map(|p| p.name()).collect();
        assert_eq!(
            names,
            ["peephole", "su4-rebase", "kak-resynthesis", "cnot-lower"]
        );
    }
}
