//! The circuit container and structural lowering.

use crate::gate::{Gate, Su4Block};
use phoenix_pauli::{Pauli, QubitMask};
use std::fmt;

/// Gate-count summary of a [`Circuit`].
///
/// The paper's metrics exclude 1Q gates ("generally considered free
/// resources"); [`GateCounts::two_qubit`] aggregates every 2Q gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCounts {
    /// All gates.
    pub total: usize,
    /// Single-qubit gates.
    pub oneq: usize,
    /// CNOT gates.
    pub cnot: usize,
    /// SWAP gates.
    pub swap: usize,
    /// High-level 2Q Clifford generators.
    pub clifford2: usize,
    /// High-level 2Q Pauli rotations.
    pub pauli_rot2: usize,
    /// Fused SU(4) blocks.
    pub su4: usize,
}

impl GateCounts {
    /// Total number of 2Q gates of any flavour.
    pub fn two_qubit(&self) -> usize {
        self.cnot + self.swap + self.clifford2 + self.pauli_rot2 + self.su4
    }
}

/// A quantum circuit: an ordered gate list over a fixed qubit register.
///
/// # Examples
///
/// ```
/// use phoenix_circuit::{Circuit, Gate};
/// use phoenix_pauli::Pauli;
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::PauliRot2 { a: 0, b: 1, pa: Pauli::X, pb: Pauli::X, theta: 0.3 });
/// let lowered = c.lower_to_cnot();
/// assert_eq!(lowered.counts().cnot, 2); // CNOT · Rz · CNOT plus basis changes
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    n: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `n` qubits.
    pub fn new(n: usize) -> Self {
        Circuit {
            n,
            gates: Vec::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The gate list.
    #[inline]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of gates.
    #[inline]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate addresses a qubit outside the register.
    pub fn push(&mut self, g: Gate) {
        let (a, b) = g.qubits();
        assert!(a < self.n, "gate qubit {a} out of range");
        if let Some(b) = b {
            assert!(b < self.n, "gate qubit {b} out of range");
        }
        self.gates.push(g);
    }

    /// Appends every gate of `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than `self`.
    pub fn append(&mut self, other: &Circuit) {
        assert!(
            other.n <= self.n,
            "appended circuit must fit in the register"
        );
        for g in &other.gates {
            self.gates.push(g.clone());
        }
    }

    /// Consumes the circuit and returns the gate list.
    pub fn into_gates(self) -> Vec<Gate> {
        self.gates
    }

    /// Builds a circuit from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if any gate addresses a qubit `≥ n`.
    pub fn from_gates(n: usize, gates: Vec<Gate>) -> Self {
        let mut c = Circuit::new(n);
        for g in gates {
            c.push(g);
        }
        c
    }

    /// Gate-count summary.
    pub fn counts(&self) -> GateCounts {
        let mut c = GateCounts::default();
        for g in &self.gates {
            c.total += 1;
            match g {
                Gate::Cnot(..) => c.cnot += 1,
                Gate::Swap(..) => c.swap += 1,
                Gate::Clifford2(..) => c.clifford2 += 1,
                Gate::PauliRot2 { .. } => c.pauli_rot2 += 1,
                Gate::Su4(..) => c.su4 += 1,
                _ => c.oneq += 1,
            }
        }
        c
    }

    /// 2Q circuit depth: the depth when 1Q gates are ignored (the "Depth-2Q"
    /// metric of the paper).
    pub fn depth_2q(&self) -> usize {
        let mut frontier = vec![0usize; self.n];
        let mut depth = 0;
        for g in &self.gates {
            if let (a, Some(b)) = g.qubits() {
                let layer = frontier[a].max(frontier[b]) + 1;
                frontier[a] = layer;
                frontier[b] = layer;
                depth = depth.max(layer);
            }
        }
        depth
    }

    /// Full circuit depth including 1Q gates.
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.n];
        let mut depth = 0;
        for g in &self.gates {
            let (a, b) = g.qubits();
            let layer = match b {
                Some(b) => frontier[a].max(frontier[b]) + 1,
                None => frontier[a] + 1,
            };
            frontier[a] = layer;
            if let Some(b) = b {
                frontier[b] = layer;
            }
            depth = depth.max(layer);
        }
        depth
    }

    /// Bit mask of qubits any gate acts on.
    pub fn support_mask(&self) -> QubitMask {
        let mut m = QubitMask::zeros(self.n);
        for g in &self.gates {
            let (a, b) = g.qubits();
            m.set_bit(a);
            if let Some(b) = b {
                m.set_bit(b);
            }
        }
        m
    }

    /// Returns a copy with every qubit index remapped through `f` into a
    /// register of `new_n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if a remapped index is out of range.
    pub fn map_qubits(&self, new_n: usize, mut f: impl FnMut(usize) -> usize) -> Circuit {
        let mut out = Circuit::new(new_n);
        for g in &self.gates {
            out.push(g.map_qubits(&mut f));
        }
        out
    }

    /// Structurally lowers the circuit to the CNOT ISA: only 1Q gates and
    /// [`Gate::Cnot`] remain.
    ///
    /// - `SWAP → 3 CNOTs`
    /// - `C(σ₀,σ₁) → (V₀⊗V₁)·CNOT·(V₀⊗V₁)†` with 1Q basis changes
    /// - `exp(-iθ/2·P_a⊗P_b) →` basis changes + `CNOT·Rz·CNOT`
    /// - SU(4) blocks are lowered recursively.
    pub fn lower_to_cnot(&self) -> Circuit {
        let mut out = Circuit::new(self.n);
        for g in &self.gates {
            lower_gate(g, &mut out);
        }
        out
    }
}

/// Basis-change circuits used by the lowerings. `pre`/`post` sandwich a
/// Z-basis (control) or X-basis (target) core.
fn conj_to_z(q: usize, p: Pauli) -> (Vec<Gate>, Vec<Gate>) {
    match p {
        Pauli::Z => (vec![], vec![]),
        Pauli::X => (vec![Gate::H(q)], vec![Gate::H(q)]),
        Pauli::Y => (vec![Gate::Sdg(q), Gate::H(q)], vec![Gate::H(q), Gate::S(q)]),
        Pauli::I => unreachable!("identity needs no basis change"),
    }
}

fn conj_to_x(q: usize, p: Pauli) -> (Vec<Gate>, Vec<Gate>) {
    match p {
        Pauli::X => (vec![], vec![]),
        Pauli::Z => (vec![Gate::H(q)], vec![Gate::H(q)]),
        // V X V† = Y for V = S: circuit pre = V† = Sdg, post = S.
        Pauli::Y => (vec![Gate::Sdg(q)], vec![Gate::S(q)]),
        Pauli::I => unreachable!("identity needs no basis change"),
    }
}

fn lower_gate(g: &Gate, out: &mut Circuit) {
    match g {
        Gate::Swap(a, b) => {
            out.push(Gate::Cnot(*a, *b));
            out.push(Gate::Cnot(*b, *a));
            out.push(Gate::Cnot(*a, *b));
        }
        Gate::Clifford2(c) => {
            // C(σ₀,σ₁) = (V₀⊗V₁) CNOT (V₀⊗V₁)† where V₀ Z V₀† = σ₀ and
            // V₁ X V₁† = σ₁; circuit order is V† gates, CNOT, V gates.
            let (pre_a, post_a) = conj_to_z(c.a, c.kind.sigma0());
            let (pre_b, post_b) = conj_to_x(c.b, c.kind.sigma1());
            for gate in pre_a.into_iter().chain(pre_b) {
                out.push(gate);
            }
            out.push(Gate::Cnot(c.a, c.b));
            for gate in post_a.into_iter().chain(post_b) {
                out.push(gate);
            }
        }
        Gate::PauliRot2 {
            a,
            b,
            pa,
            pb,
            theta,
        } => {
            let (pre_a, post_a) = conj_to_z(*a, *pa);
            let (pre_b, post_b) = conj_to_z(*b, *pb);
            for gate in pre_a.into_iter().chain(pre_b) {
                out.push(gate);
            }
            out.push(Gate::Cnot(*a, *b));
            out.push(Gate::Rz(*b, *theta));
            out.push(Gate::Cnot(*a, *b));
            for gate in post_a.into_iter().chain(post_b) {
                out.push(gate);
            }
        }
        Gate::Su4(blk) => {
            let Su4Block { inner, .. } = blk.as_ref();
            for g in inner {
                lower_gate(g, out);
            }
        }
        other => out.push(other.clone()),
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit on {} qubits, {} gates:",
            self.n,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_pauli::{Clifford2Q, Clifford2QKind};

    #[test]
    fn counts_classify_gates() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Swap(1, 2));
        c.push(Gate::Clifford2(Clifford2Q::new(Clifford2QKind::Cxx, 0, 2)));
        let k = c.counts();
        assert_eq!(k.total, 4);
        assert_eq!(k.oneq, 1);
        assert_eq!(k.cnot, 1);
        assert_eq!(k.swap, 1);
        assert_eq!(k.clifford2, 1);
        assert_eq!(k.two_qubit(), 3);
    }

    #[test]
    fn depth_2q_ignores_oneq() {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push(Gate::H(q));
        }
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(1, 2));
        c.push(Gate::Cnot(0, 1));
        assert_eq!(c.depth_2q(), 3);
        assert!(c.depth() >= 4);
    }

    #[test]
    fn parallel_gates_share_a_layer() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(2, 3));
        assert_eq!(c.depth_2q(), 1);
    }

    #[test]
    fn swap_lowers_to_three_cnots() {
        let mut c = Circuit::new(2);
        c.push(Gate::Swap(0, 1));
        let low = c.lower_to_cnot();
        assert_eq!(low.counts().cnot, 3);
        assert_eq!(low.counts().oneq, 0);
    }

    #[test]
    fn pauli_rot2_lowers_to_two_cnots() {
        let mut c = Circuit::new(2);
        c.push(Gate::PauliRot2 {
            a: 0,
            b: 1,
            pa: Pauli::Y,
            pb: Pauli::X,
            theta: 0.5,
        });
        let low = c.lower_to_cnot();
        assert_eq!(low.counts().cnot, 2);
        // One Rz plus basis changes.
        assert!(low
            .gates()
            .iter()
            .any(|g| matches!(g, Gate::Rz(1, t) if (*t - 0.5).abs() < 1e-12)));
    }

    #[test]
    fn clifford2_lowers_to_one_cnot() {
        for kind in phoenix_pauli::CLIFFORD2Q_GENERATORS {
            let mut c = Circuit::new(2);
            c.push(Gate::Clifford2(Clifford2Q::new(kind, 0, 1)));
            let low = c.lower_to_cnot();
            assert_eq!(low.counts().cnot, 1, "{kind}");
        }
    }

    #[test]
    fn lowering_is_idempotent() {
        let mut c = Circuit::new(3);
        c.push(Gate::Swap(0, 2));
        c.push(Gate::PauliRot2 {
            a: 1,
            b: 2,
            pa: Pauli::Z,
            pb: Pauli::Z,
            theta: 1.0,
        });
        let once = c.lower_to_cnot();
        assert_eq!(once, once.lower_to_cnot());
    }

    #[test]
    fn support_mask_covers_acted_qubits() {
        let mut c = Circuit::new(5);
        c.push(Gate::Cnot(1, 3));
        c.push(Gate::H(4));
        assert_eq!(c.support_mask(), QubitMask::from_u128(0b11010));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(2));
    }

    #[test]
    fn map_qubits_translates() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot(0, 1));
        let mapped = c.map_qubits(4, |q| q + 2);
        assert_eq!(mapped.gates()[0], Gate::Cnot(2, 3));
    }
}
