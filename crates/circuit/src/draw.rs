//! ASCII circuit rendering for terminals and docs.
//!
//! One line per qubit, gates packed greedily into columns (the same ASAP
//! layering the depth metrics use). High-level gates render with compact
//! labels; lower to the CNOT ISA first if you want elementary gates only.

use crate::{Circuit, Gate};

/// Renders the circuit as ASCII art.
///
/// # Examples
///
/// ```
/// use phoenix_circuit::{draw, Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cnot(0, 1));
/// let art = draw::ascii(&c);
/// assert!(art.contains("H"));
/// assert!(art.contains("●"));
/// assert!(art.contains("⊕"));
/// ```
pub fn ascii(c: &Circuit) -> String {
    let n = c.num_qubits();
    // Assign each gate to a column: a gate needs every wire in the span of
    // its qubits free (vertical connectors must not overlap).
    let mut columns: Vec<Vec<&Gate>> = Vec::new();
    let mut frontier = vec![0usize; n];
    for g in c.gates() {
        let (a, b) = g.qubits();
        let (lo, hi) = match b {
            Some(b) => (a.min(b), a.max(b)),
            None => (a, a),
        };
        let col = (lo..=hi).map(|q| frontier[q]).max().unwrap_or(0);
        if col == columns.len() {
            columns.push(Vec::new());
        }
        columns[col].push(g);
        frontier[lo..=hi].fill(col + 1);
    }

    // Render each column into per-qubit cells.
    let mut rows: Vec<String> = (0..n).map(|q| format!("q{q:<2}:")).collect();
    for col in &columns {
        let mut cells: Vec<String> = vec!["─".to_string(); n];
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for g in col {
            let (a, b) = g.qubits();
            match (g, b) {
                (Gate::Cnot(ctl, tgt), _) => {
                    cells[*ctl] = "●".into();
                    cells[*tgt] = "⊕".into();
                    spans.push((*ctl.min(tgt), *ctl.max(tgt)));
                }
                (Gate::Swap(x, y), _) => {
                    cells[*x] = "✕".into();
                    cells[*y] = "✕".into();
                    spans.push((*x.min(y), *x.max(y)));
                }
                (g, Some(b)) => {
                    let (label_a, label_b) = two_qubit_labels(g);
                    cells[a] = label_a;
                    cells[b] = label_b;
                    spans.push((a.min(b), a.max(b)));
                }
                (g, None) => {
                    cells[a] = one_qubit_label(g);
                }
            }
        }
        // Vertical connectors on in-between wires.
        for (lo, hi) in spans {
            for cell in &mut cells[lo + 1..hi] {
                if cell == "─" {
                    *cell = "│".into();
                }
            }
        }
        let width = cells.iter().map(|s| s.chars().count()).max().unwrap_or(1);
        for (q, row) in rows.iter_mut().enumerate() {
            let cell = &cells[q];
            let pad = width - cell.chars().count();
            row.push('─');
            row.push_str(cell);
            for _ in 0..pad {
                row.push(if cell == "│" { ' ' } else { '─' });
            }
        }
    }
    let mut out = String::new();
    for row in rows {
        out.push_str(&row);
        out.push_str("─\n");
    }
    out
}

fn one_qubit_label(g: &Gate) -> String {
    match g {
        Gate::H(_) => "H".into(),
        Gate::S(_) => "S".into(),
        Gate::Sdg(_) => "S†".into(),
        Gate::X(_) => "X".into(),
        Gate::Y(_) => "Y".into(),
        Gate::Z(_) => "Z".into(),
        Gate::Rx(_, t) => format!("Rx({t:.2})"),
        Gate::Ry(_, t) => format!("Ry({t:.2})"),
        Gate::Rz(_, t) => format!("Rz({t:.2})"),
        other => format!("{other}"),
    }
}

fn two_qubit_labels(g: &Gate) -> (String, String) {
    match g {
        Gate::Clifford2(c) => {
            let k = c.kind.to_string();
            (format!("{k}◆"), format!("{k}◇"))
        }
        Gate::PauliRot2 { pa, pb, theta, .. } => {
            (format!("R{pa}{pb}({theta:.2})"), format!("R{pa}{pb}·"))
        }
        Gate::Su4(blk) => (format!("SU4[{}]", blk.inner.len()), "SU4·".to_string()),
        other => (format!("{other}"), "·".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_pauli::{Clifford2Q, Clifford2QKind, Pauli};

    #[test]
    fn bell_circuit_renders() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot(0, 1));
        let art = ascii(&c);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("q0"));
        assert!(lines[0].contains('H') && lines[0].contains('●'));
        assert!(lines[1].contains('⊕'));
    }

    #[test]
    fn parallel_gates_share_a_column() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(2, 3));
        let art = ascii(&c);
        // Both CNOTs in one column → all rows the same short length.
        let lens: Vec<usize> = art.lines().map(|l| l.chars().count()).collect();
        assert!(lens.iter().all(|&l| l == lens[0]));
    }

    #[test]
    fn vertical_connector_spans_middle_wires() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot(0, 2));
        let art = ascii(&c);
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[1].contains('│'), "{art}");
    }

    #[test]
    fn overlapping_spans_split_columns() {
        // CNOT(0,2) spans wire 1; a gate on qubit 1 must move to column 2.
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot(0, 2));
        c.push(Gate::H(1));
        let art = ascii(&c);
        let lines: Vec<&str> = art.lines().collect();
        let conn = lines[1].find('│').expect("connector");
        let h = lines[1].find('H').expect("H gate");
        assert!(h > conn, "H rendered after the connector column:\n{art}");
    }

    #[test]
    fn high_level_gates_have_labels() {
        let mut c = Circuit::new(2);
        c.push(Gate::Clifford2(Clifford2Q::new(Clifford2QKind::Cxy, 0, 1)));
        c.push(Gate::PauliRot2 {
            a: 0,
            b: 1,
            pa: Pauli::Z,
            pb: Pauli::Z,
            theta: 0.5,
        });
        let art = ascii(&c);
        assert!(art.contains("C(X,Y)"));
        assert!(art.contains("RZZ"));
    }

    #[test]
    fn empty_circuit_renders_bare_wires() {
        let art = ascii(&Circuit::new(2));
        assert_eq!(art.lines().count(), 2);
    }
}
