//! KAK (Cartan) decomposition of arbitrary two-qubit unitaries.
//!
//! Every `U ∈ U(4)` factors as
//!
//! ```text
//! U = e^{iφ} · (A₁ ⊗ A₀) · exp(i(a·XX + b·YY + c·ZZ)) · (B₁ ⊗ B₀)
//! ```
//!
//! with single-qubit `A/B` and canonical coordinates `(a, b, c)`. Together
//! with [`weyl`](crate::weyl) this turns any fused [`Su4Block`] back into
//! explicit local gates plus at most three two-qubit Pauli rotations —
//! the re-synthesis path for the SU(4) ISA.
//!
//! The construction follows the magic-basis route: `V = M†UM`, the Gram
//! matrix `W = VᵀV` is simultaneously diagonalized over the reals,
//! `P = Q·√D·Qᵀ` is its symmetric square root, and `K = V·P⁻¹` is real
//! orthogonal; mapping `K·Q` and `Qᵀ` back through `M` yields the local
//! factors. Everything is verified by reconstruction in the tests.

use crate::{Circuit, Gate};
use phoenix_mathkit::{jacobi_simultaneous, CMatrix, Complex};
use phoenix_pauli::Pauli;

/// The result of a KAK decomposition (little-endian qubit convention:
/// index 0 is the basis LSB, matching [`Gate::matrix2`]).
#[derive(Debug, Clone)]
pub struct KakDecomposition {
    /// Global phase `φ`.
    pub global_phase: f64,
    /// Left local gate on qubit 0 (applied after the canonical gate).
    pub a0: CMatrix,
    /// Left local gate on qubit 1.
    pub a1: CMatrix,
    /// Canonical coordinates `(a, b, c)` of `exp(i(aXX + bYY + cZZ))`.
    pub coords: [f64; 3],
    /// Right local gate on qubit 0 (applied before the canonical gate).
    pub b0: CMatrix,
    /// Right local gate on qubit 1.
    pub b1: CMatrix,
}

/// Decomposes a 4×4 unitary.
///
/// # Panics
///
/// Panics if `u` is not a 4×4 unitary.
pub fn kak_decompose(u: &CMatrix) -> KakDecomposition {
    assert_eq!(u.rows(), 4, "expected a 4×4 unitary");
    assert!(u.is_unitary(1e-9), "matrix must be unitary");

    // Normalize to SU(4).
    let det = det4(u);
    let phase = det.im.atan2(det.re) / 4.0;
    let su = u.scale(Complex::cis(-phase));

    let m = magic_basis();
    let v = m.dagger().matmul(&su).matmul(&m);

    // W = Vᵀ V, split into commuting real symmetric parts.
    let mut w = CMatrix::zeros(4, 4);
    for i in 0..4 {
        for j in 0..4 {
            let mut acc = Complex::ZERO;
            for k in 0..4 {
                acc += v[(k, i)] * v[(k, j)];
            }
            w[(i, j)] = acc;
        }
    }
    let re: Vec<Vec<f64>> = (0..4)
        .map(|i| (0..4).map(|j| w[(i, j)].re).collect())
        .collect();
    let im: Vec<Vec<f64>> = (0..4)
        .map(|i| (0..4).map(|j| w[(i, j)].im).collect())
        .collect();
    let (alpha, beta, q_cols) = jacobi_simultaneous(&re, &im);

    // Eigenphases θⱼ with Σθ = 0 exactly (det W = 1).
    let mut theta: Vec<f64> = alpha
        .iter()
        .zip(&beta)
        .map(|(&a, &b)| b.atan2(a) / 2.0)
        .collect();
    let sigma: f64 = theta.iter().sum();
    theta[3] -= sigma;

    // Q real orthogonal with det +1 (flip one column if needed).
    let mut q = CMatrix::zeros(4, 4);
    for (j, col) in q_cols.iter().enumerate() {
        for i in 0..4 {
            q[(i, j)] = Complex::from_re(col[i]);
        }
    }
    if det4(&q).re < 0.0 {
        for i in 0..4 {
            q[(i, 0)] = -q[(i, 0)];
        }
    }

    // P⁻¹ = Q · diag(e^{-iθ}) · Qᵀ; K = V · P⁻¹ is real orthogonal det +1.
    let dsqrt_inv = CMatrix::from_fn(4, 4, |i, j| {
        if i == j {
            Complex::cis(-theta[i])
        } else {
            Complex::ZERO
        }
    });
    let p_inv = q.matmul(&dsqrt_inv).matmul(&transpose(&q));
    let k = v.matmul(&p_inv);

    // Local factors in the computational basis.
    let left = m.matmul(&k).matmul(&q).matmul(&m.dagger());
    let right = m.matmul(&transpose(&q)).matmul(&m.dagger());
    let (a1, a0, lphase) = kron_factor(&left);
    let (b1, b0, rphase) = kron_factor(&right);

    // Canonical coordinates: the middle factor is M·diag(e^{iθ})·M†, whose
    // Hermitian generator G = M·diag(θ)·M† lies in span{XX, YY, ZZ}
    // (diagonal matrices in the magic basis are exactly the Cartan
    // subalgebra; the tracelessness Σθ = 0 removes the identity part).
    let gen_diag = CMatrix::from_fn(4, 4, |i, j| {
        if i == j {
            Complex::from_re(theta[i])
        } else {
            Complex::ZERO
        }
    });
    let g = m.matmul(&gen_diag).matmul(&m.dagger());
    let coeff = |pa: Pauli, pb: Pauli| -> f64 {
        let pp = pb.to_matrix().kron(&pa.to_matrix());
        let mut tr = Complex::ZERO;
        for i in 0..4 {
            for j in 0..4 {
                tr += g[(i, j)] * pp[(j, i)];
            }
        }
        tr.re / 4.0
    };
    let mut coords = [
        coeff(Pauli::X, Pauli::X),
        coeff(Pauli::Y, Pauli::Y),
        coeff(Pauli::Z, Pauli::Z),
    ];

    // Normalize each coordinate into (−π/4, π/4]: a π/2 shift multiplies
    // the canonical gate by the *local* i·P⊗P, absorbed into the left
    // factors and the global phase.
    let mut a0 = a0;
    let mut a1 = a1;
    let mut global_phase = phase + lphase + rphase;
    for (k, p) in [Pauli::X, Pauli::Y, Pauli::Z].into_iter().enumerate() {
        let m_shift = (coords[k] / std::f64::consts::FRAC_PI_2).round() as i64;
        if m_shift != 0 {
            coords[k] -= m_shift as f64 * std::f64::consts::FRAC_PI_2;
            global_phase += m_shift as f64 * std::f64::consts::FRAC_PI_2;
            // exp(i·m·π/2·PP) = i^m · (P⊗P)^{m mod 2}: the i^m went into the
            // phase above; an odd shift leaves one P on each wire.
            if m_shift.rem_euclid(2) == 1 {
                a0 = a0.matmul(&p.to_matrix());
                a1 = a1.matmul(&p.to_matrix());
            }
        }
    }

    KakDecomposition {
        global_phase,
        a0,
        a1,
        coords,
        b0,
        b1,
    }
}

impl KakDecomposition {
    /// Rebuilds the 4×4 matrix — the reconstruction identity used by the
    /// tests: `to_matrix()` must equal the input.
    pub fn to_matrix(&self) -> CMatrix {
        let canon = canonical_matrix(self.coords);
        let left = self.a1.kron(&self.a0);
        let right = self.b1.kron(&self.b0);
        left.matmul(&canon)
            .matmul(&right)
            .scale(Complex::cis(self.global_phase))
    }

    /// Emits an equivalent circuit on qubits `(q0, q1)`: right locals, at
    /// most three 2Q Pauli rotations, left locals. Zero coordinates skip
    /// their rotation, so e.g. a `c₃ = 0` class costs two 2Q gates.
    ///
    /// # Panics
    ///
    /// Panics if `q0 == q1`.
    pub fn to_circuit(&self, q0: usize, q1: usize) -> Circuit {
        assert_ne!(q0, q1, "need two distinct qubits");
        let n = q0.max(q1) + 1;
        let mut c = Circuit::new(n);
        append_1q(&mut c, q0, &self.b0);
        append_1q(&mut c, q1, &self.b1);
        for (coord, p) in self.coords.iter().zip([Pauli::X, Pauli::Y, Pauli::Z]) {
            if coord.abs() > 1e-12 {
                c.push(Gate::PauliRot2 {
                    a: q0,
                    b: q1,
                    pa: p,
                    pb: p,
                    theta: -2.0 * coord,
                });
            }
        }
        append_1q(&mut c, q0, &self.a0);
        append_1q(&mut c, q1, &self.a1);
        c
    }
}

/// KAK-resynthesizes every fused SU(4) block of a circuit: blocks whose
/// canonical form needs fewer CNOTs than their fused contents are replaced
/// by locals + at most three same-pair Pauli rotations (re-fused into a
/// block). Other gates pass through untouched.
///
/// This is the optimization pass that turns the SU(4) ISA's analysis
/// ([`weyl`](crate::weyl)) into gate-count wins when lowering back to the
/// CNOT ISA.
///
/// # Examples
///
/// ```
/// use phoenix_circuit::{kak, rebase, Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// for _ in 0..6 {
///     c.push(Gate::Cnot(0, 1));
///     c.push(Gate::Rz(1, 0.3));
/// }
/// let fused = rebase::to_su4(&c);
/// let resynth = kak::resynthesize(&fused);
/// // 6 CNOTs collapse to the block's canonical ≤3 rotations.
/// assert!(resynth.lower_to_cnot().counts().cnot <= c.lower_to_cnot().counts().cnot);
/// ```
pub fn resynthesize(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for g in circuit.gates() {
        match g {
            Gate::Su4(blk) => {
                let u = g.matrix2().expect("su4 is 2q");
                let kak = kak_decompose(&u);
                let local = kak.to_circuit(0, 1);
                let mapped: Vec<Gate> = local
                    .gates()
                    .iter()
                    .map(|lg| lg.map_qubits(&mut |q| if q == 0 { blk.a } else { blk.b }))
                    .collect();
                let local_inner: Vec<Gate> = blk
                    .inner
                    .iter()
                    .map(|ig| ig.map_qubits(&mut |q| usize::from(q == blk.b)))
                    .collect();
                let old_cost = Circuit::from_gates(2, local_inner)
                    .lower_to_cnot()
                    .counts()
                    .cnot;
                let new_cost = local.lower_to_cnot().counts().cnot;
                if new_cost < old_cost {
                    out.push(Gate::Su4(Box::new(crate::Su4Block {
                        a: blk.a,
                        b: blk.b,
                        inner: mapped,
                    })));
                } else {
                    out.push(g.clone());
                }
            }
            other => out.push(other.clone()),
        }
    }
    out
}

/// `exp(i(aXX + bYY + cZZ))` as a matrix (the three factors commute).
fn canonical_matrix(coords: [f64; 3]) -> CMatrix {
    let mut out = CMatrix::identity(4);
    for (coord, p) in coords.iter().zip([Pauli::X, Pauli::Y, Pauli::Z]) {
        let pp = p.to_matrix().kron(&p.to_matrix());
        let term = &CMatrix::identity(4).scale(Complex::from_re(coord.cos()))
            + &pp.scale(Complex::new(0.0, coord.sin()));
        out = term.matmul(&out);
    }
    out
}

/// Appends a 2×2 unitary as ZYZ Euler rotations (global phase dropped).
fn append_1q(c: &mut Circuit, q: usize, u: &CMatrix) {
    let (phi, theta, lam) = zyz_angles(u);
    for gate in [Gate::Rz(q, lam), Gate::Ry(q, theta), Gate::Rz(q, phi)] {
        let skip = matches!(gate, Gate::Rz(_, t) | Gate::Ry(_, t) if t.abs() < 1e-12);
        if !skip {
            c.push(gate);
        }
    }
}

/// ZYZ Euler angles of a 2×2 unitary: `U ∝ Rz(φ)·Ry(θ)·Rz(λ)`, i.e. up to
/// phase `U = [[cos(θ/2), −e^{iλ}sin(θ/2)], [e^{iφ}sin(θ/2),
/// e^{i(φ+λ)}cos(θ/2)]]`.
fn zyz_angles(u: &CMatrix) -> (f64, f64, f64) {
    let arg = |z: Complex| z.im.atan2(z.re);
    let theta = 2.0 * u[(1, 0)].abs().atan2(u[(0, 0)].abs());
    if u[(0, 0)].abs() < 1e-9 {
        // θ = π: only φ − λ is defined.
        (arg(u[(1, 0)] * (-u[(0, 1)]).conj()) / 2.0 * 2.0, theta, 0.0)
    } else if u[(1, 0)].abs() < 1e-9 {
        // θ = 0: only φ + λ is defined.
        (arg(u[(1, 1)] * u[(0, 0)].conj()), theta, 0.0)
    } else {
        let phi = arg(u[(1, 0)] * u[(0, 0)].conj());
        let lam = arg(-u[(0, 1)] * u[(0, 0)].conj());
        (phi, theta, lam)
    }
}

/// Splits a (phase × local) 4×4 unitary into `(high, low, phase)` with
/// `input = e^{iφ}·high ⊗ low` and both factors special-unitarized.
fn kron_factor(u: &CMatrix) -> (CMatrix, CMatrix, f64) {
    // Blocks: u[(2r+i, 2s+j)] = high[r,s] · low[i,j].
    // Pick the block with the largest norm as a low-representative.
    let block = |r: usize, s: usize| CMatrix::from_fn(2, 2, |i, j| u[(2 * r + i, 2 * s + j)]);
    let (mut br, mut bs, mut best) = (0, 0, -1.0);
    for r in 0..2 {
        for s in 0..2 {
            let nrm = block(r, s).norm_fro();
            if nrm > best {
                best = nrm;
                br = r;
                bs = s;
            }
        }
    }
    let low_raw = block(br, bs);
    // Normalize low to unit determinant.
    let det = low_raw[(0, 0)] * low_raw[(1, 1)] - low_raw[(0, 1)] * low_raw[(1, 0)];
    let det_arg = det.im.atan2(det.re);
    let det_mag = det.abs().sqrt();
    let low = low_raw.scale(Complex::cis(-det_arg / 2.0).scale(1.0 / det_mag));
    // high[r,s] = tr(block(r,s)·low†)/2.
    let mut high = CMatrix::zeros(2, 2);
    for r in 0..2 {
        for s in 0..2 {
            let b = block(r, s);
            let mut tr = Complex::ZERO;
            for i in 0..2 {
                for j in 0..2 {
                    tr += b[(i, j)] * low[(i, j)].conj();
                }
            }
            high[(r, s)] = tr.scale(0.5);
        }
    }
    // Remaining phase: make high special-unitary too.
    let deth = high[(0, 0)] * high[(1, 1)] - high[(0, 1)] * high[(1, 0)];
    let ph = deth.im.atan2(deth.re) / 2.0;
    let high = high.scale(Complex::cis(-ph));
    (high, low, ph)
}

fn transpose(m: &CMatrix) -> CMatrix {
    CMatrix::from_fn(m.cols(), m.rows(), |i, j| m[(j, i)])
}

fn magic_basis() -> CMatrix {
    let h = Complex::from_re(std::f64::consts::FRAC_1_SQRT_2);
    let ih = Complex::new(0.0, std::f64::consts::FRAC_1_SQRT_2);
    let o = Complex::ZERO;
    CMatrix::from_rows(&[
        &[h, o, o, ih],
        &[o, ih, h, o],
        &[o, ih, -h, o],
        &[h, o, o, -ih],
    ])
}

fn det4(u: &CMatrix) -> Complex {
    let minor = |r: usize, c: usize| -> Complex {
        let rows: Vec<usize> = (0..4).filter(|&i| i != r).collect();
        let cols: Vec<usize> = (0..4).filter(|&j| j != c).collect();
        let m = |i: usize, j: usize| u[(rows[i], cols[j])];
        m(0, 0) * (m(1, 1) * m(2, 2) - m(1, 2) * m(2, 1))
            - m(0, 1) * (m(1, 0) * m(2, 2) - m(1, 2) * m(2, 0))
            + m(0, 2) * (m(1, 0) * m(2, 1) - m(1, 1) * m(2, 0))
    };
    let mut det = Complex::ZERO;
    for c in 0..4 {
        let sign = if c % 2 == 0 {
            Complex::ONE
        } else {
            -Complex::ONE
        };
        det += sign * u[(0, c)] * minor(0, c);
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Su4Block;
    use phoenix_mathkit::Xoshiro256;

    fn unitary_of(gates: Vec<Gate>) -> CMatrix {
        Gate::Su4(Box::new(Su4Block {
            a: 0,
            b: 1,
            inner: gates,
        }))
        .matrix2()
        .unwrap()
    }

    fn random_circuit_unitary(rng: &mut Xoshiro256, depth: usize) -> CMatrix {
        let mut gates = Vec::new();
        for _ in 0..depth {
            match rng.next_below(5) {
                0 => gates.push(Gate::Rz(rng.next_below(2), rng.next_range_f64(-3.0, 3.0))),
                1 => gates.push(Gate::Ry(rng.next_below(2), rng.next_range_f64(-3.0, 3.0))),
                2 => gates.push(Gate::Cnot(0, 1)),
                3 => gates.push(Gate::Cnot(1, 0)),
                _ => gates.push(Gate::H(rng.next_below(2))),
            }
        }
        unitary_of(gates)
    }

    fn assert_reconstructs(u: &CMatrix, label: &str) {
        let kak = kak_decompose(u);
        let rebuilt = kak.to_matrix();
        assert!(
            rebuilt.approx_eq(u, 1e-8),
            "{label}: reconstruction failed\ncoords {:?}",
            kak.coords
        );
        // Local factors are 2×2 unitaries.
        for m in [&kak.a0, &kak.a1, &kak.b0, &kak.b1] {
            assert!(m.is_unitary(1e-9), "{label}: non-unitary local factor");
        }
    }

    #[test]
    fn reconstructs_identity_and_cnot() {
        assert_reconstructs(&CMatrix::identity(4), "identity");
        assert_reconstructs(&Gate::Cnot(0, 1).matrix2().unwrap(), "cnot");
        assert_reconstructs(&Gate::Swap(0, 1).matrix2().unwrap(), "swap");
    }

    #[test]
    fn reconstructs_random_unitaries() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        for trial in 0..25 {
            let u = random_circuit_unitary(&mut rng, 12);
            assert_reconstructs(&u, &format!("random {trial}"));
        }
    }

    #[test]
    fn coordinates_match_weyl_analysis() {
        use crate::weyl;
        let mut rng = Xoshiro256::seed_from_u64(5);
        for _ in 0..10 {
            let u = random_circuit_unitary(&mut rng, 10);
            let kak = kak_decompose(&u);
            // The canonical part carries the same entangling class as the
            // input (same Weyl point up to the chamber symmetries, so we
            // compare sorted magnitudes and the CNOT cost).
            let canon = canonical_matrix(kak.coords);
            let sorted_abs = |w: [f64; 3]| {
                let mut v = w.map(f64::abs);
                v.sort_by(f64::total_cmp);
                v
            };
            let w1 = sorted_abs(weyl::weyl_coordinates(&canon));
            let w2 = sorted_abs(weyl::weyl_coordinates(&u));
            for (a, b) in w1.iter().zip(&w2) {
                assert!((a - b).abs() < 1e-7, "{w1:?} vs {w2:?}");
            }
            assert_eq!(weyl::cnot_cost(&canon), weyl::cnot_cost(&u));
        }
    }

    #[test]
    fn to_circuit_emits_at_most_three_2q_gates() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let u = random_circuit_unitary(&mut rng, 14);
        let kak = kak_decompose(&u);
        let c = kak.to_circuit(0, 1);
        assert!(c.counts().pauli_rot2 <= 3);
        // The circuit's unitary matches up to global phase.
        let rebuilt = unitary_of(c.into_gates());
        assert!(
            (rebuilt.unitary_overlap(&u) - 1.0).abs() < 1e-8,
            "circuit deviates"
        );
    }

    #[test]
    fn local_unitaries_need_no_2q_gates() {
        let u = unitary_of(vec![Gate::Ry(0, 0.7), Gate::Rz(1, -0.3), Gate::H(0)]);
        let kak = kak_decompose(&u);
        for c in kak.coords {
            assert!(c.abs() < 1e-8, "{:?}", kak.coords);
        }
        let circ = kak.to_circuit(0, 1);
        assert_eq!(circ.counts().two_qubit(), 0);
        let rebuilt = unitary_of(circ.into_gates());
        assert!((rebuilt.unitary_overlap(&u) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zyz_angles_cover_edge_cases() {
        // Diagonal, anti-diagonal, and generic matrices all round-trip.
        let cases = vec![
            CMatrix::identity(2),
            Gate::X(0).matrix1().unwrap(),
            Gate::Rz(0, 1.3).matrix1().unwrap(),
            Gate::Ry(0, 2.1).matrix1().unwrap(),
            Gate::H(0).matrix1().unwrap(),
        ];
        for u in cases {
            let (phi, theta, lam) = zyz_angles(&u);
            let rz = |t: f64| Gate::Rz(0, t).matrix1().unwrap();
            let ry = |t: f64| Gate::Ry(0, t).matrix1().unwrap();
            let rebuilt = rz(phi).matmul(&ry(theta)).matmul(&rz(lam));
            assert!(
                (rebuilt.unitary_overlap(&u) - 1.0).abs() < 1e-9,
                "zyz failed"
            );
        }
    }
}
