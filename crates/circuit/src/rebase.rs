//! ISA rebase: fusing circuits into the SU(4) ISA.
//!
//! The SU(4) ISA (paper §V-D, following the AshN scheme) admits *any*
//! two-qubit unitary as a single native instruction. Rebasing therefore
//! fuses every maximal run of 2Q gates on the same qubit pair — together
//! with the 1Q gates interleaved on those two qubits — into one
//! [`Su4Block`](crate::Su4Block).

use crate::{Circuit, Gate, Su4Block};

/// Rebases a circuit into the SU(4) ISA.
///
/// Every 2Q gate lands in an [`Su4Block`](crate::Su4Block); a block absorbs
/// consecutive gates on its qubit pair (1Q gates included) until another
/// gate touches one of its qubits. 1Q gates outside any block pass through
/// unchanged (they are free in all metrics).
///
/// # Examples
///
/// ```
/// use phoenix_circuit::{rebase, Circuit, Gate};
///
/// let mut c = Circuit::new(3);
/// c.push(Gate::Cnot(0, 1));
/// c.push(Gate::Rz(1, 0.3));
/// c.push(Gate::Cnot(0, 1)); // same pair: fuses
/// c.push(Gate::Cnot(1, 2)); // new pair: new block
/// let su4 = rebase::to_su4(&c);
/// assert_eq!(su4.counts().su4, 2);
/// ```
pub fn to_su4(c: &Circuit) -> Circuit {
    enum Item {
        Free(Gate),
        Block(usize),
    }
    let n = c.num_qubits();
    let mut items: Vec<Item> = Vec::new();
    let mut blocks: Vec<Option<Su4Block>> = Vec::new();
    // owner[q] = index of the open block containing qubit q.
    let mut owner: Vec<Option<usize>> = vec![None; n];

    let close = |owner: &mut Vec<Option<usize>>, blocks: &[Option<Su4Block>], q: usize| {
        if let Some(bi) = owner[q] {
            if let Some(blk) = &blocks[bi] {
                owner[blk.a] = None;
                owner[blk.b] = None;
            }
        }
    };

    for g in c.gates() {
        match g.qubits() {
            (q, None) => {
                if let Some(bi) = owner[q] {
                    blocks[bi]
                        .as_mut()
                        .expect("open block exists")
                        .inner
                        .push(g.clone());
                } else {
                    items.push(Item::Free(g.clone()));
                }
            }
            (a, Some(b)) => {
                let joined = match (owner[a], owner[b]) {
                    (Some(x), Some(y)) if x == y => {
                        // Flatten nested SU(4) blocks.
                        let blk = blocks[x].as_mut().expect("open block exists");
                        match g {
                            Gate::Su4(inner_blk) => blk.inner.extend(inner_blk.inner.clone()),
                            _ => blk.inner.push(g.clone()),
                        }
                        true
                    }
                    _ => false,
                };
                if !joined {
                    close(&mut owner, &blocks, a);
                    close(&mut owner, &blocks, b);
                    let inner = match g {
                        Gate::Su4(inner_blk) => inner_blk.inner.clone(),
                        _ => vec![g.clone()],
                    };
                    let bi = blocks.len();
                    blocks.push(Some(Su4Block {
                        a: a.min(b),
                        b: a.max(b),
                        inner,
                    }));
                    owner[a] = Some(bi);
                    owner[b] = Some(bi);
                    items.push(Item::Block(bi));
                }
            }
        }
    }

    let mut out = Circuit::new(n);
    for item in items {
        match item {
            Item::Free(g) => out.push(g),
            Item::Block(bi) => {
                let blk = blocks[bi].take().expect("each block emitted once");
                out.push(Gate::Su4(Box::new(blk)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_pauli::{Clifford2Q, Clifford2QKind, Pauli};

    #[test]
    fn single_cnot_becomes_one_block() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot(0, 1));
        let r = to_su4(&c);
        assert_eq!(r.counts().su4, 1);
        assert_eq!(r.counts().cnot, 0);
    }

    #[test]
    fn same_pair_run_fuses_completely() {
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::H(0));
        c.push(Gate::Cnot(1, 0));
        c.push(Gate::PauliRot2 {
            a: 0,
            b: 1,
            pa: Pauli::X,
            pb: Pauli::Y,
            theta: 0.2,
        });
        let r = to_su4(&c);
        assert_eq!(r.counts().su4, 1);
        assert_eq!(r.counts().total, 1);
    }

    #[test]
    fn interleaving_pair_splits_blocks() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(1, 2)); // touches qubit 1: closes first block
        c.push(Gate::Cnot(0, 1)); // new block on (0,1)
        let r = to_su4(&c);
        assert_eq!(r.counts().su4, 3);
    }

    #[test]
    fn disjoint_pairs_do_not_interfere() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(2, 3));
        c.push(Gate::Cnot(0, 1)); // still fuses with the first block
        let r = to_su4(&c);
        assert_eq!(r.counts().su4, 2);
    }

    #[test]
    fn free_oneq_gates_pass_through() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot(0, 1));
        let r = to_su4(&c);
        assert_eq!(r.counts().oneq, 1);
        assert_eq!(r.counts().su4, 1);
    }

    #[test]
    fn clifford2_is_absorbed() {
        let mut c = Circuit::new(2);
        c.push(Gate::Clifford2(Clifford2Q::new(Clifford2QKind::Cxy, 0, 1)));
        c.push(Gate::Clifford2(Clifford2Q::new(Clifford2QKind::Cxy, 0, 1)));
        let r = to_su4(&c);
        assert_eq!(r.counts().su4, 1);
    }

    #[test]
    fn rebase_preserves_2q_depth_upper_bound() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Cnot(2, 3));
        c.push(Gate::Cnot(1, 2));
        let before = c.depth_2q();
        let after = to_su4(&c).depth_2q();
        assert!(after <= before);
    }

    #[test]
    fn nested_su4_flattens() {
        let mut c = Circuit::new(2);
        c.push(Gate::Su4(Box::new(Su4Block {
            a: 0,
            b: 1,
            inner: vec![Gate::Cnot(0, 1)],
        })));
        c.push(Gate::Cnot(0, 1));
        let r = to_su4(&c);
        assert_eq!(r.counts().su4, 1);
        if let Gate::Su4(blk) = &r.gates()[0] {
            assert_eq!(blk.inner.len(), 2);
        } else {
            panic!("expected su4 block");
        }
    }
}
