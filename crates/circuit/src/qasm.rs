//! OpenQASM 2.0 export and import.
//!
//! The exporter lowers high-level gates to the CNOT ISA first, so any
//! circuit in the workspace can be handed to external toolchains; the
//! importer accepts the same gate subset (`h, s, sdg, x, y, z, rx, ry, rz,
//! cx, swap`), enough for round-tripping and for ingesting circuits produced
//! by other compilers.

use crate::{Circuit, Gate};
use std::fmt;

/// Serializes a circuit as an OpenQASM 2.0 program.
///
/// High-level gates (Clifford2Q generators, 2Q Pauli rotations, SU(4)
/// blocks) are lowered to `{1Q, CX}` first.
///
/// # Examples
///
/// ```
/// use phoenix_circuit::{qasm, Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cnot(0, 1));
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("cx q[0], q[1];"));
/// ```
pub fn to_qasm(c: &Circuit) -> String {
    let lowered = c.lower_to_cnot();
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", lowered.num_qubits()));
    for g in lowered.gates() {
        let line = match *g {
            Gate::H(q) => format!("h q[{q}];"),
            Gate::S(q) => format!("s q[{q}];"),
            Gate::Sdg(q) => format!("sdg q[{q}];"),
            Gate::X(q) => format!("x q[{q}];"),
            Gate::Y(q) => format!("y q[{q}];"),
            Gate::Z(q) => format!("z q[{q}];"),
            Gate::Rx(q, t) => format!("rx({t:?}) q[{q}];"),
            Gate::Ry(q, t) => format!("ry({t:?}) q[{q}];"),
            Gate::Rz(q, t) => format!("rz({t:?}) q[{q}];"),
            Gate::Cnot(a, b) => format!("cx q[{a}], q[{b}];"),
            Gate::Swap(a, b) => format!("swap q[{a}], q[{b}];"),
            ref other => unreachable!("lowered circuit contains {other}"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Error from [`from_qasm`]. Every variant names the 1-based source line
/// it was raised on ([`ParseQasmError::line`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ParseQasmError {
    /// A statement is missing its terminating `;`.
    MissingSemicolon {
        /// 1-based source line.
        line: usize,
    },
    /// A `qreg` declaration that is not of the form `qreg q[N];`.
    MalformedQreg {
        /// 1-based source line.
        line: usize,
    },
    /// A gate appeared before any `qreg` declaration, or the program has no
    /// `qreg` at all (then `line` is the last line of the input).
    MissingQreg {
        /// 1-based source line.
        line: usize,
    },
    /// A gate statement without a `q[...]` operand list.
    MissingOperands {
        /// 1-based source line.
        line: usize,
    },
    /// An operand that is not of the form `q[N]`.
    MalformedOperand {
        /// 1-based source line.
        line: usize,
    },
    /// An angle argument that does not parse as a number.
    MalformedAngle {
        /// 1-based source line.
        line: usize,
    },
    /// An angle argument that parses but is NaN or infinite.
    NonFiniteAngle {
        /// 1-based source line.
        line: usize,
        /// The offending value.
        value: f64,
    },
    /// A gate applied to the wrong number of qubits.
    WrongArity {
        /// 1-based source line.
        line: usize,
        /// Operands the gate requires.
        expected: usize,
        /// Operands the statement supplied.
        found: usize,
    },
    /// A gate referencing a qubit outside the declared register.
    QubitOutOfRange {
        /// 1-based source line.
        line: usize,
        /// The referenced qubit index.
        qubit: usize,
        /// The declared register size.
        size: usize,
    },
    /// A gate name outside the supported subset.
    UnsupportedGate {
        /// 1-based source line.
        line: usize,
        /// The unrecognized gate name.
        name: String,
    },
}

impl ParseQasmError {
    /// The 1-based source line the error was raised on.
    pub fn line(&self) -> usize {
        match *self {
            ParseQasmError::MissingSemicolon { line }
            | ParseQasmError::MalformedQreg { line }
            | ParseQasmError::MissingQreg { line }
            | ParseQasmError::MissingOperands { line }
            | ParseQasmError::MalformedOperand { line }
            | ParseQasmError::MalformedAngle { line }
            | ParseQasmError::NonFiniteAngle { line, .. }
            | ParseQasmError::WrongArity { line, .. }
            | ParseQasmError::QubitOutOfRange { line, .. }
            | ParseQasmError::UnsupportedGate { line, .. } => line,
        }
    }
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qasm parse error at line {}: ", self.line())?;
        match self {
            ParseQasmError::MissingSemicolon { .. } => write!(f, "missing ';'"),
            ParseQasmError::MalformedQreg { .. } => write!(f, "malformed qreg"),
            ParseQasmError::MissingQreg { .. } => {
                write!(f, "gate before qreg declaration (or no qreg at all)")
            }
            ParseQasmError::MissingOperands { .. } => write!(f, "missing operands"),
            ParseQasmError::MalformedOperand { .. } => write!(f, "malformed qubit operand"),
            ParseQasmError::MalformedAngle { .. } => write!(f, "malformed angle"),
            ParseQasmError::NonFiniteAngle { value, .. } => {
                write!(f, "non-finite angle {value}")
            }
            ParseQasmError::WrongArity {
                expected, found, ..
            } => write!(f, "expected {expected} qubit operand(s), found {found}"),
            ParseQasmError::QubitOutOfRange { qubit, size, .. } => {
                write!(f, "qubit q[{qubit}] out of range for qreg of size {size}")
            }
            ParseQasmError::UnsupportedGate { name, .. } => {
                write!(f, "unsupported gate '{name}'")
            }
        }
    }
}

impl std::error::Error for ParseQasmError {}

/// Parses the OpenQASM 2.0 subset emitted by [`to_qasm`].
///
/// Supports a single quantum register, the emitted gate set, comments and
/// blank lines. `barrier`/`measure`/classical registers are ignored.
///
/// # Errors
///
/// Returns [`ParseQasmError`] (with the offending line number) on unknown
/// gates, malformed operands, non-finite angles, gates referencing qubits
/// outside the declared register, or a missing `qreg` declaration. No
/// input, however corrupted, makes this function panic.
pub fn from_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut last_line = 0usize;
    for (ln, raw) in text.lines().enumerate() {
        let line = ln + 1; // 1-based for diagnostics
        last_line = line;
        let stmt = raw.split("//").next().unwrap_or("").trim();
        if stmt.is_empty()
            || stmt.starts_with("OPENQASM")
            || stmt.starts_with("include")
            || stmt.starts_with("barrier")
            || stmt.starts_with("creg")
            || stmt.starts_with("measure")
        {
            continue;
        }
        let stmt = stmt
            .strip_suffix(';')
            .ok_or(ParseQasmError::MissingSemicolon { line })?;
        if let Some(rest) = stmt.strip_prefix("qreg") {
            let n = rest
                .trim()
                .strip_prefix("q[")
                .and_then(|s| s.strip_suffix(']'))
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or(ParseQasmError::MalformedQreg { line })?;
            circuit = Some(Circuit::new(n));
            continue;
        }
        let c = circuit
            .as_mut()
            .ok_or(ParseQasmError::MissingQreg { line })?;
        let size = c.num_qubits();
        let (head, operands) = stmt
            .split_once(" q[")
            .map(|(h, rest)| (h.trim(), format!("q[{rest}")))
            .ok_or(ParseQasmError::MissingOperands { line })?;
        let qubits: Vec<usize> = operands
            .split(',')
            .map(|tok| {
                let q = tok
                    .trim()
                    .strip_prefix("q[")
                    .and_then(|s| s.strip_suffix(']'))
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or(ParseQasmError::MalformedOperand { line })?;
                if q >= size {
                    return Err(ParseQasmError::QubitOutOfRange {
                        line,
                        qubit: q,
                        size,
                    });
                }
                Ok(q)
            })
            .collect::<Result<_, _>>()?;
        let (name, angle) = match head.split_once('(') {
            Some((n, rest)) => {
                let a = rest
                    .strip_suffix(')')
                    .and_then(|s| s.trim().parse::<f64>().ok())
                    .ok_or(ParseQasmError::MalformedAngle { line })?;
                if !a.is_finite() {
                    return Err(ParseQasmError::NonFiniteAngle { line, value: a });
                }
                (n.trim(), Some(a))
            }
            None => (head, None),
        };
        let arity = |expected: usize, qs: &[usize]| -> Result<(), ParseQasmError> {
            if qs.len() == expected {
                Ok(())
            } else {
                Err(ParseQasmError::WrongArity {
                    line,
                    expected,
                    found: qs.len(),
                })
            }
        };
        let one = |qs: &[usize]| -> Result<usize, ParseQasmError> {
            arity(1, qs)?;
            Ok(qs[0])
        };
        let two = |qs: &[usize]| -> Result<(usize, usize), ParseQasmError> {
            arity(2, qs)?;
            Ok((qs[0], qs[1]))
        };
        let gate = match (name, angle) {
            ("h", None) => Gate::H(one(&qubits)?),
            ("s", None) => Gate::S(one(&qubits)?),
            ("sdg", None) => Gate::Sdg(one(&qubits)?),
            ("x", None) => Gate::X(one(&qubits)?),
            ("y", None) => Gate::Y(one(&qubits)?),
            ("z", None) => Gate::Z(one(&qubits)?),
            ("rx", Some(t)) => Gate::Rx(one(&qubits)?, t),
            ("ry", Some(t)) => Gate::Ry(one(&qubits)?, t),
            ("rz", Some(t)) => Gate::Rz(one(&qubits)?, t),
            ("cx", None) => {
                let (a, b) = two(&qubits)?;
                Gate::Cnot(a, b)
            }
            ("swap", None) => {
                let (a, b) = two(&qubits)?;
                Gate::Swap(a, b)
            }
            _ => {
                return Err(ParseQasmError::UnsupportedGate {
                    line,
                    name: name.to_string(),
                })
            }
        };
        c.push(gate);
    }
    circuit.ok_or(ParseQasmError::MissingQreg { line: last_line })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_pauli::Pauli;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Sdg(1));
        c.push(Gate::Rz(2, -1.25));
        c.push(Gate::Cnot(0, 2));
        c.push(Gate::Swap(1, 2));
        c
    }

    #[test]
    fn roundtrip_basic_gates() {
        let c = sample();
        let text = to_qasm(&c);
        let back = from_qasm(&text).expect("parses");
        // SWAP is lowered on export, so compare lowered forms.
        assert_eq!(back, c.lower_to_cnot());
    }

    #[test]
    fn high_level_gates_are_lowered_on_export() {
        let mut c = Circuit::new(2);
        c.push(Gate::PauliRot2 {
            a: 0,
            b: 1,
            pa: Pauli::X,
            pb: Pauli::Z,
            theta: 0.5,
        });
        let text = to_qasm(&c);
        assert!(text.contains("cx"));
        assert!(!text.contains("su4"));
        assert!(from_qasm(&text).is_ok());
    }

    #[test]
    fn angles_roundtrip_exactly() {
        let mut c = Circuit::new(1);
        let theta = std::f64::consts::PI / 7.0;
        c.push(Gate::Ry(0, theta));
        let back = from_qasm(&to_qasm(&c)).unwrap();
        assert!(matches!(back.gates()[0], Gate::Ry(0, t) if t == theta));
    }

    #[test]
    fn comments_and_measures_are_skipped() {
        let text = "OPENQASM 2.0;\n// hello\nqreg q[2];\nh q[0]; // inline\nmeasure q[0];\ncx q[0], q[1];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "qreg q[2];\nfoo q[0];";
        let e = from_qasm(text).unwrap_err();
        assert_eq!(e.line(), 2);
        assert!(e.to_string().contains("line 2"));
        assert!(e.to_string().contains("foo"));
        assert!(matches!(e, ParseQasmError::UnsupportedGate { .. }));
    }

    #[test]
    fn gate_before_qreg_is_an_error() {
        assert!(matches!(
            from_qasm("h q[0];"),
            Err(ParseQasmError::MissingQreg { line: 1 })
        ));
    }

    #[test]
    fn out_of_range_qubit_is_rejected_with_a_diagnostic() {
        let text = "qreg q[1];\nh q[5];";
        let e = from_qasm(text).unwrap_err();
        assert_eq!(
            e,
            ParseQasmError::QubitOutOfRange {
                line: 2,
                qubit: 5,
                size: 1
            }
        );
    }

    #[test]
    fn non_finite_angles_are_rejected() {
        for bad in ["NaN", "inf", "-inf"] {
            let text = format!("qreg q[1];\nrz({bad}) q[0];");
            let e = from_qasm(&text).unwrap_err();
            assert!(
                matches!(e, ParseQasmError::NonFiniteAngle { line: 2, .. }),
                "{bad}: {e}"
            );
        }
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let e = from_qasm("qreg q[3];\ncx q[0], q[1], q[2];").unwrap_err();
        assert!(matches!(
            e,
            ParseQasmError::WrongArity {
                line: 2,
                expected: 2,
                found: 3
            }
        ));
    }

    #[test]
    fn no_input_panics_the_parser() {
        // A selection of hostile inputs: all must return Err or Ok, never
        // panic (the fault-injection suite fuzzes this further).
        for text in [
            "",
            ";",
            "qreg q[];",
            "qreg q[99999999999999999999999];",
            "qreg q[2];\ncx q[0],;",
            "qreg q[2];\nrz() q[0];",
            "qreg q[2];\nrz(1e999) q[0];",
            "qreg q[2];\nh q[18446744073709551615];",
        ] {
            let r = std::panic::catch_unwind(|| from_qasm(text));
            assert!(r.is_ok(), "parser panicked on {text:?}");
        }
    }
}
