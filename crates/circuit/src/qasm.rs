//! OpenQASM 2.0 export and import.
//!
//! The exporter lowers high-level gates to the CNOT ISA first, so any
//! circuit in the workspace can be handed to external toolchains; the
//! importer accepts the same gate subset (`h, s, sdg, x, y, z, rx, ry, rz,
//! cx, swap`), enough for round-tripping and for ingesting circuits produced
//! by other compilers.

use crate::{Circuit, Gate};
use std::fmt;

/// Serializes a circuit as an OpenQASM 2.0 program.
///
/// High-level gates (Clifford2Q generators, 2Q Pauli rotations, SU(4)
/// blocks) are lowered to `{1Q, CX}` first.
///
/// # Examples
///
/// ```
/// use phoenix_circuit::{qasm, Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H(0));
/// c.push(Gate::Cnot(0, 1));
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("cx q[0], q[1];"));
/// ```
pub fn to_qasm(c: &Circuit) -> String {
    let lowered = c.lower_to_cnot();
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", lowered.num_qubits()));
    for g in lowered.gates() {
        let line = match *g {
            Gate::H(q) => format!("h q[{q}];"),
            Gate::S(q) => format!("s q[{q}];"),
            Gate::Sdg(q) => format!("sdg q[{q}];"),
            Gate::X(q) => format!("x q[{q}];"),
            Gate::Y(q) => format!("y q[{q}];"),
            Gate::Z(q) => format!("z q[{q}];"),
            Gate::Rx(q, t) => format!("rx({t:?}) q[{q}];"),
            Gate::Ry(q, t) => format!("ry({t:?}) q[{q}];"),
            Gate::Rz(q, t) => format!("rz({t:?}) q[{q}];"),
            Gate::Cnot(a, b) => format!("cx q[{a}], q[{b}];"),
            Gate::Swap(a, b) => format!("swap q[{a}], q[{b}];"),
            ref other => unreachable!("lowered circuit contains {other}"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Error from [`from_qasm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseQasmError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseQasmError {}

/// Parses the OpenQASM 2.0 subset emitted by [`to_qasm`].
///
/// Supports a single quantum register, the emitted gate set, comments and
/// blank lines. `barrier`/`measure`/classical registers are ignored.
///
/// # Errors
///
/// Returns [`ParseQasmError`] on unknown gates, malformed operands, or a
/// missing `qreg` declaration.
pub fn from_qasm(text: &str) -> Result<Circuit, ParseQasmError> {
    let err = |line: usize, message: &str| ParseQasmError {
        line: line + 1,
        message: message.to_string(),
    };
    let mut circuit: Option<Circuit> = None;
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty()
            || line.starts_with("OPENQASM")
            || line.starts_with("include")
            || line.starts_with("barrier")
            || line.starts_with("creg")
            || line.starts_with("measure")
        {
            continue;
        }
        let line = line
            .strip_suffix(';')
            .ok_or_else(|| err(ln, "missing ';'"))?;
        if let Some(rest) = line.strip_prefix("qreg") {
            let n = rest
                .trim()
                .strip_prefix("q[")
                .and_then(|s| s.strip_suffix(']'))
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| err(ln, "malformed qreg"))?;
            circuit = Some(Circuit::new(n));
            continue;
        }
        let c = circuit
            .as_mut()
            .ok_or_else(|| err(ln, "gate before qreg declaration"))?;
        let (head, operands) = line
            .split_once(" q[")
            .map(|(h, rest)| (h.trim(), format!("q[{rest}")))
            .ok_or_else(|| err(ln, "missing operands"))?;
        let qubits: Vec<usize> = operands
            .split(',')
            .map(|tok| {
                tok.trim()
                    .strip_prefix("q[")
                    .and_then(|s| s.strip_suffix(']'))
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| err(ln, "malformed qubit operand"))
            })
            .collect::<Result<_, _>>()?;
        let (name, angle) = match head.split_once('(') {
            Some((n, rest)) => {
                let a = rest
                    .strip_suffix(')')
                    .and_then(|s| s.trim().parse::<f64>().ok())
                    .ok_or_else(|| err(ln, "malformed angle"))?;
                (n.trim(), Some(a))
            }
            None => (head, None),
        };
        let one = |qs: &[usize]| -> Result<usize, ParseQasmError> {
            if qs.len() == 1 {
                Ok(qs[0])
            } else {
                Err(err(ln, "expected one qubit"))
            }
        };
        let two = |qs: &[usize]| -> Result<(usize, usize), ParseQasmError> {
            if qs.len() == 2 {
                Ok((qs[0], qs[1]))
            } else {
                Err(err(ln, "expected two qubits"))
            }
        };
        let gate = match (name, angle) {
            ("h", None) => Gate::H(one(&qubits)?),
            ("s", None) => Gate::S(one(&qubits)?),
            ("sdg", None) => Gate::Sdg(one(&qubits)?),
            ("x", None) => Gate::X(one(&qubits)?),
            ("y", None) => Gate::Y(one(&qubits)?),
            ("z", None) => Gate::Z(one(&qubits)?),
            ("rx", Some(t)) => Gate::Rx(one(&qubits)?, t),
            ("ry", Some(t)) => Gate::Ry(one(&qubits)?, t),
            ("rz", Some(t)) => Gate::Rz(one(&qubits)?, t),
            ("cx", None) => {
                let (a, b) = two(&qubits)?;
                Gate::Cnot(a, b)
            }
            ("swap", None) => {
                let (a, b) = two(&qubits)?;
                Gate::Swap(a, b)
            }
            _ => return Err(err(ln, &format!("unsupported gate '{name}'"))),
        };
        c.push(gate);
    }
    circuit.ok_or_else(|| err(0, "no qreg declaration found"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_pauli::Pauli;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Sdg(1));
        c.push(Gate::Rz(2, -1.25));
        c.push(Gate::Cnot(0, 2));
        c.push(Gate::Swap(1, 2));
        c
    }

    #[test]
    fn roundtrip_basic_gates() {
        let c = sample();
        let text = to_qasm(&c);
        let back = from_qasm(&text).expect("parses");
        // SWAP is lowered on export, so compare lowered forms.
        assert_eq!(back, c.lower_to_cnot());
    }

    #[test]
    fn high_level_gates_are_lowered_on_export() {
        let mut c = Circuit::new(2);
        c.push(Gate::PauliRot2 {
            a: 0,
            b: 1,
            pa: Pauli::X,
            pb: Pauli::Z,
            theta: 0.5,
        });
        let text = to_qasm(&c);
        assert!(text.contains("cx"));
        assert!(!text.contains("su4"));
        assert!(from_qasm(&text).is_ok());
    }

    #[test]
    fn angles_roundtrip_exactly() {
        let mut c = Circuit::new(1);
        let theta = std::f64::consts::PI / 7.0;
        c.push(Gate::Ry(0, theta));
        let back = from_qasm(&to_qasm(&c)).unwrap();
        assert!(matches!(back.gates()[0], Gate::Ry(0, t) if t == theta));
    }

    #[test]
    fn comments_and_measures_are_skipped() {
        let text = "OPENQASM 2.0;\n// hello\nqreg q[2];\nh q[0]; // inline\nmeasure q[0];\ncx q[0], q[1];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "qreg q[2];\nfoo q[0];";
        let e = from_qasm(text).unwrap_err();
        assert!(e.to_string().contains("line 2"));
        assert!(e.to_string().contains("foo"));
    }

    #[test]
    fn gate_before_qreg_is_an_error() {
        assert!(from_qasm("h q[0];").is_err());
    }

    #[test]
    fn out_of_range_qubit_panics_via_circuit_push() {
        // Circuit::push validates; surface as panic for now.
        let text = "qreg q[1];\nh q[5];";
        assert!(std::panic::catch_unwind(|| from_qasm(text)).is_err());
    }
}
