//! Qubit interaction graphs, head/tail subgraphs, distance matrices, and the
//! routing-similarity factor of Eq. (7).
//!
//! Two subcircuits whose qubit-interaction behaviour is similar need less
//! mapping-transition overhead between them (Fig. 4(b) of the paper). The
//! similarity is measured as the summed row-wise cosine similarity of the
//! *distance matrices* of the preceding subcircuit's **tail** interaction
//! graph and the succeeding subcircuit's **head** interaction graph.

use crate::Circuit;
use phoenix_pauli::QubitMask;
use std::collections::{BTreeSet, VecDeque};

/// The set of unordered qubit pairs coupled by any 2Q gate.
pub fn interaction_edges(c: &Circuit) -> BTreeSet<(usize, usize)> {
    let mut edges = BTreeSet::new();
    for g in c.gates() {
        if let (a, Some(b)) = g.qubits() {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    edges
}

/// Bit mask of qubits touched by 2Q gates.
pub fn support_2q(c: &Circuit) -> QubitMask {
    let mut m = QubitMask::zeros(c.num_qubits());
    for g in c.gates() {
        if let (a, Some(b)) = g.qubits() {
            m.set_bit(a);
            m.set_bit(b);
        }
    }
    m
}

/// The *head* interaction graph: scanning from the left, 2Q gates are
/// incorporated until every (2Q-active) qubit has been acted upon.
pub fn head_edges(c: &Circuit) -> BTreeSet<(usize, usize)> {
    scan_edges(c.gates().iter(), support_2q(c))
}

/// The *tail* interaction graph: as [`head_edges`] but scanning from the
/// right.
pub fn tail_edges(c: &Circuit) -> BTreeSet<(usize, usize)> {
    scan_edges(c.gates().iter().rev(), support_2q(c))
}

fn scan_edges<'a>(
    gates: impl Iterator<Item = &'a crate::Gate>,
    target: QubitMask,
) -> BTreeSet<(usize, usize)> {
    let mut edges = BTreeSet::new();
    let mut covered = QubitMask::zeros(0);
    for g in gates {
        if covered == target {
            break;
        }
        if let (a, Some(b)) = g.qubits() {
            edges.insert((a.min(b), a.max(b)));
            covered.set_bit(a);
            covered.set_bit(b);
        }
    }
    edges
}

/// All-pairs shortest-path matrix of the interaction graph restricted to
/// `nodes` (matrix index = position in `nodes`). Unreachable pairs get
/// distance `nodes.len()`.
pub fn distance_matrix(nodes: &[usize], edges: &BTreeSet<(usize, usize)>) -> Vec<Vec<f64>> {
    let k = nodes.len();
    let pos = |q: usize| nodes.iter().position(|&n| n == q);
    // Local adjacency.
    let mut adj = vec![Vec::new(); k];
    for &(a, b) in edges {
        if let (Some(i), Some(j)) = (pos(a), pos(b)) {
            adj[i].push(j);
            adj[j].push(i);
        }
    }
    let far = k as f64;
    let mut d = vec![vec![far; k]; k];
    for (s, row) in d.iter_mut().enumerate() {
        row[s] = 0.0;
        let mut queue = VecDeque::from([s]);
        let mut dist = vec![usize::MAX; k];
        dist[s] = 0;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    row[v] = dist[v] as f64;
                    queue.push_back(v);
                }
            }
        }
    }
    d
}

/// The similarity factor `s` of Eq. (7): the sum over rows of the cosine
/// similarity between corresponding rows of two distance matrices.
///
/// Rows with zero norm (isolated vertices in 1×1 graphs) are skipped.
///
/// # Panics
///
/// Panics if the matrices have different dimensions.
pub fn similarity(d1: &[Vec<f64>], d2: &[Vec<f64>]) -> f64 {
    assert_eq!(d1.len(), d2.len(), "distance matrices must align");
    let mut s = 0.0;
    for (r1, r2) in d1.iter().zip(d2) {
        assert_eq!(r1.len(), r2.len(), "distance matrices must align");
        let dot: f64 = r1.iter().zip(r2).map(|(a, b)| a * b).sum();
        let n1: f64 = r1.iter().map(|a| a * a).sum::<f64>().sqrt();
        let n2: f64 = r2.iter().map(|a| a * a).sum::<f64>().sqrt();
        if n1 > 0.0 && n2 > 0.0 {
            s += dot / (n1 * n2);
        }
    }
    s
}

/// Convenience: the Eq. (7) similarity between the tail of `prev` and the
/// head of `next`, computed over the union of their 2Q supports.
pub fn routing_similarity(prev: &Circuit, next: &Circuit) -> f64 {
    let union = support_2q(prev) | support_2q(next);
    let nodes: Vec<usize> = union.to_indices();
    if nodes.is_empty() {
        return 1.0;
    }
    let d1 = distance_matrix(&nodes, &tail_edges(prev));
    let d2 = distance_matrix(&nodes, &head_edges(next));
    similarity(&d1, &d2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    fn chain(n: usize, pairs: &[(usize, usize)]) -> Circuit {
        let mut c = Circuit::new(n);
        for &(a, b) in pairs {
            c.push(Gate::Cnot(a, b));
        }
        c
    }

    #[test]
    fn interaction_edges_dedup() {
        let c = chain(3, &[(0, 1), (1, 0), (1, 2)]);
        let e = interaction_edges(&c);
        assert_eq!(e.len(), 2);
        assert!(e.contains(&(0, 1)));
        assert!(e.contains(&(1, 2)));
    }

    #[test]
    fn head_stops_once_covered() {
        // First two gates already cover {0,1,2}; the (0,2) edge is not in
        // the head graph.
        let c = chain(3, &[(0, 1), (1, 2), (0, 2)]);
        let h = head_edges(&c);
        assert_eq!(h.len(), 2);
        assert!(!h.contains(&(0, 2)));
        let t = tail_edges(&c);
        assert!(t.contains(&(0, 2)));
        assert!(t.contains(&(1, 2)));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn distance_matrix_of_path() {
        let c = chain(3, &[(0, 1), (1, 2)]);
        let d = distance_matrix(&[0, 1, 2], &interaction_edges(&c));
        assert_eq!(d[0][2], 2.0);
        assert_eq!(d[0][1], 1.0);
        assert_eq!(d[1][1], 0.0);
    }

    #[test]
    fn disconnected_distance_is_large() {
        let c = chain(4, &[(0, 1), (2, 3)]);
        let d = distance_matrix(&[0, 1, 2, 3], &interaction_edges(&c));
        assert_eq!(d[0][2], 4.0);
    }

    #[test]
    fn identical_circuits_have_max_similarity() {
        let a = chain(3, &[(0, 1), (1, 2)]);
        let s_same = routing_similarity(&a, &a);
        let b = chain(3, &[(0, 2), (0, 1)]);
        let s_diff = routing_similarity(&a, &b);
        assert!(
            s_same >= s_diff,
            "identical interaction should be at least as similar: {s_same} vs {s_diff}"
        );
        // Self-similarity of an aligned pair is the row count.
        assert!((s_same - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_circuits_are_trivially_similar() {
        let a = Circuit::new(2);
        assert_eq!(routing_similarity(&a, &a), 1.0);
    }
}
