//! The gate vocabulary.

use phoenix_mathkit::{CMatrix, Complex};
use phoenix_pauli::{Clifford2Q, Pauli};
use std::fmt;

/// A fused SU(4) block: an arbitrary two-qubit unitary represented by the
/// basic-gate sequence it was fused from.
///
/// The SU(4) ISA of the paper (its §V-D, following the AshN gate scheme)
/// treats *any* two-qubit unitary as one native instruction; we keep the
/// constituent gates so the block remains simulable and lowerable.
#[derive(Debug, Clone, PartialEq)]
pub struct Su4Block {
    /// First qubit (lower index by convention).
    pub a: usize,
    /// Second qubit.
    pub b: usize,
    /// The fused gate sequence; every gate acts only on `a` and/or `b`.
    pub inner: Vec<Gate>,
}

/// A quantum gate.
///
/// Angle conventions: `Rx/Ry/Rz(q, θ) = exp(-i·θ/2·P)` and
/// [`Gate::PauliRot2`] implements `exp(-i·θ/2·(P_a ⊗ P_b))`, so a
/// Hamiltonian term `h·P` within a Trotter step corresponds to `θ = 2h`.
///
/// # Examples
///
/// ```
/// use phoenix_circuit::Gate;
///
/// let g = Gate::Cnot(0, 1);
/// assert!(g.is_two_qubit());
/// assert_eq!(g.qubits(), (0, Some(1)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(usize),
    /// Phase gate `S = diag(1, i)`.
    S(usize),
    /// Inverse phase gate.
    Sdg(usize),
    /// Pauli X.
    X(usize),
    /// Pauli Y.
    Y(usize),
    /// Pauli Z.
    Z(usize),
    /// `exp(-i·θ/2·X)`.
    Rx(usize, f64),
    /// `exp(-i·θ/2·Y)`.
    Ry(usize, f64),
    /// `exp(-i·θ/2·Z)`.
    Rz(usize, f64),
    /// Controlled-NOT `(control, target)`.
    Cnot(usize, usize),
    /// SWAP.
    Swap(usize, usize),
    /// A 2Q Clifford generator `C(σ₀,σ₁)` (high-level; CNOT-equivalent).
    Clifford2(Clifford2Q),
    /// Two-qubit Pauli rotation `exp(-i·θ/2·(pa ⊗ pb))` (high-level).
    PauliRot2 {
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
        /// Pauli on `a` (non-identity).
        pa: Pauli,
        /// Pauli on `b` (non-identity).
        pb: Pauli,
        /// Rotation angle.
        theta: f64,
    },
    /// A fused SU(4) block (the SU(4)-ISA native 2Q instruction).
    Su4(Box<Su4Block>),
}

impl Gate {
    /// The qubits the gate acts on: `(first, second)`.
    pub fn qubits(&self) -> (usize, Option<usize>) {
        match *self {
            Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _) => (q, None),
            Gate::Cnot(a, b) | Gate::Swap(a, b) => (a, Some(b)),
            Gate::Clifford2(c) => (c.a, Some(c.b)),
            Gate::PauliRot2 { a, b, .. } => (a, Some(b)),
            Gate::Su4(ref blk) => (blk.a, Some(blk.b)),
        }
    }

    /// Whether the gate acts on two qubits.
    pub fn is_two_qubit(&self) -> bool {
        self.qubits().1.is_some()
    }

    /// Whether the gate acts on qubit `q`.
    pub fn acts_on(&self, q: usize) -> bool {
        let (a, b) = self.qubits();
        a == q || b == Some(q)
    }

    /// Returns a copy with every qubit index remapped through `f`.
    ///
    /// Used by routing to translate logical circuits to physical ones.
    pub fn map_qubits(&self, f: &mut impl FnMut(usize) -> usize) -> Gate {
        match self {
            Gate::H(q) => Gate::H(f(*q)),
            Gate::S(q) => Gate::S(f(*q)),
            Gate::Sdg(q) => Gate::Sdg(f(*q)),
            Gate::X(q) => Gate::X(f(*q)),
            Gate::Y(q) => Gate::Y(f(*q)),
            Gate::Z(q) => Gate::Z(f(*q)),
            Gate::Rx(q, t) => Gate::Rx(f(*q), *t),
            Gate::Ry(q, t) => Gate::Ry(f(*q), *t),
            Gate::Rz(q, t) => Gate::Rz(f(*q), *t),
            Gate::Cnot(a, b) => Gate::Cnot(f(*a), f(*b)),
            Gate::Swap(a, b) => Gate::Swap(f(*a), f(*b)),
            Gate::Clifford2(c) => Gate::Clifford2(Clifford2Q::new(c.kind, f(c.a), f(c.b))),
            Gate::PauliRot2 {
                a,
                b,
                pa,
                pb,
                theta,
            } => Gate::PauliRot2 {
                a: f(*a),
                b: f(*b),
                pa: *pa,
                pb: *pb,
                theta: *theta,
            },
            Gate::Su4(blk) => Gate::Su4(Box::new(Su4Block {
                a: f(blk.a),
                b: f(blk.b),
                inner: blk.inner.iter().map(|g| g.map_qubits(f)).collect(),
            })),
        }
    }

    /// 2×2 matrix of a 1Q gate, or `None` for 2Q gates.
    pub fn matrix1(&self) -> Option<CMatrix> {
        let o = Complex::ZERO;
        let l = Complex::ONE;
        let i = Complex::I;
        let h = 0.5f64.sqrt();
        Some(match *self {
            Gate::H(_) => CMatrix::from_rows(&[
                &[Complex::from_re(h), Complex::from_re(h)],
                &[Complex::from_re(h), Complex::from_re(-h)],
            ]),
            Gate::S(_) => CMatrix::from_rows(&[&[l, o], &[o, i]]),
            Gate::Sdg(_) => CMatrix::from_rows(&[&[l, o], &[o, -i]]),
            Gate::X(_) => Pauli::X.to_matrix(),
            Gate::Y(_) => Pauli::Y.to_matrix(),
            Gate::Z(_) => Pauli::Z.to_matrix(),
            Gate::Rx(_, t) => rot_matrix(Pauli::X, t),
            Gate::Ry(_, t) => rot_matrix(Pauli::Y, t),
            Gate::Rz(_, t) => rot_matrix(Pauli::Z, t),
            _ => return None,
        })
    }

    /// 4×4 matrix of a 2Q gate in the *local little-endian* order (the
    /// gate's first qubit is the basis LSB), or `None` for 1Q gates.
    pub fn matrix2(&self) -> Option<CMatrix> {
        let o = Complex::ZERO;
        let l = Complex::ONE;
        Some(match self {
            Gate::Cnot(..) => phoenix_pauli::Clifford2QKind::Czx.matrix4(),
            Gate::Swap(..) => {
                CMatrix::from_rows(&[&[l, o, o, o], &[o, o, l, o], &[o, l, o, o], &[o, o, o, l]])
            }
            Gate::Clifford2(c) => c.kind.matrix4(),
            Gate::PauliRot2 { pa, pb, theta, .. } => {
                // exp(-iθ/2 (pb ⊗ pa)) in little-endian kron order.
                let p = pb.to_matrix().kron(&pa.to_matrix());
                let half = *theta / 2.0;
                &CMatrix::identity(4).scale(Complex::from_re(half.cos()))
                    + &p.scale(Complex::new(0.0, -half.sin()))
            }
            Gate::Su4(blk) => {
                let mut u = CMatrix::identity(4);
                let local = |q: usize| usize::from(q == blk.b);
                for g in &blk.inner {
                    let gm = embed_local(g, blk.a, blk.b, &local);
                    u = gm.matmul(&u);
                }
                u
            }
            _ => return None,
        })
    }
}

/// `exp(-i·θ/2·P)` as a 2×2 matrix.
fn rot_matrix(p: Pauli, theta: f64) -> CMatrix {
    let half = theta / 2.0;
    &CMatrix::identity(2).scale(Complex::from_re(half.cos()))
        + &p.to_matrix().scale(Complex::new(0.0, -half.sin()))
}

/// Embeds a gate acting on qubits {a, b} into the 4×4 local space.
fn embed_local(g: &Gate, a: usize, b: usize, local: &impl Fn(usize) -> usize) -> CMatrix {
    if let Some(m1) = g.matrix1() {
        let (q, _) = g.qubits();
        assert!(q == a || q == b, "su4 inner gate leaves the block");
        if local(q) == 0 {
            CMatrix::identity(2).kron(&m1)
        } else {
            m1.kron(&CMatrix::identity(2))
        }
    } else {
        let m2 = g.matrix2().expect("gate is 1q or 2q");
        let (ga, gb) = g.qubits();
        let gb = gb.expect("2q gate");
        assert!(
            (ga == a || ga == b) && (gb == a || gb == b),
            "su4 inner gate leaves the block"
        );
        if local(ga) == 0 {
            m2
        } else {
            // Swap the roles of the two local qubits: conjugate by SWAP.
            let swap = Gate::Swap(0, 1).matrix2().expect("swap is 2q");
            swap.matmul(&m2).matmul(&swap)
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::H(q) => write!(f, "h q{q}"),
            Gate::S(q) => write!(f, "s q{q}"),
            Gate::Sdg(q) => write!(f, "sdg q{q}"),
            Gate::X(q) => write!(f, "x q{q}"),
            Gate::Y(q) => write!(f, "y q{q}"),
            Gate::Z(q) => write!(f, "z q{q}"),
            Gate::Rx(q, t) => write!(f, "rx({t:.4}) q{q}"),
            Gate::Ry(q, t) => write!(f, "ry({t:.4}) q{q}"),
            Gate::Rz(q, t) => write!(f, "rz({t:.4}) q{q}"),
            Gate::Cnot(a, b) => write!(f, "cx q{a}, q{b}"),
            Gate::Swap(a, b) => write!(f, "swap q{a}, q{b}"),
            Gate::Clifford2(c) => write!(f, "{c}"),
            Gate::PauliRot2 {
                a,
                b,
                pa,
                pb,
                theta,
            } => {
                write!(f, "r{}{}({theta:.4}) q{a}, q{b}", pa, pb)
            }
            Gate::Su4(blk) => write!(f, "su4[{} gates] q{}, q{}", blk.inner.len(), blk.a, blk.b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_pauli::Clifford2QKind;

    #[test]
    fn qubits_and_arity() {
        assert_eq!(Gate::H(3).qubits(), (3, None));
        assert!(!Gate::Rz(0, 0.1).is_two_qubit());
        assert!(Gate::Swap(1, 2).is_two_qubit());
        assert!(Gate::Clifford2(Clifford2Q::new(Clifford2QKind::Cxy, 4, 7)).acts_on(7));
    }

    #[test]
    fn map_qubits_relabels() {
        let g = Gate::Cnot(0, 1).map_qubits(&mut |q| q + 10);
        assert_eq!(g, Gate::Cnot(10, 11));
    }

    #[test]
    fn rotation_matrices_are_unitary() {
        for g in [Gate::Rx(0, 0.7), Gate::Ry(0, -1.3), Gate::Rz(0, 2.9)] {
            assert!(g.matrix1().unwrap().is_unitary(1e-13), "{g}");
        }
    }

    #[test]
    fn rz_is_diagonal_phase() {
        let m = Gate::Rz(0, std::f64::consts::PI).matrix1().unwrap();
        // Rz(π) = diag(e^{-iπ/2}, e^{iπ/2}) = diag(-i, i)
        assert!(m[(0, 0)].approx_eq(-Complex::I, 1e-15));
        assert!(m[(1, 1)].approx_eq(Complex::I, 1e-15));
        assert!(m[(0, 1)].approx_eq(Complex::ZERO, 1e-15));
    }

    #[test]
    fn pauli_rot2_zz_is_diagonal() {
        let g = Gate::PauliRot2 {
            a: 0,
            b: 1,
            pa: Pauli::Z,
            pb: Pauli::Z,
            theta: 0.8,
        };
        let m = g.matrix2().unwrap();
        assert!(m.is_unitary(1e-13));
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(m[(i, j)].approx_eq(Complex::ZERO, 1e-15));
                }
            }
        }
        // diag phases: exp(∓iθ/2) with sign from Z⊗Z eigenvalue (+,-,-,+)
        assert!(m[(0, 0)].approx_eq(Complex::cis(-0.4), 1e-13));
        assert!(m[(1, 1)].approx_eq(Complex::cis(0.4), 1e-13));
        assert!(m[(3, 3)].approx_eq(Complex::cis(-0.4), 1e-13));
    }

    #[test]
    fn su4_block_of_cnot_equals_cnot_matrix() {
        let blk = Gate::Su4(Box::new(Su4Block {
            a: 2,
            b: 5,
            inner: vec![Gate::Cnot(2, 5)],
        }));
        let cnot = Gate::Cnot(0, 1).matrix2().unwrap();
        assert!(blk.matrix2().unwrap().approx_eq(&cnot, 1e-13));
    }

    #[test]
    fn su4_block_respects_qubit_orientation() {
        // A CNOT with control on the block's *second* qubit must be the
        // SWAP-conjugated matrix.
        let blk = Gate::Su4(Box::new(Su4Block {
            a: 2,
            b: 5,
            inner: vec![Gate::Cnot(5, 2)],
        }));
        let cnot = Gate::Cnot(0, 1).matrix2().unwrap();
        let swap = Gate::Swap(0, 1).matrix2().unwrap();
        let flipped = swap.matmul(&cnot).matmul(&swap);
        assert!(blk.matrix2().unwrap().approx_eq(&flipped, 1e-13));
    }

    #[test]
    fn display_mentions_qubits() {
        assert_eq!(Gate::Cnot(1, 4).to_string(), "cx q1, q4");
        assert!(Gate::Rz(2, 0.5).to_string().contains("q2"));
    }
}
