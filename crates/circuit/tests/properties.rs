//! Property-based tests of circuit-level invariants.

use phoenix_circuit::{layers, peephole, qasm, rebase, synthesis, Circuit, Gate};
use phoenix_pauli::{Pauli, PauliString};
use proptest::prelude::*;

fn arb_gate(n: usize) -> impl Strategy<Value = Gate> {
    (0usize..8, 0usize..n, 0usize..n, -3.0f64..3.0).prop_filter_map(
        "needs distinct qubits",
        move |(kind, a, b, t)| {
            Some(match kind {
                0 => Gate::H(a),
                1 => Gate::S(a),
                2 => Gate::Rz(a, t),
                3 => Gate::Rx(a, t),
                4 => Gate::Ry(a, t),
                5 if a != b => Gate::Cnot(a, b),
                6 if a != b => Gate::Swap(a, b),
                7 if a != b => Gate::PauliRot2 {
                    a,
                    b,
                    pa: Pauli::XYZ[kind % 3],
                    pb: Pauli::XYZ[(kind + 1) % 3],
                    theta: t,
                },
                _ => return None,
            })
        },
    )
}

fn arb_circuit(n: usize, max_gates: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(n), 0..max_gates)
        .prop_map(move |gates| Circuit::from_gates(n, gates))
}

fn pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(0usize..4, n).prop_filter_map("identity", move |ps| {
        let mut p = PauliString::identity(n);
        for (q, &k) in ps.iter().enumerate() {
            p.set(q, [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z][k]);
        }
        (!p.is_identity()).then_some(p)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lowering to CNOT keeps only 1Q gates and CNOTs and never shrinks the
    /// gate list.
    #[test]
    fn lowering_targets_cnot_isa(c in arb_circuit(5, 24)) {
        let low = c.lower_to_cnot();
        let k = low.counts();
        prop_assert_eq!(k.swap + k.clifford2 + k.pauli_rot2 + k.su4, 0);
        prop_assert!(low.len() >= c.len());
        prop_assert_eq!(low.lower_to_cnot(), low, "idempotent");
    }

    /// Peephole never increases CNOT count or 2Q depth.
    #[test]
    fn peephole_is_monotone(c in arb_circuit(5, 24)) {
        let low = c.lower_to_cnot();
        let opt = peephole::optimize(&c);
        prop_assert!(opt.counts().cnot <= low.counts().cnot);
        prop_assert!(opt.depth_2q() <= low.depth_2q());
        prop_assert_eq!(peephole::optimize(&opt), opt.clone(), "fixpoint");
    }

    /// QASM round-trips the lowered circuit exactly.
    #[test]
    fn qasm_roundtrip(c in arb_circuit(4, 16)) {
        let text = qasm::to_qasm(&c);
        let back = qasm::from_qasm(&text).unwrap();
        prop_assert_eq!(back, c.lower_to_cnot());
    }

    /// Parse → emit is a textual fixpoint: once a circuit has been through
    /// one emit/parse cycle, further cycles reproduce the text verbatim
    /// (angles are emitted with `{:?}`, which round-trips f64 exactly).
    #[test]
    fn qasm_parse_emit_parse_is_a_fixpoint(c in arb_circuit(4, 16)) {
        let text = qasm::to_qasm(&c);
        let once = qasm::from_qasm(&text).unwrap();
        let text2 = qasm::to_qasm(&once);
        prop_assert_eq!(&text, &text2);
        prop_assert_eq!(qasm::from_qasm(&text2).unwrap(), once);
    }

    /// Replacing any single emitted gate statement with garbage yields an
    /// error that names exactly that 1-based line.
    #[test]
    fn qasm_errors_name_the_corrupted_line(
        c in arb_circuit(4, 16),
        pick in 0usize..4096,
        which in 0usize..6,
    ) {
        const GARBAGE: [&str; 6] = [
            "frobnicate q[0];",
            "h q[0]",          // missing semicolon
            "h q[99];",        // out of range
            "rz(nope) q[0];",
            "cx q[0];",        // wrong arity
            "h [0];",          // missing operand list
        ];
        let text = qasm::to_qasm(&c);
        let mut lines: Vec<&str> = text.lines().collect();
        // Lines 1-3 are the header + qreg; only corrupt gate statements.
        prop_assume!(lines.len() > 3);
        let target = 3 + pick % (lines.len() - 3);
        lines[target] = GARBAGE[which];
        let corrupted = lines.join("\n");
        let err = qasm::from_qasm(&corrupted).unwrap_err();
        prop_assert_eq!(err.line(), target + 1, "{}", err);
        prop_assert!(err.to_string().contains(&format!("line {}", target + 1)));
    }

    /// No byte-level mutation of valid output makes the parser panic — it
    /// always returns `Ok` or a line-numbered `Err` within the input.
    #[test]
    fn qasm_parser_never_panics_on_mutated_text(
        c in arb_circuit(3, 10),
        pos in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = qasm::to_qasm(&c).into_bytes();
        prop_assume!(!bytes.is_empty());
        let at = pos % bytes.len();
        bytes[at] = byte;
        if let Ok(mutated) = String::from_utf8(bytes) {
            match qasm::from_qasm(&mutated) {
                Ok(_) => {}
                Err(e) => {
                    let line = e.line();
                    prop_assert!(line >= 1);
                    prop_assert!(line <= mutated.lines().count().max(1));
                }
            }
        }
    }

    /// SU(4) rebase covers every 2Q gate and never stretches 2Q depth.
    #[test]
    fn rebase_bounds(c in arb_circuit(5, 24)) {
        let fused = rebase::to_su4(&c);
        let k = fused.counts();
        prop_assert_eq!(k.cnot + k.swap + k.clifford2 + k.pauli_rot2, 0);
        prop_assert!(k.su4 <= c.counts().two_qubit());
        prop_assert!(fused.depth_2q() <= c.depth_2q());
    }

    /// Endian vectors are bounded by the layer count, and acted qubits are
    /// strictly inside the circuit.
    #[test]
    fn endian_vector_bounds(c in arb_circuit(5, 24)) {
        let ev = layers::endian_vectors(&c);
        prop_assert_eq!(ev.num_layers, c.depth_2q());
        for q in 0..5 {
            prop_assert!(ev.e_l[q] <= ev.num_layers);
            prop_assert!(ev.e_r[q] <= ev.num_layers);
            let acted_2q = c.gates().iter().any(|g| g.is_two_qubit() && g.acts_on(q));
            if acted_2q {
                prop_assert!(ev.e_l[q] < ev.num_layers);
                prop_assert!(ev.e_l[q] + ev.e_r[q] < ev.num_layers.max(1));
            } else {
                prop_assert_eq!(ev.e_l[q], ev.num_layers);
            }
        }
    }

    /// Chain synthesis emits exactly `2(w−1)` CNOTs and one rotation per
    /// non-trivial term; tree synthesis emits the same CNOT count at lower
    /// or equal depth.
    #[test]
    fn synthesis_costs(p in pauli_string(6), coeff in -1.0f64..1.0) {
        let w = p.weight();
        let mut chain = Circuit::new(6);
        synthesis::append_pauli_rotation(&mut chain, &p, coeff);
        let mut tree = Circuit::new(6);
        synthesis::append_pauli_rotation_tree(&mut tree, &p, coeff, &p.support());
        if w >= 2 {
            prop_assert_eq!(chain.counts().cnot, 2 * (w - 1));
            prop_assert_eq!(tree.counts().cnot, 2 * (w - 1));
            prop_assert!(tree.depth_2q() <= chain.depth_2q());
        } else {
            prop_assert_eq!(chain.counts().cnot, 0);
        }
    }

    /// Depth metrics are consistent: depth_2q ≤ depth, and appending
    /// circuits is depth-subadditive.
    #[test]
    fn depth_consistency(a in arb_circuit(4, 12), b in arb_circuit(4, 12)) {
        prop_assert!(a.depth_2q() <= a.depth());
        let mut joined = a.clone();
        joined.append(&b);
        prop_assert!(joined.depth_2q() <= a.depth_2q() + b.depth_2q());
        prop_assert!(joined.depth_2q() >= a.depth_2q().max(b.depth_2q()));
        prop_assert_eq!(joined.len(), a.len() + b.len());
    }
}
