//! Property-based tests of coupling-graph metrics.

use phoenix_topology::CouplingGraph;
use proptest::prelude::*;

fn arb_connected_graph() -> impl Strategy<Value = CouplingGraph> {
    // A random spanning-tree-plus-extras construction: always connected.
    (
        3usize..12,
        proptest::collection::vec((0usize..64, 0usize..64), 0..12),
        any::<u64>(),
    )
        .prop_map(|(n, extras, seed)| {
            let mut edges = Vec::new();
            // Deterministic "random" spanning tree via the seed.
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as usize
            };
            for v in 1..n {
                edges.push((v, next() % v));
            }
            for (a, b) in extras {
                let (a, b) = (a % n, b % n);
                if a != b {
                    edges.push((a, b));
                }
            }
            CouplingGraph::from_edges(n, edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Distances form a metric: symmetry, identity, triangle inequality.
    #[test]
    fn distance_is_a_metric(g in arb_connected_graph()) {
        let n = g.num_qubits();
        for a in 0..n {
            prop_assert_eq!(g.distance(a, a), 0);
            for b in 0..n {
                prop_assert_eq!(g.distance(a, b), g.distance(b, a));
                for c in 0..n {
                    prop_assert!(g.distance(a, c) <= g.distance(a, b) + g.distance(b, c));
                }
            }
        }
    }

    /// Edges are exactly the distance-1 pairs.
    #[test]
    fn edges_are_distance_one(g in arb_connected_graph()) {
        let n = g.num_qubits();
        for a in 0..n {
            for b in a + 1..n {
                prop_assert_eq!(g.contains_edge(a, b), g.distance(a, b) == 1);
            }
        }
    }

    /// Shortest paths are valid walks of the advertised length.
    #[test]
    fn shortest_paths_are_valid(g in arb_connected_graph()) {
        let n = g.num_qubits();
        for a in 0..n {
            for b in 0..n {
                let p = g.shortest_path(a, b).expect("connected graph");
                prop_assert_eq!(p[0], a);
                prop_assert_eq!(*p.last().unwrap(), b);
                prop_assert_eq!(p.len() as u32, g.distance(a, b) + 1);
                for w in p.windows(2) {
                    prop_assert!(g.contains_edge(w[0], w[1]));
                }
            }
        }
    }

    /// Neighbour lists agree with the edge set.
    #[test]
    fn neighbors_match_edges(g in arb_connected_graph()) {
        let n = g.num_qubits();
        for a in 0..n {
            let adjacent = g.neighbors(a).expect("in-range qubit has a list");
            for &b in adjacent {
                prop_assert!(g.contains_edge(a, b));
            }
            let degree = (0..n).filter(|&b| g.contains_edge(a, b)).count();
            prop_assert_eq!(adjacent.len(), degree);
        }
        prop_assert_eq!(g.neighbors(n), None);
    }
}
