//! Hardware coupling graphs for the PHOENIX compiler.
//!
//! Provides the device topologies the paper evaluates on — all-to-all
//! connectivity for logical-level compilation and the **heavy-hex** lattice
//! (a 65-qubit IBM-Manhattan-shaped instance) for hardware-aware compilation
//! — plus lines and grids for completeness. All-pairs shortest-path
//! distances are precomputed; they drive both SWAP routing and the routing
//! overhead analyses.
//!
//! # Examples
//!
//! ```
//! use phoenix_topology::CouplingGraph;
//!
//! let hh = CouplingGraph::manhattan65();
//! assert_eq!(hh.num_qubits(), 65);
//! assert!(hh.is_connected());
//! assert!(hh.max_degree() <= 3); // heavy-hex is degree-≤3
//! ```

mod graph;

pub use graph::CouplingGraph;
