//! The coupling graph type and standard topology constructors.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// An undirected device coupling graph with precomputed all-pairs
/// shortest-path distances.
///
/// # Examples
///
/// ```
/// use phoenix_topology::CouplingGraph;
///
/// let line = CouplingGraph::line(5);
/// assert_eq!(line.distance(0, 4), 4);
/// assert!(line.contains_edge(2, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CouplingGraph {
    n: usize,
    edges: BTreeSet<(usize, usize)>,
    adj: Vec<Vec<usize>>,
    dist: Vec<Vec<u32>>,
}

/// Distance value for unreachable pairs.
const UNREACHABLE: u32 = u32::MAX / 2;

impl CouplingGraph {
    /// Builds a graph from an edge list.
    ///
    /// Edges are stored undirected and deduplicated; self-loops are
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a qubit `≥ n` or is a self-loop.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut set = BTreeSet::new();
        for (a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for {n} qubits");
            assert_ne!(a, b, "self-loop on qubit {a}");
            set.insert((a.min(b), a.max(b)));
        }
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in &set {
            adj[a].push(b);
            adj[b].push(a);
        }
        let dist = all_pairs_bfs(n, &adj);
        CouplingGraph {
            n,
            edges: set,
            adj,
            dist,
        }
    }

    /// Fully connected topology (logical-level compilation).
    pub fn all_to_all(n: usize) -> Self {
        let mut edges = Vec::new();
        for a in 0..n {
            for b in a + 1..n {
                edges.push((a, b));
            }
        }
        CouplingGraph::from_edges(n, edges)
    }

    /// A linear chain `0 — 1 — ⋯ — n−1`.
    pub fn line(n: usize) -> Self {
        CouplingGraph::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
    }

    /// A ring.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "a ring needs at least 3 qubits");
        CouplingGraph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
    }

    /// A `rows × cols` rectangular grid.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        let idx = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        CouplingGraph::from_edges(rows * cols, edges)
    }

    /// A generic heavy-hex lattice: `rows` horizontal chains of `row_len`
    /// qubits, with degree-2 connector qubits between neighbouring rows at
    /// every fourth column, offset by two columns on alternating row pairs
    /// (IBM's heavy-hexagon pattern).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `row_len == 0`.
    pub fn heavy_hex(rows: usize, row_len: usize) -> Self {
        assert!(
            rows > 0 && row_len > 0,
            "heavy-hex needs positive dimensions"
        );
        let row_cols: Vec<(usize, usize)> = (0..rows).map(|_| (0, row_len)).collect();
        heavy_hex_from_rows(&row_cols)
    }

    /// The 65-qubit heavy-hex coupling graph shaped like IBM's Manhattan
    /// processor: row lengths `[10, 11, 11, 11, 10]` with three connector
    /// qubits between each pair of neighbouring rows.
    pub fn manhattan65() -> Self {
        // (first column, last column + 1) per row; the top row misses the
        // last column and the bottom row the first, as on the device.
        let rows = [(0usize, 10usize), (0, 11), (0, 11), (0, 11), (1, 11)];
        let g = heavy_hex_from_rows(&rows);
        debug_assert_eq!(g.num_qubits(), 65);
        g
    }

    /// A 27-qubit heavy-hex graph shaped like IBM's Falcon processors:
    /// three 7-qubit rows, two connectors per seam, plus the two pendant
    /// qubits hanging off the top and bottom rows.
    pub fn falcon27() -> Self {
        let core = heavy_hex_from_rows(&[(0usize, 7usize), (0, 7), (0, 7)]);
        let n = core.num_qubits(); // 25
        let mut edges: Vec<(usize, usize)> = core.edges().iter().copied().collect();
        // Pendants: row 0 col 3 is id 3; row 2 col 3 is id 17.
        edges.push((3, n));
        edges.push((17, n + 1));
        let g = CouplingGraph::from_edges(n + 2, edges);
        debug_assert_eq!(g.num_qubits(), 27);
        g
    }

    /// A 127-qubit heavy-hex graph shaped like IBM's Eagle processors
    /// (seven rows of width ≤15 with four connectors per seam).
    pub fn eagle127() -> Self {
        let rows = [
            (0usize, 14usize),
            (0, 15),
            (0, 15),
            (0, 15),
            (0, 15),
            (0, 15),
            (1, 15),
        ];
        let g = heavy_hex_from_rows(&rows);
        debug_assert_eq!(g.num_qubits(), 127);
        g
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The undirected edge set (pairs with `a < b`).
    #[inline]
    pub fn edges(&self) -> &BTreeSet<(usize, usize)> {
        &self.edges
    }

    /// Neighbours of qubit `q`, or `None` if `q` is not a qubit of this
    /// graph.
    #[inline]
    pub fn neighbors(&self, q: usize) -> Option<&[usize]> {
        self.adj.get(q).map(Vec::as_slice)
    }

    /// Whether qubits `a` and `b` are directly coupled.
    pub fn contains_edge(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// Shortest-path distance in edges; a large sentinel (`> num_qubits`)
    /// for disconnected pairs.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        self.dist[a][b]
    }

    /// Whether every qubit can reach every other.
    pub fn is_connected(&self) -> bool {
        self.n <= 1 || self.dist[0].iter().all(|&d| d < UNREACHABLE)
    }

    /// Maximum vertex degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// A shortest path from `a` to `b` (inclusive of both endpoints).
    ///
    /// Returns `None` if the qubits are disconnected.
    pub fn shortest_path(&self, a: usize, b: usize) -> Option<Vec<usize>> {
        if self.dist[a][b] >= UNREACHABLE {
            return None;
        }
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            let next = *self.adj[cur]
                .iter()
                .find(|&&v| self.dist[v][b] + 1 == self.dist[cur][b])
                .expect("distance table is consistent");
            path.push(next);
            cur = next;
        }
        Some(path)
    }
}

/// Builds a heavy-hex lattice from per-row `(first_col, end_col)` spans.
fn heavy_hex_from_rows(rows: &[(usize, usize)]) -> CouplingGraph {
    // Assign indices row by row, then connectors between rows.
    let mut index = Vec::new(); // (row, col) -> id via map
    use std::collections::BTreeMap;
    let mut id_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (r, &(c0, c1)) in rows.iter().enumerate() {
        for c in c0..c1 {
            id_of.insert((r, c), index.len());
            index.push((r, c));
        }
    }
    let mut edges = Vec::new();
    // Horizontal chains.
    for (r, &(c0, c1)) in rows.iter().enumerate() {
        for c in c0..c1.saturating_sub(1) {
            edges.push((id_of[&(r, c)], id_of[&(r, c + 1)]));
        }
    }
    // Connectors: between row r and r+1 at columns ≡ 2·(r mod 2) (mod 4),
    // where both rows own the column.
    let mut next_id = index.len();
    for r in 0..rows.len().saturating_sub(1) {
        let offset = 2 * (r % 2);
        let (a0, a1) = rows[r];
        let (b0, b1) = rows[r + 1];
        let lo = a0.max(b0);
        let hi = a1.min(b1);
        for c in lo..hi {
            if c % 4 == offset {
                let conn = next_id;
                next_id += 1;
                edges.push((id_of[&(r, c)], conn));
                edges.push((conn, id_of[&(r + 1, c)]));
            }
        }
    }
    CouplingGraph::from_edges(next_id, edges)
}

fn all_pairs_bfs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<u32>> {
    let mut dist = vec![vec![UNREACHABLE; n]; n];
    for (s, row) in dist.iter_mut().enumerate() {
        row[s] = 0;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if row[v] == UNREACHABLE {
                    row[v] = row[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

impl fmt::Display for CouplingGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "coupling graph: {} qubits, {} edges",
            self.n,
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_has_unit_distances() {
        let g = CouplingGraph::all_to_all(6);
        assert_eq!(g.edges().len(), 15);
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(g.distance(a, b), u32::from(a != b));
            }
        }
    }

    #[test]
    fn line_distances_are_index_differences() {
        let g = CouplingGraph::line(8);
        assert_eq!(g.distance(0, 7), 7);
        assert_eq!(g.distance(3, 5), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn ring_wraps() {
        let g = CouplingGraph::ring(8);
        assert_eq!(g.distance(0, 7), 1);
        assert_eq!(g.distance(0, 4), 4);
    }

    #[test]
    fn grid_shape() {
        let g = CouplingGraph::grid(3, 4);
        assert_eq!(g.num_qubits(), 12);
        assert_eq!(g.distance(0, 11), 5); // manhattan distance
        assert_eq!(g.max_degree(), 4);
    }

    #[test]
    fn manhattan65_is_heavy_hex_shaped() {
        let g = CouplingGraph::manhattan65();
        assert_eq!(g.num_qubits(), 65);
        assert!(g.is_connected());
        assert!(g.max_degree() <= 3);
        // 3 connectors per row pair × 4 pairs.
        let degree2_connectors = g.num_qubits() - 53;
        assert_eq!(degree2_connectors, 12);
        // Heavy-hex edge count: 52 horizontal + 24 connector edges.
        assert_eq!(g.edges().len(), 72);
    }

    #[test]
    fn falcon27_shape() {
        let g = CouplingGraph::falcon27();
        assert_eq!(g.num_qubits(), 27);
        assert!(g.is_connected());
        assert!(g.max_degree() <= 3);
        // The two added pendants plus the two connector-less row corners.
        let pendants = (0..27)
            .filter(|&q| g.neighbors(q).is_some_and(|nb| nb.len() == 1))
            .count();
        assert_eq!(pendants, 4);
    }

    #[test]
    fn eagle127_shape() {
        let g = CouplingGraph::eagle127();
        assert_eq!(g.num_qubits(), 127);
        assert!(g.is_connected());
        assert!(g.max_degree() <= 3);
    }

    #[test]
    fn generic_heavy_hex_connected_and_sparse() {
        let g = CouplingGraph::heavy_hex(5, 11);
        assert!(g.is_connected());
        assert!(g.max_degree() <= 3);
        assert!(g.num_qubits() > 55);
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let g = CouplingGraph::manhattan65();
        let p = g.shortest_path(0, 64).expect("connected");
        assert_eq!(*p.first().unwrap(), 0);
        assert_eq!(*p.last().unwrap(), 64);
        assert_eq!(p.len() as u32, g.distance(0, 64) + 1);
        for w in p.windows(2) {
            assert!(g.contains_edge(w[0], w[1]));
        }
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = CouplingGraph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(!g.is_connected());
        assert!(g.shortest_path(0, 3).is_none());
        assert!(g.distance(0, 3) > 4);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        let _ = CouplingGraph::from_edges(2, [(1, 1)]);
    }

    #[test]
    fn display_summarizes() {
        let g = CouplingGraph::line(3);
        assert_eq!(g.to_string(), "coupling graph: 3 qubits, 2 edges");
    }
}
