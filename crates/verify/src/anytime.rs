//! The any-deadline differential suite for the anytime deepening path.
//!
//! The anytime contract is stronger than "budgeted compiles succeed":
//! **every** interruption point must yield a circuit exactly equivalent to
//! the program (checked against the dense Trotter reference), and quality
//! must be monotone in the budget — a deeper logical budget never returns
//! a worse circuit, and `depth_reached` never shrinks. [`verify_anytime`]
//! checks one program three ways:
//!
//! 1. **Logical-budget ladder** — `anytime_rounds` caps 0, 2 and
//!    [`MAX_ROUNDS`] under a wall budget too large to interrupt: exact
//!    equivalence at every rung, `depth_reached` equal to the cap, cost
//!    lexicographically non-increasing and depth non-decreasing up the
//!    ladder.
//! 2. **Adversarial wall budgets** — zero, one-tick (1 ns) and seeded
//!    random microsecond budgets: the compile must still *succeed* with an
//!    exactly equivalent circuit (the round-0 baseline is always
//!    available).
//! 3. **Mid-round cancellation** — a [`CancelToken`] fired from another
//!    thread after a seeded random delay: a success must be equivalent;
//!    an error is acceptable only as typed [`PhoenixError::Cancelled`]
//!    (the token fired before the anytime pass took ownership).
//!
//! [`anytime_failures`] sweeps seeded programs round-robin over the three
//! generator families and additionally demands *progress*: at least one
//! UCCSD-like program must compile strictly better at the deepest budget
//! than at the shallowest — deepening that never improves anything would
//! be vacuously monotone.

use std::time::Duration;

use phoenix_core::{
    CancelToken, CompileOutcome, CompileRequest, PhoenixError, PhoenixOptions, MAX_ROUNDS,
};
use phoenix_pauli::PauliString;

use crate::differential::Failure;
use crate::engine::{check_exact_unitary, Outcome};
use crate::gen::{Family, Program, RandomProgramGen};

/// A wall budget no test machine exhausts: the ladder rungs are decided by
/// the logical cap alone.
const ROOMY: Duration = Duration::from_secs(600);

fn fail(failures: &mut Vec<Failure>, pipeline: &str, check: &str, detail: String) {
    failures.push(Failure {
        pipeline: pipeline.to_string(),
        check: check.to_string(),
        metric: None,
        detail,
    });
}

/// Lexicographic quality key mirroring the anytime pass's objective:
/// 2Q gates, then 2Q depth, then total gates.
pub type CostKey = (usize, usize, usize);

/// Computes the [`CostKey`] of a compile outcome.
pub fn cost_key(outcome: &CompileOutcome) -> CostKey {
    let counts = outcome.circuit.counts();
    (counts.two_qubit(), outcome.circuit.depth_2q(), counts.total)
}

/// Checks one interruption point's result: the circuit implements exactly
/// its reported term order, and that order is a permutation of the program.
fn check_equivalent(
    failures: &mut Vec<Failure>,
    pipeline: &str,
    program: &Program,
    outcome: &CompileOutcome,
) {
    if let Outcome::Fail { metric, detail } =
        check_exact_unitary(&outcome.circuit, &outcome.term_order)
    {
        failures.push(Failure {
            pipeline: pipeline.to_string(),
            check: "exact-unitary".into(),
            metric: if metric.is_nan() { None } else { Some(metric) },
            detail,
        });
    }
    let key = |t: &(PauliString, f64)| (t.0.to_string(), t.1.to_bits());
    let mut got: Vec<_> = outcome.term_order.iter().map(key).collect();
    let mut want: Vec<_> = program.terms.iter().map(key).collect();
    got.sort();
    want.sort();
    if got != want {
        fail(
            failures,
            pipeline,
            "term-permutation",
            "implemented term order is not a permutation of the program".into(),
        );
    }
    if outcome.depth_reached.is_none() {
        fail(
            failures,
            pipeline,
            "depth-reported",
            "budgeted compile reported no depth_reached".into(),
        );
    }
}

fn budgeted(
    program: &Program,
    budget: Duration,
    rounds: Option<usize>,
    cancel: Option<CancelToken>,
) -> Result<CompileOutcome, PhoenixError> {
    CompileRequest::new(program.num_qubits, &program.terms)
        .options(PhoenixOptions {
            pass_budget: Some(budget),
            anytime_rounds: rounds,
            cancel,
            ..PhoenixOptions::default()
        })
        .run()
}

/// The logical-budget ladder this suite climbs per program.
pub const LADDER: [usize; 3] = [0, 2, MAX_ROUNDS];

/// Verifies the anytime contract on one program. Returns all failures, and
/// (on a clean ladder) the cost keys at the shallowest and deepest rungs —
/// the caller's raw material for the strict-improvement sweep check.
pub fn verify_anytime(
    program: &Program,
    failures: &mut Vec<Failure>,
) -> Option<(CostKey, CostKey)> {
    let tag = format!(
        "PHOENIX/anytime-{} (seed {})",
        program.family.name(),
        program.seed
    );
    let mut rng = phoenix_mathkit::Xoshiro256::seed_from_u64(program.seed ^ 0xA277_1E50_DEAD_11E5);

    // 1. The logical-budget ladder under a roomy wall budget.
    let mut ladder: Vec<CostKey> = Vec::new();
    let mut prev_depth = 0usize;
    for cap in LADDER {
        let pipeline = format!("{tag} cap={cap}");
        let out = match budgeted(program, ROOMY, Some(cap), None) {
            Ok(out) => out,
            Err(e) => {
                fail(failures, &pipeline, "compiles", e.to_string());
                return None;
            }
        };
        check_equivalent(failures, &pipeline, program, &out);
        let depth = out.depth_reached.unwrap_or(0);
        if depth != cap {
            fail(
                failures,
                &pipeline,
                "depth-equals-cap",
                format!("uninterrupted cap {cap} reported depth {depth}"),
            );
        }
        if depth < prev_depth {
            fail(
                failures,
                &pipeline,
                "depth-monotone",
                format!("depth shrank from {prev_depth} to {depth}"),
            );
        }
        prev_depth = depth;
        let cost = cost_key(&out);
        if let Some(&worse) = ladder.last() {
            if cost > worse {
                fail(
                    failures,
                    &pipeline,
                    "cost-monotone",
                    format!("cost rose from {worse:?} to {cost:?} with a deeper budget"),
                );
            }
        }
        ladder.push(cost);
    }

    // 2. Adversarial wall-clock budgets: zero, one tick, random microseconds.
    let random_us = 1 + rng.next_below(5_000) as u64;
    for (label, budget) in [
        ("0", Duration::ZERO),
        ("1ns", Duration::from_nanos(1)),
        ("random", Duration::from_micros(random_us)),
    ] {
        let pipeline = format!("{tag} wall={label}");
        match budgeted(program, budget, None, None) {
            Ok(out) => check_equivalent(failures, &pipeline, program, &out),
            Err(e) => fail(
                failures,
                &pipeline,
                "anytime-never-fails",
                format!("wall budget {budget:?} errored: {e}"),
            ),
        }
    }

    // 3. Mid-round cancellation from another thread.
    let pipeline = format!("{tag} cancelled");
    let token = CancelToken::new();
    let delay = Duration::from_micros(20 + rng.next_below(500) as u64);
    let result = std::thread::scope(|scope| {
        let killer = token.clone();
        scope.spawn(move || {
            std::thread::sleep(delay);
            killer.cancel();
        });
        budgeted(program, ROOMY, None, Some(token))
    });
    match result {
        Ok(out) => check_equivalent(failures, &pipeline, program, &out),
        // Acceptable only when the token fired before the anytime pass took
        // ownership of the compilation (then nothing is discarded).
        Err(PhoenixError::Cancelled) => {}
        Err(e) => fail(
            failures,
            &pipeline,
            "cancel-is-typed",
            format!("cancellation surfaced as {e}"),
        ),
    }

    ladder.first().copied().zip(ladder.last().copied())
}

/// Verifies `count` seeded programs (round-robin over the three families,
/// 3–6 qubits) against the anytime contract, and demands that deepening
/// *pays* on at least one UCCSD-like program: its deepest-budget compile
/// must be strictly cheaper than its shallowest. Returns all failures.
pub fn anytime_failures(count: usize, base_seed: u64) -> Vec<Failure> {
    let mut failures = Vec::new();
    let mut gen = RandomProgramGen::new(base_seed);
    let mut uccsd_improved = false;
    for i in 0..count {
        let family = Family::ALL[i % Family::ALL.len()];
        let num_qubits = 3 + i % 4;
        let num_terms = 5 + (i * 3) % 10;
        let program = gen.program(family, num_qubits, num_terms);
        if let Some((shallow, deep)) = verify_anytime(&program, &mut failures) {
            if family == Family::UccsdLike && deep < shallow {
                uccsd_improved = true;
            }
        }
    }
    if count >= Family::ALL.len() && !uccsd_improved {
        fail(
            &mut failures,
            "PHOENIX/anytime-uccsd-like (sweep)",
            "deepening-pays",
            format!(
                "no UCCSD-like program out of {count} compiled strictly better at the \
                 deepest budget than at the shallowest"
            ),
        );
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_interruption_point_yields_an_equivalent_circuit_across_200_seeded_programs() {
        let failures = anytime_failures(200, 0xDAC5_2025);
        assert!(
            failures.is_empty(),
            "{} anytime failures, first: {:?}",
            failures.len(),
            failures.first()
        );
    }
}
