//! The three-tier equivalence engine.
//!
//! - **Tier 1 — exact unitary equivalence** (dense, `n ≤ ~10`): a compiled
//!   circuit with a known implemented term order must match the exact
//!   Trotter product of that order up to global phase to `~10⁻⁹`
//!   infidelity; a circuit with an *unknown* order must match the
//!   reference order within the Trotter-reorder tolerance (see
//!   [`reorder_tolerance`]).
//! - **Tier 2 — stabilizer-tableau equivalence** (any `n`): two Clifford
//!   circuits are equal up to global phase iff they conjugate every `Xᵢ`
//!   and `Zᵢ` to the same signed Pauli; and the *Clifford skeleton* of a
//!   gadget-style compiled circuit (all rotation angles zeroed) must be
//!   the identity, because rotations sit inside Clifford conjugation nests
//!   `V† R V` that cancel when `R → I`.
//! - **Tier 3 — observable spot checks** (state-vector, `n ≤ 24`): random
//!   product states evolved through the circuit must match term-wise
//!   Trotter evolution to high fidelity.

use phoenix_circuit::{Circuit, Gate, Su4Block};
use phoenix_mathkit::{CMatrix, Xoshiro256};
use phoenix_pauli::{Pauli, PauliString};
use phoenix_sim::{circuit_unitary, infidelity, trotter_unitary, StabilizerState, State};

/// Numerical floor added to every derived tolerance (absorbs dense-algebra
/// round-off across deep circuits, KAK resynthesis included).
pub const EPSILON: f64 = 1e-7;

/// Infidelity ceiling for *exact* equivalences (same implemented order).
pub const EXACT_TOL: f64 = 1e-9;

/// First-order Trotter bound `B = Σ_{i<j, non-commuting} |cᵢcⱼ|`: the
/// spectral distance between any two orderings of the product
/// `Π exp(−icⱼPⱼ)` (and between either ordering and `exp(−iH)`) is at most
/// `2B` (each non-commuting pair contributes `|[cᵢPᵢ, cⱼPⱼ]| ≤ 2|cᵢcⱼ|`).
pub fn trotter_bound(terms: &[(PauliString, f64)]) -> f64 {
    let mut b = 0.0;
    for (i, (pi, ci)) in terms.iter().enumerate() {
        for (pj, cj) in &terms[i + 1..] {
            if !pi.commutes(pj) {
                b += (ci * cj).abs();
            }
        }
    }
    b
}

/// Infidelity tolerance for comparing two legitimate orderings of the same
/// Trotter product. The skew `E` in `U†V = exp(iE)` has `‖E‖ ≤ 2B`, and
/// `1 − |Tr exp(iE)|/N` is second order in `E`, bounded by `‖E‖²/2 = 2B²`;
/// a 4× headroom factor plus [`EPSILON`] absorbs constants and round-off.
/// With the generator's tiny coefficients this sits well below the `c²/2`
/// signal of a single miscompiled term (see `gen` module docs).
pub fn reorder_tolerance(terms: &[(PauliString, f64)]) -> f64 {
    let b = trotter_bound(terms);
    8.0 * b * b + EPSILON
}

/// One equivalence-check outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The check ran and held; the metric is the measured deviation.
    Pass(f64),
    /// The check ran and failed.
    Fail {
        /// Measured deviation (infidelity, 1 − fidelity, …), when numeric.
        metric: f64,
        /// What went wrong.
        detail: String,
    },
    /// The check did not apply (too many qubits, non-Clifford gates, …).
    Skipped(String),
}

impl Outcome {
    /// Whether this outcome is a failure.
    pub fn is_fail(&self) -> bool {
        matches!(self, Outcome::Fail { .. })
    }

    fn from_metric(metric: f64, tol: f64, what: &str) -> Outcome {
        if metric <= tol {
            Outcome::Pass(metric)
        } else {
            Outcome::Fail {
                metric,
                detail: format!("{what}: {metric:.3e} exceeds tolerance {tol:.3e}"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tier 1: dense unitary equivalence
// ---------------------------------------------------------------------------

/// Tier 1, exact: the circuit must implement the Trotter product of
/// `term_order` (its *own* implemented order) up to global phase.
pub fn check_exact_unitary(c: &Circuit, term_order: &[(PauliString, f64)]) -> Outcome {
    let n = c.num_qubits();
    let infid = infidelity(&circuit_unitary(c), &trotter_unitary(n, term_order));
    Outcome::from_metric(infid, EXACT_TOL, "exact unitary infidelity")
}

/// Tier 1, reorder-tolerant: the circuit implements *some* ordering of
/// `terms`, so it must match the reference (input-order) Trotter product
/// within [`reorder_tolerance`].
pub fn check_unitary_vs_reference(c: &Circuit, terms: &[(PauliString, f64)]) -> Outcome {
    let n = c.num_qubits();
    let infid = infidelity(&circuit_unitary(c), &trotter_unitary(n, terms));
    Outcome::from_metric(infid, reorder_tolerance(terms), "reference infidelity")
}

/// Tier 1, pairwise: two compiled circuits for the same program must agree
/// within twice the reorder tolerance (each is within one tolerance of the
/// reference).
pub fn check_unitary_pair(a: &CMatrix, b: &CMatrix, terms: &[(PauliString, f64)]) -> Outcome {
    let infid = infidelity(a, b);
    Outcome::from_metric(infid, 2.0 * reorder_tolerance(terms), "pairwise infidelity")
}

// ---------------------------------------------------------------------------
// Tier 2: stabilizer-tableau equivalence
// ---------------------------------------------------------------------------

/// Strips every parameterized rotation from a circuit, keeping the Clifford
/// scaffolding (SU(4) blocks are flattened to the skeletons of their inner
/// sequences).
pub fn clifford_skeleton(c: &Circuit) -> Circuit {
    fn keep(g: &Gate, out: &mut Vec<Gate>) {
        match g {
            Gate::Rx(..) | Gate::Ry(..) | Gate::Rz(..) | Gate::PauliRot2 { .. } => {}
            Gate::Su4(blk) => {
                let mut inner = Vec::new();
                for ig in &blk.inner {
                    keep(ig, &mut inner);
                }
                if !inner.is_empty() {
                    out.push(Gate::Su4(Box::new(Su4Block {
                        a: blk.a,
                        b: blk.b,
                        inner,
                    })));
                }
            }
            other => out.push(other.clone()),
        }
    }
    let mut gates = Vec::new();
    for g in c.gates() {
        keep(g, &mut gates);
    }
    Circuit::from_gates(c.num_qubits(), gates)
}

/// Conjugates `Xᵢ` and `Zᵢ` for every `i` through a Clifford circuit,
/// returning the 2n signed images, or `None` if a non-Clifford gate occurs.
fn tableau_images(c: &Circuit) -> Option<Vec<(PauliString, i8)>> {
    let n = c.num_qubits();
    let mut gens = Vec::with_capacity(2 * n);
    for q in 0..n {
        gens.push((PauliString::single(n, q, Pauli::X), 1));
        gens.push((PauliString::single(n, q, Pauli::Z), 1));
    }
    let mut s = StabilizerState::from_generators(n, gens);
    s.apply_circuit(c).ok()?;
    Some(s.generators().to_vec())
}

/// Tier 2: Clifford-circuit equivalence up to global phase, at any width.
/// Skipped if either circuit contains a non-Clifford gate.
pub fn check_clifford_equivalent(a: &Circuit, b: &Circuit) -> Outcome {
    if a.num_qubits() != b.num_qubits() {
        return Outcome::Fail {
            metric: f64::NAN,
            detail: format!(
                "width mismatch: {} vs {} qubits",
                a.num_qubits(),
                b.num_qubits()
            ),
        };
    }
    let (Some(ia), Some(ib)) = (tableau_images(a), tableau_images(b)) else {
        return Outcome::Skipped("non-Clifford gate".to_string());
    };
    for (k, (ga, gb)) in ia.iter().zip(&ib).enumerate() {
        if ga != gb {
            let (q, axis) = (k / 2, if k % 2 == 0 { "X" } else { "Z" });
            return Outcome::Fail {
                metric: f64::NAN,
                detail: format!(
                    "conjugation of {axis}{q} differs: {}{} vs {}{}",
                    if ga.1 < 0 { "-" } else { "+" },
                    ga.0,
                    if gb.1 < 0 { "-" } else { "+" },
                    gb.0
                ),
            };
        }
    }
    Outcome::Pass(0.0)
}

/// Tier 2: the Clifford skeleton of a gadget-style compiled circuit must be
/// the identity. Applies to *unoptimized* compiler outputs (PHOENIX's
/// high-level circuit and the baselines' raw CNOT gadget circuits), whose
/// rotations all sit inside cancelling Clifford nests. Scales to any width.
pub fn check_skeleton_identity(c: &Circuit) -> Outcome {
    let skeleton = clifford_skeleton(c);
    match check_clifford_equivalent(&skeleton, &Circuit::new(c.num_qubits())) {
        Outcome::Pass(m) => Outcome::Pass(m),
        Outcome::Fail { detail, metric } => Outcome::Fail {
            metric,
            detail: format!("Clifford skeleton is not the identity: {detail}"),
        },
        Outcome::Skipped(why) => Outcome::Skipped(why),
    }
}

// ---------------------------------------------------------------------------
// Tier 3: observable / state spot checks
// ---------------------------------------------------------------------------

/// Tier 3: evolves `num_states` random product states through the circuit
/// and through term-wise Trotter evolution of `reference_order`, requiring
/// state infidelity `1 − F ≤ tol` on each. Scales to the state-vector
/// limit (24 qubits). The RNG makes the check reproducible.
pub fn check_states_vs_order(
    c: &Circuit,
    reference_order: &[(PauliString, f64)],
    tol: f64,
    num_states: usize,
    rng: &mut Xoshiro256,
) -> Outcome {
    let n = c.num_qubits();
    let mut worst = 0.0f64;
    for k in 0..num_states {
        let base = State::random_product(n, rng);
        let through_circuit = base.evolved(c);
        let mut through_terms = base;
        for (p, coeff) in reference_order {
            // Term `c·P` contributes `exp(−icP)` to the Trotter product.
            through_terms.apply_pauli_exp(p, *coeff);
        }
        let deviation = 1.0 - through_circuit.fidelity(&through_terms);
        worst = worst.max(deviation);
        if deviation > tol {
            return Outcome::Fail {
                metric: deviation,
                detail: format!(
                    "state {k}: infidelity {deviation:.3e} exceeds tolerance {tol:.3e}"
                ),
            };
        }
    }
    Outcome::Pass(worst)
}

// ---------------------------------------------------------------------------
// Routed (permutation-aware) equivalence
// ---------------------------------------------------------------------------

/// Permutation-aware equivalence of a routed circuit against its logical
/// snapshot: `routed · embed(logical, initial_layout)†` must be a basis
/// permutation induced by a qubit permutation `π` with
/// `π(initial_layout[l]) = final_layout[l]` for every logical qubit `l`.
/// Dense — the *device* width must be within reach (`n_phys ≤ ~10`).
pub fn check_routed_equivalence(
    routed: &Circuit,
    logical: &Circuit,
    initial_layout: &[usize],
    final_layout: &[usize],
) -> Outcome {
    let n_phys = routed.num_qubits();
    let embedded = logical.map_qubits(n_phys, |q| initial_layout[q]);
    let d = circuit_unitary(routed).matmul(&circuit_unitary(&embedded).dagger());
    let pi = match phoenix_core::verify::decode_qubit_permutation(&d, n_phys, 1e-6) {
        Ok(pi) => pi,
        Err(why) => {
            return Outcome::Fail {
                metric: f64::NAN,
                detail: format!("routed circuit is not permutation-equivalent: {why}"),
            }
        }
    };
    for (l, (&p0, &pf)) in initial_layout.iter().zip(final_layout).enumerate() {
        if pi[p0] != pf {
            return Outcome::Fail {
                metric: f64::NAN,
                detail: format!(
                    "permutation sends logical {l} to physical {} but final layout says {pf}",
                    pi[p0]
                ),
            };
        }
    }
    Outcome::Pass(0.0)
}

/// Coupling-legality of a routed circuit: every 2Q gate must lie on a
/// device edge. Structural, any width.
pub fn check_coupling_legal(c: &Circuit, device: &phoenix_topology::CouplingGraph) -> Outcome {
    for g in c.gates() {
        if let (a, Some(b)) = g.qubits() {
            if !device.contains_edge(a, b) {
                return Outcome::Fail {
                    metric: f64::NAN,
                    detail: format!("gate {g} is not on a device edge"),
                };
            }
        }
    }
    Outcome::Pass(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_core::PhoenixCompiler;

    fn ps(l: &str) -> PauliString {
        l.parse().unwrap()
    }

    #[test]
    fn trotter_bound_counts_noncommuting_pairs() {
        let terms = vec![(ps("XX"), 0.1), (ps("ZI"), 0.2), (ps("ZZ"), 0.3)];
        // XX anti-commutes with ZI (one clashing site) but commutes with
        // ZZ (two clashing sites cancel); ZI commutes with ZZ.
        assert!((trotter_bound(&terms) - 0.02).abs() < 1e-15);
    }

    #[test]
    fn exact_check_accepts_phoenix_and_rejects_corruption() {
        let terms = vec![(ps("ZYY"), 1.5e-3), (ps("XZY"), -1.1e-3), (ps("YIZ"), 2e-3)];
        let out = PhoenixCompiler::default().compile(3, &terms);
        assert!(matches!(
            check_exact_unitary(&out.circuit, &out.term_order),
            Outcome::Pass(_)
        ));
        let mut bad = out.circuit.clone();
        bad.push(Gate::Rz(0, 0.004)); // a stray rotation the size of a term
        assert!(check_exact_unitary(&bad, &out.term_order).is_fail());
    }

    #[test]
    fn skeleton_of_phoenix_output_is_identity() {
        let terms = vec![(ps("ZYY"), 1.5e-3), (ps("ZZY"), -1.1e-3), (ps("XYY"), 2e-3)];
        let out = PhoenixCompiler::default().compile(3, &terms);
        assert!(matches!(
            check_skeleton_identity(&out.circuit),
            Outcome::Pass(_)
        ));
        let cnot = phoenix_baselines::Baseline::Naive.compile_logical(3, &terms);
        assert!(matches!(check_skeleton_identity(&cnot), Outcome::Pass(_)));
    }

    #[test]
    fn skeleton_check_catches_an_unbalanced_clifford() {
        let terms = vec![(ps("ZYY"), 1.5e-3), (ps("XYY"), 2e-3)];
        let mut c = phoenix_baselines::Baseline::Naive.compile_logical(3, &terms);
        c.push(Gate::Cnot(0, 1)); // dangling Clifford
        assert!(check_skeleton_identity(&c).is_fail());
    }

    #[test]
    fn state_check_matches_unitary_check() {
        let terms = vec![(ps("XXI"), 1.5e-3), (ps("IZZ"), -1.8e-3), (ps("YXZ"), 1e-3)];
        let out = PhoenixCompiler::default().compile(3, &terms);
        let mut rng = Xoshiro256::seed_from_u64(5);
        assert!(matches!(
            check_states_vs_order(&out.circuit, &out.term_order, 1e-9, 4, &mut rng),
            Outcome::Pass(_)
        ));
        let mut bad = out.circuit;
        bad.push(Gate::Rx(1, 0.004));
        assert!(check_states_vs_order(&bad, &out.term_order, 1e-9, 4, &mut rng).is_fail());
    }

    #[test]
    fn clifford_equivalence_sees_through_gate_sets() {
        // CNOT expressed two ways.
        let mut a = Circuit::new(2);
        a.push(Gate::Cnot(0, 1));
        let mut b = Circuit::new(2);
        b.push(Gate::H(1));
        b.push(Gate::H(0));
        b.push(Gate::Cnot(1, 0));
        b.push(Gate::H(0));
        b.push(Gate::H(1));
        assert!(matches!(
            check_clifford_equivalent(&a, &b),
            Outcome::Pass(_)
        ));
        let mut c = Circuit::new(2);
        c.push(Gate::Cnot(1, 0));
        assert!(check_clifford_equivalent(&a, &c).is_fail());
    }
}
