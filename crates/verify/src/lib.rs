//! Translation validation for the PHOENIX compiler.
//!
//! Compilers earn trust by being *checked*, not read. This crate provides
//! the reusable equivalence-checking engine behind the repository's
//! differential and metamorphic test suites and the `verifybench` binary:
//!
//! - [`engine`] — three-tier equivalence checks: exact dense unitary
//!   comparison against the Trotter product (tier 1, `n ≲ 10`),
//!   stabilizer-tableau equivalence and Clifford-skeleton identity
//!   (tier 2, any width), and random-product-state spot checks (tier 3,
//!   `n ≲ 24`), plus permutation-aware equivalence for routed circuits;
//! - [`gen`] — [`RandomProgramGen`](gen::RandomProgramGen): seeded random
//!   programs in UCCSD-like, Ising-like and unstructured families, with a
//!   greedy [`shrink`](gen::shrink) minimizer for counterexamples;
//! - [`differential`] — [`verify_program`](differential::verify_program):
//!   drives PHOENIX (all five entry points) and the four baselines over
//!   one program, checking each output and all pairs;
//! - [`metamorphic`] — compilation commutes with qubit relabeling, term
//!   permutation, coefficient scaling and program concatenation;
//! - [`anytime`] — the any-deadline suite: every interruption point of a
//!   budgeted compile (logical round caps, adversarial wall budgets,
//!   mid-round cancellation) yields an exactly equivalent circuit, with
//!   quality monotone in the budget;
//! - `sabotage` (feature-gated) — a deliberately miscompiling strategy
//!   proving the engine catches real bugs.
//!
//! The tolerance discipline: PHOENIX outputs carry their implemented
//! `term_order`, so they are checked *exactly* (infidelity ≤ 10⁻⁹).
//! Baselines reorder terms without reporting the order, so they are checked
//! against the reference order within the second-order Trotter-reorder
//! tolerance `8B² + ε`, with `B` the first-order commutator bound — see
//! [`engine::reorder_tolerance`] and DESIGN.md §2.8.

pub mod anytime;
pub mod differential;
pub mod engine;
pub mod gen;
pub mod metamorphic;
pub mod parametric;
#[cfg(feature = "sabotage")]
pub mod sabotage;

pub use anytime::{anytime_failures, verify_anytime};
pub use differential::{verify_program, Failure, VerifyConfig};
pub use engine::{
    check_clifford_equivalent, check_exact_unitary, check_routed_equivalence,
    check_skeleton_identity, check_states_vs_order, check_unitary_vs_reference, clifford_skeleton,
    reorder_tolerance, trotter_bound, Outcome,
};
pub use gen::{shrink, Family, Program, RandomProgramGen};
pub use metamorphic::metamorphic_failures;
pub use parametric::{parametric_failures, verify_parametric};
