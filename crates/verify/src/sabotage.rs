//! Feature-gated miscompilation injection.
//!
//! A verification engine is only trustworthy if it demonstrably catches
//! bugs. This module (compiled only with the `sabotage` feature) wraps
//! PHOENIX with a deliberate, silent corruption of its output; the test
//! suite and `verifybench --sabotage` assert that the differential driver
//! flags it and produces a minimized counterexample.

use phoenix_circuit::{Circuit, Gate};
use phoenix_core::{CompilerStrategy, PhoenixCompiler};
use phoenix_pauli::PauliString;

/// How the output is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SabotageMode {
    /// Negate the angle of the last rotation gate (a sign-flip
    /// miscompilation — the classic hard-to-spot bug). Falls back to
    /// [`SabotageMode::ExtraGate`] when the circuit has no rotations.
    FlipRotationSign,
    /// Append a stray Hadamard (a dropped/duplicated-gate class bug).
    ExtraGate,
}

/// Corrupts a compiled circuit according to `mode`.
pub fn corrupt(c: &Circuit, mode: SabotageMode) -> Circuit {
    let mut gates = c.gates().to_vec();
    if mode == SabotageMode::FlipRotationSign {
        for g in gates.iter_mut().rev() {
            let flipped = match g {
                Gate::Rx(q, t) => Some(Gate::Rx(*q, -*t)),
                Gate::Ry(q, t) => Some(Gate::Ry(*q, -*t)),
                Gate::Rz(q, t) => Some(Gate::Rz(*q, -*t)),
                Gate::PauliRot2 {
                    a,
                    b,
                    pa,
                    pb,
                    theta,
                } => Some(Gate::PauliRot2 {
                    a: *a,
                    b: *b,
                    pa: *pa,
                    pb: *pb,
                    theta: -*theta,
                }),
                _ => None,
            };
            if let Some(f) = flipped {
                *g = f;
                return Circuit::from_gates(c.num_qubits(), gates);
            }
        }
    }
    gates.push(Gate::H(0));
    Circuit::from_gates(c.num_qubits(), gates)
}

/// A [`CompilerStrategy`] that compiles with PHOENIX and then silently
/// corrupts the result — the injected miscompilation the engine must catch.
#[derive(Debug, Clone)]
pub struct SabotagedPhoenix {
    /// The corruption applied to every output.
    pub mode: SabotageMode,
}

impl Default for SabotagedPhoenix {
    fn default() -> Self {
        SabotagedPhoenix {
            mode: SabotageMode::FlipRotationSign,
        }
    }
}

impl CompilerStrategy for SabotagedPhoenix {
    fn name(&self) -> &str {
        "PHOENIX-sabotaged"
    }

    fn compile_logical(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        corrupt(
            &PhoenixCompiler::default().compile(n, terms).circuit,
            self.mode,
        )
    }

    fn compile_optimized(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        corrupt(
            &PhoenixCompiler::default().compile_to_cnot(n, terms),
            self.mode,
        )
    }
}

/// Runs the sabotaged compiler through the exact tier-1 check and returns
/// the failures it *must* produce (used by tests and `verifybench
/// --sabotage` to prove the engine has teeth).
pub fn sabotage_failures(
    program: &crate::gen::Program,
    mode: SabotageMode,
) -> Vec<crate::differential::Failure> {
    let compiled = PhoenixCompiler::default().compile(program.num_qubits, &program.terms);
    let bad = corrupt(&compiled.circuit, mode);
    let mut failures = Vec::new();
    if let crate::engine::Outcome::Fail { metric, detail } =
        crate::engine::check_exact_unitary(&bad, &compiled.term_order)
    {
        failures.push(crate::differential::Failure {
            pipeline: "PHOENIX-sabotaged/high-level".into(),
            check: "exact-unitary".into(),
            metric: Some(metric),
            detail,
        });
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{shrink, Family, RandomProgramGen};

    #[test]
    fn sabotage_is_always_caught_and_minimizes() {
        let mut g = RandomProgramGen::new(1234);
        for mode in [SabotageMode::FlipRotationSign, SabotageMode::ExtraGate] {
            let p = g.program(Family::Random, 5, 10);
            let failures = sabotage_failures(&p, mode);
            assert!(!failures.is_empty(), "{mode:?} went undetected");
            let min = shrink(&p, |cand| !sabotage_failures(cand, mode).is_empty());
            assert!(
                min.terms.len() <= p.terms.len(),
                "shrinking must not grow the program"
            );
            assert!(!sabotage_failures(&min, mode).is_empty());
        }
    }
}
