//! Differential verification of the parametric (structure/bind) cache.
//!
//! The cache's contract is stronger than semantic equivalence: a warm
//! `bind` must reproduce the cold compile **bit for bit** — same gates,
//! same angles down to the last ulp, same term order. Binding performs the
//! same float operations the cold pipeline would (sign folding is exact
//! negation), so any deviation is a bug, not roundoff; these checks
//! therefore use `==` on circuits, not the engine's tolerance ladder.

use std::sync::Arc;

use phoenix_core::{CompileCache, CompileRequest, Target};
use phoenix_pauli::PauliString;

use crate::differential::Failure;
use crate::gen::{Family, Program, RandomProgramGen};

fn fail(failures: &mut Vec<Failure>, pipeline: &str, check: &str, detail: String) {
    failures.push(Failure {
        pipeline: pipeline.to_string(),
        check: check.to_string(),
        metric: None,
        detail,
    });
}

/// Verifies the parametric cache on one program: legacy (uncached), cold
/// (cache miss) and warm (cache hit) compiles must be bit-for-bit
/// identical at both the logical and CNOT targets, and rebinding a fresh
/// angle vector must equal a from-scratch compile of the reparameterized
/// program. Returns all failures (empty = the program verifies).
pub fn verify_parametric(program: &Program, cache: &Arc<CompileCache>) -> Vec<Failure> {
    let mut failures = Vec::new();
    let n = program.num_qubits;
    let terms = &program.terms;
    for (name, target) in [("logical", Target::Logical), ("cnot", Target::Cnot)] {
        let pipeline = format!("PHOENIX/parametric-{name} (seed {})", program.seed);
        let legacy = match CompileRequest::new(n, terms).target(target.clone()).run() {
            Ok(out) => out,
            Err(e) => {
                fail(&mut failures, &pipeline, "compiles", e.to_string());
                continue;
            }
        };
        for run in ["cold", "warm"] {
            let cached = match CompileRequest::new(n, terms)
                .target(target.clone())
                .cache(cache)
                .run()
            {
                Ok(out) => out,
                Err(e) => {
                    fail(&mut failures, &pipeline, "compiles-cached", e.to_string());
                    continue;
                }
            };
            if cached.circuit != legacy.circuit {
                fail(
                    &mut failures,
                    &pipeline,
                    "warm-vs-cold",
                    format!("{run} cached circuit differs from the uncached compile"),
                );
            }
            if cached.term_order != legacy.term_order {
                fail(
                    &mut failures,
                    &pipeline,
                    "warm-vs-cold",
                    format!("{run} cached term order differs from the uncached compile"),
                );
            }
            if cached.num_groups != legacy.num_groups {
                fail(
                    &mut failures,
                    &pipeline,
                    "warm-vs-cold",
                    format!("{run} cached group count differs from the uncached compile"),
                );
            }
        }
    }
    // Rebinding: substitute a different angle vector through the cached
    // skeleton and compare against compiling the reparameterized program
    // from scratch.
    let angles: Vec<f64> = terms
        .iter()
        .enumerate()
        .map(|(i, (_, c))| c * 0.5 + 1e-4 * (i as f64 + 1.0))
        .collect();
    let pipeline = format!("PHOENIX/parametric-rebind (seed {})", program.seed);
    let rebound = CompileRequest::new(n, terms).cache(cache).bind(&angles);
    let reparam: Vec<(PauliString, f64)> = terms
        .iter()
        .zip(&angles)
        .map(|((p, _), a)| (p.clone(), *a))
        .collect();
    let fresh = CompileRequest::new(n, &reparam).run();
    match (rebound, fresh) {
        (Ok(rebound), Ok(fresh)) => {
            if rebound.circuit != fresh.circuit || rebound.term_order != fresh.term_order {
                fail(
                    &mut failures,
                    &pipeline,
                    "rebind-vs-fresh",
                    "rebound output differs from a fresh compile of the same angles".into(),
                );
            }
        }
        (Err(e), _) | (_, Err(e)) => {
            fail(&mut failures, &pipeline, "compiles", e.to_string());
        }
    }
    failures
}

/// Verifies `count` seeded random programs (round-robin over the three
/// program families) through one shared cache, so later programs also
/// exercise cross-program group-artifact reuse. Returns all failures.
pub fn parametric_failures(count: usize, base_seed: u64) -> Vec<Failure> {
    let mut failures = Vec::new();
    let cache = Arc::new(CompileCache::new());
    let mut gen = RandomProgramGen::new(base_seed);
    for i in 0..count {
        let family = Family::ALL[i % Family::ALL.len()];
        let num_qubits = 3 + i % 4;
        let num_terms = 4 + (i * 3) % 12;
        let program = gen.program(family, num_qubits, num_terms);
        failures.extend(verify_parametric(&program, &cache));
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_and_cold_are_bit_for_bit_identical_across_200_seeded_programs() {
        let failures = parametric_failures(200, 0xDAC5_2025);
        assert!(
            failures.is_empty(),
            "{} parametric failures, first: {:?}",
            failures.len(),
            failures.first()
        );
    }
}
