//! Seeded random Pauli-program generation with counterexample shrinking.
//!
//! Coefficient magnitudes are deliberately tiny (≈10⁻³). Differential
//! checks compare compiled circuits against a *reference ordering* of the
//! same Trotter product, so legitimate term reordering contributes
//! infidelity of order `B²` where `B = Σ_{i<j, non-commuting} |cᵢcⱼ|` is
//! the first-order Trotter bound, while a genuine miscompilation of one
//! term contributes at least `c²/2`. With `|c| ∈ [10⁻³, 2·10⁻³]` and ≲16
//! terms, `B² ≲ 4·10⁻⁸` sits two orders of magnitude below the smallest
//! bug signal (`5·10⁻⁷`), so the tolerance band separates cleanly (see
//! DESIGN.md §2.8 for the derivation).

use phoenix_mathkit::Xoshiro256;
use phoenix_pauli::{Pauli, PauliString};

/// Smallest coefficient magnitude the generator emits.
pub const COEFF_MIN: f64 = 1e-3;
/// Largest coefficient magnitude the generator emits.
pub const COEFF_MAX: f64 = 2e-3;

/// Program families mirroring the paper's benchmark mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Unstructured terms with a locality profile biased toward low weight.
    Random,
    /// Ising-like: `ZZ` couplings on random pairs plus `X`/`Z` fields —
    /// the QAOA-shaped regime.
    IsingLike,
    /// UCCSD-like: weight-2/4 `X`/`Y` excitations with Jordan–Wigner `Z`
    /// chains between the excitation sites.
    UccsdLike,
}

impl Family {
    /// All families, in generation rotation order.
    pub const ALL: [Family; 3] = [Family::Random, Family::IsingLike, Family::UccsdLike];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Random => "random",
            Family::IsingLike => "ising-like",
            Family::UccsdLike => "uccsd-like",
        }
    }
}

/// A generated program plus its provenance (enough to regenerate it).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Seed the program was generated from.
    pub seed: u64,
    /// Family it was drawn from.
    pub family: Family,
    /// Register width.
    pub num_qubits: usize,
    /// The Pauli terms.
    pub terms: Vec<(PauliString, f64)>,
}

/// Seeded random program generator.
///
/// # Examples
///
/// ```
/// use phoenix_verify::gen::{Family, RandomProgramGen};
///
/// let mut g = RandomProgramGen::new(7);
/// let p = g.program(Family::UccsdLike, 6, 8);
/// assert_eq!(p.num_qubits, 6);
/// assert!(!p.terms.is_empty());
/// // Same seed, same program.
/// let q = RandomProgramGen::new(7).program(Family::UccsdLike, 6, 8);
/// assert_eq!(p, q);
/// ```
#[derive(Debug)]
pub struct RandomProgramGen {
    seed: u64,
    rng: Xoshiro256,
}

impl RandomProgramGen {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomProgramGen {
            seed,
            rng: Xoshiro256::seed_from_u64(seed),
        }
    }

    fn coeff(&mut self) -> f64 {
        let mag = self.rng.next_range_f64(COEFF_MIN, COEFF_MAX);
        if self.rng.next_below(2) == 0 {
            mag
        } else {
            -mag
        }
    }

    /// `k` distinct qubits out of `n`, ascending.
    fn support(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut all: Vec<usize> = (0..n).collect();
        self.rng.shuffle(&mut all);
        let mut s = all[..k].to_vec();
        s.sort_unstable();
        s
    }

    fn random_term(&mut self, n: usize) -> PauliString {
        // Locality profile: weight 1–2 common, 3–4 rarer (capped at n).
        let w = match self.rng.next_below(8) {
            0..=2 => 1,
            3..=5 => 2,
            6 => 3,
            _ => 4,
        }
        .min(n);
        let support = self.support(n, w);
        let mut p = PauliString::identity(n);
        for q in support {
            p.set(q, [Pauli::X, Pauli::Y, Pauli::Z][self.rng.next_below(3)]);
        }
        p
    }

    fn ising_term(&mut self, n: usize) -> PauliString {
        if n >= 2 && self.rng.next_below(3) < 2 {
            let s = self.support(n, 2);
            let mut p = PauliString::identity(n);
            p.set(s[0], Pauli::Z);
            p.set(s[1], Pauli::Z);
            p
        } else {
            let q = self.rng.next_below(n);
            let axis = if self.rng.next_below(2) == 0 {
                Pauli::X
            } else {
                Pauli::Z
            };
            PauliString::single(n, q, axis)
        }
    }

    fn uccsd_term(&mut self, n: usize) -> PauliString {
        // Single (weight-2) or double (weight-4) excitation under JW: X/Y
        // with odd Y parity on the excitation sites, Z chain in between.
        let w = if n >= 4 && self.rng.next_below(2) == 0 {
            4
        } else {
            2.min(n)
        };
        if w < 2 {
            return PauliString::single(n, 0, Pauli::X);
        }
        let sites = self.support(n, w);
        let mut p = PauliString::identity(n);
        // Odd number of Y's keeps the term anti-Hermitian-generator-shaped.
        let y_at = self.rng.next_below(w);
        for (i, &q) in sites.iter().enumerate() {
            p.set(q, if i == y_at { Pauli::Y } else { Pauli::X });
        }
        for q in sites[0] + 1..sites[w - 1] {
            if p.get(q) == Pauli::I {
                p.set(q, Pauli::Z);
            }
        }
        p
    }

    /// Generates a program of `num_terms` non-identity terms on `num_qubits`
    /// qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is zero.
    pub fn program(&mut self, family: Family, num_qubits: usize, num_terms: usize) -> Program {
        assert!(num_qubits > 0, "program needs at least one qubit");
        let mut terms = Vec::with_capacity(num_terms);
        while terms.len() < num_terms {
            let p = match family {
                Family::Random => self.random_term(num_qubits),
                Family::IsingLike => self.ising_term(num_qubits),
                Family::UccsdLike => self.uccsd_term(num_qubits),
            };
            if p.is_identity() {
                continue;
            }
            let c = self.coeff();
            terms.push((p, c));
        }
        Program {
            seed: self.seed,
            family,
            num_qubits,
            terms,
        }
    }
}

/// Shrinks a failing program to a (locally) minimal counterexample.
///
/// `still_fails` re-runs the failing check on a candidate program and
/// returns `true` while the failure persists. Shrinking is greedy and
/// deterministic: repeatedly try dropping each term, then compact away
/// unused qubits, until neither step makes progress. The result is the
/// smallest program reached, which still fails.
pub fn shrink(program: &Program, still_fails: impl Fn(&Program) -> bool) -> Program {
    let mut best = program.clone();
    loop {
        let mut progressed = false;
        // Drop terms, largest index first so removal indices stay stable.
        let mut i = best.terms.len();
        while i > 0 {
            i -= 1;
            if best.terms.len() <= 1 {
                break;
            }
            let mut candidate = best.clone();
            candidate.terms.remove(i);
            if still_fails(&candidate) {
                best = candidate;
                progressed = true;
            }
        }
        // Compact unused qubits.
        if let Some(candidate) = compact_qubits(&best) {
            if still_fails(&candidate) {
                best = candidate;
                progressed = true;
            }
        }
        if !progressed {
            return best;
        }
    }
}

/// Relabels the program onto its actually-used qubits, or `None` if every
/// qubit is used (or none are).
fn compact_qubits(p: &Program) -> Option<Program> {
    let mut used: Vec<usize> = (0..p.num_qubits)
        .filter(|&q| p.terms.iter().any(|(t, _)| t.get(q) != Pauli::I))
        .collect();
    used.sort_unstable();
    if used.is_empty() || used.len() == p.num_qubits {
        return None;
    }
    let terms = p
        .terms
        .iter()
        .map(|(t, c)| (t.restrict(&used), *c))
        .collect();
    Some(Program {
        seed: p.seed,
        family: p.family,
        num_qubits: used.len(),
        terms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_generate_requested_shape() {
        let mut g = RandomProgramGen::new(42);
        for family in Family::ALL {
            let p = g.program(family, 6, 10);
            assert_eq!(p.terms.len(), 10);
            for (t, c) in &p.terms {
                assert!(!t.is_identity());
                assert_eq!(t.num_qubits(), 6);
                assert!((COEFF_MIN..=COEFF_MAX).contains(&c.abs()), "|c| = {c}");
            }
        }
    }

    #[test]
    fn ising_terms_are_z_z_or_fields() {
        let mut g = RandomProgramGen::new(3);
        let p = g.program(Family::IsingLike, 5, 20);
        for (t, _) in &p.terms {
            assert!(t.weight() <= 2);
        }
    }

    #[test]
    fn uccsd_terms_have_jw_chains() {
        let mut g = RandomProgramGen::new(9);
        let p = g.program(Family::UccsdLike, 8, 20);
        for (t, _) in &p.terms {
            // Support is contiguous once the Z chain is included.
            let s = t.support();
            assert_eq!(s.last().unwrap() - s[0] + 1, s.len(), "{t}");
        }
    }

    #[test]
    fn shrink_finds_the_single_bad_term() {
        let mut g = RandomProgramGen::new(11);
        let p = g.program(Family::Random, 6, 12);
        // Pretend the failure is caused by term #7 (tracked by its
        // coefficient, which survives qubit compaction).
        let culprit = p.terms[7].clone();
        let min = shrink(&p, |cand| cand.terms.iter().any(|(_, c)| *c == culprit.1));
        assert_eq!(min.terms.len(), 1);
        assert_eq!(min.num_qubits, culprit.0.weight());
    }
}
