//! Differential & metamorphic verification harness.
//!
//! Generates seeded random programs across the three families, drives
//! PHOENIX (all five compile paths) and the four baselines over each, and
//! reports per-pipeline pass/fail. Failures are shrunk to minimized
//! counterexamples and written to `results/verifybench.json`.
//!
//! Usage:
//!   verifybench [--programs N] [--seed S] [--max-qubits N]
//!               [--no-hardware] [--verify-passes] [--quick] [--sabotage]
//!
//! `--quick` is the CI smoke configuration (24 programs, n ≤ 6).
//! `--sabotage` (needs the `sabotage` feature) proves the engine catches an
//! injected miscompilation — the run fails if the bug goes *undetected*.
//! Exit status: 0 iff every check behaved as expected.

use std::collections::BTreeMap;

use phoenix_verify::gen::{Family, Program, RandomProgramGen};
use phoenix_verify::{metamorphic_failures, shrink, verify_program, Failure, VerifyConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Counterexample {
    seed: u64,
    family: String,
    num_qubits: usize,
    terms: Vec<(String, f64)>,
    failures: Vec<Failure>,
    minimized_terms: Vec<(String, f64)>,
    minimized_qubits: usize,
}

#[derive(Serialize)]
struct Report {
    programs: usize,
    seed: u64,
    max_qubits: usize,
    pipelines: BTreeMap<String, PipelineStats>,
    counterexamples: Vec<Counterexample>,
}

#[derive(Serialize, Default, Clone)]
struct PipelineStats {
    checks: usize,
    failures: usize,
}

fn flag_value(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn program_terms(p: &Program) -> Vec<(String, f64)> {
    p.terms.iter().map(|(t, c)| (t.label(), *c)).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let programs = flag_value(&args, "--programs").unwrap_or(if quick { 24 } else { 200 }) as usize;
    let seed = flag_value(&args, "--seed").unwrap_or(7);
    let max_qubits =
        flag_value(&args, "--max-qubits").unwrap_or(if quick { 6 } else { 10 }) as usize;
    let cfg = VerifyConfig {
        hardware: !args.iter().any(|a| a == "--no-hardware"),
        verify_passes: args.iter().any(|a| a == "--verify-passes"),
        ..VerifyConfig::default()
    };

    if args.iter().any(|a| a == "--sabotage") {
        return sabotage_mode(seed);
    }

    println!("# verifybench: {programs} programs, seed {seed}, n ∈ [2, {max_qubits}]\n");
    let mut gen = RandomProgramGen::new(seed);
    let mut pipelines: BTreeMap<String, PipelineStats> = BTreeMap::new();
    let mut counterexamples = Vec::new();
    let mut total_failures = 0usize;

    for i in 0..programs {
        let family = Family::ALL[i % Family::ALL.len()];
        let n = 2 + i % (max_qubits - 1);
        let num_terms = 4 + (i / 3) % 9;
        let program = gen.program(family, n, num_terms);

        let mut failures = verify_program(&program, &cfg);
        // Metamorphic properties on the dense tier, on a rotating subset
        // (they recompile the program several times over).
        if n <= cfg.unitary_max_qubits && i % 4 == 0 {
            failures.extend(metamorphic_failures(&program, seed ^ i as u64));
        }

        for f in &failures {
            pipelines.entry(f.pipeline.clone()).or_default().failures += 1;
        }
        for name in pipeline_names(&cfg, n) {
            pipelines.entry(name).or_default().checks += 1;
        }

        if !failures.is_empty() {
            total_failures += failures.len();
            let minimized = shrink(&program, |cand| !verify_program(cand, &cfg).is_empty());
            eprintln!(
                "FAIL [{i}] {} n={} terms={}: {} failure(s); minimized to n={} terms={}",
                family.name(),
                n,
                program.terms.len(),
                failures.len(),
                minimized.num_qubits,
                minimized.terms.len()
            );
            for f in &failures {
                eprintln!("    {} :: {} :: {}", f.pipeline, f.check, f.detail);
            }
            counterexamples.push(Counterexample {
                seed,
                family: family.name().to_string(),
                num_qubits: program.num_qubits,
                terms: program_terms(&program),
                failures,
                minimized_terms: program_terms(&minimized),
                minimized_qubits: minimized.num_qubits,
            });
        }
        if (i + 1) % 50 == 0 {
            eprintln!("[progress] {}/{programs} programs verified", i + 1);
        }
    }

    println!("| pipeline | programs | failures |");
    println!("|---|---|---|");
    for (name, stats) in &pipelines {
        println!("| {name} | {} | {} |", stats.checks, stats.failures);
    }
    println!(
        "\n{programs} programs, {total_failures} failure(s), {} counterexample(s)",
        counterexamples.len()
    );

    let report = Report {
        programs,
        seed,
        max_qubits,
        pipelines,
        counterexamples,
    };
    write_results("verifybench", &report);
    if total_failures > 0 {
        std::process::exit(1);
    }
}

/// Pipeline labels exercised for an `n`-qubit program (for the checks
/// column of the report).
fn pipeline_names(cfg: &VerifyConfig, _n: usize) -> Vec<String> {
    let mut v: Vec<String> = [
        "PHOENIX/high-level",
        "PHOENIX/cnot",
        "PHOENIX/su4",
        "PHOENIX/kak",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for b in [
        "original",
        "TKET-style",
        "Paulihedral-style",
        "Tetris-style",
    ] {
        v.push(format!("{b}/logical"));
        v.push(format!("{b}/optimized"));
    }
    if cfg.hardware {
        for b in [
            "PHOENIX",
            "original",
            "TKET-style",
            "Paulihedral-style",
            "Tetris-style",
        ] {
            v.push(format!("{b}/hardware"));
        }
    }
    v
}

#[cfg(feature = "sabotage")]
fn sabotage_mode(seed: u64) {
    use phoenix_verify::sabotage::{sabotage_failures, SabotageMode};
    let mut gen = RandomProgramGen::new(seed);
    let mut caught = 0usize;
    let mut missed = 0usize;
    for i in 0..20 {
        let family = Family::ALL[i % Family::ALL.len()];
        let program = gen.program(family, 3 + i % 4, 6 + i % 6);
        for mode in [SabotageMode::FlipRotationSign, SabotageMode::ExtraGate] {
            let failures = sabotage_failures(&program, mode);
            if failures.is_empty() {
                missed += 1;
                eprintln!("MISSED: {mode:?} on program {i} went undetected");
            } else {
                caught += 1;
                let min = shrink(&program, |cand| !sabotage_failures(cand, mode).is_empty());
                eprintln!(
                    "caught {mode:?} on program {i} (metric {:.3e}); minimized to {} term(s)",
                    failures[0].metric.unwrap_or(f64::NAN),
                    min.terms.len()
                );
            }
        }
    }
    println!("sabotage: {caught} caught, {missed} missed");
    if missed > 0 {
        std::process::exit(1);
    }
}

#[cfg(not(feature = "sabotage"))]
fn sabotage_mode(_seed: u64) {
    eprintln!("error: --sabotage requires building with `--features phoenix-verify/sabotage`");
    std::process::exit(2);
}

/// Writes a JSON result file under `results/` (mirrors
/// `phoenix_bench::write_results` without the crate dependency).
fn write_results(name: &str, value: &impl Serialize) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("error: creating {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("error: writing {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("[results] wrote {}", path.display());
        }
        Err(e) => {
            eprintln!("error: serializing {name}: {e}");
            std::process::exit(1);
        }
    }
}
