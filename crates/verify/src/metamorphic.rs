//! Metamorphic properties of compilation.
//!
//! Each property transforms a program in a way with a *known* semantic
//! effect and checks that compilation commutes with the transformation:
//!
//! - **Qubit relabeling**: compiling `π(P)` is equivalent (within Trotter
//!   reordering) to relabeling the compiled circuit of `P` by `π`.
//! - **Term permutation**: shuffling the input terms changes nothing
//!   semantically — outputs agree within twice the reorder tolerance.
//! - **Coefficient scaling**: scaling all coefficients to zero must
//!   compile to the identity; PHOENIX's exact term-order invariant must
//!   survive any scale.
//! - **Concatenation**: compiling `P ⧺ Q` is equivalent to composing the
//!   separately compiled circuits, within the combined reorder tolerance.
//!
//! All properties are dense checks — run them on programs within the
//! unitary tier (`n ≲ 8`).

use phoenix_core::PhoenixCompiler;
use phoenix_mathkit::Xoshiro256;
use phoenix_sim::{circuit_unitary, infidelity};

use crate::differential::Failure;
use crate::engine::{check_exact_unitary, reorder_tolerance, Outcome, EPSILON};
use crate::gen::Program;

/// Runs every metamorphic property on `program` with transformation
/// randomness drawn from `seed`. Dense; intended for `n ≤ 8`.
pub fn metamorphic_failures(program: &Program, seed: u64) -> Vec<Failure> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut failures = Vec::new();
    relabeling(program, &mut rng, &mut failures);
    term_permutation(program, &mut rng, &mut failures);
    coefficient_scaling(program, &mut failures);
    concatenation(program, &mut failures);
    failures
}

fn fail(failures: &mut Vec<Failure>, property: &str, metric: f64, detail: String) {
    failures.push(Failure {
        pipeline: format!("metamorphic/{property}"),
        check: property.to_string(),
        metric: Some(metric),
        detail,
    });
}

/// Compilation commutes with qubit relabeling (up to Trotter reordering).
fn relabeling(program: &Program, rng: &mut Xoshiro256, failures: &mut Vec<Failure>) {
    let n = program.num_qubits;
    let mut pi: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut pi);
    let relabeled: Vec<_> = program
        .terms
        .iter()
        .map(|(p, c)| (p.embed(n, &pi), *c))
        .collect();
    let compiler = PhoenixCompiler::default();
    let direct = compiler.compile_to_cnot(n, &relabeled);
    let via_map = compiler
        .compile_to_cnot(n, &program.terms)
        .map_qubits(n, |q| pi[q]);
    let tol = 2.0 * reorder_tolerance(&relabeled);
    let infid = infidelity(&circuit_unitary(&direct), &circuit_unitary(&via_map));
    if infid > tol {
        fail(
            failures,
            "relabeling",
            infid,
            format!("compile(π·P) vs π·compile(P): infidelity {infid:.3e} > {tol:.3e}"),
        );
    }
}

/// Shuffling input terms leaves the compiled semantics unchanged.
fn term_permutation(program: &Program, rng: &mut Xoshiro256, failures: &mut Vec<Failure>) {
    let mut shuffled = program.terms.clone();
    rng.shuffle(&mut shuffled);
    let compiler = PhoenixCompiler::default();
    let a = compiler.compile_to_cnot(program.num_qubits, &program.terms);
    let b = compiler.compile_to_cnot(program.num_qubits, &shuffled);
    let tol = 2.0 * reorder_tolerance(&program.terms);
    let infid = infidelity(&circuit_unitary(&a), &circuit_unitary(&b));
    if infid > tol {
        fail(
            failures,
            "term-permutation",
            infid,
            format!("shuffled input compiled differently: infidelity {infid:.3e} > {tol:.3e}"),
        );
    }
}

/// Zero-scaled coefficients compile to the identity; PHOENIX's exact
/// term-order invariant holds at any scale.
fn coefficient_scaling(program: &Program, failures: &mut Vec<Failure>) {
    let compiler = PhoenixCompiler::default();
    let n = program.num_qubits;
    let zeroed: Vec<_> = program
        .terms
        .iter()
        .map(|(p, _)| (p.clone(), 0.0))
        .collect();
    let at_zero = compiler.compile_to_cnot(n, &zeroed);
    let infid = infidelity(&circuit_unitary(&at_zero), &identity_unitary(n));
    if infid > EPSILON {
        fail(
            failures,
            "zero-scaling",
            infid,
            format!("zero-coefficient program is not the identity: infidelity {infid:.3e}"),
        );
    }
    for scale in [0.5, -1.0] {
        let scaled: Vec<_> = program
            .terms
            .iter()
            .map(|(p, c)| (p.clone(), c * scale))
            .collect();
        let out = compiler.compile(n, &scaled);
        if let Outcome::Fail { metric, detail } = check_exact_unitary(&out.circuit, &out.term_order)
        {
            fail(
                failures,
                "coefficient-scaling",
                metric,
                format!("scale {scale}: {detail}"),
            );
        }
    }
}

/// Compiling a concatenation is equivalent to composing the compilations.
fn concatenation(program: &Program, failures: &mut Vec<Failure>) {
    if program.terms.len() < 2 {
        return;
    }
    let (left, right) = program.terms.split_at(program.terms.len() / 2);
    let compiler = PhoenixCompiler::default();
    let n = program.num_qubits;
    let whole = compiler.compile_to_cnot(n, &program.terms);
    let mut composed = compiler.compile_to_cnot(n, left);
    composed.append(&compiler.compile_to_cnot(n, right));
    let tol = 2.0 * reorder_tolerance(&program.terms);
    let infid = infidelity(&circuit_unitary(&whole), &circuit_unitary(&composed));
    if infid > tol {
        fail(
            failures,
            "concatenation",
            infid,
            format!("compile(P⧺Q) vs compile(P)·compile(Q): infidelity {infid:.3e} > {tol:.3e}"),
        );
    }
}

fn identity_unitary(n: usize) -> phoenix_mathkit::CMatrix {
    phoenix_mathkit::CMatrix::identity(1 << n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{Family, RandomProgramGen};

    #[test]
    fn properties_hold_on_random_programs() {
        let mut g = RandomProgramGen::new(314);
        for family in Family::ALL {
            let p = g.program(family, 5, 8);
            let failures = metamorphic_failures(&p, 99);
            assert!(failures.is_empty(), "{family:?}: {failures:?}");
        }
    }
}
