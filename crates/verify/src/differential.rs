//! Differential verification of every compile path.
//!
//! For one program, [`verify_program`] runs PHOENIX through all five of its
//! entry points (high-level, CNOT, SU(4), CNOT-via-KAK, hardware-aware) and
//! each baseline through its logical / optimized / hardware paths, checks
//! every output against the reference Trotter evolution with the
//! appropriate tier of the engine, and cross-checks the strategies against
//! each other. Every failure is reported with the pipeline that produced
//! it.

use phoenix_baselines::Baseline;
use phoenix_circuit::Circuit;
use phoenix_core::{CompilerStrategy, PhoenixCompiler};
use phoenix_mathkit::{CMatrix, Xoshiro256};
use phoenix_sim::circuit_unitary;
use phoenix_topology::CouplingGraph;
use serde::Serialize;

use crate::engine::{
    check_coupling_legal, check_exact_unitary, check_routed_equivalence, check_skeleton_identity,
    check_states_vs_order, check_unitary_pair, check_unitary_vs_reference, reorder_tolerance,
    Outcome,
};
use crate::gen::Program;

/// One reported failure.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Failure {
    /// Pipeline that produced the failing artifact (e.g. `"PHOENIX/kak"`).
    pub pipeline: String,
    /// Which check failed (e.g. `"exact-unitary"`).
    pub check: String,
    /// Measured deviation when numeric (`None` for structural failures).
    pub metric: Option<f64>,
    /// Diagnosis.
    pub detail: String,
}

/// Verification configuration.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Dense unitary checks run for programs up to this width.
    pub unitary_max_qubits: usize,
    /// Tier-3 state spot checks run for programs up to this width.
    pub state_max_qubits: usize,
    /// Product states per tier-3 check.
    pub spot_states: usize,
    /// Seed for tier-3 state sampling.
    pub state_seed: u64,
    /// Verify hardware-aware paths (adds routing per strategy).
    pub hardware: bool,
    /// Compile PHOENIX with pass-boundary verification attached
    /// ([`phoenix_core::PhoenixOptions::verify`]), so the pass that breaks
    /// an invariant is named directly.
    pub verify_passes: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            unitary_max_qubits: 8,
            state_max_qubits: 16,
            spot_states: 4,
            state_seed: 0x5eed,
            hardware: true,
            verify_passes: false,
        }
    }
}

fn record(failures: &mut Vec<Failure>, pipeline: &str, check: &str, outcome: Outcome) {
    if let Outcome::Fail { metric, detail } = outcome {
        failures.push(Failure {
            pipeline: pipeline.to_string(),
            check: check.to_string(),
            metric: if metric.is_nan() { None } else { Some(metric) },
            detail,
        });
    }
}

/// The line device used for hardware-path verification: wide enough for
/// the program, narrow enough to force routing.
pub fn verification_device(n: usize) -> CouplingGraph {
    CouplingGraph::line(n.max(2))
}

/// Verifies every compile path on one program; returns all failures
/// (empty = the program verifies).
pub fn verify_program(program: &Program, cfg: &VerifyConfig) -> Vec<Failure> {
    let mut failures = Vec::new();
    let n = program.num_qubits;
    let terms = &program.terms;
    let dense = n <= cfg.unitary_max_qubits;
    let states = n <= cfg.state_max_qubits;
    let mut rng = Xoshiro256::seed_from_u64(cfg.state_seed ^ program.seed);

    let compiler = PhoenixCompiler::new(phoenix_core::PhoenixOptions {
        verify: cfg.verify_passes,
        ..phoenix_core::PhoenixOptions::default()
    });

    // --- PHOENIX: every logical entry point against its own term order ---
    let compiled = match compiler.try_compile(n, terms) {
        Ok(c) => c,
        Err(e) => {
            failures.push(Failure {
                pipeline: "PHOENIX/high-level".into(),
                check: "compiles".into(),
                metric: None,
                detail: e.to_string(),
            });
            return failures;
        }
    };
    record(
        &mut failures,
        "PHOENIX/high-level",
        "skeleton-identity",
        check_skeleton_identity(&compiled.circuit),
    );
    let phoenix_paths: Vec<(&str, Result<Circuit, phoenix_core::PhoenixError>)> = vec![
        ("PHOENIX/high-level", Ok(compiled.circuit.clone())),
        ("PHOENIX/cnot", compiler.try_compile_to_cnot(n, terms)),
        ("PHOENIX/su4", compiler.try_compile_to_su4(n, terms)),
        (
            "PHOENIX/kak",
            compiler.try_compile_to_cnot_via_kak(n, terms),
        ),
    ];
    let mut phoenix_cnot_unitary: Option<CMatrix> = None;
    for (pipeline, result) in phoenix_paths {
        let circuit = match result {
            Ok(c) => c,
            Err(e) => {
                failures.push(Failure {
                    pipeline: pipeline.to_string(),
                    check: "compiles".into(),
                    metric: None,
                    detail: e.to_string(),
                });
                continue;
            }
        };
        if dense {
            record(
                &mut failures,
                pipeline,
                "exact-unitary",
                check_exact_unitary(&circuit, &compiled.term_order),
            );
            if pipeline == "PHOENIX/cnot" {
                phoenix_cnot_unitary = Some(circuit_unitary(&circuit));
            }
        } else if states {
            record(
                &mut failures,
                pipeline,
                "exact-states",
                check_states_vs_order(
                    &circuit,
                    &compiled.term_order,
                    crate::engine::EXACT_TOL.max(crate::engine::EPSILON),
                    cfg.spot_states,
                    &mut rng,
                ),
            );
        }
    }

    // --- Baselines: logical + optimized against the reference order ---
    let baselines = [
        Baseline::Naive,
        Baseline::TketStyle,
        Baseline::PaulihedralStyle,
        Baseline::TetrisStyle,
    ];
    let mut optimized_unitaries: Vec<(String, CMatrix)> = Vec::new();
    for b in baselines {
        let name = Baseline::name(b);
        let logical = b.compile_logical(n, terms);
        record(
            &mut failures,
            &format!("{name}/logical"),
            "skeleton-identity",
            check_skeleton_identity(&logical),
        );
        let optimized = CompilerStrategy::compile_optimized(&b, n, terms);
        for (suffix, circuit) in [("logical", &logical), ("optimized", &optimized)] {
            let pipeline = format!("{name}/{suffix}");
            if dense {
                record(
                    &mut failures,
                    &pipeline,
                    "unitary-vs-reference",
                    check_unitary_vs_reference(circuit, terms),
                );
            } else if states {
                record(
                    &mut failures,
                    &pipeline,
                    "states-vs-reference",
                    check_states_vs_order(
                        circuit,
                        terms,
                        2.0 * reorder_tolerance(terms),
                        cfg.spot_states,
                        &mut rng,
                    ),
                );
            }
        }
        if dense {
            optimized_unitaries.push((name.to_string(), circuit_unitary(&optimized)));
        }
    }

    // --- Pairwise: every strategy against every other ---
    if dense {
        if let Some(u) = &phoenix_cnot_unitary {
            optimized_unitaries.push(("PHOENIX".to_string(), u.clone()));
        }
        for (i, (na, ua)) in optimized_unitaries.iter().enumerate() {
            for (nb, ub) in &optimized_unitaries[i + 1..] {
                record(
                    &mut failures,
                    &format!("{na}×{nb}"),
                    "pairwise-unitary",
                    check_unitary_pair(ua, ub, terms),
                );
            }
        }
    }

    // --- Hardware-aware: routed outputs, permutation-aware ---
    if cfg.hardware {
        let device = verification_device(n);
        let hardware: Vec<(String, Result<phoenix_core::HardwareProgram, String>)> = {
            let mut v = Vec::new();
            v.push((
                "PHOENIX/hardware".to_string(),
                compiler
                    .try_compile_hardware_aware(n, terms, &device)
                    .map_err(|e| e.to_string()),
            ));
            for b in baselines {
                let logical = b.compile_logical(n, terms);
                v.push((
                    format!("{}/hardware", Baseline::name(b)),
                    phoenix_core::try_run_hardware_backend(
                        &logical,
                        &device,
                        &phoenix_router::RouterOptions::default(),
                        3,
                    )
                    .map_err(|e| e.to_string()),
                ));
            }
            v
        };
        for (pipeline, result) in hardware {
            let hw = match result {
                Ok(hw) => hw,
                Err(e) => {
                    failures.push(Failure {
                        pipeline,
                        check: "compiles".into(),
                        metric: None,
                        detail: e,
                    });
                    continue;
                }
            };
            record(
                &mut failures,
                &pipeline,
                "coupling-legal",
                check_coupling_legal(&hw.circuit, &device),
            );
            if device.num_qubits() <= cfg.unitary_max_qubits {
                record(
                    &mut failures,
                    &pipeline,
                    "routed-permutation",
                    check_routed_equivalence(
                        &hw.circuit,
                        &hw.logical,
                        &hw.initial_layout,
                        &hw.final_layout,
                    ),
                );
                // The logical snapshot itself must still implement the
                // program (hardware-aware ordering is just another
                // legitimate reordering).
                record(
                    &mut failures,
                    &pipeline,
                    "logical-vs-reference",
                    check_unitary_vs_reference(&hw.logical, terms),
                );
            }
        }
    }

    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{Family, RandomProgramGen};

    #[test]
    fn random_programs_verify_on_all_paths() {
        let mut g = RandomProgramGen::new(2024);
        for (i, family) in Family::ALL.iter().enumerate() {
            let p = g.program(*family, 4 + i, 6);
            let failures = verify_program(&p, &VerifyConfig::default());
            assert!(failures.is_empty(), "{:?}", failures);
        }
    }

    #[test]
    fn large_programs_use_state_tier() {
        let mut g = RandomProgramGen::new(77);
        let p = g.program(Family::IsingLike, 12, 8);
        let cfg = VerifyConfig {
            hardware: false, // routing a 12-qubit line is fine but slow-ish
            ..VerifyConfig::default()
        };
        let failures = verify_program(&p, &cfg);
        assert!(failures.is_empty(), "{:?}", failures);
    }
}
