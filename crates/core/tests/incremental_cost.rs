//! Differential tests: the incremental [`CostEvaluator`] must be
//! *bit-identical* to the naive clone-and-rescore path on random tableaux —
//! every candidate cost, the argmin (including tie-breaking), the
//! guaranteed-progress fallback, and the end-to-end `simplify_terms` output.

use phoenix_core::cost::cost_bsf;
use phoenix_core::simplify::{best_candidate_naive, progress_candidate_naive, simplify_terms_with};
use phoenix_core::{CostEvaluator, SimplifyOptions};
use phoenix_pauli::{Bsf, BsfRow, Clifford2Q, PauliString, CLIFFORD2Q_GENERATORS};
use proptest::prelude::*;

/// A random tableau on `n ∈ 2..=7` qubits with `1..=6` rows of random
/// X/Z masks (truncated to the register) and coefficients.
fn arb_bsf() -> impl Strategy<Value = Bsf> {
    (
        2usize..=7,
        proptest::collection::vec((0u64..128, 0u64..128, -1.0f64..1.0), 1..=6),
    )
        .prop_map(|(n, rows)| {
            let mask = (1u128 << n) - 1;
            let mut bsf = Bsf::new(n);
            for (x, z, coeff) in rows {
                bsf.push_row(BsfRow::new(x as u128 & mask, z as u128 & mask, coeff));
            }
            bsf
        })
}

proptest! {
    /// Every generator, every ordered qubit pair: the O(1) incremental
    /// score equals the naive conjugate-then-rescore cost down to the
    /// last bit.
    #[test]
    fn candidate_cost_matches_naive_for_every_candidate(bsf in arb_bsf()) {
        let mut eval = CostEvaluator::new();
        eval.prepare(&bsf);
        prop_assert_eq!(eval.current_cost().to_bits(), cost_bsf(&bsf).to_bits());
        let n = bsf.num_qubits();
        for kind in CLIFFORD2Q_GENERATORS {
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let cand = Clifford2Q::new(kind, a, b);
                    let fast = eval.candidate_cost(&bsf, cand);
                    let naive = cost_bsf(&bsf.conjugated(cand));
                    prop_assert_eq!(
                        fast.to_bits(),
                        naive.to_bits(),
                        "{} on ({},{}): fast {} vs naive {}",
                        kind, a, b, fast, naive
                    );
                }
            }
        }
    }

    /// Same winner (gate *and* cost bits) as the naive scan, sequentially
    /// and with a parallel scan — tie-breaking included.
    #[test]
    fn best_candidate_matches_naive_argmin(bsf in arb_bsf()) {
        let mut eval = CostEvaluator::new();
        eval.prepare(&bsf);
        let naive = best_candidate_naive(&bsf);
        for threads in [1usize, 4] {
            let fast = eval.best_candidate_scan(&bsf, threads);
            match (fast, naive) {
                (Some((fc, fcost)), Some((nc, ncost))) => {
                    prop_assert_eq!(fc, nc, "threads={}", threads);
                    prop_assert_eq!(fcost.to_bits(), ncost.to_bits());
                }
                (f, n) => prop_assert_eq!(f.is_none(), n.is_none()),
            }
        }
    }

    /// The guaranteed-progress fallback picks the identical gate.
    #[test]
    fn progress_candidate_matches_naive(bsf in arb_bsf()) {
        prop_assume!(bsf.rows().iter().any(|r| r.weight() >= 2));
        let mut eval = CostEvaluator::new();
        eval.prepare(&bsf);
        prop_assert_eq!(eval.progress_candidate(&bsf), progress_candidate_naive(&bsf));
    }

    /// Algorithm 1's full output is invariant under the evaluator choice:
    /// incremental (sequential or parallel scan) and forced-naive runs
    /// produce the same `SimplifiedGroup`, item for item.
    #[test]
    fn simplify_output_invariant_under_evaluator_choice(bsf in arb_bsf()) {
        let n = bsf.num_qubits();
        let terms: Vec<(PauliString, f64)> = bsf
            .rows()
            .iter()
            .map(|r| (r.to_pauli_string(n), r.coeff()))
            .collect();
        let reference = simplify_terms_with(n, &terms, &SimplifyOptions::default());
        for opts in [
            SimplifyOptions { naive_cost: true, ..SimplifyOptions::default() },
            SimplifyOptions { scan_threads: 4, ..SimplifyOptions::default() },
        ] {
            prop_assert_eq!(&simplify_terms_with(n, &terms, &opts), &reference);
        }
    }
}
