//! Golden-equivalence tests for the pass-manager refactor.
//!
//! The pass pipeline must be a pure re-organization: for every entry point,
//! its output is gate-for-gate identical to the pre-refactor monolithic
//! pipeline, re-implemented verbatim here from the public stage functions
//! (`group_by_support` → `simplify_terms`/`synthesize_group` →
//! `order_groups` → concatenation, plus the peephole/route back ends).

use phoenix_circuit::{peephole, Circuit};
use phoenix_core::group::group_by_support;
use phoenix_core::order::{order_groups, OrderOptions};
use phoenix_core::simplify::simplify_terms;
use phoenix_core::synth::synthesize_group;
use phoenix_core::{HardwareProgram, PhoenixCompiler, PhoenixOptions};
use phoenix_hamil::{uccsd, Molecule};
use phoenix_pauli::PauliString;
use phoenix_router::{route, search_layout, Layout, RouterOptions};
use phoenix_topology::CouplingGraph;

/// Logical-to-physical map of a [`Layout`], as recorded on
/// [`HardwareProgram`].
fn l2p(layout: &Layout, n: usize) -> Vec<usize> {
    (0..n).map(|l| layout.phys(l).unwrap()).collect()
}

/// The Fig. 1(b) example program.
fn fig1b() -> (usize, Vec<(PauliString, f64)>) {
    let terms = ["ZYY", "ZZY", "XYY", "XZY"]
        .iter()
        .enumerate()
        .map(|(i, l)| (l.parse().unwrap(), 0.02 * (i + 1) as f64))
        .collect();
    (3, terms)
}

/// A UCCSD ansatz instance (LiH, frozen core, Jordan–Wigner).
fn uccsd_lih() -> (usize, Vec<(PauliString, f64)>) {
    let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, 7);
    (h.num_qubits(), h.terms().to_vec())
}

/// The pre-refactor `PhoenixCompiler::compile`, verbatim.
fn monolithic_compile(
    n: usize,
    terms: &[(PauliString, f64)],
    options: &PhoenixOptions,
) -> (Circuit, usize, Vec<(PauliString, f64)>) {
    let groups = group_by_support(n, terms);
    let (subcircuits, group_terms): (Vec<Circuit>, Vec<Vec<(PauliString, f64)>>) =
        if options.enable_simplification {
            groups
                .iter()
                .map(|g| {
                    let s = simplify_terms(n, g.terms());
                    (synthesize_group(&s), s.term_sequence())
                })
                .unzip()
        } else {
            groups
                .iter()
                .map(|g| {
                    (
                        phoenix_circuit::synthesis::naive_circuit(n, g.terms()),
                        g.terms().to_vec(),
                    )
                })
                .unzip()
        };
    let perm: Vec<usize> = if options.enable_ordering {
        order_groups(
            &subcircuits,
            &OrderOptions {
                lookahead: options.lookahead,
                routing_aware: options.routing_aware,
            },
        )
    } else {
        (0..subcircuits.len()).collect()
    };
    let mut circuit = Circuit::new(n);
    let mut term_order = Vec::with_capacity(terms.len());
    for i in perm {
        circuit.append(&subcircuits[i]);
        term_order.extend(group_terms[i].iter().cloned());
    }
    (circuit, groups.len(), term_order)
}

/// The pre-refactor `PhoenixCompiler::compile_hardware_aware`, verbatim.
fn monolithic_hardware(
    n: usize,
    terms: &[(PauliString, f64)],
    options: &PhoenixOptions,
    device: &CouplingGraph,
) -> HardwareProgram {
    let mut hw = options.clone();
    hw.routing_aware = true;
    let (circuit, _, _) = monolithic_compile(n, terms, &hw);
    let logical = peephole::optimize(&circuit);
    let opts = RouterOptions::default();
    let layout = search_layout(&logical, device, &opts, 3);
    let routed = route(&logical, device, layout, &opts);
    HardwareProgram {
        circuit: peephole::optimize(&routed.circuit),
        initial_layout: l2p(&routed.initial_layout, logical.num_qubits()),
        final_layout: l2p(&routed.final_layout, logical.num_qubits()),
        logical,
        num_swaps: routed.num_swaps,
    }
}

fn assert_logical_golden(n: usize, terms: &[(PauliString, f64)]) {
    let compiler = PhoenixCompiler::default();
    let (circuit, num_groups, term_order) = monolithic_compile(n, terms, &compiler.options);

    let out = compiler.compile(n, terms);
    assert_eq!(out.circuit, circuit, "high-level circuit diverged");
    assert_eq!(out.num_groups, num_groups);
    assert_eq!(out.term_order, term_order);

    assert_eq!(
        compiler.compile_to_cnot(n, terms),
        peephole::optimize(&circuit),
        "CNOT-ISA output diverged"
    );
    assert_eq!(
        compiler.compile_to_su4(n, terms),
        phoenix_circuit::rebase::to_su4(&circuit),
        "SU(4)-ISA output diverged"
    );
    assert_eq!(
        compiler.compile_to_cnot_via_kak(n, terms),
        peephole::optimize(&phoenix_circuit::kak::resynthesize(
            &phoenix_circuit::rebase::to_su4(&circuit)
        )),
        "KAK-resynthesis output diverged"
    );
}

#[test]
fn fig1b_outputs_match_the_monolithic_pipeline() {
    let (n, terms) = fig1b();
    assert_logical_golden(n, &terms);
}

#[test]
fn uccsd_outputs_match_the_monolithic_pipeline() {
    let (n, terms) = uccsd_lih();
    assert_logical_golden(n, &terms);
}

#[test]
fn hardware_outputs_match_the_monolithic_pipeline() {
    let (n, terms) = uccsd_lih();
    let compiler = PhoenixCompiler::default();
    let device = CouplingGraph::manhattan65();
    let golden = monolithic_hardware(n, &terms, &compiler.options, &device);
    let hw = compiler.compile_hardware_aware(n, &terms, &device);
    assert_eq!(hw, golden, "hardware-aware output diverged");
}

#[test]
fn baseline_hardware_wrapper_matches_the_monolithic_backend() {
    let (n, terms) = fig1b();
    let logical = PhoenixCompiler::default().compile(n, &terms).circuit;
    let device = CouplingGraph::line(3);

    // The pre-refactor `phoenix_baselines::hardware_aware`, verbatim.
    let golden = {
        let logical = peephole::optimize(&logical);
        let opts = RouterOptions::default();
        let layout = search_layout(&logical, &device, &opts, 3);
        let routed = route(&logical, &device, layout, &opts);
        HardwareProgram {
            circuit: peephole::optimize(&routed.circuit),
            initial_layout: l2p(&routed.initial_layout, logical.num_qubits()),
            final_layout: l2p(&routed.final_layout, logical.num_qubits()),
            logical,
            num_swaps: routed.num_swaps,
        }
    };
    let got = phoenix_core::run_hardware_backend(&logical, &device, &RouterOptions::default(), 3);
    assert_eq!(got, golden);
}

#[test]
fn parallel_stage2_is_bit_identical_across_thread_counts() {
    let (n, terms) = uccsd_lih();
    let baseline = PhoenixCompiler::new(PhoenixOptions {
        stage2_threads: 1,
        ..PhoenixOptions::default()
    })
    .compile(n, &terms);
    for threads in [0, 2, 4, 16] {
        let out = PhoenixCompiler::new(PhoenixOptions {
            stage2_threads: threads,
            ..PhoenixOptions::default()
        })
        .compile(n, &terms);
        assert_eq!(out, baseline, "stage2_threads = {threads}");
    }
}
