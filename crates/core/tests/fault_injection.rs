//! Fault-injection suite for the compilation boundary: malformed IR and
//! mutated QASM must come back as typed errors — never panics — from every
//! `try_compile*` entry point, a forced in-pass panic must degrade to the
//! conventional fallback with a `degraded` trace entry, and on valid input
//! the fallible paths must be bit-identical to the infallible ones.

use std::panic::{self, AssertUnwindSafe};

use phoenix_circuit::qasm::{from_qasm, to_qasm};
use phoenix_core::pass::{CompileContext, PassManager};
use phoenix_core::passes::{ConcatPass, GroupPass, OrderPass, SimplifySynthPass};
use phoenix_core::{PhoenixCompiler, PhoenixError};
use phoenix_pauli::PauliString;
use phoenix_topology::CouplingGraph;
use proptest::prelude::*;

/// A random *valid* program: `n ∈ 2..=5` qubits, `1..=5` full-width terms
/// with finite coefficients (5-wide draws truncated to the register, in
/// the style of the repo's other property tests).
fn arb_program() -> impl Strategy<Value = (usize, Vec<(PauliString, f64)>)> {
    (
        2usize..=5,
        proptest::collection::vec(
            (proptest::collection::vec(0usize..4, 5), -1.0f64..1.0),
            1..=5,
        ),
    )
        .prop_map(|(n, raw)| {
            let terms = raw
                .into_iter()
                .map(|(paulis, coeff)| {
                    let label: String = paulis[..n]
                        .iter()
                        .map(|&i| ['I', 'X', 'Y', 'Z'][i])
                        .collect();
                    (label.parse::<PauliString>().expect("valid label"), coeff)
                })
                .collect();
            (n, terms)
        })
}

/// Every fallible entry point applied to one input; `Some(err)` per entry
/// point that rejected it.
fn reject_all(
    n: usize,
    terms: &[(PauliString, f64)],
    device: &CouplingGraph,
) -> Vec<Option<PhoenixError>> {
    let compiler = PhoenixCompiler::default();
    vec![
        compiler.try_compile(n, terms).map(|_| ()).err(),
        compiler.try_compile_to_cnot(n, terms).map(|_| ()).err(),
        compiler.try_compile_to_su4(n, terms).map(|_| ()).err(),
        compiler
            .try_compile_to_cnot_via_kak(n, terms)
            .map(|_| ())
            .err(),
        compiler
            .try_compile_hardware_aware(n, terms, device)
            .map(|_| ())
            .err(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wrong-length Pauli strings, non-finite coefficients and zero-qubit
    /// declarations are rejected with a typed error by every entry point,
    /// under a `catch_unwind` harness proving no panic escapes.
    #[test]
    fn malformed_programs_are_rejected_not_panicked(
        (n, mut terms) in arb_program(),
        corruption in 0usize..3,
        which in 0usize..5,
        bad_sel in 0usize..3,
    ) {
        let bad_coeff = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][bad_sel];
        let i = which % terms.len();
        let n = match corruption {
            0 => {
                // One term wider than the register.
                let wider = format!("{}X", terms[i].0);
                terms[i].0 = wider.parse().expect("valid label");
                n
            }
            1 => {
                terms[i].1 = bad_coeff;
                n
            }
            // Zero-qubit program that still claims terms.
            _ => 0,
        };
        let device = CouplingGraph::line(n.max(2));
        let outcomes = panic::catch_unwind(AssertUnwindSafe(|| reject_all(n, &terms, &device)))
            .expect("try_compile* must not panic on malformed input");
        for (entry, err) in outcomes.into_iter().enumerate() {
            prop_assert!(err.is_some(), "entry point {entry} accepted malformed input");
        }
    }

    /// A device smaller than the program, or disconnected, is rejected by
    /// the hardware-aware entry point with the matching typed error.
    #[test]
    fn unfit_devices_are_rejected((n, terms) in arb_program()) {
        let compiler = PhoenixCompiler::default();
        let small = CouplingGraph::line(n - 1);
        prop_assert!(matches!(
            compiler.try_compile_hardware_aware(n, &terms, &small),
            Err(PhoenixError::DeviceTooSmall { .. })
        ));
        let disconnected = CouplingGraph::from_edges(n, std::iter::empty());
        prop_assert!(matches!(
            compiler.try_compile_hardware_aware(n, &terms, &disconnected),
            Err(PhoenixError::DisconnectedDevice { .. })
        ));
    }

    /// Randomly mutated QASM (truncations, byte flips, dropped and
    /// duplicated lines) either parses or returns `ParseQasmError` — the
    /// parser never panics.
    #[test]
    fn mutated_qasm_never_panics(
        (n, terms) in arb_program(),
        mutation in 0usize..4,
        pos in 0usize..1024,
        byte in 32u8..127,
    ) {
        let circuit = PhoenixCompiler::default().compile_to_cnot(n, &terms);
        let text = to_qasm(&circuit);
        let mutated = match mutation {
            0 => text[..pos % (text.len() + 1)].to_string(),
            1 => {
                let mut bytes = text.clone().into_bytes();
                let i = pos % bytes.len();
                bytes[i] = byte;
                String::from_utf8(bytes).expect("ascii stays ascii")
            }
            2 => {
                let lines: Vec<&str> = text.lines().collect();
                let drop = pos % lines.len();
                lines
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != drop)
                    .map(|(_, l)| *l)
                    .collect::<Vec<_>>()
                    .join("\n")
            }
            _ => {
                let lines: Vec<&str> = text.lines().collect();
                let dup = pos % lines.len();
                let mut out: Vec<&str> = lines.clone();
                out.insert(dup, lines[dup]);
                out.join("\n")
            }
        };
        let parsed = panic::catch_unwind(AssertUnwindSafe(|| from_qasm(&mutated)))
            .expect("from_qasm must not panic on mutated input");
        if let Ok(c) = parsed {
            // Whatever survived mutation is a well-formed circuit.
            prop_assert!(c.gates().iter().all(|g| {
                let (a, b) = g.qubits();
                a < c.num_qubits() && b.is_none_or(|b| b < c.num_qubits())
            }));
        }
    }

    /// On valid input the fallible paths are bit-identical to the
    /// infallible ones (golden equivalence of the error boundary).
    #[test]
    fn valid_programs_compile_identically_via_try_paths((n, terms) in arb_program()) {
        let c = PhoenixCompiler::default();
        prop_assert_eq!(c.try_compile(n, &terms).unwrap(), c.compile(n, &terms));
        prop_assert_eq!(
            c.try_compile_to_cnot(n, &terms).unwrap(),
            c.compile_to_cnot(n, &terms)
        );
        prop_assert_eq!(
            c.try_compile_to_su4(n, &terms).unwrap(),
            c.compile_to_su4(n, &terms)
        );
        prop_assert_eq!(
            c.try_compile_to_cnot_via_kak(n, &terms).unwrap(),
            c.compile_to_cnot_via_kak(n, &terms)
        );
        let device = CouplingGraph::line(n);
        prop_assert_eq!(
            c.try_compile_hardware_aware(n, &terms, &device).unwrap(),
            c.compile_hardware_aware(n, &terms, &device)
        );
    }
}

#[test]
fn forced_in_pass_panic_degrades_with_trace_entry() {
    let terms: Vec<(PauliString, f64)> = ["ZYY", "ZZY", "IZZ", "XIX"]
        .iter()
        .enumerate()
        .map(|(i, l)| (l.parse().unwrap(), 0.02 * (i + 1) as f64))
        .collect();
    let mut ctx = CompileContext::new(3, &terms);
    let pm = PassManager::new()
        .with(GroupPass)
        .with(SimplifySynthPass {
            fault_inject_group: Some(0),
            ..SimplifySynthPass::default()
        })
        .with(OrderPass::default())
        .with(ConcatPass);
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {})); // the contained panic stays quiet
    let trace = pm.run(&mut ctx).expect("degradation is not an error");
    panic::set_hook(prev);
    assert!(trace.is_degraded());
    let degraded = trace.events_of_kind(phoenix_core::EVENT_DEGRADED);
    assert_eq!(degraded.len(), 1);
    assert!(degraded[0].detail.contains("group 0"));
    // The program still compiled end to end: every input term is emitted.
    assert_eq!(ctx.term_order.len(), terms.len());
    assert!(!ctx.circuit.is_empty());
}

#[test]
fn whole_pipeline_panic_becomes_a_typed_error() {
    // A pass that panics without a per-unit fallback (concat on garbage
    // state) is contained by the manager and surfaces as PhoenixError::Pass.
    struct Corrupt;
    impl phoenix_core::Pass for Corrupt {
        fn name(&self) -> &str {
            "corrupt"
        }
        fn run(&self, _ctx: &mut CompileContext) -> Result<(), phoenix_core::PassError> {
            panic!("simulated internal bug");
        }
    }
    let mut ctx = CompileContext::new(2, &[]);
    let prev = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let err = PassManager::new().with(Corrupt).run(&mut ctx).unwrap_err();
    panic::set_hook(prev);
    let phoenix_err: PhoenixError = err.into();
    assert!(phoenix_err.to_string().contains("simulated internal bug"));
}

#[test]
fn out_of_range_qasm_qubits_are_typed_errors() {
    let err = from_qasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[5];").unwrap_err();
    assert!(err.to_string().contains("line 3"));
    let wrapped: PhoenixError = err.into();
    assert!(matches!(wrapped, PhoenixError::Qasm(_)));
}
