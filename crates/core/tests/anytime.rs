//! Pins for the anytime iterative-deepening path.
//!
//! Two contracts are pinned here. First, **unbudgeted compiles take the
//! exact legacy code path**: with `pass_budget: None` the anytime pass is
//! never even constructed, so every entry point must stay bit-for-bit
//! identical to the pre-anytime goldens (the monolithic stage functions,
//! re-implemented verbatim below). Second, **budgeted compiles are a pure
//! function of the logical budget**: `depth_reached` and the returned
//! circuit are deterministic for a fixed `anytime_rounds` cap regardless of
//! `stage2_threads`/`stage2_scan_threads`, checked by a property test.

use std::time::Duration;

use phoenix_circuit::{peephole, Circuit};
use phoenix_core::group::group_by_support;
use phoenix_core::order::{order_groups, OrderOptions};
use phoenix_core::simplify::simplify_terms;
use phoenix_core::synth::synthesize_group;
use phoenix_core::{CompileRequest, PhoenixCompiler, PhoenixOptions, Target};
use phoenix_hamil::{uccsd, Molecule};
use phoenix_pauli::PauliString;
use phoenix_topology::CouplingGraph;
use proptest::prelude::*;

/// The Fig. 1(b) example program.
fn fig1b() -> (usize, Vec<(PauliString, f64)>) {
    let terms = ["ZYY", "ZZY", "XYY", "XZY"]
        .iter()
        .enumerate()
        .map(|(i, l)| (l.parse().unwrap(), 0.02 * (i + 1) as f64))
        .collect();
    (3, terms)
}

/// A UCCSD ansatz instance (LiH, frozen core, Jordan–Wigner).
fn uccsd_lih() -> (usize, Vec<(PauliString, f64)>) {
    let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, 7);
    (h.num_qubits(), h.terms().to_vec())
}

/// The pre-anytime logical pipeline, verbatim from the stage functions.
fn monolithic_compile(n: usize, terms: &[(PauliString, f64)], options: &PhoenixOptions) -> Circuit {
    let groups = group_by_support(n, terms);
    let (subcircuits, group_terms): (Vec<Circuit>, Vec<Vec<(PauliString, f64)>>) = groups
        .iter()
        .map(|g| {
            let s = simplify_terms(n, g.terms());
            (synthesize_group(&s), s.term_sequence())
        })
        .unzip();
    let perm = order_groups(
        &subcircuits,
        &OrderOptions {
            lookahead: options.lookahead,
            routing_aware: options.routing_aware,
        },
    );
    let mut circuit = Circuit::new(n);
    let mut term_order = Vec::with_capacity(terms.len());
    for i in perm {
        circuit.append(&subcircuits[i]);
        term_order.extend(group_terms[i].iter().cloned());
    }
    circuit
}

/// Satellite pin: with no `pass_budget`, all five entry points stay
/// bit-for-bit on the legacy path — the anytime machinery must be
/// unobservable (no `anytime-deepen` pass, no `depth_reached`, identical
/// circuits).
#[test]
fn unbudgeted_entry_points_match_the_pre_anytime_goldens() {
    for (n, terms) in [fig1b(), uccsd_lih()] {
        let compiler = PhoenixCompiler::default();
        let golden = monolithic_compile(n, &terms, &compiler.options);

        let logical = compiler
            .request(n, &terms)
            .target(Target::Logical)
            .trace(true)
            .run()
            .unwrap();
        assert_eq!(logical.circuit, golden, "logical diverged");
        assert_eq!(logical.depth_reached, None, "legacy path reported a depth");
        let names: Vec<&str> = logical
            .trace
            .as_ref()
            .unwrap()
            .passes
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert!(
            !names.contains(&"anytime-deepen"),
            "anytime pass leaked into the unbudgeted chain: {names:?}"
        );
        assert!(names.contains(&"simplify-synth"), "{names:?}");

        assert_eq!(
            compiler.compile_to_cnot(n, &terms),
            peephole::optimize(&golden),
            "CNOT diverged"
        );
        assert_eq!(
            compiler.compile_to_su4(n, &terms),
            phoenix_circuit::rebase::to_su4(&golden),
            "SU(4) diverged"
        );
        assert_eq!(
            compiler.compile_to_cnot_via_kak(n, &terms),
            peephole::optimize(&phoenix_circuit::kak::resynthesize(
                &phoenix_circuit::rebase::to_su4(&golden)
            )),
            "KAK diverged"
        );
    }
}

/// The hardware entry point stays pinned too: an unbudgeted hardware-aware
/// compile equals the request-path golden and reports no deepening depth.
#[test]
fn unbudgeted_hardware_entry_point_stays_on_the_legacy_path() {
    let (n, terms) = fig1b();
    let device = CouplingGraph::line(3);
    let out = CompileRequest::new(n, &terms)
        .target(Target::Hardware(device.clone()))
        .run()
        .unwrap();
    assert_eq!(out.depth_reached, None);
    assert_eq!(
        PhoenixCompiler::default().compile_hardware_aware(n, &terms, &device),
        out.hardware.unwrap()
    );
}

/// A budgeted request runs the anytime pass: the trace shows it, the
/// outcome reports the depth, and a roomy wall budget with an uncapped
/// schedule converges to (at least) legacy quality.
#[test]
fn budgeted_requests_deepen_and_report_their_depth() {
    let (n, terms) = fig1b();
    let compiler = PhoenixCompiler::default();
    let golden = monolithic_compile(n, &terms, &compiler.options);

    let out = CompileRequest::new(n, &terms)
        .options(PhoenixOptions {
            pass_budget: Some(Duration::from_secs(600)),
            ..PhoenixOptions::default()
        })
        .trace(true)
        .run()
        .unwrap();
    assert_eq!(out.depth_reached, Some(phoenix_core::MAX_ROUNDS));
    let names: Vec<&str> = out
        .trace
        .as_ref()
        .unwrap()
        .passes
        .iter()
        .map(|p| p.name.as_str())
        .collect();
    assert!(names.contains(&"anytime-deepen"), "{names:?}");

    let cost = |c: &Circuit| (c.counts().two_qubit(), c.depth_2q(), c.counts().total);
    assert!(
        cost(&out.circuit) <= cost(&golden),
        "full deepening schedule worse than legacy: {:?} vs {:?}",
        cost(&out.circuit),
        cost(&golden)
    );
}

/// A random valid program: `n ∈ 2..=5` qubits, `1..=6` full-width terms
/// with finite coefficients.
fn arb_program() -> impl Strategy<Value = (usize, Vec<(PauliString, f64)>)> {
    (
        2usize..=5,
        proptest::collection::vec(
            (proptest::collection::vec(0usize..4, 5), -1.0f64..1.0),
            1..=6,
        ),
    )
        .prop_map(|(n, raw)| {
            let terms = raw
                .into_iter()
                .map(|(paulis, coeff)| {
                    let label: String = paulis[..n]
                        .iter()
                        .map(|&i| ['I', 'X', 'Y', 'Z'][i])
                        .collect();
                    (label.parse::<PauliString>().expect("valid label"), coeff)
                })
                .collect();
            (n, terms)
        })
}

/// One budgeted compile with a wall budget too large to ever interrupt, so
/// the logical cap alone decides the schedule.
fn deepened(
    n: usize,
    terms: &[(PauliString, f64)],
    rounds: usize,
    threads: usize,
    scan_threads: usize,
) -> (Circuit, Vec<(PauliString, f64)>, Option<usize>) {
    let out = CompileRequest::new(n, terms)
        .options(PhoenixOptions {
            pass_budget: Some(Duration::from_secs(600)),
            anytime_rounds: Some(rounds),
            stage2_threads: threads,
            stage2_scan_threads: scan_threads,
            ..PhoenixOptions::default()
        })
        .run()
        .unwrap();
    (out.circuit, out.term_order, out.depth_reached)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite pin: for a fixed logical budget (`anytime_rounds`), the
    /// returned circuit, term order, and `depth_reached` are a pure
    /// function of the program — identical for every
    /// `stage2_threads`/`stage2_scan_threads` combination.
    #[test]
    fn depth_and_circuit_are_thread_count_deterministic(
        (n, terms) in arb_program(),
        rounds in 0usize..=4,
    ) {
        let base = deepened(n, &terms, rounds, 1, 1);
        prop_assert_eq!(base.2, Some(rounds));
        for (threads, scan_threads) in [(2usize, 1usize), (8, 2), (1, 8), (8, 8)] {
            let other = deepened(n, &terms, rounds, threads, scan_threads);
            prop_assert_eq!(
                &other, &base,
                "diverged at stage2_threads={}, scan_threads={}",
                threads, scan_threads
            );
        }
    }
}
