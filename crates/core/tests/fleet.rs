//! Fleet compilation: determinism across thread counts, the fleet-of-one
//! == single-device guarantee, fidelity ranking, and the golden pin of the
//! deprecated `Target::Hardware` wrapper onto `Target::Device`.

use phoenix_core::{
    CompileRequest, Device, DeviceRegistry, NativeIsa, PhoenixError, PhoenixOptions, Target,
};
use phoenix_mathkit::Xoshiro256;
use phoenix_pauli::PauliString;
use phoenix_topology::CouplingGraph;
use proptest::prelude::*;

/// A deterministic random program on `n` qubits.
fn random_terms(n: usize, count: usize, seed: u64) -> Vec<(PauliString, f64)> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut terms = Vec::with_capacity(count);
    for _ in 0..count {
        let mut label = String::new();
        let mut nontrivial = false;
        for _ in 0..n {
            let c = match rng.next_below(4) {
                0 => 'I',
                1 => 'X',
                2 => 'Y',
                _ => 'Z',
            };
            nontrivial |= c != 'I';
            label.push(c);
        }
        if !nontrivial {
            let q = rng.next_below(n);
            label.replace_range(q..q + 1, "Z");
        }
        let coeff = rng.next_range_f64(-0.5, 0.5);
        terms.push((label.parse().expect("valid pauli label"), coeff));
    }
    terms
}

fn fleet_of(specs: &[&str]) -> Vec<Device> {
    let reg = DeviceRegistry::new();
    specs
        .iter()
        .map(|s| reg.build(s).expect("registry spec"))
        .collect()
}

#[test]
fn empty_fleet_is_a_typed_error() {
    let t = random_terms(3, 4, 1);
    assert!(matches!(
        CompileRequest::new(3, &t).fleet(&[]),
        Err(PhoenixError::EmptyFleet)
    ));
}

#[test]
fn fleet_over_four_registry_devices_returns_ranked_results() {
    let devices = fleet_of(&["line:6", "ring:6", "grid:2x3", "ion-trap:6"]);
    let t = random_terms(5, 8, 7);
    let outcome = CompileRequest::new(5, &t)
        .fleet(&devices)
        .expect("fleet compiles");
    assert!(outcome.failed.is_empty(), "failed: {:?}", outcome.failed);
    assert_eq!(outcome.ranked.len(), 4);
    for pair in outcome.ranked.windows(2) {
        assert!(
            pair[0].fidelity >= pair[1].fidelity,
            "ranking not sorted by fidelity"
        );
    }
    for entry in &outcome.ranked {
        assert!(entry.fidelity > 0.0 && entry.fidelity <= 1.0);
        assert!(entry.outcome.hardware.is_some(), "{}", entry.device.name());
    }
    assert_eq!(
        outcome.best().expect("nonempty").device.name(),
        outcome.ranked[0].device.name()
    );
}

#[test]
fn run_on_a_fleet_target_returns_the_best_member() {
    let devices = fleet_of(&["line:6", "ring:6", "grid:2x3", "ion-trap:6"]);
    let t = random_terms(5, 8, 7);
    let best_via_fleet = CompileRequest::new(5, &t)
        .fleet(&devices)
        .expect("fleet compiles")
        .into_best()
        .expect("at least one member");
    let via_run = CompileRequest::new(5, &t)
        .target(Target::Fleet(devices))
        .run()
        .expect("fleet target runs");
    assert_eq!(via_run.circuit, best_via_fleet.circuit);
    assert_eq!(via_run.hardware, best_via_fleet.hardware);
}

#[test]
fn member_failures_do_not_fail_the_fleet() {
    let reg = DeviceRegistry::new();
    let devices = vec![
        reg.build("line:2").expect("small line"), // too small for 5 qubits
        reg.build("line:6").expect("line"),
    ];
    let t = random_terms(5, 6, 3);
    let outcome = CompileRequest::new(5, &t).fleet(&devices).expect("fleet");
    assert_eq!(outcome.ranked.len(), 1);
    assert_eq!(outcome.ranked[0].device.name(), "line:6");
    assert_eq!(outcome.failed.len(), 1);
    assert_eq!(outcome.failed[0].0, "line:2");
    assert!(matches!(
        outcome.failed[0].1,
        PhoenixError::DeviceTooSmall { .. }
    ));
}

#[test]
fn native_isa_is_respected_per_member() {
    let devices = fleet_of(&["line:5", "ion-trap:5", "line:5@kak"]);
    let t = random_terms(4, 6, 11);
    let outcome = CompileRequest::new(4, &t).fleet(&devices).expect("fleet");
    assert_eq!(outcome.ranked.len(), 3);
    for entry in &outcome.ranked {
        let two_q_all_su4 = entry
            .outcome
            .circuit
            .gates()
            .iter()
            .filter(|g| g.is_two_qubit())
            .all(|g| matches!(g, phoenix_circuit::Gate::Su4(_)));
        match entry.device.isa() {
            NativeIsa::Su4 => assert!(
                two_q_all_su4,
                "{}: SU(4)-native member emitted non-SU(4) 2Q gates",
                entry.device.name()
            ),
            NativeIsa::Cnot | NativeIsa::CnotViaKak => assert!(
                entry
                    .outcome
                    .circuit
                    .gates()
                    .iter()
                    .all(|g| !matches!(g, phoenix_circuit::Gate::Su4(_))),
                "{}: CNOT-native member kept SU(4) blocks",
                entry.device.name()
            ),
        }
    }
}

/// The deprecated `Target::Hardware(graph)` wrapper stays bit-for-bit
/// identical to `Target::Device(Device::bare(graph))`.
#[test]
fn hardware_wrapper_is_golden_pinned_to_bare_device() {
    for seed in 0..8u64 {
        let t = random_terms(5, 6, seed);
        let graph = if seed % 2 == 0 {
            CouplingGraph::line(6)
        } else {
            CouplingGraph::grid(2, 3)
        };
        let legacy = CompileRequest::new(5, &t)
            .target(Target::Hardware(graph.clone()))
            .trace(true)
            .run()
            .expect("legacy hardware target");
        let modern = CompileRequest::new(5, &t)
            .target(Target::Device(Device::bare(graph)))
            .trace(true)
            .run()
            .expect("bare device target");
        assert_eq!(legacy.circuit, modern.circuit, "seed {seed}");
        assert_eq!(legacy.hardware, modern.hardware, "seed {seed}");
        assert_eq!(legacy.term_order, modern.term_order, "seed {seed}");
        let lt = legacy.trace.expect("legacy trace");
        let mt = modern.trace.expect("modern trace");
        // PassRecords carry wall-clock timings; pin the deterministic
        // parts — pass sequence and per-pass circuit stats.
        let shape = |t: &phoenix_core::PassTrace| {
            t.passes
                .iter()
                .map(|p| (p.name.clone(), p.before, p.after))
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&lt), shape(&mt), "seed {seed}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The ranking and every per-device circuit are identical across
    /// fleet thread counts 1, 2, and 8.
    #[test]
    fn fleet_outcome_is_identical_across_thread_counts(
        seed in 0u64..500,
        count in 3usize..9,
    ) {
        let devices = fleet_of(&["line:6", "ring:6", "grid:2x3", "ion-trap:6", "heavy-hex:1x2"]);
        let t = random_terms(5, count, seed);
        let run_with = |threads: usize| {
            let options = PhoenixOptions {
                fleet_threads: threads,
                ..PhoenixOptions::default()
            };
            CompileRequest::new(5, &t)
                .options(options)
                .fleet(&devices)
                .expect("fleet compiles")
        };
        let baseline = run_with(1);
        for threads in [2usize, 8] {
            let other = run_with(threads);
            prop_assert_eq!(baseline.ranked.len(), other.ranked.len());
            prop_assert_eq!(baseline.failed.len(), other.failed.len());
            for (a, b) in baseline.ranked.iter().zip(other.ranked.iter()) {
                prop_assert_eq!(a.device.name(), b.device.name());
                prop_assert_eq!(a.fidelity, b.fidelity);
                prop_assert_eq!(&a.outcome.circuit, &b.outcome.circuit);
                prop_assert_eq!(&a.outcome.hardware, &b.outcome.hardware);
            }
        }
    }

    /// A fleet of one equals the single-device path bit for bit.
    #[test]
    fn fleet_of_one_equals_single_device_path(
        seed in 0u64..500,
        count in 3usize..9,
    ) {
        let dev = DeviceRegistry::new().build("grid:2x3").expect("grid");
        let t = random_terms(5, count, seed);
        let fleet = CompileRequest::new(5, &t)
            .fleet(std::slice::from_ref(&dev))
            .expect("fleet of one");
        prop_assert!(fleet.failed.is_empty());
        prop_assert_eq!(fleet.ranked.len(), 1);
        let single = CompileRequest::new(5, &t)
            .target(Target::Device(dev.clone()))
            .run()
            .expect("single device");
        let member = &fleet.ranked[0];
        prop_assert_eq!(&member.outcome.circuit, &single.circuit);
        prop_assert_eq!(&member.outcome.hardware, &single.hardware);
        prop_assert_eq!(&member.outcome.term_order, &single.term_order);
        prop_assert_eq!(
            member.fidelity,
            dev.predicted_fidelity(&single.circuit)
        );
    }
}
