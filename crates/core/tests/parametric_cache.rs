//! Split-path (structure/bind + cache) equivalence and gating tests.
//!
//! The contract under test: attaching a [`CompileCache`] never changes a
//! compilation's output — cold (cache miss), warm (cache hit), and legacy
//! (no cache) runs are bit-for-bit identical — and caching silently
//! disengages for requests it must not serve (pass budgets, verification).

use std::sync::Arc;

use phoenix_core::{CompileCache, CompileRequest, PhoenixError, PhoenixOptions, Target};
use phoenix_pauli::PauliString;
use phoenix_topology::CouplingGraph;

fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
    labels
        .iter()
        .enumerate()
        .map(|(i, l)| (l.parse().unwrap(), 0.013 * (i + 1) as f64))
        .collect()
}

const PROGRAM: &[&str] = &["ZYY", "ZZY", "XYY", "XZY", "IZZ", "XIX", "ZZI", "YIY"];

#[test]
fn cached_run_matches_legacy_bit_for_bit_across_targets() {
    let t = terms(PROGRAM);
    let dev = CouplingGraph::line(3);
    let targets = [
        Target::Logical,
        Target::Cnot,
        Target::Su4,
        Target::CnotViaKak,
        Target::Hardware(dev),
    ];
    for target in targets {
        let legacy = CompileRequest::new(3, &t)
            .target(target.clone())
            .run()
            .unwrap();
        let cache = Arc::new(CompileCache::new());
        let cold = CompileRequest::new(3, &t)
            .target(target.clone())
            .cache(&cache)
            .run()
            .unwrap();
        let warm = CompileRequest::new(3, &t)
            .target(target.clone())
            .cache(&cache)
            .run()
            .unwrap();
        for (name, out) in [("cold", &cold), ("warm", &warm)] {
            assert_eq!(out.circuit, legacy.circuit, "{name} circuit @ {target:?}");
            assert_eq!(
                out.term_order, legacy.term_order,
                "{name} order @ {target:?}"
            );
            assert_eq!(
                out.num_groups, legacy.num_groups,
                "{name} groups @ {target:?}"
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.program_misses, 1, "@ {target:?}");
        assert_eq!(stats.program_hits, 1, "@ {target:?}");
    }
}

#[test]
fn rebinding_new_angles_matches_a_fresh_compile() {
    let strings: Vec<&str> = PROGRAM.to_vec();
    let cache = Arc::new(CompileCache::new());
    for sweep_point in 0..12 {
        let t: Vec<(PauliString, f64)> = strings
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let angle = ((sweep_point * 7 + i * 3) as f64).sin() * 0.4;
                (l.parse().unwrap(), angle)
            })
            .collect();
        let warm = CompileRequest::new(3, &t).cache(&cache).run().unwrap();
        let fresh = CompileRequest::new(3, &t).run().unwrap();
        assert_eq!(warm.circuit, fresh.circuit, "sweep point {sweep_point}");
        assert_eq!(
            warm.term_order, fresh.term_order,
            "sweep point {sweep_point}"
        );
    }
    // One structure compile served the whole sweep: angles differ between
    // points but the angle-erased canonical IR (and so the key) does not.
    let stats = cache.stats();
    assert_eq!(stats.program_misses, 1);
    assert_eq!(stats.program_hits, 11);
}

#[test]
fn bind_substitutes_explicit_angles() {
    let t = terms(PROGRAM);
    let cache = Arc::new(CompileCache::new());
    let angles: Vec<f64> = (0..t.len()).map(|i| 0.05 * (i as f64 + 1.0)).collect();
    let bound = CompileRequest::new(3, &t)
        .cache(&cache)
        .bind(&angles)
        .unwrap();
    // Equivalent to compiling a program that had these coefficients.
    let explicit: Vec<(PauliString, f64)> = t
        .iter()
        .zip(&angles)
        .map(|((p, _), a)| (p.clone(), *a))
        .collect();
    let fresh = CompileRequest::new(3, &explicit).run().unwrap();
    assert_eq!(bound.circuit, fresh.circuit);
    assert_eq!(bound.term_order, fresh.term_order);
}

#[test]
fn bind_rejects_malformed_angle_vectors() {
    let t = terms(PROGRAM);
    let cache = Arc::new(CompileCache::new());
    let err = CompileRequest::new(3, &t)
        .cache(&cache)
        .bind(&[0.1])
        .unwrap_err();
    assert!(matches!(err, PhoenixError::Bind(_)), "{err}");
    let bad: Vec<f64> = (0..t.len()).map(|_| f64::NAN).collect();
    let err = CompileRequest::new(3, &t)
        .cache(&cache)
        .bind(&bad)
        .unwrap_err();
    assert!(matches!(err, PhoenixError::Bind(_)), "{err}");
}

#[test]
fn structure_artifact_is_reusable_directly() {
    let t = terms(PROGRAM);
    let cache = Arc::new(CompileCache::new());
    let art = CompileRequest::new(3, &t)
        .cache(&cache)
        .structure()
        .unwrap();
    assert_eq!(art.num_slots(), t.len());
    let angles: Vec<f64> = t.iter().map(|(_, c)| *c).collect();
    let bound = art.bind(&angles).unwrap();
    let legacy = CompileRequest::new(3, &t).run().unwrap();
    assert_eq!(bound.circuit, legacy.circuit);
    assert_eq!(bound.term_order, legacy.term_order);
    // The artifact landed in the program cache, so a subsequent run() hits.
    let _ = CompileRequest::new(3, &t).cache(&cache).run().unwrap();
    assert_eq!(cache.stats().program_hits, 1);
}

#[test]
fn budget_and_verify_requests_bypass_the_cache() {
    let t = terms(PROGRAM);
    let cache = Arc::new(CompileCache::new());
    let budgeted = PhoenixOptions {
        pass_budget: Some(std::time::Duration::from_secs(3600)),
        ..PhoenixOptions::default()
    };
    let _ = CompileRequest::new(3, &t)
        .options(budgeted)
        .cache(&cache)
        .run()
        .unwrap();
    let verified = PhoenixOptions {
        verify: true,
        ..PhoenixOptions::default()
    };
    let _ = CompileRequest::new(3, &t)
        .options(verified)
        .cache(&cache)
        .run()
        .unwrap();
    let stats = cache.stats();
    assert_eq!(stats.program_hits + stats.program_misses, 0);
    assert_eq!(stats.group_hits + stats.group_misses, 0);
    assert_eq!(cache.num_programs(), 0);
}

#[test]
fn different_options_key_different_artifacts() {
    let t = terms(PROGRAM);
    let cache = Arc::new(CompileCache::new());
    let _ = CompileRequest::new(3, &t).cache(&cache).run().unwrap();
    let no_order = PhoenixOptions {
        enable_ordering: false,
        ..PhoenixOptions::default()
    };
    let out = CompileRequest::new(3, &t)
        .options(no_order.clone())
        .cache(&cache)
        .run()
        .unwrap();
    // Second options set missed (different fingerprint) and produced the
    // same output as its own legacy run.
    assert_eq!(cache.stats().program_misses, 2);
    let legacy = CompileRequest::new(3, &t).options(no_order).run().unwrap();
    assert_eq!(out.circuit, legacy.circuit);
}

#[test]
fn group_cache_is_shared_across_programs() {
    // Two different programs containing the same group: the second program
    // misses at program level but reuses the group artifact.
    let a = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
    let mut b = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
    b.push(("ZII".parse().unwrap(), 0.2));
    let cache = Arc::new(CompileCache::new());
    let _ = CompileRequest::new(3, &a).cache(&cache).run().unwrap();
    let out_b = CompileRequest::new(3, &b).cache(&cache).run().unwrap();
    let stats = cache.stats();
    assert_eq!(stats.program_misses, 2);
    assert!(stats.group_hits >= 1, "stats: {stats:?}");
    let legacy_b = CompileRequest::new(3, &b).run().unwrap();
    assert_eq!(out_b.circuit, legacy_b.circuit);
    assert_eq!(out_b.term_order, legacy_b.term_order);
}

#[test]
fn obs_report_carries_cache_counters_and_bind_span() {
    let t = terms(PROGRAM);
    let cache = Arc::new(CompileCache::new());
    let cold = CompileRequest::new(3, &t)
        .target(Target::Cnot)
        .cache(&cache)
        .obs(true)
        .run()
        .unwrap();
    let report = cold.obs.unwrap();
    assert_eq!(report.metrics.counter("cache_program_misses"), Some(1));
    assert!(report.root.find("bind").is_some());
    let warm = CompileRequest::new(3, &t)
        .target(Target::Cnot)
        .cache(&cache)
        .obs(true)
        .trace(true)
        .run()
        .unwrap();
    let report = warm.obs.unwrap();
    assert_eq!(report.metrics.counter("cache_program_hits"), Some(1));
    // On a hit the trace honestly shows only what ran: the lowering.
    let trace = warm.trace.unwrap();
    let names: Vec<&str> = trace.passes.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["peephole"]);
}
