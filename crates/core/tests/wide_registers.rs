//! Wide-register compilation: the packed-mask representation must carry
//! programs past the historical 128-qubit cap through every logical compile
//! path, and the (much higher) sanity cap must surface as a typed error
//! from every entry point — never a panic.

use phoenix_core::{PhoenixCompiler, PhoenixError};
use phoenix_hamil::models::{heisenberg_chain, tfim_chain};
use phoenix_pauli::{PauliString, MAX_QUBITS};
use phoenix_topology::CouplingGraph;

#[test]
fn over_cap_widths_are_typed_errors_on_every_path() {
    let n = MAX_QUBITS + 1;
    let terms: Vec<(PauliString, f64)> = Vec::new();
    let compiler = PhoenixCompiler::default();
    let device = CouplingGraph::line(2);
    let errs = [
        compiler.try_compile(n, &terms).map(|_| ()).unwrap_err(),
        compiler
            .try_compile_to_cnot(n, &terms)
            .map(|_| ())
            .unwrap_err(),
        compiler
            .try_compile_to_su4(n, &terms)
            .map(|_| ())
            .unwrap_err(),
        compiler
            .try_compile_to_cnot_via_kak(n, &terms)
            .map(|_| ())
            .unwrap_err(),
        compiler
            .try_compile_hardware_aware(n, &terms, &device)
            .map(|_| ())
            .unwrap_err(),
    ];
    for err in errs {
        assert_eq!(err, PhoenixError::UnsupportedWidth { num_qubits: n });
    }
}

#[test]
fn trotter_chains_compile_past_128_qubits() {
    let n = 300;
    let compiler = PhoenixCompiler::default();
    for h in [tfim_chain(n, 1.0, 0.5), heisenberg_chain(n, 1.0, 1.0, 0.5)] {
        let out = compiler
            .try_compile(n, h.terms())
            .expect("wide logical compile succeeds");
        assert_eq!(out.term_order.len(), h.len());
        assert_eq!(out.circuit.num_qubits(), n);
        // The emitted order is a permutation of the input program.
        let key = |t: &(PauliString, f64)| (t.0.to_string(), (t.1 * 1e12).round() as i64);
        let mut got: Vec<_> = out.term_order.iter().map(key).collect();
        let mut want: Vec<_> = h.terms().iter().map(key).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}

#[test]
fn wide_cnot_lowering_touches_the_top_qubits() {
    // The CNOT-target path must synthesize real gates above qubit 128.
    let n = 200;
    let h = tfim_chain(n, 1.0, 0.5);
    let c = PhoenixCompiler::default()
        .try_compile_to_cnot(n, h.terms())
        .expect("wide CNOT compile succeeds");
    let touches_top = c.gates().iter().any(|g| {
        let (a, b) = g.qubits();
        a >= 128 || b.is_some_and(|b| b >= 128)
    });
    assert!(touches_top, "no gate above qubit 128 in a 200-qubit chain");
}
