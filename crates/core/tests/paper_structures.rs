//! Algorithm 1 on the paper's real program structures: UCCSD excitation
//! groups and QAOA edges, checked for the structural claims of §IV.

use phoenix_core::{
    group::group_by_support,
    simplify::{simplify_terms, CfgItem},
    synth::synthesize_group,
    PhoenixCompiler,
};
use phoenix_hamil::{qaoa, uccsd, Molecule};
use phoenix_sim::{circuit_unitary, infidelity, trotter_unitary};

/// Every UCCSD group of LiH simplifies to a ≤2Q core; the number of
/// Clifford conjugation layers stays far below the naive per-string bound.
#[test]
fn uccsd_groups_simplify_compactly() {
    let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, 7);
    let groups = group_by_support(h.num_qubits(), h.terms());
    assert!(!groups.is_empty());
    for g in &groups {
        let s = simplify_terms(h.num_qubits(), g.terms());
        // Core rows all ≤ 2 qubits.
        for item in s.items() {
            if let CfgItem::Rotations(rows) = item {
                assert!(rows.iter().all(|r| r.weight() <= 2));
            }
        }
        // Simultaneous simplification: one Clifford ladder serves ALL
        // strings of the group — the layer count scales with the group's
        // width, not with strings × width as per-string chains would.
        let bound = 3 * g.width().max(1);
        assert!(
            s.num_cliffords() <= bound,
            "group width {} used {} cliffords",
            g.width(),
            s.num_cliffords()
        );
    }
}

/// A JW double-excitation group (8 strings) is unitary-exact after
/// simplification + synthesis.
#[test]
fn jw_double_excitation_group_is_exact() {
    let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, 7);
    let n = h.num_qubits();
    // Pick a group with 8 strings (a pure double excitation) over ≤ 6 weight
    // so the dense check stays fast.
    let groups = group_by_support(n, h.terms());
    let g = groups
        .iter()
        .find(|g| g.terms().len() == 8 && g.width() <= 6)
        .expect("LiH has compact double-excitation groups");
    let keep = g.support();
    // Restrict the group to its support for a small dense check.
    let small_terms: Vec<_> = g
        .terms()
        .iter()
        .map(|(p, c)| (p.restrict(&keep), *c))
        .collect();
    let s = simplify_terms(keep.len(), &small_terms);
    let circuit = synthesize_group(&s);
    let u = circuit_unitary(&circuit);
    let want = trotter_unitary(keep.len(), &s.term_sequence());
    assert!(infidelity(&u, &want) < 1e-10);
}

/// BK groups have more scattered supports than JW but still compile to
/// fewer CNOTs than their naive chains.
#[test]
fn bk_groups_beat_naive_chains() {
    let h = uccsd::ansatz(Molecule::nh(), true, uccsd::Encoding::BravyiKitaev, 7);
    let n = h.num_qubits();
    let phoenix = PhoenixCompiler::default().compile_to_cnot(n, h.terms());
    let naive = phoenix_circuit::synthesis::naive_circuit(n, h.terms());
    assert!(phoenix.counts().cnot * 2 < naive.counts().cnot);
}

/// QAOA programs: every group is a single edge and needs no conjugations
/// (w_tot = 2 from the start) — the §IV-A premise for 2-local programs.
#[test]
fn qaoa_groups_need_no_cliffords() {
    let h = qaoa::benchmark(qaoa::QaoaKind::Rand4, 16, 3);
    for g in group_by_support(h.num_qubits(), h.terms()) {
        let s = simplify_terms(h.num_qubits(), g.terms());
        assert_eq!(s.num_cliffords(), 0);
    }
}

/// Merged same-support groups (several excitations sharing a support,
/// which happens under the scattered BK supports) are simplified
/// simultaneously, paying the Clifford ladder once.
#[test]
fn merged_groups_amortize_cliffords() {
    let h = uccsd::ansatz(Molecule::ch2(), true, uccsd::Encoding::BravyiKitaev, 7);
    let groups = group_by_support(h.num_qubits(), h.terms());
    let merged = groups.iter().filter(|g| g.terms().len() > 8).count();
    assert!(
        merged > 0,
        "CH2 has support sets shared by multiple excitations"
    );
    for g in groups.iter().filter(|g| g.terms().len() > 8) {
        let s = simplify_terms(h.num_qubits(), g.terms());
        let circuit = synthesize_group(&s);
        // Amortization: 2Q gates well below naive 2(w−1) per string.
        let naive: usize = g.terms().iter().map(|(p, _)| 2 * (p.weight() - 1)).sum();
        assert!(
            circuit.counts().two_qubit() < naive / 2,
            "group of {} strings: {} vs naive {}",
            g.terms().len(),
            circuit.counts().two_qubit(),
            naive
        );
    }
}
