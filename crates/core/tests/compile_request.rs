//! Golden-equivalence and determinism tests for the unified
//! [`CompileRequest`] API.
//!
//! Every legacy `compile*` entry point on [`PhoenixCompiler`] survives as a
//! thin wrapper over the request path; these tests pin each wrapper
//! bit-for-bit against an explicit [`CompileRequest`] with the matching
//! [`Target`], so neither side can drift. A property test then checks the
//! observability contract: span trees (modulo timings) and per-compilation
//! metric totals are identical for `stage2_threads` ∈ {1, 2, 8}.

use phoenix_core::{CompileRequest, PhoenixCompiler, PhoenixOptions, Target};
use phoenix_hamil::{uccsd, Molecule};
use phoenix_obs::ObsReport;
use phoenix_pauli::PauliString;
use phoenix_topology::CouplingGraph;
use proptest::prelude::*;

/// The Fig. 1(b) example program.
fn fig1b() -> (usize, Vec<(PauliString, f64)>) {
    let terms = ["ZYY", "ZZY", "XYY", "XZY"]
        .iter()
        .enumerate()
        .map(|(i, l)| (l.parse().unwrap(), 0.02 * (i + 1) as f64))
        .collect();
    (3, terms)
}

/// A UCCSD ansatz instance (LiH, frozen core, Jordan–Wigner).
fn uccsd_lih() -> (usize, Vec<(PauliString, f64)>) {
    let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, 7);
    (h.num_qubits(), h.terms().to_vec())
}

/// Pass names of a trace, for comparing trace-retaining wrappers.
fn pass_names(trace: &phoenix_core::PassTrace) -> Vec<String> {
    trace.passes.iter().map(|p| p.name.clone()).collect()
}

#[test]
fn logical_wrappers_match_the_request_path() {
    for (n, terms) in [fig1b(), uccsd_lih()] {
        let compiler = PhoenixCompiler::default();
        let golden = compiler.request(n, &terms).run().unwrap();

        let p = compiler.compile(n, &terms);
        assert_eq!(p.circuit, golden.circuit);
        assert_eq!(p.num_groups, golden.num_groups);
        assert_eq!(p.term_order, golden.term_order);

        let p = compiler.try_compile(n, &terms).unwrap();
        assert_eq!(p.circuit, golden.circuit);

        let golden_traced = compiler.request(n, &terms).trace(true).run().unwrap();
        let (p, trace) = compiler.compile_with_trace(n, &terms);
        assert_eq!(p.circuit, golden.circuit);
        assert_eq!(
            pass_names(&trace),
            pass_names(golden_traced.trace.as_ref().unwrap())
        );
        let (p, trace) = compiler.try_compile_with_trace(n, &terms).unwrap();
        assert_eq!(p.circuit, golden.circuit);
        assert!(!trace.passes.is_empty());
    }
}

#[test]
fn cnot_wrappers_match_the_request_path() {
    for (n, terms) in [fig1b(), uccsd_lih()] {
        let compiler = PhoenixCompiler::default();
        let golden = compiler
            .request(n, &terms)
            .target(Target::Cnot)
            .run()
            .unwrap()
            .circuit;
        assert_eq!(compiler.compile_to_cnot(n, &terms), golden);
        assert_eq!(compiler.try_compile_to_cnot(n, &terms).unwrap(), golden);
        let (c, trace) = compiler.compile_to_cnot_with_trace(n, &terms);
        assert_eq!(c, golden);
        assert!(!trace.passes.is_empty());
        let (c, _) = compiler.try_compile_to_cnot_with_trace(n, &terms).unwrap();
        assert_eq!(c, golden);
    }
}

#[test]
fn su4_wrappers_match_the_request_path() {
    for (n, terms) in [fig1b(), uccsd_lih()] {
        let compiler = PhoenixCompiler::default();
        let golden = compiler
            .request(n, &terms)
            .target(Target::Su4)
            .run()
            .unwrap()
            .circuit;
        assert_eq!(compiler.compile_to_su4(n, &terms), golden);
        assert_eq!(compiler.try_compile_to_su4(n, &terms).unwrap(), golden);
        let (c, trace) = compiler.compile_to_su4_with_trace(n, &terms);
        assert_eq!(c, golden);
        assert!(!trace.passes.is_empty());
        let (c, _) = compiler.try_compile_to_su4_with_trace(n, &terms).unwrap();
        assert_eq!(c, golden);
    }
}

#[test]
fn via_kak_wrappers_match_the_request_path() {
    for (n, terms) in [fig1b(), uccsd_lih()] {
        let compiler = PhoenixCompiler::default();
        let golden = compiler
            .request(n, &terms)
            .target(Target::CnotViaKak)
            .run()
            .unwrap()
            .circuit;
        assert_eq!(compiler.compile_to_cnot_via_kak(n, &terms), golden);
        assert_eq!(
            compiler.try_compile_to_cnot_via_kak(n, &terms).unwrap(),
            golden
        );
        let (c, trace) = compiler.compile_to_cnot_via_kak_with_trace(n, &terms);
        assert_eq!(c, golden);
        assert!(!trace.passes.is_empty());
        let (c, _) = compiler
            .try_compile_to_cnot_via_kak_with_trace(n, &terms)
            .unwrap();
        assert_eq!(c, golden);
    }
}

#[test]
fn hardware_wrappers_match_the_request_path() {
    let (n, terms) = uccsd_lih();
    let device = CouplingGraph::manhattan65();
    let compiler = PhoenixCompiler::default();
    let golden = compiler
        .request(n, &terms)
        .target(Target::Hardware(device.clone()))
        .run()
        .unwrap()
        .hardware
        .unwrap();

    assert_eq!(compiler.compile_hardware_aware(n, &terms, &device), golden);
    assert_eq!(
        compiler
            .try_compile_hardware_aware(n, &terms, &device)
            .unwrap(),
        golden
    );
    let (hw, trace) = compiler.compile_hardware_aware_with_trace(n, &terms, &device);
    assert_eq!(hw, golden);
    assert!(!trace.passes.is_empty());
    let (hw, _) = compiler
        .try_compile_hardware_aware_with_trace(n, &terms, &device)
        .unwrap();
    assert_eq!(hw, golden);
}

#[test]
fn hardware_outcome_circuit_equals_the_hardware_program_circuit() {
    let (n, terms) = fig1b();
    let device = CouplingGraph::line(3);
    let out = CompileRequest::new(n, &terms)
        .target(Target::Hardware(device))
        .run()
        .unwrap();
    assert_eq!(out.circuit, out.hardware.unwrap().circuit);
}

/// A random *valid* program: `n ∈ 2..=5` qubits, `1..=6` full-width terms
/// with finite coefficients (5-wide draws truncated to the register, in
/// the style of the repo's other property tests).
fn arb_program() -> impl Strategy<Value = (usize, Vec<(PauliString, f64)>)> {
    (
        2usize..=5,
        proptest::collection::vec(
            (proptest::collection::vec(0usize..4, 5), -1.0f64..1.0),
            1..=6,
        ),
    )
        .prop_map(|(n, raw)| {
            let terms = raw
                .into_iter()
                .map(|(paulis, coeff)| {
                    let label: String = paulis[..n]
                        .iter()
                        .map(|&i| ['I', 'X', 'Y', 'Z'][i])
                        .collect();
                    (label.parse::<PauliString>().expect("valid label"), coeff)
                })
                .collect();
            (n, terms)
        })
}

/// One instrumented compile at the given stage-2 worker count.
fn obs_compile(n: usize, terms: &[(PauliString, f64)], threads: usize) -> ObsReport {
    let options = PhoenixOptions {
        stage2_threads: threads,
        ..PhoenixOptions::default()
    };
    CompileRequest::new(n, terms)
        .options(options)
        .target(Target::Cnot)
        .obs(true)
        .run()
        .unwrap()
        .obs
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The observability contract: the span tree (names, categories, args,
    /// nesting — everything but wall-clock timings), the per-compilation
    /// metric totals, and the recorded events are identical whether
    /// stage 2 runs sequentially or on 2 or 8 worker threads.
    #[test]
    fn obs_artifacts_are_thread_count_deterministic((n, terms) in arb_program()) {
        let base = obs_compile(n, &terms, 1);
        for threads in [2usize, 8] {
            let other = obs_compile(n, &terms, threads);
            prop_assert_eq!(
                base.root.skeleton(),
                other.root.skeleton(),
                "span skeleton diverged at {} threads",
                threads
            );
            // Counters and histograms must agree exactly; gauges are
            // excluded because `stage2_threads` reports the worker count
            // itself.
            prop_assert_eq!(
                &base.metrics.counters,
                &other.metrics.counters,
                "metric totals diverged at {} threads",
                threads
            );
            prop_assert_eq!(&base.metrics.histograms, &other.metrics.histograms);
            prop_assert_eq!(&base.events, &other.events);
        }
    }
}
