//! End-to-end unitary correctness of the PHOENIX pipeline.
//!
//! A correct compilation may only *reorder* the Trotter product — so for
//! every input the emitted circuit's unitary must equal the exact Trotter
//! product of [`CompiledProgram::term_order`] up to global phase, and that
//! order must be a permutation of the input terms.

use phoenix_core::{CompiledProgram, PhoenixCompiler};
use phoenix_mathkit::Xoshiro256;
use phoenix_pauli::{Pauli, PauliString};
use phoenix_sim::{circuit_unitary, infidelity, trotter_unitary};

fn random_terms(n: usize, count: usize, seed: u64) -> Vec<(PauliString, f64)> {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut p = PauliString::identity(n);
            // Ensure non-identity: force at least one non-trivial site.
            loop {
                for q in 0..n {
                    let k = rng.next_below(4);
                    p.set(q, [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z][k]);
                }
                if !p.is_identity() {
                    break;
                }
            }
            (p, rng.next_range_f64(-0.5, 0.5))
        })
        .collect()
}

fn multiset(
    terms: &[(PauliString, f64)],
) -> Vec<(phoenix_pauli::QubitMask, phoenix_pauli::QubitMask, i64)> {
    let mut v: Vec<_> = terms
        .iter()
        .map(|(p, c)| {
            (
                p.x_mask().clone(),
                p.z_mask().clone(),
                (c * 1e12).round() as i64,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

fn check_program(n: usize, terms: &[(PauliString, f64)], label: &str) {
    let out: CompiledProgram = PhoenixCompiler::default().compile(n, terms);
    assert_eq!(
        multiset(&out.term_order),
        multiset(terms),
        "{label}: term_order must be a permutation of the input"
    );
    let want = trotter_unitary(n, &out.term_order);
    let high = circuit_unitary(&out.circuit);
    assert!(
        infidelity(&want, &high) < 1e-10,
        "{label}: high-level circuit deviates, infid {}",
        infidelity(&want, &high)
    );
    // Lowering to the CNOT ISA and rebasing to SU(4) preserve the unitary.
    let cnot = circuit_unitary(&phoenix_circuit::peephole::optimize(&out.circuit));
    assert!(
        infidelity(&want, &cnot) < 1e-10,
        "{label}: CNOT lowering deviates"
    );
    let su4 = circuit_unitary(&phoenix_circuit::rebase::to_su4(&out.circuit));
    assert!(
        infidelity(&want, &su4) < 1e-10,
        "{label}: SU(4) rebase deviates"
    );
}

#[test]
fn fig1b_example_is_exact() {
    let terms: Vec<(PauliString, f64)> = ["ZYY", "ZZY", "XYY", "XZY"]
        .iter()
        .enumerate()
        .map(|(i, s)| (s.parse().unwrap(), 0.07 * (i + 1) as f64))
        .collect();
    check_program(3, &terms, "fig1b");
}

#[test]
fn random_programs_are_exact() {
    for seed in 0..12 {
        let n = 3 + (seed as usize % 3); // 3..=5 qubits
        let terms = random_terms(n, 4 + (seed as usize % 5), 100 + seed);
        check_program(n, &terms, &format!("random seed {seed}"));
    }
}

#[test]
fn duplicate_support_groups_are_exact() {
    // Many strings over the same support stress the simultaneous
    // simplification path.
    let terms: Vec<(PauliString, f64)> = ["XXYY", "YYXX", "XYXY", "YXYX", "ZZZZ", "XXXX"]
        .iter()
        .enumerate()
        .map(|(i, s)| (s.parse().unwrap(), 0.03 * (i as f64 + 1.0)))
        .collect();
    check_program(4, &terms, "same support");
}

#[test]
fn weight_one_heavy_mix_is_exact() {
    let terms: Vec<(PauliString, f64)> = [
        ("XIII", 0.4),
        ("IYII", -0.2),
        ("XYZX", 0.11),
        ("IIIZ", 0.9),
        ("XYZY", -0.23),
    ]
    .iter()
    .map(|(s, c)| (s.parse().unwrap(), *c))
    .collect();
    check_program(4, &terms, "mixed weights");
}

#[test]
fn uccsd_style_group_is_exact() {
    // A JW double excitation: 8 strings on one support with Z-chains.
    let jw = phoenix_hamil_stub::double_jw();
    check_program(5, &jw, "uccsd-like");
}

/// Local helper emulating a JW double-excitation pattern without a hamil
/// dependency (kept minimal: the real generators are tested in phoenix-hamil).
mod phoenix_hamil_stub {
    use phoenix_pauli::PauliString;

    pub fn double_jw() -> Vec<(PauliString, f64)> {
        [
            "XXZXY", "XXZYX", "XYZXX", "YXZXX", "XYZYY", "YXZYY", "YYZXY", "YYZYX",
        ]
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            (s.parse().unwrap(), sign * 0.05)
        })
        .collect()
    }
}
