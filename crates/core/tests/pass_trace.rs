//! Observability-contract tests for [`PassTrace`].
//!
//! Traces must (a) survive a JSON round-trip unchanged, (b) name exactly
//! the passes the manager ran, in order, and (c) carry monotone cumulative
//! timings with before/after stats that chain between consecutive passes.

use phoenix_core::pass::CircuitStats;
use phoenix_core::{PassTrace, PhoenixCompiler, PhoenixOptions};
use phoenix_pauli::PauliString;
use phoenix_topology::CouplingGraph;

fn fig1b() -> (usize, Vec<(PauliString, f64)>) {
    let terms = ["ZYY", "ZZY", "XYY", "XZY"]
        .iter()
        .enumerate()
        .map(|(i, l)| (l.parse().unwrap(), 0.02 * (i + 1) as f64))
        .collect();
    (3, terms)
}

#[test]
fn trace_round_trips_through_json() {
    let (n, terms) = fig1b();
    let (_, trace) = PhoenixCompiler::default().compile_to_cnot_with_trace(n, &terms);
    let json = serde_json::to_string(&trace).unwrap();
    let back: PassTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(back, trace);

    let pretty = serde_json::to_string_pretty(&trace).unwrap();
    let back: PassTrace = serde_json::from_str(&pretty).unwrap();
    assert_eq!(back, trace);
}

#[test]
fn trace_json_exposes_the_documented_schema() {
    let (n, terms) = fig1b();
    let (_, trace) = PhoenixCompiler::default().compile_with_trace(n, &terms);
    let value = serde_json::to_value(&trace).unwrap();
    let passes = value.get("passes").and_then(|p| p.as_array()).unwrap();
    assert_eq!(passes.len(), trace.passes.len());
    for record in passes {
        for key in ["name", "millis", "cumulative_millis", "before", "after"] {
            assert!(record.get(key).is_some(), "missing key `{key}`");
        }
        for side in ["before", "after"] {
            let stats = record.get(side).unwrap();
            for key in ["gates", "cnot", "two_qubit", "depth", "depth_2q"] {
                assert!(stats.get(key).is_some(), "missing `{side}.{key}`");
            }
        }
    }
}

#[test]
fn trace_names_match_each_entry_point() {
    let (n, terms) = fig1b();
    let c = PhoenixCompiler::default();
    let logical = ["group", "simplify-synth", "tetris-order", "concat"];

    let (_, t) = c.compile_with_trace(n, &terms);
    assert_eq!(t.pass_names(), logical);

    let (_, t) = c.compile_to_cnot_with_trace(n, &terms);
    assert_eq!(t.pass_names(), [&logical[..], &["peephole"]].concat());

    let (_, t) = c.compile_to_su4_with_trace(n, &terms);
    assert_eq!(t.pass_names(), [&logical[..], &["su4-rebase"]].concat());

    let (_, t) = c.compile_to_cnot_via_kak_with_trace(n, &terms);
    assert_eq!(
        t.pass_names(),
        [&logical[..], &["su4-rebase", "kak-resynthesis", "peephole"]].concat()
    );

    let dev = CouplingGraph::line(3);
    let (_, t) = c.compile_hardware_aware_with_trace(n, &terms, &dev);
    assert_eq!(
        t.pass_names(),
        [
            &logical[..],
            &[
                "peephole",
                "snapshot-logical",
                "layout-route",
                "cnot-lower",
                "peephole"
            ]
        ]
        .concat()
    );
}

#[test]
fn ablation_options_rename_the_replaced_stages() {
    let (n, terms) = fig1b();
    let c = PhoenixCompiler::new(PhoenixOptions {
        enable_simplification: false,
        enable_ordering: false,
        ..PhoenixOptions::default()
    });
    let (_, t) = c.compile_with_trace(n, &terms);
    assert_eq!(
        t.pass_names(),
        ["group", "naive-synth", "program-order", "concat"]
    );
}

#[test]
fn trace_timings_are_monotone_and_stats_chain() {
    let (n, terms) = fig1b();
    let dev = CouplingGraph::line(3);
    let (hw, trace) = PhoenixCompiler::default().compile_hardware_aware_with_trace(n, &terms, &dev);

    let mut cumulative = 0.0;
    for record in &trace.passes {
        assert!(record.millis >= 0.0);
        assert!(
            record.cumulative_millis >= cumulative,
            "cumulative timing regressed at `{}`",
            record.name
        );
        cumulative = record.cumulative_millis;
    }
    assert!(trace.total_millis() >= cumulative - f64::EPSILON);

    for pair in trace.passes.windows(2) {
        assert_eq!(
            pair[0].after, pair[1].before,
            "stats do not chain between `{}` and `{}`",
            pair[0].name, pair[1].name
        );
    }
    let last = trace.passes.last().unwrap();
    assert_eq!(last.after, CircuitStats::of(&hw.circuit));
}
