//! The metrics-collecting [`PassObserver`].
//!
//! [`MetricsObserver`] is the bridge between the pass manager's boundary
//! protocol and the per-compilation
//! [`MetricsRegistry`](phoenix_obs::MetricsRegistry): at every pass
//! boundary it counts the executed pass and folds the robustness events the
//! pass raised (and any `verified` events recorded by observers attached
//! before it) into counters. It is a *passive* collector —
//! [`PassObserver::verifies`] is `false`, it never rejects a boundary, and
//! it mutates nothing but the registry behind the context's `ObsCollector`.
//!
//! Attach it **after** any validating observer (`BoundaryVerifier`), both so
//! metrics are never folded over a rejected state and so the verifier's
//! `verified` events are visible to it at the same boundary.

use phoenix_obs::metrics::MetricId;

use crate::pass::{
    CompileContext, PassError, PassObserver, EVENT_DEGRADED, EVENT_RETRIED, EVENT_SKIPPED,
    EVENT_TRUNCATED, EVENT_VERIFIED,
};

/// Folds pass boundaries into the compilation's metrics registry.
///
/// Stateless: all accumulation happens in the `ObsCollector` carried by the
/// [`CompileContext`]; a boundary on an uninstrumented context is a no-op.
#[derive(Debug, Default, Clone, Copy)]
pub struct MetricsObserver;

impl PassObserver for MetricsObserver {
    fn name(&self) -> &str {
        "metrics"
    }

    fn after_pass(&self, _pass: &str, ctx: &CompileContext) -> Result<(), PassError> {
        if let Some(obs) = &ctx.obs {
            let metrics = obs.metrics();
            metrics.incr(MetricId::PassesRun);
            // `ctx.events` holds exactly this boundary's events: the manager
            // drains them into the trace after the observer round.
            for event in &ctx.events {
                let id = match event.kind.as_str() {
                    EVENT_DEGRADED => MetricId::Stage2Degraded,
                    EVENT_TRUNCATED => MetricId::Stage2Truncated,
                    EVENT_RETRIED => MetricId::RouterRetries,
                    EVENT_VERIFIED => MetricId::BoundariesVerified,
                    // `skipped` passes never reach an observer; the manager
                    // counts them directly.
                    EVENT_SKIPPED => continue,
                    _ => continue,
                };
                metrics.incr(id);
            }
        }
        Ok(())
    }

    fn verifies(&self) -> bool {
        false
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use std::sync::Arc;

    use phoenix_obs::ObsCollector;

    use super::*;
    use crate::pass::{Pass, PassManager};

    struct RaisesEvents;

    impl Pass for RaisesEvents {
        fn name(&self) -> &str {
            "raises-events"
        }

        fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
            ctx.record_event("raises-events", EVENT_DEGRADED, "a");
            ctx.record_event("raises-events", EVENT_RETRIED, "b");
            ctx.record_event("raises-events", EVENT_RETRIED, "c");
            Ok(())
        }
    }

    #[test]
    fn counts_passes_and_event_kinds() {
        let mut ctx = CompileContext::new(2, &[]);
        let obs = Arc::new(ObsCollector::new());
        ctx.obs = Some(obs.clone());
        let pm = PassManager::new()
            .with(RaisesEvents)
            .with_observer(Arc::new(MetricsObserver));
        pm.run(&mut ctx).unwrap();
        let m = obs.metrics();
        assert_eq!(m.counter(MetricId::PassesRun), 1);
        assert_eq!(m.counter(MetricId::Stage2Degraded), 1);
        assert_eq!(m.counter(MetricId::RouterRetries), 2);
        // A passive collector does not claim verification.
        assert_eq!(m.counter(MetricId::BoundariesVerified), 0);
    }

    struct Verifier;

    impl PassObserver for Verifier {
        fn name(&self) -> &str {
            "test-verifier"
        }

        fn after_pass(&self, _pass: &str, _ctx: &CompileContext) -> Result<(), PassError> {
            Ok(())
        }
    }

    #[test]
    fn sees_verified_events_of_earlier_observers() {
        let mut ctx = CompileContext::new(2, &[]);
        let obs = Arc::new(ObsCollector::new());
        ctx.obs = Some(obs.clone());
        let pm = PassManager::new()
            .with(RaisesEvents)
            .with_observer(Arc::new(Verifier))
            .with_observer(Arc::new(MetricsObserver));
        let trace = pm.run(&mut ctx).unwrap();
        assert_eq!(obs.metrics().counter(MetricId::BoundariesVerified), 1);
        assert_eq!(trace.events_of_kind(EVENT_VERIFIED).len(), 1);
    }

    #[test]
    fn uninstrumented_context_is_a_no_op() {
        let mut ctx = CompileContext::new(2, &[]);
        let pm = PassManager::new()
            .with(RaisesEvents)
            .with_observer(Arc::new(MetricsObserver));
        assert!(pm.run(&mut ctx).is_ok());
    }
}
