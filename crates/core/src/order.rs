//! Stage 3: Tetris-like IR group ordering (§IV-C).
//!
//! Simplified groups are abstracted into Tetris-block-like shapes; assembly
//! greedily minimizes a uniform cost combining
//!
//! 1. the **depth overhead** of abutting the candidate block against the
//!    already-assembled circuit — how many 2Q layers the block adds when it
//!    slides into the assembled frontier (the endian-vector picture of
//!    Fig. 3: a block whose left endian meshes with the frontier's right
//!    endian adds fewer layers);
//! 2. a credit for Hermitian Clifford2Q pairs cancelling across the seam
//!    (Fig. 4(a)), including extra credit when the cancellation clears a
//!    whole facing layer;
//! 3. in hardware-aware mode, division by the interaction-graph similarity
//!    factor of Eq. (7) (Fig. 4(b)).
//!
//! *Transcription note:* the paper's printed formula reads
//! `cost = SUM(e_r + e_l')` to be minimized, but taken literally that
//! prefers colliding blocks over side-by-side packing, contradicting the
//! stated goal of minimizing circuit depth (and the depth-optimal QAOA
//! claim of §V-E). We therefore implement the quantity the endian vectors
//! are introduced to measure — the depth increase of the assembly — which
//! reproduces the paper's reported behaviour.
//!
//! Groups are pre-sorted by descending width, then assembled with a bounded
//! lookahead window.

use phoenix_circuit::interaction::{
    distance_matrix, head_edges, similarity, support_2q, tail_edges,
};
use phoenix_circuit::{Circuit, Gate};
use phoenix_pauli::{Clifford2Q, QubitMask};

/// Ordering parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderOptions {
    /// How many upcoming groups are scored against the last assembled one.
    pub lookahead: usize,
    /// Whether to apply the Eq. (7) routing-similarity factor.
    pub routing_aware: bool,
}

impl Default for OrderOptions {
    fn default() -> Self {
        OrderOptions {
            lookahead: 10,
            routing_aware: false,
        }
    }
}

/// The per-qubit 2Q-layer frontier of an assembled prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frontier {
    layers: Vec<usize>,
    depth: usize,
}

impl Frontier {
    /// An empty frontier over `n` qubits.
    pub fn new(n: usize) -> Self {
        Frontier {
            layers: vec![0; n],
            depth: 0,
        }
    }

    /// Current 2Q depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Pushes every 2Q gate of `c` onto the frontier.
    pub fn push(&mut self, c: &Circuit) {
        for g in c.gates() {
            if let (a, Some(b)) = g.qubits() {
                let layer = self.layers[a].max(self.layers[b]) + 1;
                self.layers[a] = layer;
                self.layers[b] = layer;
                self.depth = self.depth.max(layer);
            }
        }
    }

    /// 2Q layers added if `c` were appended (ASAP scheduling), without
    /// mutating the frontier.
    ///
    /// Tracks trial layers only for the qubits `c` actually touches (a
    /// stack mask + scratch array) instead of cloning the full per-qubit
    /// layer vector for every ordering candidate.
    pub fn depth_added(&self, c: &Circuit) -> usize {
        let mut touched = QubitMask::zeros(self.layers.len());
        let mut trial = vec![0usize; self.layers.len()];
        let mut depth = self.depth;
        for g in c.gates() {
            if let (a, Some(b)) = g.qubits() {
                let la = if touched.bit(a) {
                    trial[a]
                } else {
                    self.layers[a]
                };
                let lb = if touched.bit(b) {
                    trial[b]
                } else {
                    self.layers[b]
                };
                let layer = la.max(lb) + 1;
                trial[a] = layer;
                trial[b] = layer;
                touched.set_bit(a);
                touched.set_bit(b);
                depth = depth.max(layer);
            }
        }
        depth - self.depth
    }
}

/// The assembling cost of placing `next` after the assembled prefix whose
/// frontier is `frontier` and whose last block is `prev`.
///
/// Lower is better; Clifford-cancellation credits can push it negative.
pub fn assembly_cost(
    frontier: &Frontier,
    prev: &Circuit,
    next: &Circuit,
    opts: &OrderOptions,
) -> f64 {
    let mut cost = frontier.depth_added(next) as f64;

    // Clifford2Q cancellation credit.
    let (m, prev_layer_cleared, next_layer_cleared) = clifford_cancellations(prev, next);
    cost -= 2.0 * m as f64;
    if prev_layer_cleared {
        cost -= 1.0;
    }
    if next_layer_cleared {
        cost -= 1.0;
    }

    if opts.routing_aware {
        let s = mean_similarity(prev, next).clamp(0.05, 1.0);
        cost = if cost >= 0.0 { cost / s } else { cost * s };
    }
    cost
}

/// Eq. (7) similarity normalized to a mean row cosine in `[0, 1]`.
fn mean_similarity(prev: &Circuit, next: &Circuit) -> f64 {
    let mut union = support_2q(prev);
    union.or_with(&support_2q(next));
    let nodes: Vec<usize> = union.to_indices();
    if nodes.is_empty() {
        return 1.0;
    }
    let d1 = distance_matrix(&nodes, &tail_edges(prev));
    let d2 = distance_matrix(&nodes, &head_edges(next));
    similarity(&d1, &d2) / nodes.len() as f64
}

/// Counts Hermitian Clifford2Q pairs that cancel across the seam and
/// whether the cancellation clears the facing 2Q layer on either side.
fn clifford_cancellations(prev: &Circuit, next: &Circuit) -> (usize, bool, bool) {
    let mut trailing = frontier_cliffords(prev.gates().iter().rev());
    let leading = frontier_cliffords(next.gates().iter());
    let mut matched = 0usize;
    let mut matched_gates: Vec<Clifford2Q> = Vec::new();
    for l in &leading {
        if let Some(pos) = trailing.iter().position(|t| cancels(t, l)) {
            matched_gates.push(trailing.remove(pos));
            matched_gates.push(*l);
            matched += 1;
        }
    }
    if matched == 0 {
        return (0, false, false);
    }
    let prev_cleared = layer_cleared(prev.gates().iter().rev(), &matched_gates);
    let next_cleared = layer_cleared(next.gates().iter(), &matched_gates);
    (matched, prev_cleared, next_cleared)
}

/// The frontier 2Q Cliffords reachable from one end without crossing any
/// other gate on their qubits.
fn frontier_cliffords<'a>(gates: impl Iterator<Item = &'a Gate>) -> Vec<Clifford2Q> {
    let mut blocked = QubitMask::default();
    let mut out = Vec::new();
    for g in gates {
        let (a, b) = g.qubits();
        let hit = blocked.bit(a) || b.is_some_and(|b| blocked.bit(b));
        if let Gate::Clifford2(c) = g {
            if !hit {
                out.push(*c);
            }
        }
        blocked.set_bit(a);
        if let Some(b) = b {
            blocked.set_bit(b);
        }
    }
    out
}

/// Whether the facing 2Q layer consists entirely of cancelled gates.
fn layer_cleared<'a>(gates: impl Iterator<Item = &'a Gate>, cancelled: &[Clifford2Q]) -> bool {
    // First 2Q layer from this end: 2Q gates seen before any qubit overlap.
    let mut blocked = QubitMask::default();
    let mut all_cancelled = true;
    let mut saw_2q = false;
    for g in gates {
        let (a, b) = g.qubits();
        let Some(b) = b else { continue };
        if blocked.bit(a) || blocked.bit(b) {
            break;
        }
        blocked.set_bit(a);
        blocked.set_bit(b);
        saw_2q = true;
        let in_layer_cancelled =
            matches!(g, Gate::Clifford2(c) if cancelled.iter().any(|m| m == c));
        all_cancelled &= in_layer_cancelled;
    }
    saw_2q && all_cancelled
}

/// Whether two Clifford2Q gates are inverse (= equal, they are Hermitian) up
/// to the qubit exchange symmetry of the `C(σ,σ)` generators.
fn cancels(a: &Clifford2Q, b: &Clifford2Q) -> bool {
    if a.kind != b.kind {
        return false;
    }
    if a.a == b.a && a.b == b.b {
        return true;
    }
    // C(σ,σ) is symmetric under qubit exchange.
    a.kind.sigma0() == a.kind.sigma1() && a.a == b.b && a.b == b.a
}

/// Orders group subcircuits: descending-width pre-sort, then greedy
/// lookahead assembly against the running frontier. Returns the permutation
/// of input indices.
pub fn order_groups(circuits: &[Circuit], opts: &OrderOptions) -> Vec<usize> {
    order_groups_interruptible(circuits, opts, &mut || false)
        .expect("a never-true interrupt cannot abort the ordering")
}

/// [`order_groups`] with a cooperative interruption point before each
/// greedy placement: when `interrupted` returns `true` the partial ordering
/// is abandoned and `None` is returned (the caller keeps whatever ordering
/// it already holds — a half-greedy permutation is not meaningfully better
/// than none). The closure is the hook through which the anytime deepening
/// rounds and the ordering pass observe `CancelToken`s mid-loop.
pub fn order_groups_interruptible(
    circuits: &[Circuit],
    opts: &OrderOptions,
    interrupted: &mut dyn FnMut() -> bool,
) -> Option<Vec<usize>> {
    let mut remaining: Vec<usize> = (0..circuits.len()).collect();
    remaining.sort_by_key(|&i| std::cmp::Reverse(circuits[i].support_mask().count_ones()));
    if remaining.is_empty() {
        return Some(remaining);
    }
    let n = circuits.iter().map(Circuit::num_qubits).max().unwrap_or(0);
    let mut frontier = Frontier::new(n);
    let mut result = vec![remaining.remove(0)];
    frontier.push(&circuits[result[0]]);
    while !remaining.is_empty() {
        if interrupted() {
            return None;
        }
        let last = *result.last().expect("result is nonempty");
        let window = remaining.len().min(opts.lookahead.max(1));
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (w, &cand) in remaining.iter().take(window).enumerate() {
            let cost = assembly_cost(&frontier, &circuits[last], &circuits[cand], opts);
            if cost < best_cost {
                best_cost = cost;
                best = w;
            }
        }
        let chosen = remaining.remove(best);
        frontier.push(&circuits[chosen]);
        result.push(chosen);
    }
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_pauli::Clifford2QKind;

    fn cnot_chain(n: usize, pairs: &[(usize, usize)]) -> Circuit {
        let mut c = Circuit::new(n);
        for &(a, b) in pairs {
            c.push(Gate::Cnot(a, b));
        }
        c
    }

    fn frontier_of(c: &Circuit) -> Frontier {
        let mut f = Frontier::new(c.num_qubits());
        f.push(c);
        f
    }

    #[test]
    fn disjoint_blocks_pack_for_free() {
        let prev = cnot_chain(4, &[(0, 1)]);
        let next = cnot_chain(4, &[(2, 3)]);
        let c = assembly_cost(&frontier_of(&prev), &prev, &next, &OrderOptions::default());
        assert_eq!(c, 0.0, "disjoint blocks share a layer");
    }

    #[test]
    fn colliding_blocks_add_depth() {
        let prev = cnot_chain(2, &[(0, 1)]);
        let next = cnot_chain(2, &[(0, 1)]);
        let c = assembly_cost(&frontier_of(&prev), &prev, &next, &OrderOptions::default());
        assert_eq!(c, 1.0, "stacking adds one layer");
    }

    #[test]
    fn frontier_accumulates_depth() {
        let mut f = Frontier::new(3);
        f.push(&cnot_chain(3, &[(0, 1)]));
        assert_eq!(f.depth(), 1);
        assert_eq!(f.depth_added(&cnot_chain(3, &[(1, 2)])), 1);
        assert_eq!(f.depth_added(&cnot_chain(3, &[(1, 2), (0, 1)])), 2);
    }

    #[test]
    fn clifford_cancellation_credit_applies() {
        let cl = Clifford2Q::new(Clifford2QKind::Cxy, 0, 1);
        let mut prev = Circuit::new(3);
        prev.push(Gate::Cnot(1, 2));
        prev.push(Gate::Clifford2(cl));
        let mut next = Circuit::new(3);
        next.push(Gate::Clifford2(cl));
        next.push(Gate::Cnot(1, 2));
        let f = frontier_of(&prev);
        let with = assembly_cost(&f, &prev, &next, &OrderOptions::default());
        // Same shape without the matching Cliffords at the seam:
        let mut prev2 = Circuit::new(3);
        prev2.push(Gate::Clifford2(cl));
        prev2.push(Gate::Cnot(1, 2));
        let f2 = frontier_of(&prev2);
        let without = assembly_cost(&f2, &prev2, &next, &OrderOptions::default());
        assert!(with < without, "{with} vs {without}");
    }

    #[test]
    fn similarity_factor_ranks_interaction_shapes() {
        let prev = cnot_chain(4, &[(0, 1), (1, 2), (2, 3)]);
        let similar = cnot_chain(4, &[(0, 1), (1, 2), (2, 3)]);
        let different = cnot_chain(4, &[(0, 3), (0, 2), (1, 3)]);
        let ss = mean_similarity(&prev, &similar);
        let sd = mean_similarity(&prev, &different);
        assert!((ss - 1.0).abs() < 1e-12, "identical shape → 1, got {ss}");
        assert!(sd < ss, "rewired shape must be less similar: {sd}");
    }

    #[test]
    fn routing_awareness_neutral_at_unit_similarity() {
        let prev = cnot_chain(4, &[(0, 1), (1, 2), (2, 3)]);
        let f = frontier_of(&prev);
        let on = assembly_cost(
            &f,
            &prev,
            &prev,
            &OrderOptions {
                lookahead: 10,
                routing_aware: true,
            },
        );
        let off = assembly_cost(&f, &prev, &prev, &OrderOptions::default());
        assert_eq!(on, off);
    }

    #[test]
    fn qaoa_edges_pack_in_parallel() {
        // Disjoint ZZ blocks must interleave into few layers.
        let blocks: Vec<Circuit> = [(0, 1), (2, 3), (1, 2), (3, 0)]
            .iter()
            .map(|&(a, b)| cnot_chain(4, &[(a, b)]))
            .collect();
        let perm = order_groups(&blocks, &OrderOptions::default());
        let mut assembled = Circuit::new(4);
        for i in perm {
            assembled.append(&blocks[i]);
        }
        assert_eq!(assembled.depth_2q(), 2, "ring packs into 2 layers");
    }

    #[test]
    fn order_groups_is_a_permutation() {
        let circuits: Vec<Circuit> = vec![
            cnot_chain(4, &[(0, 1)]),
            cnot_chain(4, &[(2, 3)]),
            cnot_chain(4, &[(0, 1), (1, 2)]),
            Circuit::new(4),
        ];
        let perm = order_groups(&circuits, &OrderOptions::default());
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        // Widest group first.
        assert_eq!(perm[0], 2);
    }

    #[test]
    fn empty_input_is_fine() {
        assert!(order_groups(&[], &OrderOptions::default()).is_empty());
    }

    #[test]
    fn interruptible_ordering_matches_and_aborts() {
        let circuits: Vec<Circuit> = vec![
            cnot_chain(4, &[(0, 1)]),
            cnot_chain(4, &[(2, 3)]),
            cnot_chain(4, &[(0, 1), (1, 2)]),
            cnot_chain(4, &[(1, 2)]),
        ];
        let opts = OrderOptions::default();
        assert_eq!(
            order_groups_interruptible(&circuits, &opts, &mut || false),
            Some(order_groups(&circuits, &opts))
        );
        // An immediately-firing interrupt abandons the ordering.
        assert_eq!(
            order_groups_interruptible(&circuits, &opts, &mut || true),
            None
        );
        // Firing after one placement also abandons it (no partial result).
        let mut calls = 0usize;
        let aborted = order_groups_interruptible(&circuits, &opts, &mut || {
            calls += 1;
            calls > 1
        });
        assert_eq!(aborted, None);
    }

    #[test]
    fn cancels_respects_symmetry() {
        let a = Clifford2Q::new(Clifford2QKind::Czz, 0, 1);
        let b = Clifford2Q::new(Clifford2QKind::Czz, 1, 0);
        assert!(cancels(&a, &b), "C(Z,Z) is exchange-symmetric");
        let c = Clifford2Q::new(Clifford2QKind::Czx, 0, 1);
        let d = Clifford2Q::new(Clifford2QKind::Czx, 1, 0);
        assert!(!cancels(&c, &d), "CNOT orientation matters");
        assert!(cancels(&c, &c));
    }
}
