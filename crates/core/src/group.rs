//! Stage 1: IR grouping by qubit support.
//!
//! "Pauli-based IRs are first grouped according to the same set of qubit
//! indices non-trivially acted on" (§IV-A). Grouping reorders terms, which
//! is free within a Trotter step.

use phoenix_pauli::{PauliString, QubitMask};
use std::collections::BTreeMap;

/// A group of Pauli exponentiations sharing one qubit-support set.
///
/// # Examples
///
/// ```
/// use phoenix_core::group::group_by_support;
/// use phoenix_pauli::{PauliString, QubitMask};
///
/// let terms: Vec<(PauliString, f64)> = vec![
///     ("XXI".parse().unwrap(), 0.1),
///     ("IZZ".parse().unwrap(), 0.2),
///     ("YYI".parse().unwrap(), 0.3), // same support as XXI
/// ];
/// let groups = group_by_support(3, &terms);
/// assert_eq!(groups.len(), 2);
/// assert_eq!(groups[0].terms().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IrGroup {
    n: usize,
    support_mask: QubitMask,
    terms: Vec<(PauliString, f64)>,
}

impl IrGroup {
    /// Number of qubits of the enclosing register.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Bit mask of the group's support.
    pub fn support_mask(&self) -> &QubitMask {
        &self.support_mask
    }

    /// The support qubits in increasing order.
    pub fn support(&self) -> Vec<usize> {
        self.support_mask.to_indices()
    }

    /// The group's width (number of support qubits) — the pre-ordering sort
    /// key of §IV-C.
    pub fn width(&self) -> usize {
        self.support_mask.count_ones() as usize
    }

    /// The grouped terms, in original relative order.
    pub fn terms(&self) -> &[(PauliString, f64)] {
        &self.terms
    }
}

/// Groups terms by identical support set, preserving first-appearance group
/// order and the original relative order of terms within each group.
///
/// # Panics
///
/// Panics if a term's qubit count differs from `n`.
pub fn group_by_support(n: usize, terms: &[(PauliString, f64)]) -> Vec<IrGroup> {
    let mut index: BTreeMap<QubitMask, usize> = BTreeMap::new();
    let mut groups: Vec<IrGroup> = Vec::new();
    for (p, c) in terms {
        assert_eq!(p.num_qubits(), n, "term qubit count mismatch");
        if p.is_identity() {
            continue; // global phase: nothing to synthesize
        }
        let mask = p.support_mask();
        let gi = *index.entry(mask.clone()).or_insert_with(|| {
            groups.push(IrGroup {
                n,
                support_mask: mask,
                terms: Vec::new(),
            });
            groups.len() - 1
        });
        groups[gi].terms.push((p.clone(), *c));
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(l: &str, c: f64) -> (PauliString, f64) {
        (l.parse().unwrap(), c)
    }

    #[test]
    fn groups_preserve_order() {
        let terms = vec![t("XXI", 1.0), t("IZZ", 2.0), t("YXI", 3.0), t("IXX", 4.0)];
        let groups = group_by_support(3, &terms);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].terms(), &[t("XXI", 1.0), t("YXI", 3.0)]);
        assert_eq!(groups[1].terms(), &[t("IZZ", 2.0), t("IXX", 4.0)]);
    }

    #[test]
    fn identity_terms_are_dropped() {
        let groups = group_by_support(2, &[t("II", 5.0), t("XY", 1.0)]);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].width(), 2);
    }

    #[test]
    fn support_accessors() {
        let groups = group_by_support(4, &[t("IXIZ", 1.0)]);
        assert_eq!(groups[0].support(), vec![1, 3]);
        assert_eq!(groups[0].support_mask(), &QubitMask::from_u128(0b1010));
        assert_eq!(groups[0].num_qubits(), 4);
    }

    #[test]
    fn distinct_supports_do_not_merge() {
        // Same width, different qubits.
        let groups = group_by_support(3, &[t("XXI", 1.0), t("XIX", 1.0), t("IXX", 1.0)]);
        assert_eq!(groups.len(), 3);
    }
}
