//! Stage 2: group-wise BSF simplification (Algorithm 1).
//!
//! Each IR group's tableau is repeatedly conjugated by the best 2Q Clifford
//! generator (minimizing the Eq. (6) cost) until its total weight is at most
//! 2, peeling weight-1 "local" rows before each search epoch. The output
//! `cfg` nests the core rotations inside the chosen Clifford conjugations:
//!
//! ```text
//! [ L₁, C₁, L₂, C₂, …, Lₖ, Cₖ, core, Cₖ, …, C₂, C₁ ]
//! ```
//!
//! where `Lᵢ` are the locals peeled at epoch `i` (expressed in the frame of
//! the first `i−1` Cliffords) and `core` is the final ≤2Q tableau in the
//! frame of all `k`. This ordering makes the emitted circuit *exactly* a
//! Trotter product of the group's original exponentiations (verified
//! against the unitary simulator in the integration tests); the paper's
//! pseudocode prepends/appends in a slightly different arrangement whose
//! literal reading is not unitary-faithful — the conjugation semantics
//! ("Clifford2Q operators are added as conjugations, with local Pauli
//! strings peeled before each epoch") are the same.
//!
//! Greedy descent can plateau; a guaranteed-progress fallback then applies
//! the Clifford that strictly reduces the heaviest row's weight (one always
//! exists — see `every_weight2_pair_is_reducible`), which bounds the total
//! epoch count.

use crate::cost::cost_bsf;
use crate::evaluator::CostEvaluator;
use phoenix_pauli::{
    fold_conjugation_sign, Bsf, BsfRow, Clifford2Q, PauliString, CLIFFORD2Q_GENERATORS,
};
use std::sync::OnceLock;

/// One element of a simplified group's configuration sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum CfgItem {
    /// A 2Q Clifford generator (CNOT-equivalent), applied as written.
    Clifford(Clifford2Q),
    /// A batch of Pauli rotations `exp(-i·coeff·P)` with weight ≤ 2 each,
    /// in the current Clifford frame.
    Rotations(Vec<BsfRow>),
}

/// A simplified IR group: the output of Algorithm 1, still ISA-independent.
///
/// # Examples
///
/// ```
/// use phoenix_core::simplify::simplify_terms;
/// use phoenix_pauli::PauliString;
///
/// let terms: Vec<(PauliString, f64)> = ["ZYY", "ZZY", "XYY", "XZY"]
///     .iter()
///     .map(|s| (s.parse().unwrap(), 0.1))
///     .collect();
/// let simplified = simplify_terms(3, &terms);
/// // One Clifford conjugation suffices for the Fig. 1(b) example.
/// assert_eq!(simplified.num_cliffords(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimplifiedGroup {
    n: usize,
    items: Vec<CfgItem>,
}

impl SimplifiedGroup {
    /// Number of qubits of the register.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The configuration sequence, in circuit order.
    pub fn items(&self) -> &[CfgItem] {
        &self.items
    }

    /// Number of *distinct* Clifford conjugation layers (each appears twice
    /// in the sequence).
    pub fn num_cliffords(&self) -> usize {
        self.items
            .iter()
            .filter(|i| matches!(i, CfgItem::Clifford(_)))
            .count()
            / 2
    }

    /// Reconstructs the original-frame `(PauliString, coeff)` terms in the
    /// order the emitted circuit implements them.
    ///
    /// Up to permutation this must equal the group's input terms — the
    /// invariant the tests check.
    pub fn term_sequence(&self) -> Vec<(PauliString, f64)> {
        let mut cliffords: Vec<Clifford2Q> = Vec::new();
        let mut out = Vec::new();
        for item in &self.items {
            match item {
                CfgItem::Clifford(c) => cliffords.push(*c),
                CfgItem::Rotations(rows) => {
                    for row in rows {
                        let mut p = row.to_pauli_string(self.n);
                        let mut coeff = row.coeff();
                        // Undo the enclosing conjugations, innermost first.
                        for c in cliffords.iter().rev() {
                            let (q, sign) = c.conjugate_string(&p);
                            p = q;
                            coeff = fold_conjugation_sign(coeff, sign);
                        }
                        out.push((p, coeff));
                    }
                }
            }
        }
        out
    }
}

/// Tuning knobs of [`simplify_terms_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplifyOptions {
    /// Worker threads for the candidate scan of each greedy epoch
    /// (`0` = one per core, `1` = sequential). The output is identical for
    /// every value; composes with the group-level `stage2_threads`.
    pub scan_threads: usize,
    /// Force the naive clone-and-rescore cost path instead of the
    /// incremental [`CostEvaluator`] — for differential testing. Also
    /// switchable at run time with `PHOENIX_NAIVE_COST=1`.
    pub naive_cost: bool,
}

impl Default for SimplifyOptions {
    fn default() -> Self {
        SimplifyOptions {
            scan_threads: 1,
            naive_cost: false,
        }
    }
}

/// Whether `PHOENIX_NAIVE_COST` forces the naive cost path (read once).
fn naive_cost_forced() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("PHOENIX_NAIVE_COST").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// Runs Algorithm 1 on one group's term list with default options.
///
/// # Panics
///
/// Panics if any term does not act on exactly `n` qubits.
pub fn simplify_terms(n: usize, terms: &[(PauliString, f64)]) -> SimplifiedGroup {
    simplify_terms_with(n, terms, &SimplifyOptions::default())
}

/// Runs Algorithm 1 on one group's term list.
///
/// Candidate evaluation goes through the incremental [`CostEvaluator`]
/// unless `opts.naive_cost` (or `PHOENIX_NAIVE_COST=1`) selects the naive
/// clone-and-rescore path; the two produce bit-identical output.
///
/// # Panics
///
/// Panics if any term does not act on exactly `n` qubits.
pub fn simplify_terms_with(
    n: usize,
    terms: &[(PauliString, f64)],
    opts: &SimplifyOptions,
) -> SimplifiedGroup {
    simplify_terms_interruptible(n, terms, opts, &mut || false)
        .expect("a never-firing interrupt cannot abandon the loop")
}

/// Runs Algorithm 1 on one group's term list, polling `interrupted` at the
/// top of every greedy epoch. Returns `None` the moment the closure fires,
/// so a cancellation or elapsed deadline can interrupt even a single
/// pathological group (hundreds of wide terms take thousands of epochs)
/// instead of only being observed between groups. With a never-firing
/// closure this is exactly [`simplify_terms_with`] — the same greedy loop,
/// bit for bit.
///
/// # Panics
///
/// Panics if any term does not act on exactly `n` qubits.
pub fn simplify_terms_interruptible(
    n: usize,
    terms: &[(PauliString, f64)],
    opts: &SimplifyOptions,
    interrupted: &mut dyn FnMut() -> bool,
) -> Option<SimplifiedGroup> {
    let mut bsf = Bsf::from_terms(n, terms.iter().cloned()).expect("terms fit the register");
    let mut nest: Vec<(Vec<BsfRow>, Clifford2Q)> = Vec::new();
    let mut core_locals: Vec<BsfRow> = Vec::new();
    let naive = opts.naive_cost || naive_cost_forced();
    let mut eval = CostEvaluator::new();

    // Generous bound; past it we force guaranteed-progress steps.
    let budget = 64 + 8 * bsf.rows().len() * bsf.total_weight().max(1);
    let mut steps = 0usize;

    while bsf.total_weight() > 2 {
        if interrupted() {
            return None;
        }
        let locals = bsf.pop_local_paulis();
        if bsf.total_weight() <= 2 {
            core_locals = locals;
            break;
        }
        steps += 1;
        let cliff = if naive {
            let current = cost_bsf(&bsf);
            match best_candidate_naive(&bsf) {
                Some((c, cost)) if cost < current && steps <= budget => c,
                _ => progress_candidate_naive(&bsf),
            }
        } else {
            eval.prepare(&bsf);
            let current = eval.current_cost();
            match eval.best_candidate_scan(&bsf, opts.scan_threads) {
                Some((c, cost)) if cost < current && steps <= budget => c,
                _ => eval.progress_candidate(&bsf),
            }
        };
        bsf.apply_clifford2q(cliff);
        nest.push((locals, cliff));
    }

    let mut core_rows = core_locals;
    core_rows.extend(bsf.rows().iter().cloned());

    let cliffords: Vec<Clifford2Q> = nest.iter().map(|(_, c)| *c).collect();
    let mut items = Vec::new();
    for (locals, cliff) in nest {
        if !locals.is_empty() {
            items.push(CfgItem::Rotations(locals));
        }
        items.push(CfgItem::Clifford(cliff));
    }
    if !core_rows.is_empty() {
        items.push(CfgItem::Rotations(core_rows));
    }
    for &cliff in cliffords.iter().rev() {
        items.push(CfgItem::Clifford(cliff));
    }
    Some(SimplifiedGroup { n, items })
}

/// Aspiration window for the principal-variation shortcut of
/// [`simplify_terms_deepening`]: the previous round's move at the same
/// epoch is accepted *without scanning* when it beats the current cost by
/// at least this margin. Eq. (6) costs are integer/half-integer valued, so
/// a margin of 1.0 means "clearly improving", not float noise.
pub(crate) const ASPIRATION_WINDOW: f64 = 1.0;

/// One deepening round of Algorithm 1: the legacy greedy loop with the
/// candidate scan capped at `max_pairs` support-pair ranks and the previous
/// round's Clifford sequence `pv` used as a principal variation (tried
/// first at each epoch; accepted without a scan inside the aspiration
/// window, otherwise competing with the capped scan's winner).
///
/// With `max_pairs == usize::MAX` the PV shortcut is disabled and the loop
/// reduces exactly to [`simplify_terms_with`] on the incremental cost path,
/// so the deepest round is bit-identical to the unbudgeted compile.
///
/// Returns the simplified group plus the chosen Clifford sequence — the
/// next round's principal variation — or `None` if `interrupted` fired
/// mid-loop (the caller abandons the round and keeps its previous best).
/// The closure is polled once per greedy epoch, like
/// [`simplify_terms_interruptible`]. Deterministic for every
/// `opts.scan_threads` value.
///
/// # Panics
///
/// Panics if any term does not act on exactly `n` qubits.
pub(crate) fn simplify_terms_deepening(
    n: usize,
    terms: &[(PauliString, f64)],
    opts: &SimplifyOptions,
    max_pairs: usize,
    pv: &[Clifford2Q],
    interrupted: &mut dyn FnMut() -> bool,
) -> Option<(SimplifiedGroup, Vec<Clifford2Q>)> {
    let mut bsf = Bsf::from_terms(n, terms.iter().cloned()).expect("terms fit the register");
    let mut nest: Vec<(Vec<BsfRow>, Clifford2Q)> = Vec::new();
    let mut core_locals: Vec<BsfRow> = Vec::new();
    let mut eval = CostEvaluator::new();
    let capped = max_pairs != usize::MAX;
    let mut chosen: Vec<Clifford2Q> = Vec::new();

    let budget = 64 + 8 * bsf.rows().len() * bsf.total_weight().max(1);
    let mut steps = 0usize;

    while bsf.total_weight() > 2 {
        if interrupted() {
            return None;
        }
        let locals = bsf.pop_local_paulis();
        if bsf.total_weight() <= 2 {
            core_locals = locals;
            break;
        }
        steps += 1;
        eval.prepare(&bsf);
        let current = eval.current_cost();
        let pv_cand = if capped {
            pv.get(chosen.len())
                .map(|&c| (c, eval.candidate_cost(&bsf, c)))
        } else {
            None
        };
        let cliff = match pv_cand {
            // Aspiration hit: clearly improving, skip the scan entirely.
            Some((c, cost)) if cost <= current - ASPIRATION_WINDOW && steps <= budget => c,
            _ => {
                let mut best = eval.best_candidate_scan_capped(&bsf, opts.scan_threads, max_pairs);
                if let Some((c, cost)) = pv_cand {
                    // The PV move competes with the capped scan's winner;
                    // it only displaces the winner on a strict improvement
                    // (the scan's canonical order defines tie-breaks).
                    if best.is_none_or(|(_, bc)| cost < bc) {
                        best = Some((c, cost));
                    }
                }
                match best {
                    Some((c, cost)) if cost < current && steps <= budget => c,
                    _ => eval.progress_candidate(&bsf),
                }
            }
        };
        bsf.apply_clifford2q(cliff);
        chosen.push(cliff);
        nest.push((locals, cliff));
    }

    let mut core_rows = core_locals;
    core_rows.extend(bsf.rows().iter().cloned());

    let cliffords: Vec<Clifford2Q> = nest.iter().map(|(_, c)| *c).collect();
    let mut items = Vec::new();
    for (locals, cliff) in nest {
        if !locals.is_empty() {
            items.push(CfgItem::Rotations(locals));
        }
        items.push(CfgItem::Clifford(cliff));
    }
    if !core_rows.is_empty() {
        items.push(CfgItem::Rotations(core_rows));
    }
    for &cliff in cliffords.iter().rev() {
        items.push(CfgItem::Clifford(cliff));
    }
    Some((SimplifiedGroup { n, items }, chosen))
}

/// The greedy choice: the generator/qubit-pair minimizing Eq. (6) on the
/// conjugated tableau. Asymmetric generators are tried in both
/// orientations (the reverse orientation is still inside the 2Q Clifford
/// group the six generators span).
///
/// This is the reference clone-and-rescore implementation the incremental
/// [`CostEvaluator::best_candidate`] is differentially tested against.
pub fn best_candidate_naive(bsf: &Bsf) -> Option<(Clifford2Q, f64)> {
    let support = bsf.support();
    let mut best: Option<(Clifford2Q, f64)> = None;
    for kind in CLIFFORD2Q_GENERATORS {
        let symmetric = kind.sigma0() == kind.sigma1();
        for (ia, &a) in support.iter().enumerate() {
            for &b in &support[ia + 1..] {
                let orientations: &[(usize, usize)] = if symmetric {
                    &[(a, b)]
                } else {
                    &[(a, b), (b, a)]
                };
                for &(x, y) in orientations {
                    let cand = Clifford2Q::new(kind, x, y);
                    let cost = cost_bsf(&bsf.conjugated(cand));
                    if best.is_none_or(|(_, c)| cost < c) {
                        best = Some((cand, cost));
                    }
                }
            }
        }
    }
    best
}

/// Guaranteed-progress fallback: strictly reduce the heaviest row's weight,
/// breaking ties by Eq. (6).
///
/// Reference implementation for [`CostEvaluator::progress_candidate`].
pub fn progress_candidate_naive(bsf: &Bsf) -> Clifford2Q {
    let heavy = bsf
        .rows()
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.weight())
        .map(|(i, _)| i)
        .expect("nonempty tableau");
    let row = bsf.rows()[heavy].clone();
    let old_w = row.weight();
    let support: Vec<usize> = (0..bsf.num_qubits())
        .filter(|&q| row.support_mask().bit(q))
        .collect();
    let mut best: Option<(Clifford2Q, usize, f64)> = None;
    for kind in CLIFFORD2Q_GENERATORS {
        for (ia, &a) in support.iter().enumerate() {
            for &b in &support[ia + 1..] {
                for &(x, y) in &[(a, b), (b, a)] {
                    let cand = Clifford2Q::new(kind, x, y);
                    let conj = bsf.conjugated(cand);
                    let w = conj.rows()[heavy].weight();
                    if w >= old_w {
                        continue;
                    }
                    let cost = cost_bsf(&conj);
                    if best.is_none_or(|(_, bw, bc)| (w, cost) < (bw, bc)) {
                        best = Some((cand, w, cost));
                    }
                }
            }
        }
    }
    best.expect("a weight-reducing clifford always exists for weight ≥ 2 rows")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_pauli::{Clifford2QKind, Pauli};

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.parse().unwrap(), 0.1 * (i + 1) as f64))
            .collect()
    }

    /// Every weight-2 restriction (τa, τb) is reducible to weight ≤ 1 by
    /// some generator in some orientation — the guarantee behind
    /// `progress_candidate`.
    #[test]
    fn every_weight2_pair_is_reducible() {
        for ta in Pauli::XYZ {
            for tb in Pauli::XYZ {
                let found = CLIFFORD2Q_GENERATORS.iter().any(|&kind| {
                    let fwd = kind.conjugate(ta, tb);
                    let rev = kind.conjugate(tb, ta);
                    fwd.0.is_identity()
                        || fwd.1.is_identity()
                        || rev.0.is_identity()
                        || rev.1.is_identity()
                });
                assert!(found, "{ta}{tb} not reducible");
            }
        }
    }

    #[test]
    fn fig1b_needs_one_clifford() {
        // The paper uses C(X,Y)[1,2]; the greedy search may find another
        // equally good single conjugation (e.g. C(Y,Y)[0,2]) — what matters
        // is that ONE Clifford2Q suffices and the core is ≤2Q.
        let s = simplify_terms(3, &terms(&["ZYY", "ZZY", "XYY", "XZY"]));
        assert_eq!(s.num_cliffords(), 1);
        assert!(matches!(s.items()[0], CfgItem::Clifford(_)));
        let _ = Clifford2QKind::Cxy; // referenced by the paper's variant
    }

    #[test]
    fn already_simple_group_has_no_cliffords() {
        let s = simplify_terms(3, &terms(&["XXI", "YYI", "ZZI"]));
        assert_eq!(s.num_cliffords(), 0);
        assert_eq!(s.items().len(), 1);
    }

    #[test]
    fn term_sequence_is_permutation_of_input() {
        for labels in [
            vec!["ZYY", "ZZY", "XYY", "XZY"],
            vec!["XXXX", "YYII", "ZZZZ", "XYZX"],
            vec!["XZZY", "YIZZ"],
            vec!["ZZZZZ"],
        ] {
            let input = terms(&labels);
            let s = simplify_terms(labels[0].len(), &input);
            let mut got = s.term_sequence();
            let mut want = input.clone();
            let key = |t: &(PauliString, f64)| {
                (
                    t.0.x_mask().clone(),
                    t.0.z_mask().clone(),
                    (t.1 * 1e12) as i64,
                )
            };
            got.sort_by_key(key);
            want.sort_by_key(key);
            assert_eq!(got, want, "{labels:?}");
        }
    }

    #[test]
    fn single_heavy_string_simplifies() {
        let s = simplify_terms(6, &terms(&["XYZXYZ"]));
        // Weight-6 string must reduce to ≤2Q core.
        let core_ok = s.items().iter().any(|i| match i {
            CfgItem::Rotations(rows) => rows.iter().all(|r| r.weight() <= 2),
            _ => true,
        });
        assert!(core_ok);
        assert!(s.num_cliffords() >= 2, "needs several conjugations");
    }

    #[test]
    fn all_rotations_are_weight_at_most_two() {
        let input = terms(&["XXYYZ", "YZXZI", "ZZZXX", "XYIYX"]);
        let s = simplify_terms(5, &input);
        for item in s.items() {
            if let CfgItem::Rotations(rows) = item {
                for r in rows {
                    assert!(r.weight() <= 2, "row weight {}", r.weight());
                }
            }
        }
    }

    #[test]
    fn cliffords_mirror_around_core() {
        let s = simplify_terms(4, &terms(&["XYZX", "ZZYY"]));
        let cliffs: Vec<&Clifford2Q> = s
            .items()
            .iter()
            .filter_map(|i| match i {
                CfgItem::Clifford(c) => Some(c),
                _ => None,
            })
            .collect();
        let k = cliffs.len() / 2;
        for i in 0..k {
            assert_eq!(cliffs[i], cliffs[2 * k - 1 - i], "mirrored pair {i}");
        }
    }

    #[test]
    fn full_breadth_deepening_matches_legacy() {
        for labels in [
            vec!["ZYY", "ZZY", "XYY", "XZY"],
            vec!["XXXX", "YYII", "ZZZZ", "XYZX"],
            vec!["XXYYZ", "YZXZI", "ZZZXX", "XYIYX"],
        ] {
            let input = terms(&labels);
            let n = labels[0].len();
            let legacy = simplify_terms(n, &input);
            let (deep, _) = simplify_terms_deepening(
                n,
                &input,
                &SimplifyOptions::default(),
                usize::MAX,
                &[],
                &mut || false,
            )
            .unwrap();
            assert_eq!(deep, legacy, "{labels:?}");
        }
    }

    #[test]
    fn capped_deepening_with_pv_is_still_unitary_faithful() {
        let input = terms(&["XXYYZ", "YZXZI", "ZZZXX", "XYIYX"]);
        let opts = SimplifyOptions::default();
        let mut pv: Vec<Clifford2Q> = Vec::new();
        for cap in [1usize, 2, 8, usize::MAX] {
            let (s, chosen) =
                simplify_terms_deepening(5, &input, &opts, cap, &pv, &mut || false).unwrap();
            let mut got = s.term_sequence();
            let mut want = input.clone();
            let key = |t: &(PauliString, f64)| {
                (
                    t.0.x_mask().clone(),
                    t.0.z_mask().clone(),
                    (t.1 * 1e12) as i64,
                )
            };
            got.sort_by_key(key);
            want.sort_by_key(key);
            assert_eq!(got, want, "cap {cap}");
            for item in s.items() {
                if let CfgItem::Rotations(rows) = item {
                    assert!(rows.iter().all(|r| r.weight() <= 2), "cap {cap}");
                }
            }
            pv = chosen;
        }
    }

    #[test]
    fn deepening_is_deterministic_across_scan_threads() {
        let input = terms(&["XXYYZ", "YZXZI", "ZZZXX", "XYIYX", "IXYZX"]);
        let pv: Vec<Clifford2Q> = Vec::new();
        for cap in [2usize, 6, usize::MAX] {
            let base = simplify_terms_deepening(
                5,
                &input,
                &SimplifyOptions {
                    scan_threads: 1,
                    naive_cost: false,
                },
                cap,
                &pv,
                &mut || false,
            );
            for scan_threads in [2usize, 8] {
                let other = simplify_terms_deepening(
                    5,
                    &input,
                    &SimplifyOptions {
                        scan_threads,
                        naive_cost: false,
                    },
                    cap,
                    &pv,
                    &mut || false,
                );
                assert_eq!(other, base, "cap {cap}, {scan_threads} scan threads");
            }
        }
    }

    #[test]
    fn interrupt_fires_inside_the_greedy_loop() {
        let input = terms(&["XXYYZ", "YZXZI", "ZZZXX", "XYIYX"]);
        // An immediately-firing interrupt abandons before the first epoch…
        let none =
            simplify_terms_interruptible(5, &input, &SimplifyOptions::default(), &mut || true);
        assert!(none.is_none());
        // …and a countdown interrupt is honored mid-loop, not just at entry.
        let mut polls = 0usize;
        let midway =
            simplify_terms_interruptible(5, &input, &SimplifyOptions::default(), &mut || {
                polls += 1;
                polls > 2
            });
        assert!(midway.is_none());
        assert_eq!(polls, 3);
        // A never-firing interrupt is bit-identical to the plain entry point.
        let full =
            simplify_terms_interruptible(5, &input, &SimplifyOptions::default(), &mut || false)
                .unwrap();
        assert_eq!(full, simplify_terms(5, &input));
    }

    #[test]
    fn qaoa_style_group_passes_through() {
        // Weight-2 ZZ terms are already synthesizable.
        let s = simplify_terms(2, &terms(&["ZZ"]));
        assert_eq!(s.num_cliffords(), 0);
        assert_eq!(s.term_sequence(), terms(&["ZZ"]));
    }
}
