//! The BSF-disparity cost function of Eq. (6).
//!
//! `cost_bsf` quantifies how far a tableau is from being directly
//! synthesizable (`w_tot ≤ 2`): it combines the total weight biased by the
//! squared number of nonlocal strings with pairwise support and same-block
//! overlaps. Greedy Clifford2Q selection in Algorithm 1 minimizes it.

use phoenix_pauli::{Bsf, QubitMask};

/// Evaluates Eq. (6) on a tableau:
///
/// ```text
/// cost = w_tot · n_nl² + Σ_{i<j} ‖rx_i ∨ rz_i ∨ rx_j ∨ rz_j‖
///      + ½ Σ_{i<j} (‖rx_i ∨ rx_j‖ + ‖rz_i ∨ rz_j‖)
/// ```
///
/// # Examples
///
/// ```
/// use phoenix_core::cost::cost_bsf;
/// use phoenix_pauli::{Bsf, PauliString};
///
/// let far = Bsf::from_terms(3, vec![("XYZ".parse::<PauliString>()?, 1.0)])?;
/// let near = Bsf::from_terms(3, vec![("XYI".parse::<PauliString>()?, 1.0)])?;
/// assert!(cost_bsf(&far) > cost_bsf(&near));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn cost_bsf(bsf: &Bsf) -> f64 {
    let rows = bsf.rows();
    let w_tot = bsf.total_weight() as f64;
    let n_nl = bsf.num_nonlocal() as f64;
    let mut pair_support = 0usize;
    let mut pair_blocks = 0usize;
    for (i, ri) in rows.iter().enumerate() {
        for rj in &rows[i + 1..] {
            pair_support +=
                QubitMask::or4_count(ri.x_mask(), ri.z_mask(), rj.x_mask(), rj.z_mask()) as usize;
            pair_blocks +=
                (ri.x_mask().or_count(rj.x_mask()) + ri.z_mask().or_count(rj.z_mask())) as usize;
        }
    }
    w_tot * n_nl * n_nl + pair_support as f64 + 0.5 * pair_blocks as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_pauli::PauliString;

    fn bsf(labels: &[&str]) -> Bsf {
        let n = labels[0].len();
        Bsf::from_terms(
            n,
            labels
                .iter()
                .map(|l| (l.parse::<PauliString>().unwrap(), 1.0)),
        )
        .unwrap()
    }

    #[test]
    fn empty_bsf_costs_zero() {
        assert_eq!(cost_bsf(&Bsf::new(4)), 0.0);
    }

    #[test]
    fn single_row_cost_components() {
        // One weight-3 row: w_tot=3, n_nl=1, no pairs → cost = 3.
        assert_eq!(cost_bsf(&bsf(&["XYZ"])), 3.0);
    }

    #[test]
    fn pairwise_terms_counted() {
        // Rows XII and IZI: w_tot=2, n_nl=0 (both local) → 0·… ;
        // pair support ‖{0,1}‖ = 2; blocks ‖x∪x‖ + ‖z∪z‖ = 1 + 1 = 2.
        let c = cost_bsf(&bsf(&["XII", "IZI"]));
        assert_eq!(c, 2.0 + 0.5 * 2.0);
    }

    #[test]
    fn simplification_reduces_cost_on_fig1b() {
        use phoenix_pauli::{Clifford2Q, Clifford2QKind};
        let before = bsf(&["ZYY", "ZZY", "XYY", "XZY"]);
        let after = before.conjugated(Clifford2Q::new(Clifford2QKind::Cxy, 1, 2));
        assert!(cost_bsf(&after) < cost_bsf(&before));
    }

    #[test]
    fn nonlocal_count_dominates() {
        // More nonlocal rows on the same support should cost more.
        let one = bsf(&["XXII"]);
        let two = bsf(&["XXII", "YYII"]);
        assert!(cost_bsf(&two) > cost_bsf(&one));
    }
}
