//! Allocation-free incremental evaluation of the Eq. (6) cost for the
//! Algorithm 1 candidate search.
//!
//! The naive search scores each `Clifford2Q` candidate by conjugating a full
//! copy of the tableau (`bsf.conjugated(cand)`) and re-running the O(R²)
//! pairwise sweep of [`cost_bsf`] — a heap allocation plus quadratic work
//! for every one of the ~`6·s²·2` candidates of an epoch. This module
//! exploits two structural facts to replace that with O(R) work per qubit
//! pair and O(1) work per candidate:
//!
//! 1. **Locality of conjugation.** A `Clifford2Q` on qubits `(a, b)` only
//!    rewrites bits `a` and `b` of each row ([`Bsf::apply_clifford2q`]), so
//!    every component of Eq. (6) splits into a part over the *other* bits —
//!    invariant under all 12 candidates of the pair — plus a part derivable
//!    from each row's 4-bit `(x_a, z_a, x_b, z_b)` nibble.
//!
//! 2. **Column decomposition of the pairwise sums.** For any bit `q` with
//!    column count `c_q` (rows having the bit set),
//!    `Σ_{i<j} [q ∈ m_i ∨ m_j] = C(R,2) − C(R−c_q,2)`, so the pairwise
//!    union-popcount sums of Eq. (6) are per-bit functions of column
//!    counts: no row pair is ever enumerated.
//!
//! Concretely, [`CostEvaluator::prepare`] makes one O(R·w) pass computing
//! per-qubit column counts and per-row weights; each qubit pair then gets
//! one O(R) pass bucketing rows into the 16 nibble classes (× 3 capped
//! rest-weight classes for the nonlocal count), after which every generator
//! and orientation is scored from the class counts through the cached
//! [`Clifford2QKind::nibble_map`] in O(16). All scratch lives on the stack
//! or in buffers reused across epochs — the scan allocates nothing.
//!
//! **Exactness:** every quantity is assembled as the same integers the
//! naive path counts, then combined with the identical float expression, so
//! costs are bit-identical and — with the tie-breaking described on
//! [`CostEvaluator::best_candidate`] — the argmin is the identical
//! candidate. Debug builds cross-check the winner against the naive path.

#[cfg(debug_assertions)]
use crate::cost::cost_bsf;
use phoenix_pauli::{nibble_weight, Bsf, Clifford2Q, CLIFFORD2Q_GENERATORS};

/// Rest-weight classes per nibble: 0, 1, or ≥2 qubits of support outside
/// the candidate pair (capped — only "does the row stay nonlocal" matters).
const REST_CLASSES: usize = 3;

/// Per-pair scan context: class counts plus the pair-invariant partial sums
/// of Eq. (6). Lives on the stack.
struct PairCtx {
    /// Row counts per `(nibble, capped rest weight)` class.
    cls: [u32; 16 * REST_CLASSES],
    /// Row counts per nibble (the `cls` row-sums, kept for the O(16) scan).
    nib_cnt: [u32; 16],
    /// `Σ_{i<j} ‖(s_i ∨ s_j) \ {a,b}‖` — support-union pairs off the pair.
    rest_s: u64,
    /// Same for the X blocks.
    rest_x: u64,
    /// Same for the Z blocks.
    rest_z: u64,
    /// Total weight contributed by qubits outside `{a, b}`.
    w_rest: u64,
}

/// Incremental evaluator for the Eq. (6) cost under 2Q Clifford candidates.
///
/// Usage: call [`prepare`](CostEvaluator::prepare) after every tableau
/// mutation, then any number of [`current_cost`](CostEvaluator::current_cost)
/// / [`candidate_cost`](CostEvaluator::candidate_cost) /
/// [`best_candidate`](CostEvaluator::best_candidate) /
/// [`progress_candidate`](CostEvaluator::progress_candidate) queries.
/// Buffers are reused across `prepare` calls, so one evaluator per
/// simplification loop allocates only on its first epoch.
///
/// # Examples
///
/// ```
/// use phoenix_core::cost::cost_bsf;
/// use phoenix_core::CostEvaluator;
/// use phoenix_pauli::{Bsf, Clifford2Q, Clifford2QKind, PauliString};
///
/// let bsf = Bsf::from_terms(3, vec![("ZYY".parse::<PauliString>()?, 1.0)])?;
/// let mut eval = CostEvaluator::new();
/// eval.prepare(&bsf);
/// let cand = Clifford2Q::new(Clifford2QKind::Cxy, 1, 2);
/// assert_eq!(eval.candidate_cost(&bsf, cand), cost_bsf(&bsf.conjugated(cand)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostEvaluator {
    /// Number of rows of the prepared tableau.
    rows: u64,
    /// Per-qubit X-block column counts.
    col_x: Vec<u32>,
    /// Per-qubit Z-block column counts.
    col_z: Vec<u32>,
    /// Per-qubit support (X∨Z) column counts.
    col_s: Vec<u32>,
    /// Per-row weights.
    row_weight: Vec<u32>,
    /// Qubits with any support, ascending (the candidate pair universe).
    support: Vec<usize>,
    /// `Σ_q (C(R,2) − C(R−c_q^s,2))` — the full pairwise support sum.
    sum_s: u64,
    /// Same for the X blocks.
    sum_x: u64,
    /// Same for the Z blocks.
    sum_z: u64,
    /// The paper's `w_tot` (Eq. (4)).
    w_tot: u64,
    /// The paper's `n_n.l.` — rows of weight > 1.
    n_nl: u64,
}

/// `C(k, 2)` in u64.
#[inline]
fn pairs2(k: u64) -> u64 {
    k * k.saturating_sub(1) / 2
}

impl CostEvaluator {
    /// An empty evaluator; call [`prepare`](CostEvaluator::prepare) before
    /// querying.
    pub fn new() -> Self {
        CostEvaluator::default()
    }

    /// Rebuilds column counts, row weights, and the Eq. (6) partial sums
    /// from `bsf` in one O(R·w) pass. Must be called after every tableau
    /// mutation and before any query.
    pub fn prepare(&mut self, bsf: &Bsf) {
        let n = bsf.num_qubits();
        self.rows = bsf.rows().len() as u64;
        for col in [&mut self.col_x, &mut self.col_z, &mut self.col_s] {
            col.clear();
            col.resize(n, 0);
        }
        self.row_weight.clear();
        self.n_nl = 0;
        for row in bsf.rows() {
            let w = row.weight() as u32;
            self.row_weight.push(w);
            if w > 1 {
                self.n_nl += 1;
            }
            for q in row.x_mask().iter_ones() {
                self.col_x[q] += 1;
            }
            for q in row.z_mask().iter_ones() {
                self.col_z[q] += 1;
            }
            for q in row.support_mask().iter_ones() {
                self.col_s[q] += 1;
            }
        }
        self.support.clear();
        self.sum_s = 0;
        self.sum_x = 0;
        self.sum_z = 0;
        for q in 0..n {
            if self.col_s[q] > 0 {
                self.support.push(q);
            }
            self.sum_s += self.union_pairs(self.col_s[q]);
            self.sum_x += self.union_pairs(self.col_x[q]);
            self.sum_z += self.union_pairs(self.col_z[q]);
        }
        self.w_tot = self.support.len() as u64;
    }

    /// Pairs of rows whose union has a bit with column count `c`:
    /// `C(R,2) − C(R−c,2)`.
    #[inline]
    fn union_pairs(&self, c: u32) -> u64 {
        pairs2(self.rows) - pairs2(self.rows - c as u64)
    }

    /// The Eq. (6) cost of the prepared tableau, bit-identical to
    /// [`cost_bsf`] on it.
    pub fn current_cost(&self) -> f64 {
        let n_nl = self.n_nl as f64;
        self.w_tot as f64 * n_nl * n_nl + self.sum_s as f64 + 0.5 * (self.sum_x + self.sum_z) as f64
    }

    /// Builds the per-pair scan context for ordered qubits `(a, b)`: one
    /// O(R) pass over the rows plus O(1) column-count arithmetic.
    fn pair_ctx(&self, bsf: &Bsf, a: usize, b: usize) -> PairCtx {
        debug_assert_eq!(self.rows as usize, bsf.rows().len(), "prepare() is stale");
        let mut cls = [0u32; 16 * REST_CLASSES];
        let mut nib_cnt = [0u32; 16];
        for (row, &w) in bsf.rows().iter().zip(&self.row_weight) {
            let nib = row.nibble(a, b);
            let rest = (w as usize - nibble_weight(nib)).min(REST_CLASSES - 1);
            cls[nib * REST_CLASSES + rest] += 1;
            nib_cnt[nib] += 1;
        }
        PairCtx {
            cls,
            nib_cnt,
            rest_s: self.sum_s - self.union_pairs(self.col_s[a]) - self.union_pairs(self.col_s[b]),
            rest_x: self.sum_x - self.union_pairs(self.col_x[a]) - self.union_pairs(self.col_x[b]),
            rest_z: self.sum_z - self.union_pairs(self.col_z[a]) - self.union_pairs(self.col_z[b]),
            w_rest: self.w_tot - (self.col_s[a] > 0) as u64 - (self.col_s[b] > 0) as u64,
        }
    }

    /// Scores one candidate (a generator's oriented nibble map) against a
    /// pair context in O(16), assembling the exact integers of [`cost_bsf`].
    fn score(&self, ctx: &PairCtx, map: &[u8; 16]) -> f64 {
        let (mut cax, mut caz, mut cbx, mut cbz, mut cas, mut cbs) =
            (0u32, 0u32, 0u32, 0u32, 0u32, 0u32);
        let mut n_nl = 0u64;
        for (nib, &mapped) in map.iter().enumerate() {
            let cnt = ctx.nib_cnt[nib];
            if cnt == 0 {
                continue;
            }
            let out = mapped as usize;
            cax += cnt * (out & 1) as u32;
            caz += cnt * ((out >> 1) & 1) as u32;
            cbx += cnt * ((out >> 2) & 1) as u32;
            cbz += cnt * ((out >> 3) & 1) as u32;
            cas += cnt * (out & 0b0011 != 0) as u32;
            cbs += cnt * (out & 0b1100 != 0) as u32;
            // A row stays nonlocal iff rest weight + output nibble weight ≥ 2.
            let base = nib * REST_CLASSES;
            n_nl += match nibble_weight(out) {
                0 => ctx.cls[base + 2] as u64,
                1 => (ctx.cls[base + 1] + ctx.cls[base + 2]) as u64,
                _ => cnt as u64,
            };
        }
        let pair_support = ctx.rest_s + self.union_pairs(cas) + self.union_pairs(cbs);
        let pair_blocks = ctx.rest_x
            + ctx.rest_z
            + self.union_pairs(cax)
            + self.union_pairs(cbx)
            + self.union_pairs(caz)
            + self.union_pairs(cbz);
        let w_tot = ctx.w_rest + (cas > 0) as u64 + (cbs > 0) as u64;
        let n_nl = n_nl as f64;
        w_tot as f64 * n_nl * n_nl + pair_support as f64 + 0.5 * pair_blocks as f64
    }

    /// The Eq. (6) cost of `bsf.conjugated(cand)`, bit-identical to
    /// `cost_bsf(&bsf.conjugated(cand))` — without materializing the
    /// conjugated tableau.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if [`prepare`](CostEvaluator::prepare) was
    /// not called for this exact tableau.
    pub fn candidate_cost(&self, bsf: &Bsf, cand: Clifford2Q) -> f64 {
        let (a, b) = (cand.a.min(cand.b), cand.a.max(cand.b));
        let ctx = self.pair_ctx(bsf, a, b);
        self.score(&ctx, cand.kind.nibble_map(cand.a > cand.b))
    }

    /// The greedy choice of Algorithm 1: the generator/qubit-pair/orientation
    /// minimizing Eq. (6) on the conjugated tableau.
    ///
    /// Ties are broken exactly as the naive kind-major scan does — by the
    /// lexicographic visiting order (generator index, support-pair rank,
    /// orientation) — so the returned candidate is *identical* to the naive
    /// path's, not merely equally good.
    pub fn best_candidate(&self, bsf: &Bsf) -> Option<(Clifford2Q, f64)> {
        self.best_candidate_scan(bsf, 1)
    }

    /// [`best_candidate`](CostEvaluator::best_candidate) with the pair scan
    /// fanned out over `threads` scoped OS threads (`0` = one per core,
    /// `1` = sequential). Each worker reduces its pair range to a local
    /// minimum under the same total order, so the result is identical for
    /// every thread count.
    pub fn best_candidate_scan(&self, bsf: &Bsf, threads: usize) -> Option<(Clifford2Q, f64)> {
        self.best_candidate_scan_capped(bsf, threads, usize::MAX)
    }

    /// [`best_candidate_scan`](CostEvaluator::best_candidate_scan) restricted
    /// to the first `max_pairs` support-pair ranks — the breadth knob of the
    /// anytime deepening schedule. `usize::MAX` scans every pair and is
    /// bit-identical to the uncapped scan; smaller caps visit a prefix of the
    /// same canonical `(generator, pair rank, orientation)` order, so the
    /// result is still deterministic for every thread count.
    pub fn best_candidate_scan_capped(
        &self,
        bsf: &Bsf,
        threads: usize,
        max_pairs: usize,
    ) -> Option<(Clifford2Q, f64)> {
        let threads = match threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        };
        let num_pairs = (pairs2(self.support.len() as u64) as usize).min(max_pairs);
        let best = if threads <= 1 || num_pairs < 2 * threads {
            self.scan_pair_range(bsf, 0, num_pairs)
        } else {
            let threads = threads.min(num_pairs);
            let chunk = num_pairs.div_ceil(threads);
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..threads)
                    .map(|t| {
                        let lo = t * chunk;
                        let hi = ((t + 1) * chunk).min(num_pairs);
                        scope.spawn(move || self.scan_pair_range(bsf, lo, hi))
                    })
                    .collect();
                workers
                    .into_iter()
                    .filter_map(|w| w.join().expect("scan worker panicked"))
                    .min_by(|x, y| {
                        (x.0, x.1)
                            .partial_cmp(&(y.0, y.1))
                            .expect("Eq. (6) costs are never NaN")
                    })
            })
        };
        let result = best.map(|(cost, _, cand)| (cand, cost));
        #[cfg(debug_assertions)]
        if let Some((cand, cost)) = result {
            debug_assert_eq!(
                cost.to_bits(),
                cost_bsf(&bsf.conjugated(cand)).to_bits(),
                "incremental cost diverged from the naive path for {cand}"
            );
        }
        result
    }

    /// Scans support-pair ranks `lo..hi` over all generators/orientations,
    /// returning the local minimum keyed by
    /// `(cost, (generator index, pair rank, orientation))`.
    #[allow(clippy::type_complexity)]
    fn scan_pair_range(
        &self,
        bsf: &Bsf,
        lo: usize,
        hi: usize,
    ) -> Option<(f64, (usize, usize, usize), Clifford2Q)> {
        let mut best: Option<(f64, (usize, usize, usize), Clifford2Q)> = None;
        let mut rank = 0usize;
        for (ia, &a) in self.support.iter().enumerate() {
            for &b in &self.support[ia + 1..] {
                let pair_rank = rank;
                rank += 1;
                if pair_rank < lo {
                    continue;
                }
                if pair_rank >= hi {
                    return best;
                }
                let ctx = self.pair_ctx(bsf, a, b);
                for (k, &kind) in CLIFFORD2Q_GENERATORS.iter().enumerate() {
                    let orientations = if kind.sigma0() == kind.sigma1() { 1 } else { 2 };
                    for o in 0..orientations {
                        let cost = self.score(&ctx, kind.nibble_map(o == 1));
                        let key = (k, pair_rank, o);
                        if best
                            .as_ref()
                            .is_none_or(|&(bc, bk, _)| cost < bc || (cost == bc && key < bk))
                        {
                            let (x, y) = if o == 0 { (a, b) } else { (b, a) };
                            best = Some((cost, key, Clifford2Q::new(kind, x, y)));
                        }
                    }
                }
            }
        }
        best
    }

    /// The guaranteed-progress fallback: strictly reduce the heaviest row's
    /// weight, breaking ties by Eq. (6) and then by the naive visiting
    /// order. Identical to the naive path's choice.
    ///
    /// # Panics
    ///
    /// Panics if the tableau is empty or no weight-reducing Clifford exists
    /// (impossible for rows of weight ≥ 2).
    pub fn progress_candidate(&self, bsf: &Bsf) -> Clifford2Q {
        let heavy = bsf
            .rows()
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| r.weight())
            .map(|(i, _)| i)
            .expect("nonempty tableau");
        let row = &bsf.rows()[heavy];
        let old_w = row.weight();
        type Entry = ((usize, f64), (usize, usize, usize), Clifford2Q);
        let mut best: Option<Entry> = None;
        let mut pair_rank = 0usize;
        let support = row.support_mask().to_indices();
        for (ai, &a) in support.iter().enumerate() {
            for &b in &support[ai + 1..] {
                let ctx = self.pair_ctx(bsf, a, b);
                let nib = row.nibble(a, b);
                let rest_w = old_w - nibble_weight(nib);
                for (k, &kind) in CLIFFORD2Q_GENERATORS.iter().enumerate() {
                    // The naive fallback tries both orientations even for
                    // symmetric generators; mirror that exactly.
                    for o in 0..2 {
                        let map = kind.nibble_map(o == 1);
                        let w = rest_w + nibble_weight(map[nib] as usize);
                        if w >= old_w {
                            continue;
                        }
                        let cost = self.score(&ctx, map);
                        let val = (w, cost);
                        let key = (k, pair_rank, o);
                        if best
                            .as_ref()
                            .is_none_or(|&(bv, bk, _)| val < bv || (val == bv && key < bk))
                        {
                            let (x, y) = if o == 0 { (a, b) } else { (b, a) };
                            best = Some((val, key, Clifford2Q::new(kind, x, y)));
                        }
                    }
                }
                pair_rank += 1;
            }
        }
        let cand = best
            .expect("a weight-reducing clifford always exists for weight ≥ 2 rows")
            .2;
        #[cfg(debug_assertions)]
        debug_assert!(
            bsf.conjugated(cand).rows()[heavy].weight() < old_w,
            "progress candidate {cand} failed to reduce the heavy row"
        );
        cand
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::cost_bsf;
    use phoenix_pauli::PauliString;

    fn bsf(labels: &[&str]) -> Bsf {
        let n = labels[0].len();
        Bsf::from_terms(
            n,
            labels
                .iter()
                .enumerate()
                .map(|(i, l)| (l.parse::<PauliString>().unwrap(), 0.1 * (i + 1) as f64)),
        )
        .unwrap()
    }

    fn all_candidates(n: usize) -> Vec<Clifford2Q> {
        let mut out = Vec::new();
        for kind in CLIFFORD2Q_GENERATORS {
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        out.push(Clifford2Q::new(kind, a, b));
                    }
                }
            }
        }
        out
    }

    #[test]
    fn candidate_cost_matches_naive_on_fig1b() {
        let bsf = bsf(&["ZYY", "ZZY", "XYY", "XZY"]);
        let mut eval = CostEvaluator::new();
        eval.prepare(&bsf);
        for cand in all_candidates(3) {
            assert_eq!(
                eval.candidate_cost(&bsf, cand).to_bits(),
                cost_bsf(&bsf.conjugated(cand)).to_bits(),
                "{cand}"
            );
        }
    }

    #[test]
    fn current_cost_matches_naive() {
        for labels in [
            vec!["ZYY", "ZZY", "XYY", "XZY"],
            vec!["XXXX", "YYII", "ZZZZ", "XYZX"],
            vec!["XZZY", "YIZZ"],
            vec!["ZIIII"],
        ] {
            let b = bsf(&labels);
            let mut eval = CostEvaluator::new();
            eval.prepare(&b);
            assert_eq!(eval.current_cost().to_bits(), cost_bsf(&b).to_bits());
        }
    }

    #[test]
    fn empty_tableau_costs_zero_and_has_no_candidates() {
        let b = Bsf::new(4);
        let mut eval = CostEvaluator::new();
        eval.prepare(&b);
        assert_eq!(eval.current_cost(), 0.0);
        assert!(eval.best_candidate(&b).is_none());
    }

    #[test]
    fn parallel_scan_matches_sequential() {
        let b = bsf(&["XXYYZ", "YZXZI", "ZZZXX", "XYIYX", "IXYZX"]);
        let mut eval = CostEvaluator::new();
        eval.prepare(&b);
        let seq = eval.best_candidate(&b);
        for threads in [2, 3, 8] {
            assert_eq!(
                eval.best_candidate_scan(&b, threads),
                seq,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn capped_scan_is_a_prefix_of_the_full_scan() {
        let b = bsf(&["XXYYZ", "YZXZI", "ZZZXX", "XYIYX", "IXYZX"]);
        let mut eval = CostEvaluator::new();
        eval.prepare(&b);
        // The uncapped cap is bit-identical to the legacy full scan.
        assert_eq!(
            eval.best_candidate_scan_capped(&b, 1, usize::MAX),
            eval.best_candidate(&b)
        );
        // A capped scan equals the sequential minimum over the pair-rank
        // prefix, for every thread count.
        for cap in [1usize, 2, 4, 7] {
            let seq = eval.best_candidate_scan_capped(&b, 1, cap);
            assert!(seq.is_some(), "cap {cap}");
            for threads in [2, 3, 8] {
                assert_eq!(
                    eval.best_candidate_scan_capped(&b, threads, cap),
                    seq,
                    "cap {cap}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn prepare_is_reusable_across_mutations() {
        let mut b = bsf(&["ZYY", "ZZY", "XYY", "XZY"]);
        let mut eval = CostEvaluator::new();
        eval.prepare(&b);
        let (cand, _) = eval.best_candidate(&b).unwrap();
        b.apply_clifford2q(cand);
        eval.prepare(&b);
        assert_eq!(eval.current_cost().to_bits(), cost_bsf(&b).to_bits());
    }
}
