//! A common interface over the compilers under comparison.
//!
//! The evaluation harness compares PHOENIX against several re-implemented
//! baselines (TKET-, Paulihedral-, Tetris-, 2QAN-style). [`CompilerStrategy`]
//! abstracts "a way of turning a Pauli-exponentiation program into a
//! circuit" so harness code iterates `&dyn CompilerStrategy` trait objects
//! instead of matching on per-compiler enums. The provided methods attach
//! the *shared* peephole ("O3") and hardware back ends, so a strategy only
//! has to define its logical compilation; PHOENIX overrides the hardware
//! path to use its routing-aware ordering.

use phoenix_circuit::{peephole, Circuit};
use phoenix_pauli::PauliString;
use phoenix_router::RouterOptions;
use phoenix_topology::CouplingGraph;

use crate::pipeline::{run_hardware_backend, HardwareProgram, PhoenixCompiler};

/// A compilation strategy: logical synthesis plus shared back ends.
pub trait CompilerStrategy {
    /// Display name matching the paper's terminology.
    fn name(&self) -> &str;

    /// Logical compilation to `{1Q, CNOT}` (no final peephole — harnesses
    /// decide whether to attach the "O3" pass, as the paper's Table II
    /// ablates).
    fn compile_logical(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit;

    /// Logical compilation with the shared peephole ("O3") pass attached.
    fn compile_optimized(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        peephole::optimize(&self.compile_logical(n, terms))
    }

    /// Hardware-aware compilation through the shared back end (peephole,
    /// layout search, SABRE routing, SWAP lowering, final peephole).
    ///
    /// # Panics
    ///
    /// Panics if the device has fewer qubits than the program.
    fn compile_hardware(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
        device: &CouplingGraph,
    ) -> HardwareProgram {
        run_hardware_backend(
            &self.compile_logical(n, terms),
            device,
            &RouterOptions::default(),
            3,
        )
    }
}

impl CompilerStrategy for PhoenixCompiler {
    fn name(&self) -> &str {
        "PHOENIX"
    }

    fn compile_logical(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        self.compile(n, terms).circuit
    }

    fn compile_optimized(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        self.compile_to_cnot(n, terms)
    }

    /// PHOENIX's hardware path re-runs ordering routing-aware (Eq. (7))
    /// before the shared back end, and honours the configured router.
    fn compile_hardware(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
        device: &CouplingGraph,
    ) -> HardwareProgram {
        self.compile_hardware_aware(n, terms, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phoenix_strategy_matches_direct_calls() {
        let t: Vec<(PauliString, f64)> = [("ZYY", 0.1), ("ZZY", 0.2), ("XYY", 0.3)]
            .iter()
            .map(|(s, c)| (s.parse().unwrap(), *c))
            .collect();
        let compiler = PhoenixCompiler::default();
        let strategy: &dyn CompilerStrategy = &compiler;
        assert_eq!(strategy.name(), "PHOENIX");
        assert_eq!(
            strategy.compile_optimized(3, &t),
            compiler.compile_to_cnot(3, &t)
        );
        let dev = CouplingGraph::line(3);
        assert_eq!(
            strategy.compile_hardware(3, &t, &dev),
            compiler.compile_hardware_aware(3, &t, &dev)
        );
    }
}
