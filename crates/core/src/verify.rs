//! Pass-boundary translation validation.
//!
//! [`BoundaryVerifier`] is a [`PassObserver`] that re-validates the
//! [`CompileContext`] after every executed pass, so a miscompilation is
//! pinned to the exact pass that introduced it instead of surfacing as an
//! end-to-end mismatch. It is attached by setting
//! [`PhoenixOptions::verify`](crate::PhoenixOptions) (the `--verify` flag of
//! the experiment binaries) and records one `verified` [`TraceEvent`] per
//! accepted boundary.
//!
//! What is checked where:
//!
//! | boundary | invariant |
//! |---|---|
//! | `group` | groups partition the input terms |
//! | `simplify-synth` / `naive-synth` | each subcircuit ≡ exact Trotter product of its group's emitted terms (dense, `n ≤ max_qubits`) |
//! | `tetris-order` / `program-order` | the order is a permutation of the groups |
//! | `concat` | working circuit ≡ exact Trotter product of `term_order`; `term_order` is a permutation of the input |
//! | circuit rewrites (`peephole`, `su4-rebase`, `kak-resynthesis`, pre-routing `cnot-lower`) | unitary unchanged up to global phase |
//! | `layout-route`, post-routing `cnot-lower` | routed circuit ≡ qubit-permutation ∘ embedded logical circuit, with the permutation matching SABRE's initial→final layouts |
//!
//! Dense checks are skipped (not failed) above `max_qubits`; the structural
//! checks run at any size.
//!
//! [`TraceEvent`]: crate::pass::TraceEvent
//! [`PassObserver`]: crate::pass::PassObserver

use std::sync::Mutex;

use phoenix_mathkit::CMatrix;
use phoenix_pauli::{PauliString, QubitMask};
use phoenix_sim::{circuit_unitary, infidelity, trotter_unitary};

use crate::pass::{CompileContext, PassError, PassObserver};

/// Default dense-simulation ceiling: the paper's "standard PC" regime.
pub const DEFAULT_MAX_QUBITS: usize = 10;

/// Default infidelity tolerance for exact (up-to-global-phase) equivalence.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// A [`PassObserver`] that validates semantic invariants at every pass
/// boundary (see the module docs for the per-pass table).
#[derive(Debug)]
pub struct BoundaryVerifier {
    /// Dense unitary checks are skipped for programs or devices wider than
    /// this (structural checks still run).
    pub max_qubits: usize,
    /// Infidelity tolerance (`1 − |Tr(U†V)|/N`) for equivalence checks.
    pub tolerance: f64,
    /// Unitary snapshot carried across circuit-level rewrites.
    prev: Mutex<Option<CMatrix>>,
}

impl Default for BoundaryVerifier {
    fn default() -> Self {
        BoundaryVerifier {
            max_qubits: DEFAULT_MAX_QUBITS,
            tolerance: DEFAULT_TOLERANCE,
            prev: Mutex::new(None),
        }
    }
}

/// Canonical multiset key of a term list (coefficients quantized well below
/// any meaningful tolerance). Identity terms are excluded — they are pure
/// global phase and the grouping stage legitimately drops them.
fn term_multiset(terms: &[(PauliString, f64)]) -> Vec<(QubitMask, QubitMask, i64)> {
    let mut v: Vec<_> = terms
        .iter()
        .filter(|(p, _)| !p.is_identity())
        .map(|(p, c)| {
            (
                p.x_mask().clone(),
                p.z_mask().clone(),
                (c * 1e12).round() as i64,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

/// Decodes a basis-state permutation matrix `d` (up to global phase) into
/// the qubit permutation `π` that induces it, or explains why it is not
/// one. This is the workhorse of permutation-aware routed-circuit
/// equivalence: for a correctly routed circuit `R` with embedded logical
/// circuit `L`, `R·L†` must decode, and the decoded `π` must map the
/// initial layout to the final layout.
pub fn decode_qubit_permutation(d: &CMatrix, n: usize, tol: f64) -> Result<Vec<usize>, String> {
    let dim = 1usize << n;
    // Column j must hold exactly one entry of unit magnitude, all columns
    // sharing one global phase.
    let mut sigma = vec![0usize; dim];
    let mut phase = None;
    for j in 0..dim {
        let mut hit = None;
        for i in 0..dim {
            let mag = d[(i, j)].norm_sqr().sqrt();
            if mag > 0.5 {
                if hit.is_some() {
                    return Err(format!("column {j} has multiple large entries"));
                }
                if (mag - 1.0).abs() > tol {
                    return Err(format!("column {j} entry has magnitude {mag}"));
                }
                hit = Some(i);
            } else if mag > tol {
                return Err(format!("column {j} has residual entry of magnitude {mag}"));
            }
        }
        let i = hit.ok_or_else(|| format!("column {j} is numerically zero"))?;
        sigma[j] = i;
        let p = d[(i, j)];
        match phase {
            None => phase = Some(p),
            Some(q) => {
                if (p - q).norm_sqr().sqrt() > tol {
                    return Err(format!("column {j} carries a relative phase"));
                }
            }
        }
    }
    // σ must be induced by a qubit permutation: σ(b) = ⊕ over set bits of
    // σ(1<<q), with σ(0) = 0 and each σ(1<<q) a distinct power of two.
    if sigma[0] != 0 {
        return Err("permutation does not fix |0…0⟩".to_string());
    }
    let mut pi = vec![0usize; n];
    for (q, slot) in pi.iter_mut().enumerate() {
        let img = sigma[1 << q];
        if !img.is_power_of_two() {
            return Err(format!("basis image of qubit {q} is not a single bit"));
        }
        *slot = img.trailing_zeros() as usize;
    }
    for (b, &img) in sigma.iter().enumerate() {
        let mut want = 0usize;
        for (q, &pq) in pi.iter().enumerate() {
            if b >> q & 1 == 1 {
                want |= 1 << pq;
            }
        }
        if img != want {
            return Err(format!("index map is not bit-wise at basis state {b}"));
        }
    }
    Ok(pi)
}

impl BoundaryVerifier {
    /// A verifier with a custom dense-check ceiling.
    pub fn with_max_qubits(max_qubits: usize) -> Self {
        BoundaryVerifier {
            max_qubits,
            ..BoundaryVerifier::default()
        }
    }

    fn fail(&self, pass: &str, msg: impl Into<String>) -> PassError {
        PassError::new(
            pass,
            format!("translation validation failed: {}", msg.into()),
        )
    }

    fn check_groups(&self, pass: &str, ctx: &CompileContext) -> Result<(), PassError> {
        let grouped: Vec<(PauliString, f64)> = ctx
            .groups
            .iter()
            .flat_map(|g| g.terms().iter().cloned())
            .collect();
        if term_multiset(&grouped) != term_multiset(&ctx.terms) {
            return Err(self.fail(pass, "groups do not partition the input terms"));
        }
        Ok(())
    }

    fn check_stage2(&self, pass: &str, ctx: &CompileContext) -> Result<(), PassError> {
        if ctx.subcircuits.len() != ctx.groups.len() {
            return Err(self.fail(pass, "subcircuit count differs from group count"));
        }
        for (i, (group, terms)) in ctx.groups.iter().zip(&ctx.group_terms).enumerate() {
            if term_multiset(terms) != term_multiset(group.terms()) {
                return Err(self.fail(
                    pass,
                    format!("group {i} emitted terms that are not a permutation of its input"),
                ));
            }
        }
        if ctx.num_qubits > self.max_qubits {
            return Ok(());
        }
        for (i, (sub, terms)) in ctx.subcircuits.iter().zip(&ctx.group_terms).enumerate() {
            let infid = infidelity(
                &circuit_unitary(sub),
                &trotter_unitary(ctx.num_qubits, terms),
            );
            if infid > self.tolerance {
                return Err(self.fail(
                    pass,
                    format!("group {i} subcircuit deviates from its Trotter product (infidelity {infid:.3e})"),
                ));
            }
        }
        Ok(())
    }

    fn check_order(&self, pass: &str, ctx: &CompileContext) -> Result<(), PassError> {
        let mut seen = vec![false; ctx.subcircuits.len()];
        for &i in &ctx.order {
            if i >= seen.len() || seen[i] {
                return Err(self.fail(pass, "order is not a permutation of the groups"));
            }
            seen[i] = true;
        }
        if !seen.iter().all(|&s| s) {
            return Err(self.fail(pass, "order drops at least one group"));
        }
        Ok(())
    }

    fn check_concat(&self, pass: &str, ctx: &CompileContext) -> Result<(), PassError> {
        if term_multiset(&ctx.term_order) != term_multiset(&ctx.terms) {
            return Err(self.fail(pass, "term_order is not a permutation of the input terms"));
        }
        if ctx.num_qubits > self.max_qubits {
            return Ok(());
        }
        let u = circuit_unitary(&ctx.circuit);
        let infid = infidelity(&u, &trotter_unitary(ctx.num_qubits, &ctx.term_order));
        if infid > self.tolerance {
            return Err(self.fail(
                pass,
                format!("assembled circuit deviates from the Trotter product of term_order (infidelity {infid:.3e})"),
            ));
        }
        *self.prev.lock().expect("verifier mutex") = Some(u);
        Ok(())
    }

    /// A logical (pre-routing) circuit rewrite: the unitary must be
    /// preserved up to global phase against the running snapshot — or, with
    /// no snapshot yet, against the Trotter reference (or recorded as the
    /// first snapshot when the context started from a bare circuit).
    fn check_rewrite(&self, pass: &str, ctx: &CompileContext) -> Result<(), PassError> {
        if ctx.num_qubits > self.max_qubits {
            return Ok(());
        }
        let u = circuit_unitary(&ctx.circuit);
        let mut prev = self.prev.lock().expect("verifier mutex");
        let infid = match prev.as_ref() {
            Some(reference) => infidelity(&u, reference),
            None if !ctx.term_order.is_empty() || ctx.terms.is_empty() => {
                infidelity(&u, &trotter_unitary(ctx.num_qubits, &ctx.term_order))
            }
            // A from_circuit context before any reference exists: adopt the
            // current unitary as the baseline for later rewrites.
            None => 0.0,
        };
        if infid > self.tolerance {
            return Err(self.fail(
                pass,
                format!("rewrite changed the circuit unitary (infidelity {infid:.3e})"),
            ));
        }
        *prev = Some(u);
        Ok(())
    }

    /// A routed (physical-indexed) circuit: it must equal a qubit
    /// permutation composed with the logical snapshot embedded at the
    /// initial layout, and that permutation must relocate every logical
    /// qubit from its initial to its final physical position.
    fn check_routed(&self, pass: &str, ctx: &CompileContext) -> Result<(), PassError> {
        let device = ctx
            .device
            .as_ref()
            .ok_or_else(|| self.fail(pass, "routed circuit with no device in context"))?;
        let logical = ctx
            .logical
            .as_ref()
            .ok_or_else(|| self.fail(pass, "routed circuit with no logical snapshot"))?;
        let initial = ctx
            .initial_layout
            .as_ref()
            .ok_or_else(|| self.fail(pass, "routing did not record its initial layout"))?;
        let fin = ctx
            .final_layout
            .as_ref()
            .ok_or_else(|| self.fail(pass, "routing did not record its final layout"))?;
        let n_phys = device.num_qubits();
        if n_phys > self.max_qubits {
            return Ok(());
        }
        let embedded = logical.map_qubits(n_phys, |q| initial[q]);
        let d = circuit_unitary(&ctx.circuit).matmul(&circuit_unitary(&embedded).dagger());
        let pi = decode_qubit_permutation(&d, n_phys, 1e-6)
            .map_err(|why| self.fail(pass, format!("routed ≠ permutation ∘ logical: {why}")))?;
        for (l, (&p0, &pf)) in initial.iter().zip(fin).enumerate() {
            if pi[p0] != pf {
                return Err(self.fail(
                    pass,
                    format!(
                        "routing permutation moves logical {l} from physical {p0} to {} but the final layout says {pf}",
                        pi[p0]
                    ),
                ));
            }
        }
        Ok(())
    }
}

impl PassObserver for BoundaryVerifier {
    fn name(&self) -> &str {
        "boundary-verifier"
    }

    fn after_pass(&self, pass: &str, ctx: &CompileContext) -> Result<(), PassError> {
        match pass {
            "group" => self.check_groups(pass, ctx),
            "simplify-synth" | "naive-synth" => self.check_stage2(pass, ctx),
            "tetris-order" | "program-order" => self.check_order(pass, ctx),
            "concat" => self.check_concat(pass, ctx),
            // The anytime pass leaves the context in post-concat shape
            // (best-so-far subcircuits, order, assembled circuit), so every
            // stage-2/order/concat invariant applies to its snapshot.
            "anytime-deepen" => {
                self.check_stage2(pass, ctx)?;
                self.check_order(pass, ctx)?;
                self.check_concat(pass, ctx)
            }
            // `cnot-lower` appears both pre-routing (logical lowering) and
            // post-routing (SWAP lowering); the recorded final layout
            // disambiguates.
            "peephole" | "su4-rebase" | "kak-resynthesis" | "cnot-lower"
                if ctx.final_layout.is_none() =>
            {
                self.check_rewrite(pass, ctx)
            }
            "layout-route" | "cnot-lower" | "peephole" if ctx.final_layout.is_some() => {
                self.check_routed(pass, ctx)
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use phoenix_circuit::{Circuit, Gate};

    #[test]
    fn decodes_a_swap_permutation() {
        let mut c = Circuit::new(3);
        c.push(Gate::Swap(0, 2));
        let d = circuit_unitary(&c);
        assert_eq!(
            decode_qubit_permutation(&d, 3, 1e-9).unwrap(),
            vec![2, 1, 0]
        );
    }

    #[test]
    fn rejects_a_non_permutation() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        let d = circuit_unitary(&c);
        assert!(decode_qubit_permutation(&d, 2, 1e-9).is_err());
    }

    #[test]
    fn identity_decodes_to_identity_permutation() {
        let d = CMatrix::identity(4);
        assert_eq!(decode_qubit_permutation(&d, 2, 1e-9).unwrap(), vec![0, 1]);
    }
}
