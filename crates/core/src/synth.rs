//! Synthesis of simplified IR groups into circuits.
//!
//! A [`SimplifiedGroup`] is still ISA-independent: Clifford items become
//! [`Gate::Clifford2`] (one CNOT-equivalent 2Q gate each) and rotation rows
//! become free 1Q rotations or [`Gate::PauliRot2`] 2Q rotations. Lowering to
//! a concrete ISA (CNOT or SU(4)) happens afterwards in `phoenix-circuit`.

use crate::{CfgItem, SimplifiedGroup};
use phoenix_circuit::{Circuit, Gate};
use phoenix_pauli::{BsfRow, Pauli};

/// Emits the circuit of one simplified group.
///
/// # Examples
///
/// ```
/// use phoenix_core::{simplify::simplify_terms, synth::synthesize_group};
/// use phoenix_pauli::PauliString;
///
/// let terms: Vec<(PauliString, f64)> = ["ZYY", "ZZY", "XYY", "XZY"]
///     .iter()
///     .map(|s| (s.parse().unwrap(), 0.1))
///     .collect();
/// let circuit = synthesize_group(&simplify_terms(3, &terms));
/// // 2 Clifford2Q + 4 two-qubit rotations (the Fig. 1(c) structure).
/// assert_eq!(circuit.counts().clifford2, 2);
/// assert_eq!(circuit.counts().pauli_rot2, 4);
/// ```
pub fn synthesize_group(group: &SimplifiedGroup) -> Circuit {
    let mut out = Circuit::new(group.num_qubits());
    for item in group.items() {
        match item {
            CfgItem::Clifford(c) => out.push(Gate::Clifford2(*c)),
            CfgItem::Rotations(rows) => {
                for row in rows {
                    append_row(&mut out, group.num_qubits(), row);
                }
            }
        }
    }
    out
}

fn append_row(out: &mut Circuit, n: usize, row: &BsfRow) {
    let p = row.to_pauli_string(n);
    let support = p.support();
    let theta = 2.0 * row.coeff();
    match support.len() {
        0 => {}
        1 => {
            let q = support[0];
            out.push(match p.get(q) {
                Pauli::X => Gate::Rx(q, theta),
                Pauli::Y => Gate::Ry(q, theta),
                Pauli::Z => Gate::Rz(q, theta),
                Pauli::I => unreachable!("support excludes identity"),
            });
        }
        2 => out.push(Gate::PauliRot2 {
            a: support[0],
            b: support[1],
            pa: p.get(support[0]),
            pb: p.get(support[1]),
            theta,
        }),
        w => unreachable!("simplified rows have weight ≤ 2, got {w}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::simplify_terms;
    use phoenix_pauli::PauliString;

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.parse().unwrap(), 0.05 * (i + 1) as f64))
            .collect()
    }

    #[test]
    fn qaoa_group_is_single_rotation() {
        let c = synthesize_group(&simplify_terms(2, &terms(&["ZZ"])));
        assert_eq!(c.counts().pauli_rot2, 1);
        assert_eq!(c.counts().clifford2, 0);
    }

    #[test]
    fn local_rows_become_free_rotations() {
        let c = synthesize_group(&simplify_terms(3, &terms(&["XII", "IYI", "IIZ"])));
        assert_eq!(c.counts().oneq, 3);
        assert_eq!(c.counts().two_qubit(), 0);
    }

    #[test]
    fn heavy_group_synthesizes_with_bounded_2q_gates() {
        // Weight-5 string: naive = 8 CNOTs; PHOENIX structure should spend
        // fewer 2Q gates (Cliffords + one 2Q rotation).
        let c = synthesize_group(&simplify_terms(5, &terms(&["XYZXY"])));
        let lowered = phoenix_circuit::peephole::optimize(&c);
        let naive = phoenix_circuit::synthesis::naive_circuit(5, &terms(&["XYZXY"]));
        assert!(
            lowered.counts().cnot <= naive.counts().cnot,
            "phoenix {} vs naive {}",
            lowered.counts().cnot,
            naive.counts().cnot
        );
    }

    #[test]
    fn rotation_angle_doubles_coefficient() {
        let c = synthesize_group(&simplify_terms(2, &[("ZI".parse().unwrap(), 0.3)]));
        assert!(matches!(c.gates()[0], Gate::Rz(0, t) if (t - 0.6).abs() < 1e-12));
    }
}
