//! PHOENIX — the Pauli-based high-level optimization engine (DAC 2025).
//!
//! The compiler follows the paper's three-stage pipeline:
//!
//! ```text
//! IR grouping → group-wise BSF simplification → Tetris-like IR group ordering
//! ```
//!
//! 1. **[`group`]**: Pauli exponentiations are grouped by the set of qubits
//!    they act on non-trivially.
//! 2. **[`simplify`]**: each group's binary-symplectic tableau is greedily
//!    conjugated by 2Q Clifford generators (Algorithm 1, guided by the cost
//!    function of Eq. (6)) until its total weight is at most 2, leaving a
//!    nest of Clifford conjugations around directly synthesizable ≤2Q
//!    rotations.
//! 3. **[`order`]**: the simplified groups are assembled like Tetris blocks,
//!    minimizing a uniform cost that combines endian-vector depth overhead
//!    (Fig. 3), Clifford2Q cancellation credit (Fig. 4(a)), and — in
//!    hardware-aware mode — the interaction-graph similarity factor of
//!    Eq. (7) (Fig. 4(b)).
//!
//! [`PhoenixCompiler`] ties the stages together and exposes CNOT-ISA,
//! SU(4)-ISA, and hardware-aware outputs.
//!
//! # Examples
//!
//! ```
//! use phoenix_core::PhoenixCompiler;
//! use phoenix_pauli::PauliString;
//!
//! // Compile the Fig. 1(b) example program.
//! let terms: Vec<(PauliString, f64)> = ["ZYY", "ZZY", "XYY", "XZY"]
//!     .iter()
//!     .map(|s| (s.parse().unwrap(), 0.1))
//!     .collect();
//! let compiler = PhoenixCompiler::default();
//! let cnot = compiler.compile_to_cnot(3, &terms);
//! // Four weight-3 exponentiations cost 16 CNOTs naively (2(w−1) each);
//! // one simultaneous Clifford conjugation brings the whole group to ≤2Q.
//! assert!(cnot.counts().cnot < 16);
//! ```

#[deny(clippy::unwrap_used)]
pub mod anytime;
#[deny(clippy::unwrap_used)]
pub mod cancel;
pub mod cost;
pub mod error;
pub mod evaluator;
pub mod group;
#[deny(clippy::unwrap_used)]
pub mod observe;
pub mod order;
#[deny(clippy::unwrap_used)]
mod parametric;
#[deny(clippy::unwrap_used)]
pub mod pass;
#[deny(clippy::unwrap_used)]
pub mod passes;
#[deny(clippy::unwrap_used)]
mod pipeline;
#[deny(clippy::unwrap_used)]
mod request;
pub mod simplify;
mod strategy;
pub mod synth;
#[deny(clippy::unwrap_used)]
pub mod verify;

// Downstream crates (bench binaries, the CLI) work with `ObsReport` and the
// exporters directly; re-export the crate so they need no separate
// dependency edge.
pub use phoenix_obs;

// Same for the parametric compilation cache: `CompileRequest::cache` /
// `.structure()` / `.bind()` trade in its types.
pub use phoenix_cache;
pub use phoenix_cache::{BoundProgram, CacheStats, CompileCache, StructureArtifact};

// And the device layer: `Target::Device` / `Target::Fleet` trade in its
// types, and the registry is the canonical way to name fleet members.
pub use phoenix_device;
pub use phoenix_device::{Device, DeviceRegistry, DeviceSpecError, NativeIsa, NoiseProfile};

pub use anytime::{AnytimePass, DeepeningController, MAX_ROUNDS};
pub use cancel::{CancelReason, CancelToken};
pub use error::{validate_device, validate_program, PhoenixError};
pub use evaluator::CostEvaluator;
pub use group::IrGroup;
pub use observe::MetricsObserver;
pub use pass::{
    CompileContext, Pass, PassError, PassManager, PassObserver, PassTrace, TraceEvent,
    EVENT_DEGRADED, EVENT_RETRIED, EVENT_ROUND_ABANDONED, EVENT_SKIPPED, EVENT_TRUNCATED,
    EVENT_VERIFIED,
};
pub use pipeline::{
    device_backend, hardware_backend, run_hardware_backend, run_hardware_backend_with_trace,
    try_run_hardware_backend, try_run_hardware_backend_with_trace, CompiledProgram,
    HardwareProgram, PhoenixCompiler, PhoenixOptions,
};
pub use request::{CompileOutcome, CompileRequest, FleetEntry, FleetOutcome, Target};
pub use simplify::{CfgItem, SimplifiedGroup, SimplifyOptions};
pub use strategy::CompilerStrategy;
pub use verify::BoundaryVerifier;
