//! The end-to-end PHOENIX compiler.

use crate::group::group_by_support;
use crate::order::{order_groups, OrderOptions};
use crate::simplify::simplify_terms;
use crate::synth::synthesize_group;
use phoenix_circuit::{peephole, rebase, Circuit};
use phoenix_pauli::PauliString;
use phoenix_router::{route, search_layout, RoutedCircuit, RouterOptions};
use phoenix_topology::CouplingGraph;

/// Compiler configuration.
///
/// The two `enable_*` switches exist for ablation studies (see the
/// `ablation` experiment binary): disabling them replaces a pipeline stage
/// with its trivial counterpart while keeping everything else identical.
#[derive(Debug, Clone, PartialEq)]
pub struct PhoenixOptions {
    /// Lookahead window of the Tetris-like ordering.
    pub lookahead: usize,
    /// Apply the Eq. (7) routing-similarity factor during ordering even for
    /// logical compilation (always on in hardware-aware mode).
    pub routing_aware: bool,
    /// Run the BSF-simplification pass (Algorithm 1). When disabled, each
    /// IR group is synthesized with conventional CNOT chains.
    pub enable_simplification: bool,
    /// Run the Tetris-like group ordering. When disabled, groups keep their
    /// first-appearance order.
    pub enable_ordering: bool,
}

impl Default for PhoenixOptions {
    fn default() -> Self {
        PhoenixOptions {
            lookahead: 20,
            routing_aware: false,
            enable_simplification: true,
            enable_ordering: true,
        }
    }
}

/// The result of logical compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// The ordered high-level circuit (Clifford2Q generators + ≤2Q Pauli
    /// rotations), still ISA-independent.
    pub circuit: Circuit,
    /// Number of IR groups the program decomposed into.
    pub num_groups: usize,
    /// The input terms in the order the emitted circuit implements them —
    /// a permutation of the input (compilation only reorders the Trotter
    /// product). The circuit's unitary equals this order's exact Trotter
    /// product up to global phase.
    pub term_order: Vec<(PauliString, f64)>,
}

/// The result of hardware-aware compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProgram {
    /// The final physical CNOT-ISA circuit (SWAPs lowered and re-optimized).
    pub circuit: Circuit,
    /// The logical CNOT-ISA circuit before routing.
    pub logical: Circuit,
    /// Number of SWAPs the router inserted.
    pub num_swaps: usize,
}

impl HardwareProgram {
    /// The `#CNOT(mapped)/#CNOT(logical)` multiple (dashed lines of Fig. 6,
    /// "Routing overhead" of Table IV).
    pub fn routing_overhead(&self) -> f64 {
        let logical = self.logical.counts().cnot.max(1);
        self.circuit.counts().cnot as f64 / logical as f64
    }
}

/// The PHOENIX compiler: grouping → BSF simplification → Tetris ordering,
/// with CNOT-ISA, SU(4)-ISA and hardware-aware back ends.
///
/// # Examples
///
/// ```
/// use phoenix_core::PhoenixCompiler;
/// use phoenix_pauli::PauliString;
///
/// let terms: Vec<(PauliString, f64)> = vec![
///     ("XXXX".parse().unwrap(), 0.1),
///     ("YYXX".parse().unwrap(), 0.2),
///     ("ZZII".parse().unwrap(), 0.3),
/// ];
/// let out = PhoenixCompiler::default().compile(4, &terms);
/// assert_eq!(out.num_groups, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhoenixCompiler {
    /// Tuning options.
    pub options: PhoenixOptions,
}

impl PhoenixCompiler {
    /// Creates a compiler with the given options.
    pub fn new(options: PhoenixOptions) -> Self {
        PhoenixCompiler { options }
    }

    /// Logical compilation to the high-level IR-group circuit.
    ///
    /// # Panics
    ///
    /// Panics if a term does not act on exactly `n` qubits.
    pub fn compile(&self, n: usize, terms: &[(PauliString, f64)]) -> CompiledProgram {
        let groups = group_by_support(n, terms);
        // Stage 2: per-group subcircuits plus the term order each implements.
        let (subcircuits, group_terms): (Vec<Circuit>, Vec<Vec<(PauliString, f64)>>) =
            if self.options.enable_simplification {
                groups
                    .iter()
                    .map(|g| {
                        let s = simplify_terms(n, g.terms());
                        (synthesize_group(&s), s.term_sequence())
                    })
                    .unzip()
            } else {
                groups
                    .iter()
                    .map(|g| {
                        (
                            phoenix_circuit::synthesis::naive_circuit(n, g.terms()),
                            g.terms().to_vec(),
                        )
                    })
                    .unzip()
            };
        // Stage 3: ordering.
        let perm: Vec<usize> = if self.options.enable_ordering {
            order_groups(
                &subcircuits,
                &OrderOptions {
                    lookahead: self.options.lookahead,
                    routing_aware: self.options.routing_aware,
                },
            )
        } else {
            (0..subcircuits.len()).collect()
        };
        let mut circuit = Circuit::new(n);
        let mut term_order = Vec::with_capacity(terms.len());
        for i in perm {
            circuit.append(&subcircuits[i]);
            term_order.extend(group_terms[i].iter().copied());
        }
        CompiledProgram {
            circuit,
            num_groups: groups.len(),
            term_order,
        }
    }

    /// Logical compilation to the CNOT ISA (lowered + peephole-optimized).
    pub fn compile_to_cnot(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        peephole::optimize(&self.compile(n, terms).circuit)
    }

    /// Logical compilation to the SU(4) ISA: PHOENIX emits SU(4) blocks
    /// directly from its simplified IR (no CNOT detour).
    pub fn compile_to_su4(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        rebase::to_su4(&self.compile(n, terms).circuit)
    }

    /// Logical compilation to the CNOT ISA *through* the SU(4) layer:
    /// blocks are KAK-resynthesized to their ≤3-rotation canonical forms
    /// before lowering, capping every same-pair run at its Weyl floor.
    pub fn compile_to_cnot_via_kak(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        let su4 = self.compile_to_su4(n, terms);
        peephole::optimize(&phoenix_circuit::kak::resynthesize(&su4))
    }

    /// Hardware-aware compilation: routing-aware ordering, CNOT lowering,
    /// SABRE routing on `device`, SWAP lowering and final peephole.
    ///
    /// # Panics
    ///
    /// Panics if the device has fewer qubits than the program.
    pub fn compile_hardware_aware(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
        device: &CouplingGraph,
    ) -> HardwareProgram {
        let mut hw = self.clone();
        hw.options.routing_aware = true;
        let logical = peephole::optimize(&hw.compile(n, terms).circuit);
        let opts = RouterOptions::default();
        let layout = search_layout(&logical, device, &opts, 3);
        let RoutedCircuit {
            circuit: routed,
            num_swaps,
            ..
        } = route(&logical, device, layout, &opts);
        let physical = peephole::optimize(&routed);
        HardwareProgram {
            circuit: physical,
            logical,
            num_swaps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_circuit::synthesis::naive_circuit;

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.parse().unwrap(), 0.02 * (i + 1) as f64))
            .collect()
    }

    #[test]
    fn compile_beats_naive_on_fig1b() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
        let phoenix = PhoenixCompiler::default().compile_to_cnot(3, &t);
        let naive = naive_circuit(3, &t);
        assert!(
            phoenix.counts().cnot < naive.counts().cnot,
            "{} vs {}",
            phoenix.counts().cnot,
            naive.counts().cnot
        );
    }

    #[test]
    fn su4_output_contains_only_su4_two_qubit_gates() {
        let t = terms(&["XYZX", "YYZZ", "ZIIZ", "XIIX"]);
        let su4 = PhoenixCompiler::default().compile_to_su4(4, &t);
        let k = su4.counts();
        assert_eq!(k.cnot + k.clifford2 + k.pauli_rot2 + k.swap, 0);
        assert!(k.su4 > 0);
    }

    #[test]
    fn hardware_aware_respects_coupling() {
        let t = terms(&["ZZII", "IZZI", "IIZZ", "ZIIZ"]);
        let dev = CouplingGraph::line(4);
        let hw = PhoenixCompiler::default().compile_hardware_aware(4, &t, &dev);
        for g in hw.circuit.gates() {
            if let (a, Some(b)) = g.qubits() {
                assert!(dev.contains_edge(a, b), "gate {g} violates coupling");
            }
        }
        assert!(hw.routing_overhead() >= 1.0);
    }

    #[test]
    fn empty_program_compiles_to_empty_circuit() {
        let out = PhoenixCompiler::default().compile(3, &[]);
        assert!(out.circuit.is_empty());
        assert_eq!(out.num_groups, 0);
    }

    #[test]
    fn qaoa_terms_compile_without_cliffords() {
        let t = terms(&["ZZII", "IZZI", "IIZZ"]);
        let out = PhoenixCompiler::default().compile(4, &t);
        assert_eq!(out.circuit.counts().clifford2, 0);
        assert_eq!(out.circuit.counts().pauli_rot2, 3);
    }
}
