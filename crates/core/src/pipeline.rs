//! The end-to-end PHOENIX compiler.
//!
//! Every entry point is a thin wrapper over the unified
//! [`CompileRequest`](crate::CompileRequest) builder: it picks the
//! [`Target`](crate::Target) and retention flags matching the legacy
//! signature and delegates. The golden-equivalence tests in
//! `tests/compile_request.rs` pin each wrapper to the request path.

use std::sync::Arc;
use std::time::Duration;

use crate::anytime::AnytimePass;
use crate::cancel::CancelToken;
use crate::error::{validate_device, PhoenixError};
use crate::pass::{CompileContext, PassError, PassManager, PassTrace};
use crate::passes::{
    ConcatPass, GroupPass, LayoutRoutePass, OrderPass, SimplifySynthPass, SnapshotLogicalPass,
    TransformPass,
};
use crate::request::{CompileOutcome, CompileRequest, Target};
use crate::verify::BoundaryVerifier;
use phoenix_circuit::Circuit;
use phoenix_device::{Device, NativeIsa};
use phoenix_pauli::PauliString;
use phoenix_router::RouterOptions;
use phoenix_topology::CouplingGraph;

/// Compiler configuration.
///
/// The two `enable_*` switches exist for ablation studies (see the
/// `ablation` experiment binary): disabling them replaces a pipeline stage
/// with its trivial counterpart while keeping everything else identical.
#[derive(Debug, Clone, PartialEq)]
pub struct PhoenixOptions {
    /// Lookahead window of the Tetris-like ordering.
    pub lookahead: usize,
    /// Apply the Eq. (7) routing-similarity factor during ordering even for
    /// logical compilation (always on in hardware-aware mode).
    pub routing_aware: bool,
    /// Run the BSF-simplification pass (Algorithm 1). When disabled, each
    /// IR group is synthesized with conventional CNOT chains.
    pub enable_simplification: bool,
    /// Run the Tetris-like group ordering. When disabled, groups keep their
    /// first-appearance order.
    pub enable_ordering: bool,
    /// SABRE router tuning used by the hardware-aware back end.
    pub router: RouterOptions,
    /// Random-restart trials of the initial-layout search.
    pub layout_trials: usize,
    /// Worker threads for the per-group simplification+synthesis stage
    /// (`0` = one per available core, `1` = sequential). The output is
    /// identical for every value.
    pub stage2_threads: usize,
    /// Worker threads for the candidate scan inside each group's greedy
    /// epoch (`0` = one per available core, `1` = sequential), composing
    /// multiplicatively with `stage2_threads`. The output is identical for
    /// every value. Useful for programs with few, very wide groups where
    /// group-level parallelism alone cannot saturate the machine.
    pub stage2_scan_threads: usize,
    /// Wall-clock budget for optimization effort. Once elapsed, remaining
    /// optimization epochs are cut short (each affected unit of work falls
    /// back to its unoptimized form, recorded as `truncated`/`skipped`
    /// events in the [`PassTrace`]) while correctness-critical stages run
    /// to completion — the output is always valid, just less optimized.
    /// `None` (the default) never truncates.
    pub pass_budget: Option<Duration>,
    /// Logical cap on the anytime deepening schedule used by budgeted
    /// compiles: the optimizer runs at most this many deepening rounds
    /// (clamped to [`crate::anytime::MAX_ROUNDS`]; `None` = the full
    /// schedule). Because rounds are deterministic, the output under a huge
    /// `pass_budget` is a pure function of this cap, independent of wall
    /// clock and thread counts. Ignored when `pass_budget` is `None` — the
    /// unbudgeted pipeline takes the legacy single-shot path.
    pub anytime_rounds: Option<usize>,
    /// Translation validation: attach a [`BoundaryVerifier`] so every pass
    /// boundary is semantically re-checked (the `--verify` flag of the
    /// experiment binaries). Compilation fails with a pass-pinpointing
    /// error on the first violated invariant. Dense equivalence checks run
    /// only up to [`BoundaryVerifier::max_qubits`] — beyond that only the
    /// structural invariants are enforced. Orthogonal to `pass_budget`:
    /// a budget may *skip* optimization passes (never verified, never run),
    /// but every pass that does execute is verified.
    pub verify: bool,
    /// Worker threads for fleet compilation: how many devices of a
    /// `Target::Fleet` compile concurrently (`0` = one per available core,
    /// capped at the fleet size; `1` = sequential). The ranked outcome is
    /// identical for every value. Excluded from the parametric options
    /// fingerprint, like the stage-2 thread counts.
    pub fleet_threads: usize,
    /// Cooperative cancellation token. When set, the pass manager checks it
    /// before every pass (and stage 2 checks it between groups) and aborts
    /// with [`PhoenixError::Cancelled`](crate::PhoenixError::Cancelled) or
    /// [`PhoenixError::DeadlineExceeded`](crate::PhoenixError::DeadlineExceeded)
    /// once it fires. Token equality is identity (shared state), so the
    /// derived `PartialEq` on options stays meaningful; the token is
    /// excluded from the parametric options fingerprint.
    pub cancel: Option<CancelToken>,
}

impl Default for PhoenixOptions {
    fn default() -> Self {
        PhoenixOptions {
            lookahead: 20,
            routing_aware: false,
            enable_simplification: true,
            enable_ordering: true,
            router: RouterOptions::default(),
            layout_trials: 3,
            stage2_threads: 0,
            stage2_scan_threads: 1,
            pass_budget: None,
            anytime_rounds: None,
            verify: false,
            fleet_threads: 0,
            cancel: None,
        }
    }
}

/// The result of logical compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// The ordered high-level circuit (Clifford2Q generators + ≤2Q Pauli
    /// rotations), still ISA-independent.
    pub circuit: Circuit,
    /// Number of IR groups the program decomposed into.
    pub num_groups: usize,
    /// The input terms in the order the emitted circuit implements them —
    /// a permutation of the input (compilation only reorders the Trotter
    /// product). The circuit's unitary equals this order's exact Trotter
    /// product up to global phase.
    pub term_order: Vec<(PauliString, f64)>,
}

/// The result of hardware-aware compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProgram {
    /// The final physical CNOT-ISA circuit (SWAPs lowered and re-optimized).
    pub circuit: Circuit,
    /// The logical CNOT-ISA circuit before routing.
    pub logical: Circuit,
    /// Number of SWAPs the router inserted.
    pub num_swaps: usize,
    /// Physical position of each logical qubit before the first gate:
    /// logical `l` enters at physical `initial_layout[l]`. The routed
    /// circuit's unitary equals the logical circuit embedded at this layout,
    /// composed with the qubit permutation taking `initial_layout` to
    /// `final_layout`.
    pub initial_layout: Vec<usize>,
    /// Physical position of each logical qubit after the last gate.
    pub final_layout: Vec<usize>,
}

impl HardwareProgram {
    /// The `#2Q(mapped)/#2Q(logical)` multiple (dashed lines of Fig. 6,
    /// "Routing overhead" of Table IV). Counted over all 2Q gates so the
    /// ratio stays meaningful on SU(4)-native devices; for CNOT-ISA
    /// circuits (`su4 == 0`) this is exactly the paper's CNOT ratio.
    pub fn routing_overhead(&self) -> f64 {
        let two_q = |c: &Circuit| {
            let k = c.counts();
            k.cnot + k.su4
        };
        two_q(&self.circuit) as f64 / two_q(&self.logical).max(1) as f64
    }
}

/// The shared hardware-aware back end as a pass sequence: peephole ("O3"),
/// logical snapshot, layout search + SABRE routing, SWAP lowering, final
/// peephole. Used both by [`PhoenixCompiler::compile_hardware_aware`] and by
/// the baseline harness, so strategy differences dominate comparisons.
pub fn hardware_backend(router: &RouterOptions, layout_trials: usize) -> PassManager {
    PassManager::new()
        .with(TransformPass::peephole())
        .with(SnapshotLogicalPass)
        .with(LayoutRoutePass {
            router: router.clone(),
            layout_trials,
        })
        .with(TransformPass::swap_lower())
        .with(TransformPass::peephole())
}

/// The hardware back end for a [`Device`]: [`hardware_backend`] followed by
/// the pass suffix that folds the routed CNOT circuit into the device's
/// native ISA — nothing for [`NativeIsa::Cnot`], an SU(4) rebase for
/// [`NativeIsa::Su4`], and rebase + KAK resynthesis + peephole for
/// [`NativeIsa::CnotViaKak`]. The rebase passes are *required* (not
/// budget-skippable), so the native-ISA guarantee survives `pass_budget`
/// truncation exactly as it does for the logical ISA targets.
pub fn device_backend(
    device: &Device,
    router: &RouterOptions,
    layout_trials: usize,
) -> PassManager {
    let manager = hardware_backend(router, layout_trials);
    match device.isa() {
        NativeIsa::Cnot => manager,
        NativeIsa::Su4 => manager.with(TransformPass::su4_rebase()),
        NativeIsa::CnotViaKak => manager
            .with(TransformPass::su4_rebase())
            .with(TransformPass::kak_resynthesis())
            .with(TransformPass::peephole()),
    }
}

/// Fallible [`run_hardware_backend_with_trace`]: validates that the
/// circuit fits the device before routing, and surfaces pass failures
/// (including contained panics) as a typed [`PhoenixError`].
pub fn try_run_hardware_backend_with_trace(
    logical: &Circuit,
    device: &CouplingGraph,
    router: &RouterOptions,
    layout_trials: usize,
) -> Result<(HardwareProgram, PassTrace), PhoenixError> {
    validate_device(logical.num_qubits(), device)?;
    let mut ctx = CompileContext::from_circuit(logical.clone());
    ctx.device = Some(device.clone());
    let trace = hardware_backend(router, layout_trials).run(&mut ctx)?;
    extract_hardware_program(ctx).map(|p| (p, trace))
}

/// Pulls a [`HardwareProgram`] out of a routed [`CompileContext`].
pub(crate) fn extract_hardware_program(
    ctx: CompileContext,
) -> Result<HardwareProgram, PhoenixError> {
    let snapshot = ctx
        .logical
        .ok_or_else(|| PassError::new("snapshot-logical", "logical snapshot missing"))?;
    let initial_layout = ctx
        .initial_layout
        .ok_or_else(|| PassError::new("layout-route", "initial layout missing"))?;
    let final_layout = ctx
        .final_layout
        .ok_or_else(|| PassError::new("layout-route", "final layout missing"))?;
    Ok(HardwareProgram {
        circuit: ctx.circuit,
        logical: snapshot,
        num_swaps: ctx.num_swaps,
        initial_layout,
        final_layout,
    })
}

/// [`try_run_hardware_backend_with_trace`] without the trace.
pub fn try_run_hardware_backend(
    logical: &Circuit,
    device: &CouplingGraph,
    router: &RouterOptions,
    layout_trials: usize,
) -> Result<HardwareProgram, PhoenixError> {
    try_run_hardware_backend_with_trace(logical, device, router, layout_trials).map(|(p, _)| p)
}

/// Runs the shared hardware back end on an already-compiled logical
/// circuit, returning the routed program and the pass trace.
///
/// # Panics
///
/// Panics if the device does not fit the circuit or routing fails — use
/// [`try_run_hardware_backend_with_trace`] for graceful rejection.
pub fn run_hardware_backend_with_trace(
    logical: &Circuit,
    device: &CouplingGraph,
    router: &RouterOptions,
    layout_trials: usize,
) -> (HardwareProgram, PassTrace) {
    try_run_hardware_backend_with_trace(logical, device, router, layout_trials)
        .unwrap_or_else(|e| panic!("hardware backend failed: {e}"))
}

/// [`run_hardware_backend_with_trace`] without the trace.
pub fn run_hardware_backend(
    logical: &Circuit,
    device: &CouplingGraph,
    router: &RouterOptions,
    layout_trials: usize,
) -> HardwareProgram {
    run_hardware_backend_with_trace(logical, device, router, layout_trials).0
}

/// The PHOENIX compiler: grouping → BSF simplification → Tetris ordering,
/// with CNOT-ISA, SU(4)-ISA and hardware-aware back ends.
///
/// # Examples
///
/// ```
/// use phoenix_core::PhoenixCompiler;
/// use phoenix_pauli::PauliString;
///
/// let terms: Vec<(PauliString, f64)> = vec![
///     ("XXXX".parse().unwrap(), 0.1),
///     ("YYXX".parse().unwrap(), 0.2),
///     ("ZZII".parse().unwrap(), 0.3),
/// ];
/// let out = PhoenixCompiler::default().compile(4, &terms);
/// assert_eq!(out.num_groups, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhoenixCompiler {
    /// Tuning options.
    pub options: PhoenixOptions,
}

impl PhoenixCompiler {
    /// Creates a compiler with the given options.
    pub fn new(options: PhoenixOptions) -> Self {
        PhoenixCompiler { options }
    }

    /// The canonical logical pass sequence (stages 1–3 + concatenation),
    /// parameterized by this compiler's options (including the pass
    /// budget, which survives [`PassManager::append`]).
    pub fn logical_passes(&self, routing_aware: bool) -> PassManager {
        let manager = match self.options.pass_budget {
            // Budgeted compiles deepen anytime-style: stages 2–4 become one
            // interruptible pass that always holds a valid best-so-far.
            Some(budget) => PassManager::new()
                .with(GroupPass)
                .with(AnytimePass {
                    lookahead: self.options.lookahead,
                    simplify: self.options.enable_simplification,
                    order_enabled: self.options.enable_ordering,
                    routing_aware: routing_aware || self.options.routing_aware,
                    threads: self.options.stage2_threads,
                    scan_threads: self.options.stage2_scan_threads,
                    max_rounds: self.options.anytime_rounds,
                })
                .with_budget(budget),
            // Unbudgeted compiles take the exact legacy single-shot path.
            None => PassManager::new()
                .with(GroupPass)
                .with(SimplifySynthPass {
                    simplify: self.options.enable_simplification,
                    threads: self.options.stage2_threads,
                    scan_threads: self.options.stage2_scan_threads,
                    fault_inject_group: None,
                })
                .with(OrderPass {
                    lookahead: self.options.lookahead,
                    routing_aware: routing_aware || self.options.routing_aware,
                    enabled: self.options.enable_ordering,
                })
                .with(ConcatPass),
        };
        if self.options.verify {
            // One verifier per compilation: it carries a unitary snapshot
            // across rewrites. `append` keeps the observer, so the
            // hardware back end is verified by the same instance.
            manager.with_observer(Arc::new(BoundaryVerifier::default()))
        } else {
            manager
        }
    }

    /// A [`CompileRequest`] for `terms` carrying this compiler's options —
    /// the preferred entry point; every legacy method below delegates to
    /// it.
    pub fn request(&self, n: usize, terms: &[(PauliString, f64)]) -> CompileRequest {
        CompileRequest::new(n, terms).options(self.options.clone())
    }

    /// Logical compilation to the high-level IR-group circuit.
    ///
    /// # Panics
    ///
    /// Panics on invalid input — use [`PhoenixCompiler::try_compile`] for
    /// graceful rejection.
    pub fn compile(&self, n: usize, terms: &[(PauliString, f64)]) -> CompiledProgram {
        self.try_compile(n, terms)
            .unwrap_or_else(|e| panic!("phoenix compilation failed: {e}"))
    }

    /// Fallible [`PhoenixCompiler::compile`]: validates the program up
    /// front and returns a typed [`PhoenixError`] instead of panicking.
    pub fn try_compile(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> Result<CompiledProgram, PhoenixError> {
        self.request(n, terms)
            .run()
            .map(CompileOutcome::into_program)
    }

    /// [`PhoenixCompiler::compile`] plus the recorded pass trace.
    pub fn compile_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> (CompiledProgram, PassTrace) {
        self.try_compile_with_trace(n, terms)
            .unwrap_or_else(|e| panic!("phoenix compilation failed: {e}"))
    }

    /// [`PhoenixCompiler::try_compile`] plus the recorded pass trace.
    pub fn try_compile_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> Result<(CompiledProgram, PassTrace), PhoenixError> {
        self.request(n, terms)
            .trace(true)
            .run()
            .map(CompileOutcome::into_program_and_trace)
    }

    /// Logical compilation to the CNOT ISA (lowered + peephole-optimized).
    ///
    /// # Panics
    ///
    /// Panics on invalid input — use [`PhoenixCompiler::try_compile_to_cnot`].
    pub fn compile_to_cnot(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        self.try_compile_to_cnot(n, terms)
            .unwrap_or_else(|e| panic!("phoenix compilation failed: {e}"))
    }

    /// Fallible [`PhoenixCompiler::compile_to_cnot`].
    pub fn try_compile_to_cnot(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> Result<Circuit, PhoenixError> {
        self.request(n, terms)
            .target(Target::Cnot)
            .run()
            .map(|out| out.circuit)
    }

    /// [`PhoenixCompiler::compile_to_cnot`] plus the recorded pass trace.
    pub fn compile_to_cnot_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> (Circuit, PassTrace) {
        self.try_compile_to_cnot_with_trace(n, terms)
            .unwrap_or_else(|e| panic!("phoenix compilation failed: {e}"))
    }

    /// [`PhoenixCompiler::try_compile_to_cnot`] plus the recorded pass
    /// trace.
    pub fn try_compile_to_cnot_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> Result<(Circuit, PassTrace), PhoenixError> {
        self.request(n, terms)
            .target(Target::Cnot)
            .trace(true)
            .run()
            .map(CompileOutcome::into_circuit_and_trace)
    }

    /// Logical compilation to the SU(4) ISA: PHOENIX emits SU(4) blocks
    /// directly from its simplified IR (no CNOT detour).
    ///
    /// # Panics
    ///
    /// Panics on invalid input — use [`PhoenixCompiler::try_compile_to_su4`].
    pub fn compile_to_su4(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        self.try_compile_to_su4(n, terms)
            .unwrap_or_else(|e| panic!("phoenix compilation failed: {e}"))
    }

    /// Fallible [`PhoenixCompiler::compile_to_su4`].
    pub fn try_compile_to_su4(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> Result<Circuit, PhoenixError> {
        self.request(n, terms)
            .target(Target::Su4)
            .run()
            .map(|out| out.circuit)
    }

    /// [`PhoenixCompiler::compile_to_su4`] plus the recorded pass trace.
    pub fn compile_to_su4_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> (Circuit, PassTrace) {
        self.try_compile_to_su4_with_trace(n, terms)
            .unwrap_or_else(|e| panic!("phoenix compilation failed: {e}"))
    }

    /// [`PhoenixCompiler::try_compile_to_su4`] plus the recorded pass
    /// trace.
    pub fn try_compile_to_su4_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> Result<(Circuit, PassTrace), PhoenixError> {
        self.request(n, terms)
            .target(Target::Su4)
            .trace(true)
            .run()
            .map(CompileOutcome::into_circuit_and_trace)
    }

    /// Logical compilation to the CNOT ISA *through* the SU(4) layer:
    /// blocks are KAK-resynthesized to their ≤3-rotation canonical forms
    /// before lowering, capping every same-pair run at its Weyl floor.
    ///
    /// # Panics
    ///
    /// Panics on invalid input — use
    /// [`PhoenixCompiler::try_compile_to_cnot_via_kak`].
    pub fn compile_to_cnot_via_kak(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        self.try_compile_to_cnot_via_kak(n, terms)
            .unwrap_or_else(|e| panic!("phoenix compilation failed: {e}"))
    }

    /// Fallible [`PhoenixCompiler::compile_to_cnot_via_kak`].
    pub fn try_compile_to_cnot_via_kak(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> Result<Circuit, PhoenixError> {
        self.request(n, terms)
            .target(Target::CnotViaKak)
            .run()
            .map(|out| out.circuit)
    }

    /// [`PhoenixCompiler::compile_to_cnot_via_kak`] plus the recorded pass
    /// trace.
    pub fn compile_to_cnot_via_kak_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> (Circuit, PassTrace) {
        self.try_compile_to_cnot_via_kak_with_trace(n, terms)
            .unwrap_or_else(|e| panic!("phoenix compilation failed: {e}"))
    }

    /// [`PhoenixCompiler::try_compile_to_cnot_via_kak`] plus the recorded
    /// pass trace.
    pub fn try_compile_to_cnot_via_kak_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> Result<(Circuit, PassTrace), PhoenixError> {
        self.request(n, terms)
            .target(Target::CnotViaKak)
            .trace(true)
            .run()
            .map(CompileOutcome::into_circuit_and_trace)
    }

    /// Hardware-aware compilation: routing-aware ordering, CNOT lowering,
    /// SABRE routing on `device`, SWAP lowering and final peephole.
    ///
    /// # Panics
    ///
    /// Panics on invalid input or an unroutable device — use
    /// [`PhoenixCompiler::try_compile_hardware_aware`].
    pub fn compile_hardware_aware(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
        device: &CouplingGraph,
    ) -> HardwareProgram {
        self.try_compile_hardware_aware(n, terms, device)
            .unwrap_or_else(|e| panic!("phoenix compilation failed: {e}"))
    }

    /// Fallible [`PhoenixCompiler::compile_hardware_aware`]: additionally
    /// validates that the device fits the program and is connected.
    pub fn try_compile_hardware_aware(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
        device: &CouplingGraph,
    ) -> Result<HardwareProgram, PhoenixError> {
        self.try_compile_hardware_aware_with_trace(n, terms, device)
            .map(|(p, _)| p)
    }

    /// [`PhoenixCompiler::compile_hardware_aware`] plus the recorded pass
    /// trace.
    pub fn compile_hardware_aware_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
        device: &CouplingGraph,
    ) -> (HardwareProgram, PassTrace) {
        self.try_compile_hardware_aware_with_trace(n, terms, device)
            .unwrap_or_else(|e| panic!("phoenix compilation failed: {e}"))
    }

    /// [`PhoenixCompiler::try_compile_hardware_aware`] plus the recorded
    /// pass trace.
    pub fn try_compile_hardware_aware_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
        device: &CouplingGraph,
    ) -> Result<(HardwareProgram, PassTrace), PhoenixError> {
        self.request(n, terms)
            .target(Target::Hardware(device.clone()))
            .trace(true)
            .run()?
            .into_hardware_and_trace()
            .map_err(|_| PassError::new("layout-route", "hardware program missing").into())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use phoenix_circuit::synthesis::naive_circuit;

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.parse().unwrap(), 0.02 * (i + 1) as f64))
            .collect()
    }

    #[test]
    fn compile_beats_naive_on_fig1b() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
        let phoenix = PhoenixCompiler::default().compile_to_cnot(3, &t);
        let naive = naive_circuit(3, &t);
        assert!(
            phoenix.counts().cnot < naive.counts().cnot,
            "{} vs {}",
            phoenix.counts().cnot,
            naive.counts().cnot
        );
    }

    #[test]
    fn su4_output_contains_only_su4_two_qubit_gates() {
        let t = terms(&["XYZX", "YYZZ", "ZIIZ", "XIIX"]);
        let su4 = PhoenixCompiler::default().compile_to_su4(4, &t);
        let k = su4.counts();
        assert_eq!(k.cnot + k.clifford2 + k.pauli_rot2 + k.swap, 0);
        assert!(k.su4 > 0);
    }

    #[test]
    fn hardware_aware_respects_coupling() {
        let t = terms(&["ZZII", "IZZI", "IIZZ", "ZIIZ"]);
        let dev = CouplingGraph::line(4);
        let hw = PhoenixCompiler::default().compile_hardware_aware(4, &t, &dev);
        for g in hw.circuit.gates() {
            if let (a, Some(b)) = g.qubits() {
                assert!(dev.contains_edge(a, b), "gate {g} violates coupling");
            }
        }
        assert!(hw.routing_overhead() >= 1.0);
    }

    #[test]
    fn empty_program_compiles_to_empty_circuit() {
        let out = PhoenixCompiler::default().compile(3, &[]);
        assert!(out.circuit.is_empty());
        assert_eq!(out.num_groups, 0);
    }

    #[test]
    fn qaoa_terms_compile_without_cliffords() {
        let t = terms(&["ZZII", "IZZI", "IIZZ"]);
        let out = PhoenixCompiler::default().compile(4, &t);
        assert_eq!(out.circuit.counts().clifford2, 0);
        assert_eq!(out.circuit.counts().pauli_rot2, 3);
    }

    #[test]
    fn logical_trace_names_the_canonical_sequence() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
        let (_, trace) = PhoenixCompiler::default().compile_to_cnot_with_trace(3, &t);
        assert_eq!(
            trace.pass_names(),
            [
                "group",
                "simplify-synth",
                "tetris-order",
                "concat",
                "peephole"
            ]
        );
    }

    #[test]
    fn try_compile_rejects_malformed_programs_without_panicking() {
        let c = PhoenixCompiler::default();
        let mixed = terms(&["ZZ", "ZZI"]);
        assert!(matches!(
            c.try_compile(2, &mixed),
            Err(crate::error::PhoenixError::TermWidthMismatch { index: 1, .. })
        ));
        let nan = vec![("XX".parse::<PauliString>().unwrap(), f64::NAN)];
        assert!(c.try_compile_to_cnot(2, &nan).is_err());
        assert!(c.try_compile_to_su4(2, &nan).is_err());
        assert!(c.try_compile_to_cnot_via_kak(2, &nan).is_err());
        let dev = CouplingGraph::line(2);
        assert!(matches!(
            c.try_compile_hardware_aware(3, &terms(&["ZZI"]), &dev),
            Err(crate::error::PhoenixError::DeviceTooSmall {
                program: 3,
                device: 2
            })
        ));
    }

    #[test]
    fn try_paths_match_infallible_paths_on_valid_input() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
        let c = PhoenixCompiler::default();
        assert_eq!(c.try_compile(3, &t).unwrap(), c.compile(3, &t));
        assert_eq!(
            c.try_compile_to_cnot(3, &t).unwrap(),
            c.compile_to_cnot(3, &t)
        );
        let dev = CouplingGraph::line(3);
        assert_eq!(
            c.try_compile_hardware_aware(3, &t, &dev).unwrap(),
            c.compile_hardware_aware(3, &t, &dev)
        );
    }

    #[test]
    fn pass_budget_truncates_but_still_compiles_hardware_aware() {
        let t = terms(&["ZZII", "IZZI", "IIZZ", "ZIIZ"]);
        let dev = CouplingGraph::line(4);
        let c = PhoenixCompiler::new(PhoenixOptions {
            pass_budget: Some(Duration::ZERO),
            ..PhoenixOptions::default()
        });
        let (hw, trace) = c
            .try_compile_hardware_aware_with_trace(4, &t, &dev)
            .unwrap();
        for g in hw.circuit.gates() {
            if let (a, Some(b)) = g.qubits() {
                assert!(dev.contains_edge(a, b), "gate {g} violates coupling");
            }
        }
        // Required passes (lowering, routing) still ran; optimization was
        // truncated or skipped and the trace says so.
        assert!(!trace.events.is_empty());
        assert!(trace
            .pass_names()
            .iter()
            .all(|p| *p != "peephole" && *p != "kak-resynthesis"));
    }

    #[test]
    fn verify_option_validates_every_executed_boundary() {
        use crate::pass::EVENT_VERIFIED;
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
        let c = PhoenixCompiler::new(PhoenixOptions {
            verify: true,
            ..PhoenixOptions::default()
        });
        let (_, trace) = c.try_compile_to_cnot_with_trace(3, &t).unwrap();
        let verified: Vec<&str> = trace
            .events
            .iter()
            .filter(|e| e.kind == EVENT_VERIFIED)
            .map(|e| e.pass.as_str())
            .collect();
        assert_eq!(
            verified,
            [
                "group",
                "simplify-synth",
                "tetris-order",
                "concat",
                "peephole"
            ]
        );

        let dev = CouplingGraph::line(3);
        let (hw, trace) = c
            .try_compile_hardware_aware_with_trace(3, &t, &dev)
            .unwrap();
        assert!(trace
            .events
            .iter()
            .any(|e| e.kind == EVENT_VERIFIED && e.pass == "layout-route"));
        assert_eq!(hw.initial_layout.len(), 3);
        assert_eq!(hw.final_layout.len(), 3);

        // The verified output is identical to the unverified one.
        let plain = PhoenixCompiler::default();
        assert_eq!(c.compile_to_cnot(3, &t), plain.compile_to_cnot(3, &t));
    }

    #[test]
    fn verify_option_catches_an_injected_miscompilation() {
        use crate::pass::Pass;

        /// A rewrite that silently corrupts the circuit — the kind of bug
        /// translation validation exists to catch.
        struct SabotagePass;
        impl Pass for SabotagePass {
            fn name(&self) -> &str {
                "peephole" // masquerades as a legitimate rewrite
            }
            fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
                ctx.circuit.push(phoenix_circuit::Gate::H(0));
                Ok(())
            }
        }

        let t = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
        let compiler = PhoenixCompiler::default();
        let manager = compiler
            .logical_passes(false)
            .with(SabotagePass)
            .with_observer(Arc::new(crate::verify::BoundaryVerifier::default()));
        let mut ctx = CompileContext::new(3, &t);
        let err = manager.run(&mut ctx).unwrap_err();
        assert!(
            err.to_string().contains("translation validation failed"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn try_run_hardware_backend_rejects_undersized_devices() {
        let t = terms(&["ZZZ"]);
        let logical = PhoenixCompiler::default().compile_to_cnot(3, &t);
        let small = CouplingGraph::line(2);
        assert!(try_run_hardware_backend(&logical, &small, &RouterOptions::default(), 1).is_err());
    }

    #[test]
    fn hardware_trace_covers_the_full_pipeline() {
        let t = terms(&["ZZII", "IZZI", "IIZZ"]);
        let dev = CouplingGraph::line(4);
        let (hw, trace) = PhoenixCompiler::default().compile_hardware_aware_with_trace(4, &t, &dev);
        assert_eq!(
            trace.pass_names(),
            [
                "group",
                "simplify-synth",
                "tetris-order",
                "concat",
                "peephole",
                "snapshot-logical",
                "layout-route",
                "cnot-lower",
                "peephole"
            ]
        );
        assert!(!hw.circuit.is_empty());
    }
}
