//! The end-to-end PHOENIX compiler.
//!
//! Every entry point is a thin wrapper that assembles a canonical
//! [`PassManager`] sequence from [`passes`](crate::passes) and runs it over
//! a [`CompileContext`]; the `*_with_trace` variants additionally return the
//! recorded [`PassTrace`].

use crate::pass::{CompileContext, PassManager, PassTrace};
use crate::passes::{
    ConcatPass, GroupPass, LayoutRoutePass, OrderPass, SimplifySynthPass, SnapshotLogicalPass,
    TransformPass,
};
use phoenix_circuit::Circuit;
use phoenix_pauli::PauliString;
use phoenix_router::RouterOptions;
use phoenix_topology::CouplingGraph;

/// Compiler configuration.
///
/// The two `enable_*` switches exist for ablation studies (see the
/// `ablation` experiment binary): disabling them replaces a pipeline stage
/// with its trivial counterpart while keeping everything else identical.
#[derive(Debug, Clone, PartialEq)]
pub struct PhoenixOptions {
    /// Lookahead window of the Tetris-like ordering.
    pub lookahead: usize,
    /// Apply the Eq. (7) routing-similarity factor during ordering even for
    /// logical compilation (always on in hardware-aware mode).
    pub routing_aware: bool,
    /// Run the BSF-simplification pass (Algorithm 1). When disabled, each
    /// IR group is synthesized with conventional CNOT chains.
    pub enable_simplification: bool,
    /// Run the Tetris-like group ordering. When disabled, groups keep their
    /// first-appearance order.
    pub enable_ordering: bool,
    /// SABRE router tuning used by the hardware-aware back end.
    pub router: RouterOptions,
    /// Random-restart trials of the initial-layout search.
    pub layout_trials: usize,
    /// Worker threads for the per-group simplification+synthesis stage
    /// (`0` = one per available core, `1` = sequential). The output is
    /// identical for every value.
    pub stage2_threads: usize,
    /// Worker threads for the candidate scan inside each group's greedy
    /// epoch (`0` = one per available core, `1` = sequential), composing
    /// multiplicatively with `stage2_threads`. The output is identical for
    /// every value. Useful for programs with few, very wide groups where
    /// group-level parallelism alone cannot saturate the machine.
    pub stage2_scan_threads: usize,
}

impl Default for PhoenixOptions {
    fn default() -> Self {
        PhoenixOptions {
            lookahead: 20,
            routing_aware: false,
            enable_simplification: true,
            enable_ordering: true,
            router: RouterOptions::default(),
            layout_trials: 3,
            stage2_threads: 0,
            stage2_scan_threads: 1,
        }
    }
}

/// The result of logical compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    /// The ordered high-level circuit (Clifford2Q generators + ≤2Q Pauli
    /// rotations), still ISA-independent.
    pub circuit: Circuit,
    /// Number of IR groups the program decomposed into.
    pub num_groups: usize,
    /// The input terms in the order the emitted circuit implements them —
    /// a permutation of the input (compilation only reorders the Trotter
    /// product). The circuit's unitary equals this order's exact Trotter
    /// product up to global phase.
    pub term_order: Vec<(PauliString, f64)>,
}

/// The result of hardware-aware compilation.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProgram {
    /// The final physical CNOT-ISA circuit (SWAPs lowered and re-optimized).
    pub circuit: Circuit,
    /// The logical CNOT-ISA circuit before routing.
    pub logical: Circuit,
    /// Number of SWAPs the router inserted.
    pub num_swaps: usize,
}

impl HardwareProgram {
    /// The `#CNOT(mapped)/#CNOT(logical)` multiple (dashed lines of Fig. 6,
    /// "Routing overhead" of Table IV).
    pub fn routing_overhead(&self) -> f64 {
        let logical = self.logical.counts().cnot.max(1);
        self.circuit.counts().cnot as f64 / logical as f64
    }
}

/// The shared hardware-aware back end as a pass sequence: peephole ("O3"),
/// logical snapshot, layout search + SABRE routing, SWAP lowering, final
/// peephole. Used both by [`PhoenixCompiler::compile_hardware_aware`] and by
/// the baseline harness, so strategy differences dominate comparisons.
pub fn hardware_backend(router: &RouterOptions, layout_trials: usize) -> PassManager {
    PassManager::new()
        .with(TransformPass::peephole())
        .with(SnapshotLogicalPass)
        .with(LayoutRoutePass {
            router: router.clone(),
            layout_trials,
        })
        .with(TransformPass::swap_lower())
        .with(TransformPass::peephole())
}

/// Runs the shared hardware back end on an already-compiled logical
/// circuit, returning the routed program and the pass trace.
///
/// # Panics
///
/// Panics if the device has fewer qubits than the circuit.
pub fn run_hardware_backend_with_trace(
    logical: &Circuit,
    device: &CouplingGraph,
    router: &RouterOptions,
    layout_trials: usize,
) -> (HardwareProgram, PassTrace) {
    let mut ctx = CompileContext::from_circuit(logical.clone());
    ctx.device = Some(device.clone());
    let trace = hardware_backend(router, layout_trials)
        .run(&mut ctx)
        .expect("backend preconditions hold: device attached");
    let program = HardwareProgram {
        circuit: ctx.circuit,
        logical: ctx.logical.expect("snapshot pass ran"),
        num_swaps: ctx.num_swaps,
    };
    (program, trace)
}

/// [`run_hardware_backend_with_trace`] without the trace.
pub fn run_hardware_backend(
    logical: &Circuit,
    device: &CouplingGraph,
    router: &RouterOptions,
    layout_trials: usize,
) -> HardwareProgram {
    run_hardware_backend_with_trace(logical, device, router, layout_trials).0
}

/// The PHOENIX compiler: grouping → BSF simplification → Tetris ordering,
/// with CNOT-ISA, SU(4)-ISA and hardware-aware back ends.
///
/// # Examples
///
/// ```
/// use phoenix_core::PhoenixCompiler;
/// use phoenix_pauli::PauliString;
///
/// let terms: Vec<(PauliString, f64)> = vec![
///     ("XXXX".parse().unwrap(), 0.1),
///     ("YYXX".parse().unwrap(), 0.2),
///     ("ZZII".parse().unwrap(), 0.3),
/// ];
/// let out = PhoenixCompiler::default().compile(4, &terms);
/// assert_eq!(out.num_groups, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PhoenixCompiler {
    /// Tuning options.
    pub options: PhoenixOptions,
}

impl PhoenixCompiler {
    /// Creates a compiler with the given options.
    pub fn new(options: PhoenixOptions) -> Self {
        PhoenixCompiler { options }
    }

    /// The canonical logical pass sequence (stages 1–3 + concatenation),
    /// parameterized by this compiler's options.
    pub fn logical_passes(&self, routing_aware: bool) -> PassManager {
        PassManager::new()
            .with(GroupPass)
            .with(SimplifySynthPass {
                simplify: self.options.enable_simplification,
                threads: self.options.stage2_threads,
                scan_threads: self.options.stage2_scan_threads,
            })
            .with(OrderPass {
                lookahead: self.options.lookahead,
                routing_aware: routing_aware || self.options.routing_aware,
                enabled: self.options.enable_ordering,
            })
            .with(ConcatPass)
    }

    fn run_logical(
        &self,
        manager: PassManager,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> (CompileContext, PassTrace) {
        let mut ctx = CompileContext::new(n, terms);
        let trace = manager
            .run(&mut ctx)
            .expect("logical pipeline has no failing preconditions");
        (ctx, trace)
    }

    /// Logical compilation to the high-level IR-group circuit.
    ///
    /// # Panics
    ///
    /// Panics if a term does not act on exactly `n` qubits.
    pub fn compile(&self, n: usize, terms: &[(PauliString, f64)]) -> CompiledProgram {
        self.compile_with_trace(n, terms).0
    }

    /// [`PhoenixCompiler::compile`] plus the recorded pass trace.
    pub fn compile_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> (CompiledProgram, PassTrace) {
        let (ctx, trace) = self.run_logical(self.logical_passes(false), n, terms);
        (
            CompiledProgram {
                circuit: ctx.circuit,
                num_groups: ctx.num_groups,
                term_order: ctx.term_order,
            },
            trace,
        )
    }

    /// Logical compilation to the CNOT ISA (lowered + peephole-optimized).
    pub fn compile_to_cnot(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        self.compile_to_cnot_with_trace(n, terms).0
    }

    /// [`PhoenixCompiler::compile_to_cnot`] plus the recorded pass trace.
    pub fn compile_to_cnot_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> (Circuit, PassTrace) {
        let manager = self.logical_passes(false).with(TransformPass::peephole());
        let (ctx, trace) = self.run_logical(manager, n, terms);
        (ctx.circuit, trace)
    }

    /// Logical compilation to the SU(4) ISA: PHOENIX emits SU(4) blocks
    /// directly from its simplified IR (no CNOT detour).
    pub fn compile_to_su4(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        self.compile_to_su4_with_trace(n, terms).0
    }

    /// [`PhoenixCompiler::compile_to_su4`] plus the recorded pass trace.
    pub fn compile_to_su4_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> (Circuit, PassTrace) {
        let manager = self.logical_passes(false).with(TransformPass::su4_rebase());
        let (ctx, trace) = self.run_logical(manager, n, terms);
        (ctx.circuit, trace)
    }

    /// Logical compilation to the CNOT ISA *through* the SU(4) layer:
    /// blocks are KAK-resynthesized to their ≤3-rotation canonical forms
    /// before lowering, capping every same-pair run at its Weyl floor.
    pub fn compile_to_cnot_via_kak(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        self.compile_to_cnot_via_kak_with_trace(n, terms).0
    }

    /// [`PhoenixCompiler::compile_to_cnot_via_kak`] plus the recorded pass
    /// trace.
    pub fn compile_to_cnot_via_kak_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
    ) -> (Circuit, PassTrace) {
        let manager = self
            .logical_passes(false)
            .with(TransformPass::su4_rebase())
            .with(TransformPass::kak_resynthesis())
            .with(TransformPass::peephole());
        let (ctx, trace) = self.run_logical(manager, n, terms);
        (ctx.circuit, trace)
    }

    /// Hardware-aware compilation: routing-aware ordering, CNOT lowering,
    /// SABRE routing on `device`, SWAP lowering and final peephole.
    ///
    /// # Panics
    ///
    /// Panics if the device has fewer qubits than the program.
    pub fn compile_hardware_aware(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
        device: &CouplingGraph,
    ) -> HardwareProgram {
        self.compile_hardware_aware_with_trace(n, terms, device).0
    }

    /// [`PhoenixCompiler::compile_hardware_aware`] plus the recorded pass
    /// trace.
    pub fn compile_hardware_aware_with_trace(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
        device: &CouplingGraph,
    ) -> (HardwareProgram, PassTrace) {
        let manager = self.logical_passes(true).append(hardware_backend(
            &self.options.router,
            self.options.layout_trials,
        ));
        let mut ctx = CompileContext::for_device(n, terms, device);
        let trace = manager
            .run(&mut ctx)
            .expect("hardware pipeline preconditions hold: device attached");
        let program = HardwareProgram {
            circuit: ctx.circuit,
            logical: ctx.logical.expect("snapshot pass ran"),
            num_swaps: ctx.num_swaps,
        };
        (program, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_circuit::synthesis::naive_circuit;

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.parse().unwrap(), 0.02 * (i + 1) as f64))
            .collect()
    }

    #[test]
    fn compile_beats_naive_on_fig1b() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
        let phoenix = PhoenixCompiler::default().compile_to_cnot(3, &t);
        let naive = naive_circuit(3, &t);
        assert!(
            phoenix.counts().cnot < naive.counts().cnot,
            "{} vs {}",
            phoenix.counts().cnot,
            naive.counts().cnot
        );
    }

    #[test]
    fn su4_output_contains_only_su4_two_qubit_gates() {
        let t = terms(&["XYZX", "YYZZ", "ZIIZ", "XIIX"]);
        let su4 = PhoenixCompiler::default().compile_to_su4(4, &t);
        let k = su4.counts();
        assert_eq!(k.cnot + k.clifford2 + k.pauli_rot2 + k.swap, 0);
        assert!(k.su4 > 0);
    }

    #[test]
    fn hardware_aware_respects_coupling() {
        let t = terms(&["ZZII", "IZZI", "IIZZ", "ZIIZ"]);
        let dev = CouplingGraph::line(4);
        let hw = PhoenixCompiler::default().compile_hardware_aware(4, &t, &dev);
        for g in hw.circuit.gates() {
            if let (a, Some(b)) = g.qubits() {
                assert!(dev.contains_edge(a, b), "gate {g} violates coupling");
            }
        }
        assert!(hw.routing_overhead() >= 1.0);
    }

    #[test]
    fn empty_program_compiles_to_empty_circuit() {
        let out = PhoenixCompiler::default().compile(3, &[]);
        assert!(out.circuit.is_empty());
        assert_eq!(out.num_groups, 0);
    }

    #[test]
    fn qaoa_terms_compile_without_cliffords() {
        let t = terms(&["ZZII", "IZZI", "IIZZ"]);
        let out = PhoenixCompiler::default().compile(4, &t);
        assert_eq!(out.circuit.counts().clifford2, 0);
        assert_eq!(out.circuit.counts().pauli_rot2, 3);
    }

    #[test]
    fn logical_trace_names_the_canonical_sequence() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
        let (_, trace) = PhoenixCompiler::default().compile_to_cnot_with_trace(3, &t);
        assert_eq!(
            trace.pass_names(),
            [
                "group",
                "simplify-synth",
                "tetris-order",
                "concat",
                "peephole"
            ]
        );
    }

    #[test]
    fn hardware_trace_covers_the_full_pipeline() {
        let t = terms(&["ZZII", "IZZI", "IIZZ"]);
        let dev = CouplingGraph::line(4);
        let (hw, trace) = PhoenixCompiler::default().compile_hardware_aware_with_trace(4, &t, &dev);
        assert_eq!(
            trace.pass_names(),
            [
                "group",
                "simplify-synth",
                "tetris-order",
                "concat",
                "peephole",
                "snapshot-logical",
                "layout-route",
                "cnot-lower",
                "peephole"
            ]
        );
        assert!(!hw.circuit.is_empty());
    }
}
