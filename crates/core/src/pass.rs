//! The pass-manager layer: compilation as a traced sequence of passes.
//!
//! Every stage of the PHOENIX pipeline — IR grouping, group-wise BSF
//! simplification + synthesis, Tetris-like ordering, concatenation, and the
//! circuit-level back ends (peephole, SU(4) rebase, KAK resynthesis, layout
//! search, SABRE routing, SWAP lowering) — is expressed as a [`Pass`] over a
//! shared [`CompileContext`]. A [`PassManager`] executes a sequence and
//! records a serializable [`PassTrace`] with per-pass wall-clock time and
//! before/after circuit statistics, so any pipeline assembled from passes is
//! observable for free.
//!
//! [`PhoenixCompiler`](crate::PhoenixCompiler)'s entry points are thin
//! wrappers that assemble canonical sequences from
//! [`passes`](crate::passes); custom pipelines compose the same building
//! blocks:
//!
//! ```
//! use phoenix_core::pass::{CompileContext, PassManager};
//! use phoenix_core::passes::{ConcatPass, GroupPass, OrderPass, SimplifySynthPass};
//! use phoenix_pauli::PauliString;
//!
//! let terms: Vec<(PauliString, f64)> =
//!     vec![("ZYY".parse().unwrap(), 0.1), ("XZY".parse().unwrap(), 0.2)];
//! let mut ctx = CompileContext::new(3, &terms);
//! let manager = PassManager::new()
//!     .with(GroupPass)
//!     .with(SimplifySynthPass::default())
//!     .with(OrderPass::default())
//!     .with(ConcatPass);
//! let trace = manager.run(&mut ctx).unwrap();
//! assert_eq!(trace.passes.len(), 4);
//! assert!(!ctx.circuit.is_empty());
//! ```

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use phoenix_circuit::Circuit;
use phoenix_obs::metrics::MetricId;
use phoenix_obs::{ObsCollector, Span};
use phoenix_pauli::PauliString;
use phoenix_topology::CouplingGraph;
use serde::{Deserialize, Serialize};

use crate::cancel::{CancelReason, CancelToken};
use crate::group::IrGroup;

/// The mutable state a pass sequence threads through compilation.
///
/// Early (IR-level) passes populate `groups` / `subcircuits` /
/// `group_terms` / `order`; [`ConcatPass`](crate::passes::ConcatPass)
/// collapses them into `circuit` + `term_order`; circuit-level passes then
/// rewrite `circuit` in place. Hardware passes additionally use `device`,
/// `logical` and `num_swaps`.
#[derive(Debug, Clone)]
pub struct CompileContext {
    /// Number of qubits of the program.
    pub num_qubits: usize,
    /// The input Pauli exponentiation terms, in program order.
    pub terms: Vec<(PauliString, f64)>,
    /// IR groups (set by grouping).
    pub groups: Vec<IrGroup>,
    /// Per-group synthesized subcircuits (set by stage 2).
    pub subcircuits: Vec<Circuit>,
    /// Per-group term sequences as implemented (set by stage 2).
    pub group_terms: Vec<Vec<(PauliString, f64)>>,
    /// Group permutation chosen by ordering.
    pub order: Vec<usize>,
    /// The working circuit (set by concatenation, rewritten by circuit
    /// passes).
    pub circuit: Circuit,
    /// The input terms in emitted order (a permutation of `terms`).
    pub term_order: Vec<(PauliString, f64)>,
    /// Number of IR groups the program decomposed into.
    pub num_groups: usize,
    /// Target device, when compiling hardware-aware.
    pub device: Option<CouplingGraph>,
    /// Snapshot of the logical circuit taken just before routing.
    pub logical: Option<Circuit>,
    /// SWAPs inserted by routing.
    pub num_swaps: usize,
    /// Logical→physical placement the routed circuit starts from
    /// (set by routing; `initial_layout[l]` is the physical qubit logical
    /// qubit `l` enters at).
    pub initial_layout: Option<Vec<usize>>,
    /// Logical→physical placement after the last routed gate.
    pub final_layout: Option<Vec<usize>>,
    /// Robustness events raised by passes (degradations, retries,
    /// truncations); drained into the [`PassTrace`] after each pass.
    pub events: Vec<TraceEvent>,
    /// Wall-clock deadline for optimization effort, set from the pass
    /// budget. Passes consult [`CompileContext::past_deadline`] to cut
    /// optional work short; correctness-critical work always completes.
    pub deadline: Option<Instant>,
    /// Observability collector, when this compilation is instrumented
    /// (`CompileRequest::obs(true)`). `None` costs one pointer check per
    /// pass and per stage-2 group.
    pub obs: Option<Arc<ObsCollector>>,
    /// Child spans produced by the currently running pass (stage-2 groups,
    /// router attempts, ...). The manager drains them into that pass's span
    /// after it finishes.
    pub spans: Vec<Span>,
    /// Shared parametric compilation cache. When set, stage 2 compiles each
    /// group slot-encoded, caches the angle-independent skeleton keyed by
    /// the group's canonical IR, and binds the real coefficients — reusing
    /// the skeleton on the next compile of a structurally identical group.
    /// `None` keeps the legacy uncached path, bit-for-bit.
    pub cache: Option<Arc<phoenix_cache::CompileCache>>,
    /// Cooperative cancellation token. The manager checks it before every
    /// pass and stage 2 checks it between groups; a fired token aborts the
    /// pipeline with a typed cancellation error. `None` costs one pointer
    /// check per boundary.
    pub cancel: Option<CancelToken>,
    /// Deepening rounds completed by the anytime optimizer (`None` when the
    /// legacy non-anytime path ran). Round 0 is the always-computed naive
    /// baseline, so `Some(0)` means "interrupted before any improvement".
    pub depth_reached: Option<usize>,
    /// Set by the anytime pass when a fired [`CancelToken`] was honored by
    /// keeping the best-so-far snapshot instead of aborting. The manager
    /// then treats the fired token like an elapsed deadline — optional
    /// polish is skipped, required lowering still runs — so the caller gets
    /// a valid (if less optimized) compilation instead of an error.
    pub soft_cancelled: bool,
}

impl CompileContext {
    /// A fresh context for logical compilation of `terms` on `num_qubits`.
    pub fn new(num_qubits: usize, terms: &[(PauliString, f64)]) -> Self {
        CompileContext {
            num_qubits,
            terms: terms.to_vec(),
            groups: Vec::new(),
            subcircuits: Vec::new(),
            group_terms: Vec::new(),
            order: Vec::new(),
            circuit: Circuit::new(num_qubits),
            term_order: Vec::new(),
            num_groups: 0,
            device: None,
            logical: None,
            num_swaps: 0,
            initial_layout: None,
            final_layout: None,
            events: Vec::new(),
            deadline: None,
            obs: None,
            spans: Vec::new(),
            cache: None,
            cancel: None,
            depth_reached: None,
            soft_cancelled: false,
        }
    }

    /// Whether the optimization deadline (if any) has elapsed.
    pub fn past_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The cancellation reason, when the attached token (if any) has fired.
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        self.cancel.as_ref().and_then(|t| t.reason())
    }

    /// Records a robustness event against `pass`.
    pub fn record_event(&mut self, pass: &str, kind: &str, detail: impl Into<String>) {
        self.events.push(TraceEvent {
            pass: pass.to_string(),
            kind: kind.to_string(),
            detail: detail.into(),
        });
    }

    /// Whether this compilation is instrumented for observability.
    pub fn obs_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// Records a child span against the currently running pass. A no-op
    /// when the compilation is not instrumented.
    pub fn push_span(&mut self, span: Span) {
        if self.obs.is_some() {
            self.spans.push(span);
        }
    }

    /// Same as [`CompileContext::new`] with a routing target attached.
    pub fn for_device(
        num_qubits: usize,
        terms: &[(PauliString, f64)],
        device: &CouplingGraph,
    ) -> Self {
        let mut ctx = CompileContext::new(num_qubits, terms);
        ctx.device = Some(device.clone());
        ctx
    }

    /// A context that starts from an already-compiled circuit (used to run
    /// back-end pass sequences on baseline compiler outputs).
    pub fn from_circuit(circuit: Circuit) -> Self {
        let mut ctx = CompileContext::new(circuit.num_qubits(), &[]);
        ctx.circuit = circuit;
        ctx
    }
}

/// Error raised by a [`Pass`] whose preconditions are not met.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// Name of the failing pass.
    pub pass: String,
    /// Human-readable diagnosis.
    pub message: String,
}

/// Message prefix marking a [`PassError`] as a cooperative cancellation
/// rather than a genuine pass failure (see [`PassError::cancelled`]).
const CANCELLED_BY_CLIENT: &str = "cancelled: abandoned by client request";
/// Message marking a wall-clock-deadline cancellation.
const CANCELLED_BY_DEADLINE: &str = "cancelled: wall-clock deadline exceeded";

impl PassError {
    /// Builds an error for `pass`.
    pub fn new(pass: &str, message: impl Into<String>) -> Self {
        PassError {
            pass: pass.to_string(),
            message: message.into(),
        }
    }

    /// The error the manager raises when a [`CancelToken`] fires between
    /// passes: `pass` is the pass that was *about to run*. Recognized by
    /// [`PassError::cancellation_reason`] so the API boundary can convert
    /// it into the dedicated
    /// [`PhoenixError::Cancelled`](crate::PhoenixError::Cancelled) /
    /// [`PhoenixError::DeadlineExceeded`](crate::PhoenixError::DeadlineExceeded)
    /// variants instead of a generic pass failure.
    pub fn cancelled(pass: &str, reason: CancelReason) -> Self {
        let message = match reason {
            CancelReason::Client => CANCELLED_BY_CLIENT,
            CancelReason::Deadline => CANCELLED_BY_DEADLINE,
        };
        PassError::new(pass, message)
    }

    /// `Some(reason)` when this error records a cooperative cancellation.
    pub fn cancellation_reason(&self) -> Option<CancelReason> {
        match self.message.as_str() {
            CANCELLED_BY_CLIENT => Some(CancelReason::Client),
            CANCELLED_BY_DEADLINE => Some(CancelReason::Deadline),
            _ => None,
        }
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass `{}` failed: {}", self.pass, self.message)
    }
}

impl std::error::Error for PassError {}

/// One stage of a compilation pipeline.
pub trait Pass {
    /// Stable display name (used in traces).
    fn name(&self) -> &str;

    /// Executes the stage, mutating the context.
    fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError>;

    /// Whether this pass is pure optimization that may be skipped when the
    /// pass budget runs out. Passes the pipeline's correctness depends on
    /// (grouping, synthesis, concatenation, rebase, routing) return
    /// `false`; gate-count polish (peephole, KAK resynthesis) returns
    /// `true`.
    fn optional(&self) -> bool {
        false
    }
}

/// A robustness event recorded during compilation: a degradation to a
/// fallback path, a routing retry, or budget-driven truncation of
/// optimization effort.
///
/// `kind` is one of the `EVENT_*` constants of this module; `detail` is a
/// human-readable elaboration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Name of the pass that raised the event.
    pub pass: String,
    /// Event class (`degraded`, `retried`, `truncated`, or `skipped`).
    pub kind: String,
    /// Human-readable elaboration.
    pub detail: String,
}

/// Event kind: a unit of work panicked or failed and was replaced by its
/// unoptimized fallback.
pub const EVENT_DEGRADED: &str = "degraded";
/// Event kind: routing abandoned an attempt and retried with a different
/// strategy.
pub const EVENT_RETRIED: &str = "retried";
/// Event kind: the pass budget elapsed and remaining optimization effort
/// inside a pass was cut short.
pub const EVENT_TRUNCATED: &str = "truncated";
/// Event kind: an optional pass was skipped entirely because the budget
/// had elapsed before it started.
pub const EVENT_SKIPPED: &str = "skipped";
/// Event kind: a [`PassObserver`] validated the context at a pass boundary
/// (raised once per verified boundary, so a trace shows exactly which
/// transformations were checked).
pub const EVENT_VERIFIED: &str = "verified";
/// Event kind: the anytime optimizer hit its deadline (or a fired cancel
/// token) in the middle of a deepening round and kept the previous round's
/// result. Distinct from [`EVENT_TRUNCATED`], which marks work cut short
/// *before* it started improving anything.
pub const EVENT_ROUND_ABANDONED: &str = "round-abandoned";

/// A hook invoked after every executed pass — the attachment point for
/// translation validation and metrics collection.
///
/// An observer sees the full [`CompileContext`] at each pass boundary and
/// may reject it with a [`PassError`], failing compilation the same way a
/// broken pass would. Observers must not mutate compilation state; they may
/// record events via the returned error path only (the manager itself
/// records an [`EVENT_VERIFIED`] event for each boundary a *verifying*
/// observer accepts).
///
/// Multiple observers compose: [`PassManager::with_observer`] appends, and
/// the manager invokes observers **in attachment order** at every boundary.
/// The first rejection aborts the pipeline, so validators attached earlier
/// shield collectors attached later from invalid state; and because the
/// manager records each verifier's `verified` event before calling the next
/// observer, a later observer (e.g. a metrics collector) sees the events
/// earlier observers produced at the same boundary.
///
/// The canonical implementations are
/// [`BoundaryVerifier`](crate::verify::BoundaryVerifier), which re-simulates
/// the working circuit against the exact Trotter reference after every
/// semantic transformation (`PhoenixOptions::verify`), and
/// [`MetricsObserver`](crate::observe::MetricsObserver), which folds pass
/// boundaries into the per-compilation metrics registry.
pub trait PassObserver: Send + Sync {
    /// Stable display name (used in `verified` trace events).
    fn name(&self) -> &str;

    /// Validates the context after `pass` ran. Returning an error aborts
    /// the pipeline.
    fn after_pass(&self, pass: &str, ctx: &CompileContext) -> Result<(), PassError>;

    /// Whether an accepted boundary should be recorded as an
    /// [`EVENT_VERIFIED`] event. Validators keep the default `true`;
    /// passive collectors (metrics, logging) return `false` so traces only
    /// claim verification when semantic checking actually happened.
    fn verifies(&self) -> bool {
        true
    }
}

/// Size/shape statistics of the working circuit at a trace point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Total gate count.
    pub gates: usize,
    /// CNOT count.
    pub cnot: usize,
    /// Two-qubit gate count of any flavour.
    pub two_qubit: usize,
    /// Circuit depth.
    pub depth: usize,
    /// Two-qubit depth.
    pub depth_2q: usize,
}

impl CircuitStats {
    /// Measures `circuit`.
    pub fn of(circuit: &Circuit) -> Self {
        let counts = circuit.counts();
        CircuitStats {
            gates: counts.total,
            cnot: counts.cnot,
            two_qubit: counts.two_qubit(),
            depth: circuit.depth(),
            depth_2q: circuit.depth_2q(),
        }
    }
}

/// Trace entry for a single executed pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassRecord {
    /// The pass name.
    pub name: String,
    /// Wall-clock time of this pass, in milliseconds.
    pub millis: f64,
    /// Wall-clock time since the pipeline started, in milliseconds.
    pub cumulative_millis: f64,
    /// Working-circuit statistics before the pass ran.
    pub before: CircuitStats,
    /// Working-circuit statistics after the pass ran.
    pub after: CircuitStats,
}

/// The full observability record of one [`PassManager::run`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PassTrace {
    /// One record per executed pass, in execution order.
    pub passes: Vec<PassRecord>,
    /// Robustness events (degradations, retries, truncations, skips), in
    /// the order they were raised.
    pub events: Vec<TraceEvent>,
}

impl PassTrace {
    /// Total pipeline wall-clock, in milliseconds.
    pub fn total_millis(&self) -> f64 {
        self.passes.last().map_or(0.0, |p| p.cumulative_millis)
    }

    /// The executed pass names, in order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name.as_str()).collect()
    }

    /// The events of a given kind (one of the `EVENT_*` constants).
    pub fn events_of_kind(&self, kind: &str) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// Whether any unit of work fell back to its unoptimized path.
    pub fn is_degraded(&self) -> bool {
        self.events.iter().any(|e| e.kind == EVENT_DEGRADED)
    }
}

/// Executes a pass sequence over a [`CompileContext`], recording a
/// [`PassTrace`].
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    budget: Option<Duration>,
    observers: Vec<Arc<dyn PassObserver>>,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field("budget", &self.budget)
            .field(
                "observers",
                &self.observers.iter().map(|o| o.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl PassManager {
    /// An empty manager.
    pub fn new() -> Self {
        PassManager::default()
    }

    /// A manager over a prebuilt sequence.
    pub fn with_passes(passes: Vec<Box<dyn Pass>>) -> Self {
        PassManager {
            passes,
            budget: None,
            observers: Vec::new(),
        }
    }

    /// Sets a wall-clock budget for optimization effort. Once it elapses,
    /// optional passes are skipped (recorded as `skipped` events) and
    /// budget-aware passes cut their remaining work short (`truncated`
    /// events); correctness-critical passes still run to completion, so
    /// the output is always a valid compilation — just less optimized.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attaches a [`PassObserver`] invoked after every executed pass
    /// (builder style). Observers compose: each call **appends**, and at
    /// every pass boundary the manager invokes them in attachment order,
    /// aborting on the first rejection. Attach validators before passive
    /// collectors so metrics are never folded over a state a verifier
    /// would have rejected.
    pub fn with_observer(mut self, observer: Arc<dyn PassObserver>) -> Self {
        self.observers.push(observer);
        self
    }

    /// The names of the attached observers, in invocation order.
    pub fn observer_names(&self) -> Vec<&str> {
        self.observers.iter().map(|o| o.name()).collect()
    }

    /// Appends one pass (builder style).
    pub fn with(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends a boxed pass.
    pub fn push(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Concatenates another manager's sequence after this one's. The other
    /// manager's observers are appended after this one's (its budget, if
    /// any, is dropped — the front manager's budget governs the whole
    /// sequence).
    pub fn append(mut self, other: PassManager) -> Self {
        self.passes.extend(other.passes);
        self.observers.extend(other.observers);
        self
    }

    /// The names of the registered passes, in order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs the sequence, stopping at the first failing pass.
    ///
    /// Each pass runs under a panic guard: a panicking pass is contained
    /// and surfaced as a [`PassError`] rather than unwinding through the
    /// caller. With a budget set ([`PassManager::with_budget`]), optional
    /// passes whose start time falls past the deadline are skipped and
    /// recorded as `skipped` events in the trace.
    pub fn run(&self, ctx: &mut CompileContext) -> Result<PassTrace, PassError> {
        let mut trace = PassTrace::default();
        let t0 = Instant::now();
        if let Some(budget) = self.budget {
            ctx.deadline = Some(t0 + budget);
        }
        for pass in &self.passes {
            // Cooperative cancellation: checked before every pass, so a
            // fired token stops the pipeline at the next boundary without
            // ever interrupting a pass mid-rewrite. A *soft* cancellation
            // (the anytime pass kept its best-so-far under a fired token)
            // instead degrades like an elapsed deadline: optional polish is
            // skipped, required lowering still runs.
            let cancelled = match ctx.cancel_reason() {
                Some(reason) if !ctx.soft_cancelled => {
                    return Err(PassError::cancelled(pass.name(), reason));
                }
                reason => reason.is_some(),
            };
            if pass.optional() && (ctx.past_deadline() || cancelled) {
                ctx.record_event(
                    pass.name(),
                    EVENT_SKIPPED,
                    "pass budget elapsed before this optional pass started",
                );
                if let Some(obs) = &ctx.obs {
                    obs.metrics().incr(MetricId::PassesSkipped);
                }
                trace.events.append(&mut ctx.events);
                continue;
            }
            let before = CircuitStats::of(&ctx.circuit);
            ctx.spans.clear();
            let span_start = ctx.obs.as_ref().map(|obs| obs.now_us());
            let start = Instant::now();
            run_contained(pass.as_ref(), ctx)?;
            for observer in &self.observers {
                observer.after_pass(pass.name(), ctx)?;
                if observer.verifies() {
                    ctx.record_event(
                        pass.name(),
                        EVENT_VERIFIED,
                        format!("boundary accepted by observer `{}`", observer.name()),
                    );
                }
            }
            let millis = start.elapsed().as_secs_f64() * 1e3;
            let after = CircuitStats::of(&ctx.circuit);
            if let Some(obs) = &ctx.obs {
                let start_us = span_start.unwrap_or(0);
                let mut span = Span::new(pass.name(), "pass")
                    .arg("gates_before", before.gates)
                    .arg("gates_after", after.gates)
                    .arg("cnot_before", before.cnot)
                    .arg("cnot_after", after.cnot)
                    .arg("depth_2q_before", before.depth_2q)
                    .arg("depth_2q_after", after.depth_2q);
                span.start_us = start_us;
                span.dur_us = obs.now_us().saturating_sub(start_us);
                span.children = std::mem::take(&mut ctx.spans);
                obs.push_root(span);
            }
            trace.events.append(&mut ctx.events);
            trace.passes.push(PassRecord {
                name: pass.name().to_string(),
                millis,
                cumulative_millis: t0.elapsed().as_secs_f64() * 1e3,
                before,
                after,
            });
        }
        Ok(trace)
    }
}

/// Runs one pass with panics contained: an unwinding pass becomes a
/// [`PassError`] carrying the panic payload, so a bug deep inside a stage
/// surfaces as a typed compile error at the API boundary instead of
/// aborting the caller.
fn run_contained(pass: &dyn Pass, ctx: &mut CompileContext) -> Result<(), PassError> {
    let name = pass.name().to_string();
    match panic::catch_unwind(AssertUnwindSafe(|| pass.run(ctx))) {
        Ok(result) => result,
        Err(payload) => Err(PassError::new(
            &name,
            format!("panicked: {}", panic_message(payload.as_ref())),
        )),
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    struct AddTerms(usize);

    impl Pass for AddTerms {
        fn name(&self) -> &str {
            "add-terms"
        }

        fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
            ctx.num_groups += self.0;
            Ok(())
        }
    }

    struct AlwaysFails;

    impl Pass for AlwaysFails {
        fn name(&self) -> &str {
            "always-fails"
        }

        fn run(&self, _ctx: &mut CompileContext) -> Result<(), PassError> {
            Err(PassError::new("always-fails", "by design"))
        }
    }

    #[test]
    fn manager_runs_passes_in_order_and_traces_them() {
        let mut ctx = CompileContext::new(2, &[]);
        let pm = PassManager::new().with(AddTerms(2)).with(AddTerms(3));
        let trace = pm.run(&mut ctx).unwrap();
        assert_eq!(ctx.num_groups, 5);
        assert_eq!(trace.pass_names(), ["add-terms", "add-terms"]);
        assert!(trace.total_millis() >= 0.0);
    }

    #[test]
    fn manager_stops_at_first_error() {
        let mut ctx = CompileContext::new(2, &[]);
        let pm = PassManager::new()
            .with(AddTerms(1))
            .with(AlwaysFails)
            .with(AddTerms(1));
        let err = pm.run(&mut ctx).unwrap_err();
        assert_eq!(err.pass, "always-fails");
        // Only the first pass ran.
        assert_eq!(ctx.num_groups, 1);
    }

    struct AlwaysPanics;

    impl Pass for AlwaysPanics {
        fn name(&self) -> &str {
            "always-panics"
        }

        fn run(&self, _ctx: &mut CompileContext) -> Result<(), PassError> {
            panic!("simulated in-pass bug");
        }
    }

    struct OptionalMarker;

    impl Pass for OptionalMarker {
        fn name(&self) -> &str {
            "optional-marker"
        }

        fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
            ctx.num_groups += 100;
            Ok(())
        }

        fn optional(&self) -> bool {
            true
        }
    }

    #[test]
    fn panicking_pass_is_contained_as_a_pass_error() {
        let mut ctx = CompileContext::new(2, &[]);
        let pm = PassManager::new().with(AddTerms(1)).with(AlwaysPanics);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let err = pm.run(&mut ctx).unwrap_err();
        std::panic::set_hook(prev);
        assert_eq!(err.pass, "always-panics");
        assert!(err.message.contains("simulated in-pass bug"));
    }

    #[test]
    fn elapsed_budget_skips_optional_passes_only() {
        let mut ctx = CompileContext::new(2, &[]);
        let pm = PassManager::new()
            .with(AddTerms(1))
            .with(OptionalMarker)
            .with(AddTerms(1))
            .with_budget(Duration::ZERO);
        let trace = pm.run(&mut ctx).unwrap();
        // Required passes ran; the optional one did not.
        assert_eq!(ctx.num_groups, 2);
        assert_eq!(trace.pass_names(), ["add-terms", "add-terms"]);
        let skipped = trace.events_of_kind(EVENT_SKIPPED);
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].pass, "optional-marker");
    }

    #[test]
    fn without_budget_optional_passes_run() {
        let mut ctx = CompileContext::new(2, &[]);
        let pm = PassManager::new().with(OptionalMarker);
        let trace = pm.run(&mut ctx).unwrap();
        assert_eq!(ctx.num_groups, 100);
        assert!(trace.events.is_empty());
        assert!(!trace.is_degraded());
    }

    /// Fires the attached cancel token while "running".
    struct CancelsItself;

    impl Pass for CancelsItself {
        fn name(&self) -> &str {
            "cancels-itself"
        }

        fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
            if let Some(t) = &ctx.cancel {
                t.cancel();
            }
            ctx.num_groups += 1;
            Ok(())
        }
    }

    #[test]
    fn pre_fired_token_stops_the_pipeline_before_the_first_pass() {
        let mut ctx = CompileContext::new(2, &[]);
        let token = CancelToken::new();
        token.cancel();
        ctx.cancel = Some(token);
        let pm = PassManager::new().with(AddTerms(1));
        let err = pm.run(&mut ctx).unwrap_err();
        assert_eq!(err.pass, "add-terms");
        assert_eq!(err.cancellation_reason(), Some(CancelReason::Client));
        assert_eq!(ctx.num_groups, 0);
    }

    #[test]
    fn token_fired_mid_pipeline_stops_at_the_next_boundary() {
        let mut ctx = CompileContext::new(2, &[]);
        let token = CancelToken::new();
        token.cancel_deadline();
        // Replace with a live token fired *by* the middle pass.
        let token = CancelToken::new();
        ctx.cancel = Some(token);
        let pm = PassManager::new()
            .with(AddTerms(1))
            .with(CancelsItself)
            .with(AddTerms(1));
        let err = pm.run(&mut ctx).unwrap_err();
        // The cancelling pass itself completed; the *next* pass never ran.
        assert_eq!(ctx.num_groups, 2);
        assert_eq!(err.pass, "add-terms");
        assert_eq!(err.cancellation_reason(), Some(CancelReason::Client));
    }

    /// Fires the token but marks the cancellation as honored (the anytime
    /// pass's behaviour when it keeps its best-so-far snapshot).
    struct SoftCancels;

    impl Pass for SoftCancels {
        fn name(&self) -> &str {
            "soft-cancels"
        }

        fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
            if let Some(t) = &ctx.cancel {
                t.cancel();
            }
            ctx.soft_cancelled = true;
            ctx.num_groups += 1;
            Ok(())
        }
    }

    #[test]
    fn soft_cancellation_degrades_instead_of_erroring() {
        let mut ctx = CompileContext::new(2, &[]);
        ctx.cancel = Some(CancelToken::new());
        let pm = PassManager::new()
            .with(SoftCancels)
            .with(OptionalMarker)
            .with(AddTerms(1));
        let trace = pm.run(&mut ctx).unwrap();
        // The required pass after the soft cancellation still ran; the
        // optional one was skipped like under an elapsed deadline.
        assert_eq!(ctx.num_groups, 2);
        assert_eq!(trace.pass_names(), ["soft-cancels", "add-terms"]);
        let skipped = trace.events_of_kind(EVENT_SKIPPED);
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].pass, "optional-marker");
    }

    #[test]
    fn ordinary_pass_errors_are_not_cancellations() {
        let err = PassError::new("concat", "boom");
        assert_eq!(err.cancellation_reason(), None);
        let cancelled = PassError::cancelled("concat", CancelReason::Deadline);
        assert_eq!(
            cancelled.cancellation_reason(),
            Some(CancelReason::Deadline)
        );
    }

    #[test]
    fn cumulative_timings_are_monotone() {
        let mut ctx = CompileContext::new(2, &[]);
        let pm = PassManager::new()
            .with(AddTerms(1))
            .with(AddTerms(1))
            .with(AddTerms(1));
        let trace = pm.run(&mut ctx).unwrap();
        for w in trace.passes.windows(2) {
            assert!(w[0].cumulative_millis <= w[1].cumulative_millis);
        }
    }
}
