//! The concrete passes of the PHOENIX pipeline.
//!
//! Each stage of the paper's flow is one [`Pass`] over a
//! [`CompileContext`]:
//!
//! | Pass | Stage |
//! |---|---|
//! | [`GroupPass`] | IR grouping by qubit support (§IV-A) |
//! | [`SimplifySynthPass`] | group-wise BSF simplification + synthesis (Algorithm 1) |
//! | [`OrderPass`] | Tetris-like IR group ordering (§IV-C) |
//! | [`ConcatPass`] | assembly of the ordered subcircuits |
//! | [`TransformPass`] | any circuit-level rewrite (peephole, SU(4) rebase, KAK, SWAP lowering) |
//! | [`SnapshotLogicalPass`] | records the pre-routing logical circuit |
//! | [`LayoutRoutePass`] | layout search + SABRE routing on the target device |
//!
//! [`SimplifySynthPass`] fans the independent per-group work out over scoped
//! threads; results are written back by group index, so the output is
//! bit-identical for any thread count.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use phoenix_cache::{encode_slot, CompileCache, GroupArtifact};
use phoenix_circuit::transform::{
    CircuitTransform, CnotLower, KakResynthesis, Peephole, Su4Rebase,
};
use phoenix_circuit::Circuit;
use phoenix_obs::metrics::{GaugeId, HistogramId, MetricId};
use phoenix_obs::{ObsCollector, Span};
use phoenix_pauli::{CanonicalIr, PauliString};
use phoenix_router::{route_with_attempt_log, RouterOptions};

use crate::cancel::CancelToken;
use crate::group::{group_by_support, IrGroup};
use crate::order::{order_groups_interruptible, OrderOptions};
use crate::pass::{
    CompileContext, Pass, PassError, EVENT_DEGRADED, EVENT_RETRIED, EVENT_TRUNCATED,
};
use crate::simplify::{simplify_terms_interruptible, SimplifyOptions};
use crate::synth::synthesize_group;

/// The conventional CNOT cost of synthesizing `terms` without Algorithm 1:
/// `2(w-1)` CNOTs per weight-`w` exponentiation. The baseline that
/// `cnots_saved_stage2` is measured against; the group circuit's own cost
/// is its 2Q-gate count (Clifford2Q generators and ≤2Q rotations each
/// lower to at most a CNOT-equivalent).
fn naive_cnot_estimate(terms: &[(PauliString, f64)]) -> u64 {
    terms
        .iter()
        .map(|(p, _)| 2 * (p.weight().max(1) as u64 - 1))
        .sum()
}

/// Stage 1: partition the terms into IR groups by qubit support.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupPass;

impl Pass for GroupPass {
    fn name(&self) -> &str {
        "group"
    }

    fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
        ctx.groups = group_by_support(ctx.num_qubits, &ctx.terms);
        ctx.num_groups = ctx.groups.len();
        Ok(())
    }
}

/// Stage 2: per-group BSF simplification + synthesis.
///
/// Groups are independent, so the pass distributes them over
/// `threads` scoped OS threads (`0` = one per available core). Each worker
/// writes into its own index-aligned slice of the result vector, making the
/// output identical for every thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimplifySynthPass {
    /// Run Algorithm 1; when `false` each group is synthesized with
    /// conventional CNOT chains (the ablation arm).
    pub simplify: bool,
    /// Worker threads (`0` = auto, `1` = sequential).
    pub threads: usize,
    /// Per-group candidate-scan worker threads (`0` = auto, `1` =
    /// sequential), composing multiplicatively with `threads`. The output
    /// is identical for every value.
    pub scan_threads: usize,
    /// Test hook: force the group at this index to panic mid-optimization,
    /// exercising the degradation path deterministically. Leave `None`
    /// outside fault-injection tests.
    pub fault_inject_group: Option<usize>,
}

impl Default for SimplifySynthPass {
    fn default() -> Self {
        SimplifySynthPass {
            simplify: true,
            threads: 1,
            scan_threads: 1,
            fault_inject_group: None,
        }
    }
}

/// Outcome class of one group's compilation (reported as a trace event
/// when not `None`).
type GroupOutcome = Option<&'static str>;

/// One group's compiled output: circuit + implemented term sequence.
type CompiledGroup = (Circuit, Vec<(PauliString, f64)>);

/// One group's compiled output (circuit + implemented term sequence), its
/// outcome class, and its span (`Some` only when instrumented).
type GroupResult = (CompiledGroup, GroupOutcome, Option<Span>);

/// Outcome of one optimized group-compilation attempt.
enum Optimized {
    /// Compiled successfully (with any instrumentation child spans).
    Done(CompiledGroup, Vec<Span>),
    /// The cancel token fired or the deadline elapsed mid-optimization;
    /// the greedy loop was abandoned inside an epoch.
    Interrupted,
    /// Algorithm 1 or synthesis panicked (contained).
    Panicked,
}

impl SimplifySynthPass {
    /// Compiles one group with the failure modes contained: a panic inside
    /// Algorithm 1 or synthesis (reported as [`EVENT_DEGRADED`]) and an
    /// elapsed optimization deadline (reported as [`EVENT_TRUNCATED`])
    /// both fall back to the group's unsimplified conventional synthesis,
    /// which is always available and semantically equivalent.
    ///
    /// When `obs` is set, also returns the group's span (cat `group`, with
    /// `candidate-scan`/`synthesize` children on the optimized path). Only
    /// the timings depend on the run; names and args are deterministic.
    /// Runs Algorithm 1 + synthesis on `terms` with the panic contained.
    /// The cancel token and deadline are polled once per greedy epoch, so
    /// even one pathological group (hundreds of wide terms take thousands
    /// of epochs) cannot stall a cancellation for more than one epoch.
    #[allow(clippy::too_many_arguments)]
    fn optimized(
        &self,
        n: usize,
        terms: &[(PauliString, f64)],
        opts: &SimplifyOptions,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
        obs: Option<&ObsCollector>,
        fault: bool,
    ) -> Optimized {
        let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
            if fault {
                panic!("fault injection: forced panic");
            }
            let scan_start = obs.map(|o| o.now_us());
            let mut interrupted = || {
                cancel.is_some_and(|c| c.is_cancelled())
                    || deadline.is_some_and(|d| Instant::now() >= d)
            };
            let s = simplify_terms_interruptible(n, terms, opts, &mut interrupted)?;
            let synth_start = obs.map(|o| o.now_us());
            let circuit = synthesize_group(&s);
            let children = obs.map_or_else(Vec::new, |o| {
                let mut scan = Span::new("candidate-scan", "stage2");
                scan.start_us = scan_start.unwrap_or(0);
                scan.dur_us = synth_start.unwrap_or(0).saturating_sub(scan.start_us);
                let mut synth = Span::new("synthesize", "stage2");
                synth.start_us = synth_start.unwrap_or(0);
                synth.dur_us = o.now_us().saturating_sub(synth.start_us);
                vec![scan, synth]
            });
            Some(((circuit, s.term_sequence()), children))
        }));
        match attempt {
            Ok(Some((result, children))) => Optimized::Done(result, children),
            Ok(None) => Optimized::Interrupted,
            Err(_) => Optimized::Panicked,
        }
    }

    /// The cache-aware optimized path: look the group up by its canonical
    /// IR; on a hit bind the real coefficients into the cached skeleton, on
    /// a miss compile the group *slot-encoded*, cache the decoded artifact,
    /// and bind. Both directions perform the exact float operations of the
    /// uncached path (sign folding is negation, which is exact), so the
    /// output is bit-for-bit identical. Propagates [`Optimized::Panicked`]
    /// and [`Optimized::Interrupted`] exactly like
    /// [`SimplifySynthPass::optimized`] — an interrupted slot-encoded
    /// compile never inserts a partial artifact into the shared cache. The
    /// returned flag is `true` on a cache hit.
    fn compile_group_via_cache(
        &self,
        n: usize,
        group: &IrGroup,
        opts: &SimplifyOptions,
        cancel: Option<&CancelToken>,
        obs: Option<&ObsCollector>,
        cache: &CompileCache,
    ) -> (Optimized, bool) {
        let key = CanonicalIr::from_terms(n, group.terms());
        let coeffs: Vec<f64> = group.terms().iter().map(|(_, c)| *c).collect();
        let recompile = || self.optimized(n, group.terms(), opts, None, cancel, obs, false);
        if let Some(art) = cache.get_group(&key) {
            let matches = art.num_qubits() == n
                && art.terms().len() == group.terms().len()
                && art
                    .terms()
                    .iter()
                    .zip(group.terms())
                    .all(|(a, (b, _))| a == b);
            if matches {
                if let Ok(bound) = art.bind(&coeffs) {
                    if let Some(o) = obs {
                        o.metrics().incr(MetricId::CacheGroupHits);
                    }
                    return (Optimized::Done(bound, Vec::new()), true);
                }
            }
            // Digest collision or artifact mismatch: recompile below with
            // the real coefficients and leave the incumbent entry alone.
            return (recompile(), false);
        }
        if let Some(o) = obs {
            o.metrics().incr(MetricId::CacheGroupMisses);
        }
        let slot_terms: Vec<(PauliString, f64)> = group
            .terms()
            .iter()
            .enumerate()
            .map(|(i, (p, _))| (p.clone(), encode_slot(i)))
            .collect();
        let ((skeleton, slot_order), children) =
            match self.optimized(n, &slot_terms, opts, None, cancel, obs, false) {
                Optimized::Done(result, children) => (result, children),
                other => return (other, false),
            };
        let strings: Vec<PauliString> = group.terms().iter().map(|(p, _)| p.clone()).collect();
        let art = match GroupArtifact::from_slot_encoded(n, strings, skeleton, &slot_order) {
            Ok(art) => cache.insert_group(key, Arc::new(art)),
            // The skeleton is not rebindable (defensive: slot encoding
            // makes this unreachable) — compile uncached instead.
            Err(_) => return (recompile(), false),
        };
        match art.bind(&coeffs) {
            Ok(bound) => (Optimized::Done(bound, children), false),
            Err(_) => (recompile(), false),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn compile_group(
        &self,
        n: usize,
        index: usize,
        group: &IrGroup,
        opts: &SimplifyOptions,
        deadline: Option<Instant>,
        cancel: Option<&CancelToken>,
        obs: Option<&ObsCollector>,
        cache: Option<&CompileCache>,
    ) -> GroupResult {
        let start_us = obs.map(|o| o.now_us());
        let naive = || {
            (
                phoenix_circuit::synthesis::naive_circuit(n, group.terms()),
                group.terms().to_vec(),
            )
        };
        let fault = self.fault_inject_group;
        // Caching composes only with the clean optimized path: fault
        // injection and pass budgets must never leak artifacts into (or be
        // masked by) the shared cache.
        let usable_cache = cache.filter(|_| fault.is_none() && deadline.is_none());
        // A mid-loop interruption degrades to naive synthesis exactly like
        // the pre-group checks above it: past-deadline is reported as
        // truncation, while a fired cancel token stays silent (the result
        // is discarded at the next pass boundary anyway).
        let interrupt_outcome = |deadline: Option<Instant>| -> GroupOutcome {
            if deadline.is_some_and(|d| Instant::now() >= d) {
                Some(EVENT_TRUNCATED)
            } else {
                None
            }
        };
        let (result, outcome, children, cached) = if !self.simplify {
            (naive(), None, Vec::new(), None)
        } else if cancel.is_some_and(|c| c.is_cancelled()) {
            // The compilation is being abandoned: emit the cheapest valid
            // form and let the manager abort at the next pass boundary
            // (the result is discarded, so no fallback event is recorded).
            (naive(), None, Vec::new(), None)
        } else if deadline.is_some_and(|d| Instant::now() >= d) {
            (naive(), Some(EVENT_TRUNCATED), Vec::new(), None)
        } else if let Some(cache) = usable_cache {
            match self.compile_group_via_cache(n, group, opts, cancel, obs, cache) {
                (Optimized::Done(result, children), hit) => (result, None, children, Some(hit)),
                (Optimized::Interrupted, _) => {
                    (naive(), interrupt_outcome(deadline), Vec::new(), None)
                }
                (Optimized::Panicked, _) => (naive(), Some(EVENT_DEGRADED), Vec::new(), None),
            }
        } else {
            match self.optimized(
                n,
                group.terms(),
                opts,
                deadline,
                cancel,
                obs,
                fault == Some(index),
            ) {
                Optimized::Done(result, children) => (result, None, children, None),
                Optimized::Interrupted => (naive(), interrupt_outcome(deadline), Vec::new(), None),
                Optimized::Panicked => (naive(), Some(EVENT_DEGRADED), Vec::new(), None),
            }
        };
        let span = obs.map(|o| {
            let cnot = result.0.counts().two_qubit() as u64;
            let naive_cnot = naive_cnot_estimate(group.terms());
            let mut s = Span::new(format!("group {index}"), "group")
                .arg("terms", group.terms().len())
                .arg("cnot", cnot)
                .arg("naive_cnot", naive_cnot)
                .arg("cnots_saved", naive_cnot.saturating_sub(cnot));
            if let Some(kind) = outcome {
                s = s.arg("outcome", kind);
            }
            if let Some(hit) = cached {
                s = s.arg("cache", if hit { "hit" } else { "miss" });
            }
            s.start_us = start_us.unwrap_or(0);
            s.dur_us = o.now_us().saturating_sub(s.start_us);
            s.children = children;
            s
        });
        (result, outcome, span)
    }
}

impl Pass for SimplifySynthPass {
    fn name(&self) -> &str {
        if self.simplify {
            "simplify-synth"
        } else {
            "naive-synth"
        }
    }

    fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
        let n = ctx.num_qubits;
        let obs_arc = ctx.obs.clone();
        let obs = obs_arc.as_deref();
        let cache_arc = ctx.cache.clone();
        let cache = cache_arc.as_deref();
        let groups = &ctx.groups;
        let deadline = ctx.deadline;
        let cancel_token = ctx.cancel.clone();
        let cancel = cancel_token.as_ref();
        let opts = SimplifyOptions {
            scan_threads: self.scan_threads,
            ..SimplifyOptions::default()
        };
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        }
        .min(groups.len().max(1));
        if let Some(o) = obs {
            o.metrics()
                .set_gauge(GaugeId::Stage2Threads, threads as i64);
        }
        let results: Vec<GroupResult> = if threads <= 1 {
            groups
                .iter()
                .enumerate()
                .map(|(i, g)| self.compile_group(n, i, g, &opts, deadline, cancel, obs, cache))
                .collect()
        } else {
            let mut slots: Vec<Option<GroupResult>> = vec![None; groups.len()];
            let chunk = groups.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (c, (gs, out)) in groups
                    .chunks(chunk)
                    .zip(slots.chunks_mut(chunk))
                    .enumerate()
                {
                    scope.spawn(move || {
                        for (j, (g, slot)) in gs.iter().zip(out.iter_mut()).enumerate() {
                            let i = c * chunk + j;
                            *slot = Some(
                                self.compile_group(n, i, g, &opts, deadline, cancel, obs, cache),
                            );
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("every chunk was processed"))
                .collect()
        };
        // Events, spans and metrics are recorded in group-index order on
        // the coordinating thread, keeping every observability artifact
        // deterministic for any thread count (workers wrote their results
        // into index-aligned slots above).
        let mut subcircuits = Vec::with_capacity(results.len());
        let mut group_terms = Vec::with_capacity(results.len());
        for (i, ((circuit, terms), outcome, span)) in results.into_iter().enumerate() {
            if let Some(kind) = outcome {
                let why = match kind {
                    EVENT_TRUNCATED => "pass budget elapsed",
                    _ => "optimization panicked",
                };
                ctx.record_event(
                    self.name(),
                    kind,
                    format!("group {i} fell back to conventional synthesis ({why})"),
                );
            }
            if let Some(o) = obs {
                let m = o.metrics();
                let cnot = circuit.counts().two_qubit() as u64;
                let naive_cnot = naive_cnot_estimate(&terms);
                let saved = naive_cnot.saturating_sub(cnot);
                m.incr(MetricId::GroupsCompiled);
                m.add(MetricId::TermsCompiled, terms.len() as u64);
                m.add(MetricId::CnotsSavedStage2, saved);
                m.observe(HistogramId::GroupTerms, terms.len() as u64);
                m.observe(HistogramId::GroupCnots, cnot);
                m.observe(HistogramId::GroupCnotsSaved, saved);
            }
            if let Some(span) = span {
                ctx.push_span(span);
            }
            subcircuits.push(circuit);
            group_terms.push(terms);
        }
        ctx.subcircuits = subcircuits;
        ctx.group_terms = group_terms;
        Ok(())
    }
}

/// Stage 3: Tetris-like group ordering (or first-appearance order when
/// disabled, the ablation arm).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderPass {
    /// Lookahead window of the greedy assembly.
    pub lookahead: usize,
    /// Apply the Eq. (7) routing-similarity factor.
    pub routing_aware: bool,
    /// When `false`, keep first-appearance order.
    pub enabled: bool,
}

impl Default for OrderPass {
    fn default() -> Self {
        OrderPass {
            lookahead: 20,
            routing_aware: false,
            enabled: true,
        }
    }
}

impl Pass for OrderPass {
    fn name(&self) -> &str {
        if self.enabled {
            "tetris-order"
        } else {
            "program-order"
        }
    }

    fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
        if self.enabled && ctx.past_deadline() {
            // Ordering is pure optimization: past the budget deadline keep
            // first-appearance order, which is always valid.
            ctx.record_event(
                self.name(),
                EVENT_TRUNCATED,
                "pass budget elapsed; keeping first-appearance group order",
            );
            ctx.order = (0..ctx.subcircuits.len()).collect();
            return Ok(());
        }
        ctx.order = if self.enabled {
            // The token is polled inside the greedy loop (not just at pass
            // boundaries): a request abandoned mid-ordering stops paying
            // for lookahead scoring immediately. The first-appearance
            // fallback is always valid; the manager aborts at the next
            // boundary, so — like stage 2's cheap naive fallback — no
            // event is recorded for a result that is discarded anyway.
            let cancel = ctx.cancel.clone();
            order_groups_interruptible(
                &ctx.subcircuits,
                &OrderOptions {
                    lookahead: self.lookahead,
                    routing_aware: self.routing_aware,
                },
                &mut || cancel.as_ref().is_some_and(|t| t.is_cancelled()),
            )
            .unwrap_or_else(|| (0..ctx.subcircuits.len()).collect())
        } else {
            (0..ctx.subcircuits.len()).collect()
        };
        if let Some(obs) = &ctx.obs {
            let m = obs.metrics();
            m.set_gauge(GaugeId::OrderLookahead, self.lookahead as i64);
            if self.enabled {
                m.add(MetricId::OrderedGroups, ctx.order.len() as u64);
            }
        }
        Ok(())
    }
}

/// Assembles the ordered subcircuits into the working circuit and records
/// the emitted term order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConcatPass;

impl Pass for ConcatPass {
    fn name(&self) -> &str {
        "concat"
    }

    fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
        if ctx.order.len() != ctx.subcircuits.len() {
            return Err(PassError::new(
                self.name(),
                format!(
                    "order permutes {} groups but stage 2 produced {}",
                    ctx.order.len(),
                    ctx.subcircuits.len()
                ),
            ));
        }
        let mut circuit = Circuit::new(ctx.num_qubits);
        let mut term_order = Vec::with_capacity(ctx.terms.len());
        for &i in &ctx.order {
            circuit.append(&ctx.subcircuits[i]);
            term_order.extend(ctx.group_terms[i].iter().cloned());
        }
        ctx.circuit = circuit;
        ctx.term_order = term_order;
        Ok(())
    }
}

/// Adapter running any [`CircuitTransform`] on the working circuit.
pub struct TransformPass {
    transform: Box<dyn CircuitTransform>,
    optional: bool,
}

impl std::fmt::Debug for TransformPass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("TransformPass")
            .field(&self.transform.name())
            .finish()
    }
}

impl TransformPass {
    /// Wraps a circuit transform as a required pass.
    pub fn new(transform: impl CircuitTransform + 'static) -> Self {
        TransformPass {
            transform: Box::new(transform),
            optional: false,
        }
    }

    /// Marks the pass as skippable under an elapsed pass budget (builder
    /// style). Only safe for transforms that purely reduce gate count —
    /// a representation-changing transform (rebase, lowering) must stay
    /// required.
    pub fn skippable(mut self) -> Self {
        self.optional = true;
        self
    }

    /// The peephole-optimization pass (skippable under budget pressure).
    pub fn peephole() -> Self {
        TransformPass::new(Peephole).skippable()
    }

    /// The SU(4)-rebase pass (required: later stages expect the SU(4)
    /// gate set).
    pub fn su4_rebase() -> Self {
        TransformPass::new(Su4Rebase)
    }

    /// The KAK-resynthesis pass (skippable under budget pressure).
    pub fn kak_resynthesis() -> Self {
        TransformPass::new(KakResynthesis).skippable()
    }

    /// The SWAP-/structural-lowering pass into `{1Q, CNOT}` (required:
    /// output must not contain symbolic SWAPs).
    pub fn swap_lower() -> Self {
        TransformPass::new(CnotLower)
    }
}

impl Pass for TransformPass {
    fn name(&self) -> &str {
        self.transform.name()
    }

    fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
        ctx.circuit = self.transform.apply(&ctx.circuit);
        Ok(())
    }

    fn optional(&self) -> bool {
        self.optional
    }
}

/// Records the working circuit as the pre-routing logical circuit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotLogicalPass;

impl Pass for SnapshotLogicalPass {
    fn name(&self) -> &str {
        "snapshot-logical"
    }

    fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
        ctx.logical = Some(ctx.circuit.clone());
        Ok(())
    }
}

/// Layout search + SABRE routing on the context's device. The working
/// circuit becomes the physical-indexed routed circuit (SWAPs still
/// symbolic — follow with [`TransformPass::swap_lower`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutRoutePass {
    /// SABRE tuning knobs.
    pub router: RouterOptions,
    /// Random-restart trials of the layout search.
    pub layout_trials: usize,
}

impl Default for LayoutRoutePass {
    fn default() -> Self {
        LayoutRoutePass {
            router: RouterOptions::default(),
            layout_trials: 3,
        }
    }
}

impl Pass for LayoutRoutePass {
    fn name(&self) -> &str {
        "layout-route"
    }

    fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
        let device = ctx
            .device
            .as_ref()
            .ok_or_else(|| PassError::new(self.name(), "no target device in context"))?;
        let device_qubits = device.num_qubits();
        let (routed, attempts) =
            route_with_attempt_log(&ctx.circuit, device, &self.router, self.layout_trials)
                .map_err(|e| PassError::new(self.name(), format!("routing failed: {e}")))?;
        let name = self.name().to_string();
        for a in &attempts {
            if let Some(error) = &a.error {
                ctx.record_event(
                    &name,
                    EVENT_RETRIED,
                    format!("{} layout abandoned ({}); retried", a.strategy, error),
                );
            }
        }
        if let Some(obs) = ctx.obs.clone() {
            let m = obs.metrics();
            m.add(MetricId::RouterAttempts, attempts.len() as u64);
            m.add(MetricId::SabreSwaps, routed.num_swaps as u64);
            m.set_gauge(GaugeId::DeviceQubits, device_qubits as i64);
            // Attempts ran back to back ending roughly now; reconstruct
            // their start offsets from the per-attempt durations.
            let total: u64 = attempts.iter().map(|a| a.micros).sum();
            let mut start = obs.now_us().saturating_sub(total);
            for a in &attempts {
                let mut span = Span::new(format!("route:{}", a.strategy), "route");
                span = match (&a.swaps, &a.error) {
                    (Some(swaps), _) => span.arg("swaps", swaps),
                    (None, Some(error)) => span.arg("error", error),
                    (None, None) => span,
                };
                span.start_us = start;
                span.dur_us = a.micros;
                start = start.saturating_add(a.micros);
                ctx.push_span(span);
            }
        }
        let l2p = |layout: &phoenix_router::Layout| -> Vec<usize> {
            (0..ctx.num_qubits)
                .map(|l| layout.phys(l).expect("routed layout maps every logical"))
                .collect()
        };
        ctx.initial_layout = Some(l2p(&routed.initial_layout));
        ctx.final_layout = Some(l2p(&routed.final_layout));
        ctx.circuit = routed.circuit;
        ctx.num_swaps = routed.num_swaps;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::pass::PassManager;
    use phoenix_topology::CouplingGraph;

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.parse().unwrap(), 0.02 * (i + 1) as f64))
            .collect()
    }

    #[test]
    fn stage2_is_identical_for_any_thread_count() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY", "ZZI", "IZZ", "XIX"]);
        let run = |threads: usize| {
            let mut ctx = CompileContext::new(3, &t);
            GroupPass.run(&mut ctx).unwrap();
            SimplifySynthPass {
                threads,
                ..SimplifySynthPass::default()
            }
            .run(&mut ctx)
            .unwrap();
            (ctx.subcircuits, ctx.group_terms)
        };
        let sequential = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), sequential, "threads = {threads}");
        }
    }

    #[test]
    fn fault_injected_group_degrades_to_naive_synthesis() {
        let t = terms(&["ZYY", "ZZY", "IZZ", "XIX"]);
        let mut ctx = CompileContext::new(3, &t);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // contained panics stay quiet
        let pm = PassManager::new().with(GroupPass).with(SimplifySynthPass {
            fault_inject_group: Some(0),
            ..SimplifySynthPass::default()
        });
        let trace = pm.run(&mut ctx).unwrap();
        std::panic::set_hook(prev);
        assert!(trace.is_degraded());
        let degraded = trace.events_of_kind(crate::pass::EVENT_DEGRADED);
        assert_eq!(degraded.len(), 1);
        assert!(degraded[0].detail.contains("group 0"));
        // The failed group carries its conventional synthesis; the others
        // are untouched.
        let naive = phoenix_circuit::synthesis::naive_circuit(3, ctx.groups[0].terms());
        assert_eq!(ctx.subcircuits[0], naive);
        assert_eq!(ctx.group_terms[0], ctx.groups[0].terms().to_vec());
        assert_eq!(ctx.subcircuits.len(), ctx.groups.len());
    }

    #[test]
    fn fault_injection_is_contained_for_any_thread_count() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY", "ZZI", "IZZ", "XIX"]);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let run = |threads: usize| {
            let mut ctx = CompileContext::new(3, &t);
            let pm = PassManager::new().with(GroupPass).with(SimplifySynthPass {
                threads,
                fault_inject_group: Some(1),
                ..SimplifySynthPass::default()
            });
            let trace = pm.run(&mut ctx).unwrap();
            (ctx.subcircuits, ctx.group_terms, trace.events)
        };
        let sequential = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), sequential, "threads = {threads}");
        }
        std::panic::set_hook(prev);
        assert!(sequential
            .2
            .iter()
            .any(|e| e.kind == crate::pass::EVENT_DEGRADED));
    }

    #[test]
    fn zero_budget_truncates_stage2_and_ordering_but_compiles() {
        let t = terms(&["ZYY", "ZZY", "IZZ", "XIX"]);
        let mut ctx = CompileContext::new(3, &t);
        let pm = PassManager::new()
            .with(GroupPass)
            .with(SimplifySynthPass::default())
            .with(OrderPass::default())
            .with(ConcatPass)
            .with(TransformPass::peephole())
            .with_budget(std::time::Duration::ZERO);
        let trace = pm.run(&mut ctx).unwrap();
        assert!(!ctx.circuit.is_empty());
        // Stage 2 and ordering truncated; peephole skipped outright.
        assert!(!trace
            .events_of_kind(crate::pass::EVENT_TRUNCATED)
            .is_empty());
        assert_eq!(trace.events_of_kind(crate::pass::EVENT_SKIPPED).len(), 1);
        // Emitted terms are still a permutation of the input.
        assert_eq!(ctx.term_order.len(), t.len());
    }

    #[test]
    fn concat_rejects_mismatched_order() {
        let t = terms(&["ZZI", "IXX"]);
        let mut ctx = CompileContext::new(3, &t);
        GroupPass.run(&mut ctx).unwrap();
        SimplifySynthPass::default().run(&mut ctx).unwrap();
        ctx.order = vec![0];
        assert!(ConcatPass.run(&mut ctx).is_err());
    }

    #[test]
    fn layout_route_requires_a_device() {
        let mut ctx = CompileContext::new(2, &terms(&["ZZ"]));
        let err = LayoutRoutePass::default().run(&mut ctx).unwrap_err();
        assert_eq!(err.pass, "layout-route");
    }

    #[test]
    fn full_hardware_sequence_respects_coupling() {
        let t = terms(&["ZZII", "IZZI", "IIZZ", "ZIIZ"]);
        let dev = CouplingGraph::line(4);
        let mut ctx = CompileContext::for_device(4, &t, &dev);
        let pm = PassManager::new()
            .with(GroupPass)
            .with(SimplifySynthPass::default())
            .with(OrderPass {
                routing_aware: true,
                ..OrderPass::default()
            })
            .with(ConcatPass)
            .with(TransformPass::peephole())
            .with(SnapshotLogicalPass)
            .with(LayoutRoutePass::default())
            .with(TransformPass::swap_lower())
            .with(TransformPass::peephole());
        let trace = pm.run(&mut ctx).unwrap();
        assert_eq!(trace.passes.len(), 9);
        for g in ctx.circuit.gates() {
            if let (a, Some(b)) = g.qubits() {
                assert!(dev.contains_edge(a, b), "gate {g} violates coupling");
            }
        }
        assert!(ctx.logical.is_some());
    }
}
