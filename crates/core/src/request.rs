//! The unified compilation API: [`CompileRequest`] → [`CompileOutcome`].
//!
//! [`PhoenixCompiler`] grew one entry point per (target ISA × fallibility ×
//! trace retention) combination — twenty methods that all assemble the same
//! canonical pass sequence. [`CompileRequest`] collapses them into one
//! builder:
//!
//! ```
//! use phoenix_core::{CompileRequest, Target};
//! use phoenix_pauli::PauliString;
//!
//! let terms: Vec<(PauliString, f64)> = ["ZYY", "ZZY", "XYY", "XZY"]
//!     .iter()
//!     .map(|s| (s.parse().unwrap(), 0.1))
//!     .collect();
//! let outcome = CompileRequest::new(3, &terms)
//!     .target(Target::Cnot)
//!     .trace(true)
//!     .obs(true)
//!     .run()
//!     .unwrap();
//! assert!(outcome.circuit.counts().cnot < 16);
//! assert!(outcome.trace.is_some());
//! let report = outcome.obs.unwrap();
//! assert_eq!(report.metrics.counter("groups_compiled"), Some(1));
//! ```
//!
//! The legacy `compile*` methods survive as thin wrappers over this type
//! (see `pipeline.rs`), so downstream code migrates at its own pace; the
//! golden-equivalence tests in `crates/core/tests/compile_request.rs` pin
//! every wrapper to the request path bit-for-bit.

use std::sync::Arc;

use phoenix_cache::{BindError, CompileCache, StructureArtifact};
use phoenix_circuit::Circuit;
use phoenix_device::Device;
use phoenix_obs::report::ObsEvent;
use phoenix_obs::{metrics, MetricId, ObsCollector, ObsReport, Span};
use phoenix_pauli::PauliString;
use phoenix_topology::CouplingGraph;

use crate::error::{validate_device, validate_program, PhoenixError};
use crate::observe::MetricsObserver;
use crate::parametric;
use crate::pass::{CompileContext, PassTrace};
use crate::passes::TransformPass;
use crate::pipeline::{
    device_backend, extract_hardware_program, CompiledProgram, HardwareProgram, PhoenixCompiler,
    PhoenixOptions,
};

/// The compilation target a [`CompileRequest`] lowers to.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum Target {
    /// The ordered high-level IR-group circuit (Clifford2Q generators +
    /// ≤2Q Pauli rotations), still ISA-independent.
    #[default]
    Logical,
    /// The CNOT ISA (lowered + peephole-optimized).
    Cnot,
    /// The SU(4) ISA: SU(4) blocks emitted directly from the simplified IR.
    Su4,
    /// The CNOT ISA *through* the SU(4) layer: blocks KAK-resynthesized to
    /// their Weyl floor before lowering.
    CnotViaKak,
    /// **Deprecated**: hardware-aware compilation onto a bare coupling
    /// graph. Normalized on execution to
    /// `Target::Device(Device::bare(graph))` — a noiseless CNOT-ISA device
    /// — so outputs are bit-for-bit identical to [`Target::Device`] with
    /// that device (pinned by `crates/core/tests/fleet.rs`). Prefer
    /// [`Target::Device`], which also carries a native ISA and error model.
    Hardware(CouplingGraph),
    /// Hardware-aware compilation onto a [`Device`]: routing-aware
    /// ordering, CNOT lowering, layout search + SABRE routing, SWAP
    /// lowering, peephole, then rebase into the device's native ISA
    /// (see [`phoenix_device::NativeIsa`]).
    Device(Device),
    /// Compile one program against every device of a fleet in parallel
    /// and keep the outcome of the member with the highest predicted
    /// fidelity. [`CompileRequest::run`] returns the best member's
    /// outcome; use [`CompileRequest::fleet`] for the full ranking.
    Fleet(Vec<Device>),
}

/// A single compilation, fully described: program, target, options, and
/// which observability artifacts to retain.
///
/// Build with [`CompileRequest::new`], refine with the builder methods,
/// execute with [`CompileRequest::run`].
#[derive(Debug, Clone)]
pub struct CompileRequest {
    num_qubits: usize,
    terms: Vec<(PauliString, f64)>,
    target: Target,
    options: PhoenixOptions,
    trace: bool,
    obs: bool,
    cache: Option<Arc<CompileCache>>,
}

impl CompileRequest {
    /// A request to compile `terms` on `num_qubits` qubits with default
    /// options, targeting [`Target::Logical`], retaining neither trace nor
    /// observability report.
    pub fn new(num_qubits: usize, terms: &[(PauliString, f64)]) -> Self {
        CompileRequest {
            num_qubits,
            terms: terms.to_vec(),
            target: Target::default(),
            options: PhoenixOptions::default(),
            trace: false,
            obs: false,
            cache: None,
        }
    }

    /// Sets the compilation target (builder style).
    pub fn target(mut self, target: Target) -> Self {
        self.target = target;
        self
    }

    /// Sets the compiler options (builder style).
    pub fn options(mut self, options: PhoenixOptions) -> Self {
        self.options = options;
        self
    }

    /// Whether to retain the [`PassTrace`] in the outcome. The manager
    /// records it either way; this only controls retention.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Whether to instrument the compilation: attach an
    /// [`ObsCollector`] (span tree + per-compilation metrics), append a
    /// [`MetricsObserver`] after any verifying observer, and enable
    /// process-global metric recording for substrate crates. The resulting
    /// [`ObsReport`] lands in [`CompileOutcome::obs`].
    pub fn obs(mut self, on: bool) -> Self {
        self.obs = on;
        self
    }

    /// Attaches a shared parametric compilation cache (builder style).
    ///
    /// With a cache attached, [`CompileRequest::run`] splits into a
    /// structure phase (memoized in the cache, keyed by the Zobrist digest
    /// of the angle-erased canonical IR) and an angle-binding phase, and
    /// stage 2 additionally reuses per-group artifacts. Outputs are
    /// bit-for-bit identical to the uncached path. Requests carrying a pass
    /// budget or verification fall back to the legacy path — time-boxed or
    /// verifier-audited runs must not be served from (or leak into) a
    /// cache.
    pub fn cache(mut self, cache: &Arc<CompileCache>) -> Self {
        self.cache = Some(Arc::clone(cache));
        self
    }

    /// Runs only the structure phase: grouping, simplification, ordering
    /// and synthesis on the angle-erased program, returning the rebindable
    /// [`StructureArtifact`]. Served from the attached cache when possible.
    /// The request's coefficients are ignored — only the Pauli strings
    /// (and their order) matter.
    ///
    /// # Errors
    ///
    /// Returns a typed [`PhoenixError`] on invalid input or a failing pass.
    pub fn structure(self) -> Result<Arc<StructureArtifact>, PhoenixError> {
        let routing_aware = matches!(
            self.target,
            Target::Hardware(_) | Target::Device(_) | Target::Fleet(_)
        );
        let (artifact, _, _) = parametric::obtain_structure(
            self.num_qubits,
            &self.terms,
            &self.options,
            routing_aware,
            self.cache.as_ref(),
            None,
        )?;
        Ok(artifact)
    }

    /// Compiles with `angles` substituted for the request's coefficients:
    /// obtains the structure artifact (from the cache when possible), binds
    /// the angles into the skeleton, and lowers to the requested target.
    /// This is the VQE-sweep entry point — on a warm cache, everything but
    /// the substitution and target lowering is skipped.
    ///
    /// # Errors
    ///
    /// Returns a typed [`PhoenixError`] on invalid input, an angle vector
    /// whose length differs from the term count, or a non-finite angle.
    pub fn bind(self, angles: &[f64]) -> Result<CompileOutcome, PhoenixError> {
        let angles = angles.to_vec();
        self.run_split(Some(angles))
    }

    /// Executes the request.
    ///
    /// # Errors
    ///
    /// Returns a typed [`PhoenixError`] on invalid input, an unroutable
    /// device, a failing pass, or a rejected verification boundary — never
    /// panics on bad input.
    pub fn run(mut self) -> Result<CompileOutcome, PhoenixError> {
        self = self.normalize();
        if let Target::Fleet(devices) = &self.target {
            let devices = devices.clone();
            self.target = Target::Logical;
            return self.fleet(&devices)?.into_best();
        }
        if self.cache.is_some() && parametric::split_path_allowed(&self.options) {
            return self.run_split(None);
        }
        validate_program(self.num_qubits, &self.terms)?;
        let compiler = PhoenixCompiler::new(self.options.clone());
        let mut ctx = match &self.target {
            Target::Device(device) => {
                validate_device(self.num_qubits, device.graph())?;
                CompileContext::for_device(self.num_qubits, &self.terms, device.graph())
            }
            _ => CompileContext::new(self.num_qubits, &self.terms),
        };
        let manager = match &self.target {
            Target::Logical => compiler.logical_passes(false),
            Target::Cnot => compiler
                .logical_passes(false)
                .with(TransformPass::peephole()),
            Target::Su4 => compiler
                .logical_passes(false)
                .with(TransformPass::su4_rebase()),
            Target::CnotViaKak => compiler
                .logical_passes(false)
                .with(TransformPass::su4_rebase())
                .with(TransformPass::kak_resynthesis())
                .with(TransformPass::peephole()),
            Target::Device(device) => compiler.logical_passes(true).append(device_backend(
                device,
                &self.options.router,
                self.options.layout_trials,
            )),
            // `normalize` rewrote Hardware to Device and the Fleet arm
            // returned above; kept for match exhaustiveness only.
            Target::Hardware(_) | Target::Fleet(_) => {
                unreachable!("target normalized before dispatch")
            }
        };
        let collector = if self.obs {
            // Turn on process-global recording so router/simulator
            // counters flow; left on — other instrumented compilations may
            // be in flight, and the disabled-path cost is one relaxed load.
            metrics::set_enabled(true);
            Some(Arc::new(ObsCollector::new()))
        } else {
            None
        };
        ctx.obs = collector.clone();
        ctx.cancel = self.options.cancel.clone();
        // The metrics collector goes last so validators attached by
        // `logical_passes` (BoundaryVerifier) shield it, and so it sees
        // their `verified` events (see `PassManager::with_observer`).
        let manager = if self.obs {
            manager.with_observer(Arc::new(MetricsObserver))
        } else {
            manager
        };
        let trace = manager.run(&mut ctx)?;
        let obs = collector.map(|c| {
            c.finish(
                trace
                    .events
                    .iter()
                    .map(|e| ObsEvent {
                        pass: e.pass.clone(),
                        kind: e.kind.clone(),
                        detail: e.detail.clone(),
                    })
                    .collect(),
            )
        });
        let num_groups = ctx.num_groups;
        let depth_reached = ctx.depth_reached;
        let term_order = std::mem::take(&mut ctx.term_order);
        let (circuit, hardware) = match &self.target {
            Target::Device(_) => {
                let hw = extract_hardware_program(ctx)?;
                (hw.circuit.clone(), Some(hw))
            }
            _ => (ctx.circuit, None),
        };
        Ok(CompileOutcome {
            circuit,
            num_groups,
            term_order,
            hardware,
            depth_reached,
            trace: if self.trace { Some(trace) } else { None },
            obs,
        })
    }

    /// Compiles the request's program against every device of `devices` in
    /// parallel and ranks the successful outcomes by predicted fidelity.
    ///
    /// Each member compiles exactly as [`Target::Device`] on that device
    /// would — routing onto its topology, rebasing into its native ISA,
    /// retaining trace/obs per the request's flags — via a deterministic
    /// [`std::thread::scope`] fan-out (the stage-2 discipline): the ranked
    /// outcome is identical for every [`PhoenixOptions::fleet_threads`]
    /// value, and a fleet of one equals the single-device path bit for
    /// bit. An attached [`CompileCache`] is shared across members, so the
    /// (device-independent) structure phase is computed once per program.
    ///
    /// Ties in predicted fidelity keep the input device order. The
    /// request's own `target` field is ignored.
    ///
    /// # Errors
    ///
    /// Returns [`PhoenixError::EmptyFleet`] when `devices` is empty.
    /// Per-device failures (e.g. a device too small for the program) do
    /// not fail the fleet — they land in [`FleetOutcome::failed`].
    pub fn fleet(mut self, devices: &[Device]) -> Result<FleetOutcome, PhoenixError> {
        if devices.is_empty() {
            return Err(PhoenixError::EmptyFleet);
        }
        if metrics::enabled() {
            metrics::global().incr(MetricId::FleetCompiles);
            metrics::global().add(MetricId::FleetMembersCompiled, devices.len() as u64);
        }
        // Per-member targets are assigned below; drop any fleet payload so
        // member clones stay cheap.
        self.target = Target::Logical;
        let base = &self;
        let compile_member = |dev: &Device| -> Result<FleetEntry, (String, PhoenixError)> {
            let req = base.clone().target(Target::Device(dev.clone()));
            match req.run() {
                Ok(outcome) => Ok(FleetEntry {
                    fidelity: dev.predicted_fidelity(&outcome.circuit),
                    device: dev.clone(),
                    outcome,
                }),
                Err(e) => Err((dev.name().to_string(), e)),
            }
        };
        let threads = match self.options.fleet_threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        }
        .clamp(1, devices.len());
        let mut slots: Vec<Option<Result<FleetEntry, (String, PhoenixError)>>> =
            devices.iter().map(|_| None).collect();
        if threads == 1 {
            for (dev, slot) in devices.iter().zip(slots.iter_mut()) {
                *slot = Some(compile_member(dev));
            }
        } else {
            // Deterministic fan-out, stage-2 style: contiguous chunks into
            // index-aligned slots, so results are position-keyed and the
            // chunking never affects the outcome.
            let chunk = devices.len().div_ceil(threads);
            std::thread::scope(|s| {
                for (dev_chunk, slot_chunk) in devices.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                    let compile_member = &compile_member;
                    s.spawn(move || {
                        for (dev, slot) in dev_chunk.iter().zip(slot_chunk.iter_mut()) {
                            *slot = Some(compile_member(dev));
                        }
                    });
                }
            });
        }
        let mut ranked = Vec::new();
        let mut failed = Vec::new();
        for slot in slots {
            match slot {
                Some(Ok(entry)) => ranked.push(entry),
                Some(Err(fail)) => failed.push(fail),
                // Every slot is written by its chunk's worker before the
                // scope joins.
                None => unreachable!("fleet slot left unwritten"),
            }
        }
        // Stable sort: fidelity descending, input order breaking ties.
        ranked.sort_by(|a, b| b.fidelity.total_cmp(&a.fidelity));
        Ok(FleetOutcome { ranked, failed })
    }

    /// Rewrites the deprecated [`Target::Hardware`] to its exact modern
    /// equivalent, [`Target::Device`] on a bare (noiseless, CNOT-ISA)
    /// device, so the execution paths only ever dispatch on `Device`.
    fn normalize(mut self) -> Self {
        if matches!(self.target, Target::Hardware(_)) {
            if let Target::Hardware(graph) = std::mem::replace(&mut self.target, Target::Logical) {
                self.target = Target::Device(Device::bare(graph));
            }
        }
        self
    }

    /// The split structure/bind execution path: obtain the structure
    /// artifact (cache-aware), bind the angles (`explicit_angles`, or the
    /// request's own coefficients), then run the target's circuit-level
    /// lowering on the bound circuit. The retained trace honestly reflects
    /// what ran: on a program-cache hit it contains only the lowering
    /// passes.
    fn run_split(
        mut self,
        explicit_angles: Option<Vec<f64>>,
    ) -> Result<CompileOutcome, PhoenixError> {
        self = self.normalize();
        if matches!(self.target, Target::Fleet(_)) {
            // Fleet + bind: substitute the angles into the coefficients and
            // take the fleet path — each member re-splits internally, so a
            // warm cache still serves the shared structure phase.
            if let Some(angles) = explicit_angles {
                if angles.len() != self.terms.len() {
                    return Err(PhoenixError::Bind(BindError::AngleCount {
                        expected: self.terms.len(),
                        got: angles.len(),
                    }));
                }
                for ((_, c), a) in self.terms.iter_mut().zip(&angles) {
                    *c = *a;
                }
            }
            return self.run();
        }
        if explicit_angles.is_none() {
            // Binding the request's own coefficients: enforce the same
            // up-front validation as the legacy path (a NaN coefficient is
            // rejected before any pass runs).
            validate_program(self.num_qubits, &self.terms)?;
        }
        if let Target::Device(device) = &self.target {
            validate_device(self.num_qubits, device.graph())?;
        }
        let collector = if self.obs {
            metrics::set_enabled(true);
            Some(Arc::new(ObsCollector::new()))
        } else {
            None
        };
        let routing_aware = matches!(self.target, Target::Device(_));
        let (artifact, _hit, mut trace) = parametric::obtain_structure(
            self.num_qubits,
            &self.terms,
            &self.options,
            routing_aware,
            self.cache.as_ref(),
            collector.as_ref(),
        )?;
        let angles: Vec<f64> = match explicit_angles {
            Some(a) => a,
            None => self.terms.iter().map(|(_, c)| *c).collect(),
        };
        let bind_start = collector.as_ref().map(|c| c.now_us());
        let bound = artifact.bind(&angles)?;
        if let Some(c) = &collector {
            let mut span = Span::new("bind", "bind");
            span.start_us = bind_start.unwrap_or(0);
            span.dur_us = c.now_us().saturating_sub(span.start_us);
            c.push_root(span);
        }
        let mut ctx = match &self.target {
            Target::Device(device) => {
                CompileContext::for_device(self.num_qubits, &self.terms, device.graph())
            }
            _ => CompileContext::new(self.num_qubits, &self.terms),
        };
        ctx.circuit = bound.circuit;
        ctx.term_order = bound.term_order;
        ctx.num_groups = bound.num_groups;
        ctx.obs = collector.clone();
        ctx.cancel = self.options.cancel.clone();
        let manager = parametric::lowering_manager(&self.target, &self.options);
        let manager = if self.obs {
            manager.with_observer(Arc::new(MetricsObserver))
        } else {
            manager
        };
        let lower_trace = manager.run(&mut ctx)?;
        trace.passes.extend(lower_trace.passes);
        trace.events.extend(lower_trace.events);
        let obs = collector.map(|c| {
            c.finish(
                trace
                    .events
                    .iter()
                    .map(|e| ObsEvent {
                        pass: e.pass.clone(),
                        kind: e.kind.clone(),
                        detail: e.detail.clone(),
                    })
                    .collect(),
            )
        });
        let num_groups = ctx.num_groups;
        let term_order = std::mem::take(&mut ctx.term_order);
        let (circuit, hardware) = match &self.target {
            Target::Device(_) => {
                let hw = extract_hardware_program(ctx)?;
                (hw.circuit.clone(), Some(hw))
            }
            _ => (ctx.circuit, None),
        };
        Ok(CompileOutcome {
            circuit,
            num_groups,
            term_order,
            hardware,
            // The split path is gated on `pass_budget.is_none()`, so no
            // anytime deepening ran.
            depth_reached: None,
            trace: if self.trace { Some(trace) } else { None },
            obs,
        })
    }
}

/// Everything a compilation produced.
///
/// `circuit` is always the final circuit of the requested target (for
/// [`Target::Hardware`] it equals `hardware.circuit`); the optional fields
/// are populated according to the request's target and retention flags.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// The compiled circuit in the requested target ISA.
    pub circuit: Circuit,
    /// Number of IR groups the program decomposed into.
    pub num_groups: usize,
    /// The input terms in the order the emitted circuit implements them.
    pub term_order: Vec<(PauliString, f64)>,
    /// The full hardware program ([`Target::Hardware`] only).
    pub hardware: Option<HardwareProgram>,
    /// Deepening rounds the anytime optimizer completed (budgeted compiles
    /// only; `None` on the legacy unbudgeted path). `0` means the naive
    /// round-0 baseline was returned.
    pub depth_reached: Option<usize>,
    /// The pass trace (when requested via [`CompileRequest::trace`]).
    pub trace: Option<PassTrace>,
    /// The observability report (when requested via
    /// [`CompileRequest::obs`]).
    pub obs: Option<ObsReport>,
}

impl CompileOutcome {
    /// The logical-compilation view of this outcome.
    pub fn into_program(self) -> CompiledProgram {
        CompiledProgram {
            circuit: self.circuit,
            num_groups: self.num_groups,
            term_order: self.term_order,
        }
    }

    /// Splits into the logical program and the recorded trace (empty when
    /// trace retention was off).
    pub fn into_program_and_trace(mut self) -> (CompiledProgram, PassTrace) {
        let trace = self.trace.take().unwrap_or_default();
        (self.into_program(), trace)
    }

    /// Splits into the final circuit and the recorded trace (empty when
    /// trace retention was off).
    pub fn into_circuit_and_trace(self) -> (Circuit, PassTrace) {
        (self.circuit, self.trace.unwrap_or_default())
    }

    /// Splits into the hardware program and the recorded trace.
    ///
    /// # Errors
    ///
    /// Returns the outcome unchanged when the request did not target
    /// hardware.
    pub fn into_hardware_and_trace(mut self) -> Result<(HardwareProgram, PassTrace), Box<Self>> {
        let trace = self.trace.take().unwrap_or_default();
        match self.hardware.take() {
            Some(hw) => Ok((hw, trace)),
            None => Err(Box::new(self)),
        }
    }
}

/// One fleet member's compilation: the device, its predicted fidelity for
/// the compiled circuit, and the full per-device outcome (trace and obs
/// retention apply per member, exactly as for a single-device request).
#[derive(Debug, Clone)]
pub struct FleetEntry {
    /// The device this member compiled onto.
    pub device: Device,
    /// Predicted fidelity of the compiled circuit on the device (the
    /// product of per-gate and readout success probabilities; see
    /// [`Device::predicted_fidelity`]).
    pub fidelity: f64,
    /// The member's compilation outcome, hardware program included.
    pub outcome: CompileOutcome,
}

/// The result of compiling one program against a fleet of devices.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    /// Successful members, best predicted fidelity first; ties keep the
    /// input device order.
    pub ranked: Vec<FleetEntry>,
    /// Members that failed to compile, as `(device name, error)`, in
    /// input device order. A failed member never fails the fleet.
    pub failed: Vec<(String, PhoenixError)>,
}

impl FleetOutcome {
    /// The best-ranked member, if any member compiled.
    pub fn best(&self) -> Option<&FleetEntry> {
        self.ranked.first()
    }

    /// Consumes the fleet outcome into the best member's
    /// [`CompileOutcome`].
    ///
    /// # Errors
    ///
    /// When no member compiled, returns the first member's error (the
    /// fleet is never empty — [`CompileRequest::fleet`] rejects that up
    /// front).
    pub fn into_best(self) -> Result<CompileOutcome, PhoenixError> {
        let mut failed = self.failed;
        match self.ranked.into_iter().next() {
            Some(entry) => Ok(entry.outcome),
            None if failed.is_empty() => Err(PhoenixError::EmptyFleet),
            None => Err(failed.remove(0).1),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.parse().unwrap(), 0.02 * (i + 1) as f64))
            .collect()
    }

    #[test]
    fn default_request_targets_logical_without_artifacts() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
        let out = CompileRequest::new(3, &t).run().unwrap();
        assert_eq!(out.num_groups, 1);
        assert!(out.trace.is_none());
        assert!(out.obs.is_none());
        assert!(out.hardware.is_none());
        assert!(!out.circuit.is_empty());
    }

    #[test]
    fn hardware_target_populates_the_hardware_program() {
        let t = terms(&["ZZII", "IZZI", "IIZZ"]);
        let dev = CouplingGraph::line(4);
        let out = CompileRequest::new(4, &t)
            .target(Target::Hardware(dev.clone()))
            .trace(true)
            .run()
            .unwrap();
        let (hw, trace) = out.into_hardware_and_trace().unwrap();
        assert!(!trace.passes.is_empty());
        for g in hw.circuit.gates() {
            if let (a, Some(b)) = g.qubits() {
                assert!(dev.contains_edge(a, b), "gate {g} violates coupling");
            }
        }
    }

    #[test]
    fn non_hardware_outcome_refuses_hardware_extraction() {
        let t = terms(&["ZZ"]);
        let out = CompileRequest::new(2, &t).run().unwrap();
        assert!(out.into_hardware_and_trace().is_err());
    }

    #[test]
    fn obs_report_carries_spans_metrics_and_events() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
        let out = CompileRequest::new(3, &t)
            .target(Target::Cnot)
            .obs(true)
            .run()
            .unwrap();
        let report = out.obs.unwrap();
        assert_eq!(report.root.name, "pipeline");
        let names: Vec<&str> = report
            .root
            .children
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "group",
                "simplify-synth",
                "tetris-order",
                "concat",
                "peephole"
            ]
        );
        assert_eq!(report.metrics.counter("passes_run"), Some(5));
        assert_eq!(report.metrics.counter("groups_compiled"), Some(1));
        assert_eq!(report.metrics.counter("terms_compiled"), Some(4));
        // The report renders without panicking and names every pass.
        let text = report.render();
        assert!(text.contains("simplify-synth"), "{text}");
    }

    #[test]
    fn invalid_programs_are_rejected_with_typed_errors() {
        let nan = vec![("XX".parse::<PauliString>().unwrap(), f64::NAN)];
        assert!(CompileRequest::new(2, &nan).run().is_err());
        let dev = CouplingGraph::line(2);
        assert!(matches!(
            CompileRequest::new(3, &terms(&["ZZI"]))
                .target(Target::Hardware(dev))
                .run(),
            Err(PhoenixError::DeviceTooSmall { .. })
        ));
    }
}
