//! The compiler's fault boundary: every way PHOENIX rejects or abandons a
//! compilation, as one typed error.
//!
//! [`PhoenixError`] is returned by the `try_compile*` entry points of
//! [`PhoenixCompiler`](crate::PhoenixCompiler) and by
//! [`try_run_hardware_backend`](crate::try_run_hardware_backend). It wraps
//! every lower-level error of the workspace — pass failures
//! ([`PassError`]), routing ([`RouteError`]), QASM ingestion
//! ([`ParseQasmError`]), tableau construction ([`BsfError`]) and program
//! construction ([`HamilError`]) — behind `From` conversions, and adds the
//! up-front input-validation variants ([`validate_program`],
//! [`validate_device`]) that turn would-be panics deep inside the pipeline
//! into diagnostics at the boundary.

#![deny(clippy::unwrap_used)]

use std::fmt;

use phoenix_cache::{BindError, DecodeError};
use phoenix_circuit::qasm::ParseQasmError;
use phoenix_hamil::HamilError;
use phoenix_pauli::{BsfError, NonHermitianError, PauliString, MAX_QUBITS};
use phoenix_router::RouteError;
use phoenix_topology::CouplingGraph;

use crate::pass::PassError;

/// Why a compilation was rejected or abandoned.
///
/// Validation variants are produced before any pipeline stage runs, so a
/// malformed program never reaches code that would panic on it; wrapped
/// variants carry failures surfaced by the stages themselves.
#[derive(Debug, Clone, PartialEq)]
pub enum PhoenixError {
    /// The register width is outside the supported range: zero qubits with
    /// a nonempty program, or more than [`MAX_QUBITS`].
    UnsupportedWidth {
        /// The requested register width.
        num_qubits: usize,
    },
    /// A term's Pauli string acts on a different number of qubits than the
    /// program declares.
    TermWidthMismatch {
        /// Index of the offending term.
        index: usize,
        /// The declared register width.
        expected: usize,
        /// The term's width.
        found: usize,
    },
    /// A term's Pauli string is empty (zero qubits).
    EmptyPauliString {
        /// Index of the offending term.
        index: usize,
    },
    /// A term's coefficient is NaN or infinite.
    NonFiniteCoefficient {
        /// Index of the offending term.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The target device has fewer qubits than the program.
    DeviceTooSmall {
        /// Qubits the program needs.
        program: usize,
        /// Qubits the device offers.
        device: usize,
    },
    /// The target device is disconnected, so some 2Q interactions can
    /// never be routed.
    DisconnectedDevice {
        /// Qubits of the device.
        device: usize,
    },
    /// A pipeline pass failed (precondition violation or a contained
    /// panic).
    Pass(PassError),
    /// Routing was abandoned.
    Route(RouteError),
    /// QASM ingestion failed.
    Qasm(ParseQasmError),
    /// Tableau construction rejected the terms.
    Bsf(BsfError),
    /// Program construction rejected the terms.
    Hamil(HamilError),
    /// A Hamiltonian had a non-Hermitian term (an imaginary coefficient
    /// beyond tolerance), so it defines no real Pauli-rotation program.
    NonHermitian(NonHermitianError),
    /// A structure-phase skeleton failed to decode into a rebindable
    /// artifact (an emitted angle was not a recognizable slot encoding).
    StructureDecode(DecodeError),
    /// Binding concrete angles into a cached structure artifact failed.
    Bind(BindError),
    /// A fleet compilation was requested with an empty device list.
    EmptyFleet,
    /// The compilation was abandoned at a pass boundary because its
    /// [`CancelToken`](crate::cancel::CancelToken) was fired by the client.
    Cancelled,
    /// The compilation was abandoned at a pass boundary because a
    /// wall-clock deadline enforced outside the pipeline elapsed (distinct
    /// from `pass_budget`, which degrades gracefully instead of aborting).
    DeadlineExceeded,
}

impl fmt::Display for PhoenixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhoenixError::UnsupportedWidth { num_qubits } => write!(
                f,
                "unsupported register width {num_qubits} (must be 1..={MAX_QUBITS}, \
                 or 0 only for an empty program)"
            ),
            PhoenixError::TermWidthMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "term {index} acts on {found} qubits but the program declares {expected}"
            ),
            PhoenixError::EmptyPauliString { index } => {
                write!(f, "term {index} has an empty pauli string")
            }
            PhoenixError::NonFiniteCoefficient { index, value } => {
                write!(f, "term {index} has non-finite coefficient {value}")
            }
            PhoenixError::DeviceTooSmall { program, device } => write!(
                f,
                "device has {device} qubits but the program needs {program}"
            ),
            PhoenixError::DisconnectedDevice { device } => write!(
                f,
                "target device ({device} qubits) is disconnected; routing cannot succeed"
            ),
            PhoenixError::Pass(e) => write!(f, "{e}"),
            PhoenixError::Route(e) => write!(f, "routing failed: {e}"),
            PhoenixError::Qasm(e) => write!(f, "{e}"),
            PhoenixError::Bsf(e) => write!(f, "{e}"),
            PhoenixError::Hamil(e) => write!(f, "{e}"),
            PhoenixError::NonHermitian(e) => write!(f, "{e}"),
            PhoenixError::StructureDecode(e) => write!(f, "structure decode failed: {e}"),
            PhoenixError::Bind(e) => write!(f, "angle binding failed: {e}"),
            PhoenixError::EmptyFleet => {
                write!(f, "fleet compilation requires at least one device")
            }
            PhoenixError::Cancelled => write!(f, "compilation cancelled by client"),
            PhoenixError::DeadlineExceeded => {
                write!(f, "compilation abandoned: wall-clock deadline exceeded")
            }
        }
    }
}

impl std::error::Error for PhoenixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PhoenixError::Pass(e) => Some(e),
            PhoenixError::Route(e) => Some(e),
            PhoenixError::Qasm(e) => Some(e),
            PhoenixError::Bsf(e) => Some(e),
            PhoenixError::Hamil(e) => Some(e),
            PhoenixError::NonHermitian(e) => Some(e),
            PhoenixError::StructureDecode(e) => Some(e),
            PhoenixError::Bind(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PassError> for PhoenixError {
    fn from(e: PassError) -> Self {
        use crate::cancel::CancelReason;
        match e.cancellation_reason() {
            Some(CancelReason::Client) => PhoenixError::Cancelled,
            Some(CancelReason::Deadline) => PhoenixError::DeadlineExceeded,
            None => PhoenixError::Pass(e),
        }
    }
}

impl From<RouteError> for PhoenixError {
    fn from(e: RouteError) -> Self {
        PhoenixError::Route(e)
    }
}

impl From<ParseQasmError> for PhoenixError {
    fn from(e: ParseQasmError) -> Self {
        PhoenixError::Qasm(e)
    }
}

impl From<BsfError> for PhoenixError {
    fn from(e: BsfError) -> Self {
        PhoenixError::Bsf(e)
    }
}

impl From<HamilError> for PhoenixError {
    fn from(e: HamilError) -> Self {
        PhoenixError::Hamil(e)
    }
}

impl From<NonHermitianError> for PhoenixError {
    fn from(e: NonHermitianError) -> Self {
        PhoenixError::NonHermitian(e)
    }
}

impl From<DecodeError> for PhoenixError {
    fn from(e: DecodeError) -> Self {
        PhoenixError::StructureDecode(e)
    }
}

impl From<BindError> for PhoenixError {
    fn from(e: BindError) -> Self {
        PhoenixError::Bind(e)
    }
}

/// Validates a Pauli-exponentiation program before compilation: the
/// register width must be representable (`1..=MAX_QUBITS`, or `0` for an
/// empty program), every term must act on exactly `n` qubits with a
/// nonempty string, and every coefficient must be finite.
///
/// # Errors
///
/// The first violation found, as a [`PhoenixError`].
pub fn validate_program(n: usize, terms: &[(PauliString, f64)]) -> Result<(), PhoenixError> {
    if n > MAX_QUBITS || (n == 0 && !terms.is_empty()) {
        return Err(PhoenixError::UnsupportedWidth { num_qubits: n });
    }
    for (index, (p, c)) in terms.iter().enumerate() {
        if p.num_qubits() == 0 {
            return Err(PhoenixError::EmptyPauliString { index });
        }
        if p.num_qubits() != n {
            return Err(PhoenixError::TermWidthMismatch {
                index,
                expected: n,
                found: p.num_qubits(),
            });
        }
        if !c.is_finite() {
            return Err(PhoenixError::NonFiniteCoefficient { index, value: *c });
        }
    }
    Ok(())
}

/// Validates a routing target for an `n`-qubit program: the device must
/// offer at least `n` qubits and, for multi-qubit programs, be connected.
///
/// # Errors
///
/// [`PhoenixError::DeviceTooSmall`] or
/// [`PhoenixError::DisconnectedDevice`].
pub fn validate_device(n: usize, device: &CouplingGraph) -> Result<(), PhoenixError> {
    if device.num_qubits() < n {
        return Err(PhoenixError::DeviceTooSmall {
            program: n,
            device: device.num_qubits(),
        });
    }
    if n > 1 && !device.is_connected() {
        return Err(PhoenixError::DisconnectedDevice {
            device: device.num_qubits(),
        });
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        s.parse().unwrap()
    }

    #[test]
    fn valid_programs_pass() {
        assert_eq!(validate_program(0, &[]), Ok(()));
        assert_eq!(validate_program(3, &[]), Ok(()));
        assert_eq!(validate_program(2, &[(ps("XY"), 0.5)]), Ok(()));
    }

    #[test]
    fn zero_qubit_program_with_terms_is_rejected() {
        // A 0-qubit string is caught by the width check before the
        // per-term checks run.
        let e = validate_program(0, &[(ps(""), 1.0)]).unwrap_err();
        assert_eq!(e, PhoenixError::UnsupportedWidth { num_qubits: 0 });
    }

    #[test]
    fn oversized_register_is_rejected() {
        let e = validate_program(MAX_QUBITS + 1, &[]).unwrap_err();
        assert!(matches!(e, PhoenixError::UnsupportedWidth { .. }));
    }

    #[test]
    fn wrong_length_term_is_rejected_with_its_index() {
        let e = validate_program(3, &[(ps("XYZ"), 0.1), (ps("XY"), 0.1)]).unwrap_err();
        assert_eq!(
            e,
            PhoenixError::TermWidthMismatch {
                index: 1,
                expected: 3,
                found: 2
            }
        );
    }

    #[test]
    fn empty_string_term_is_rejected() {
        let e = validate_program(1, &[(ps(""), 0.1)]).unwrap_err();
        assert_eq!(e, PhoenixError::EmptyPauliString { index: 0 });
    }

    #[test]
    fn non_finite_coefficients_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let e = validate_program(1, &[(ps("X"), bad)]).unwrap_err();
            assert!(matches!(
                e,
                PhoenixError::NonFiniteCoefficient { index: 0, .. }
            ));
        }
    }

    #[test]
    fn undersized_and_disconnected_devices_are_rejected() {
        let small = CouplingGraph::line(2);
        assert_eq!(
            validate_device(4, &small).unwrap_err(),
            PhoenixError::DeviceTooSmall {
                program: 4,
                device: 2
            }
        );
        let disconnected = CouplingGraph::from_edges(4, [(0, 1)]);
        assert!(matches!(
            validate_device(3, &disconnected).unwrap_err(),
            PhoenixError::DisconnectedDevice { device: 4 }
        ));
        assert_eq!(validate_device(3, &CouplingGraph::line(5)), Ok(()));
    }

    #[test]
    fn display_is_informative() {
        let e = PhoenixError::NonFiniteCoefficient {
            index: 2,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("term 2"));
        let wrapped: PhoenixError = PassError::new("concat", "boom").into();
        assert!(wrapped.to_string().contains("concat"));
    }
}
