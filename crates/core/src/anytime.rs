//! Anytime iterative deepening for budgeted compiles.
//!
//! The legacy budgeted path *truncates*: once the pass budget elapses,
//! stage 2 falls back to conventional synthesis and ordering keeps
//! first-appearance order — a deadline can only cost quality. This module
//! replaces truncation with **iterative deepening**: [`AnytimePass`] always
//! holds a valid best-so-far circuit (round 0 is the cheap naive baseline)
//! and monotonically improves it round by round, widening the Algorithm-1
//! candidate scan ([`CostEvaluator::best_candidate_scan_capped`]) and the
//! Tetris ordering lookahead on a geometric schedule until the budget or a
//! [`CancelToken`] interrupts it. Each round seeds the next round's search
//! with the previous round's chosen Clifford sequence (principal variation
//! plus aspiration window — see
//! [`simplify_terms_deepening`](crate::simplify::simplify_terms_deepening)).
//!
//! Interruption semantics:
//!
//! - before a round starts → [`EVENT_TRUNCATED`], keep the last completed
//!   round's result;
//! - mid-round (between groups or inside the ordering loop) →
//!   [`EVENT_ROUND_ABANDONED`], keep the *previous* round's result — a
//!   half-deepened round is never observable;
//! - a fired cancel token is honored by setting
//!   [`CompileContext::soft_cancelled`], so the manager finishes required
//!   lowering on the best-so-far instead of erroring.
//!
//! The final round of the full schedule scans every candidate pair at the
//! full lookahead, so an unconstrained anytime compile converges to the
//! legacy pipeline's output quality. Rounds are deterministic for every
//! `threads`/`scan_threads` value, making `depth_reached` and the returned
//! circuit a pure function of the logical budget ([`AnytimePass::max_rounds`]).
//!
//! [`CostEvaluator::best_candidate_scan_capped`]: crate::evaluator::CostEvaluator::best_candidate_scan_capped

use std::panic::{self, AssertUnwindSafe};
use std::time::Instant;

use phoenix_circuit::synthesis::naive_circuit;
use phoenix_circuit::Circuit;
use phoenix_obs::metrics::MetricId;
use phoenix_obs::Span;
use phoenix_pauli::{Clifford2Q, PauliString};

use crate::cancel::CancelToken;
use crate::group::IrGroup;
use crate::order::{order_groups_interruptible, OrderOptions};
use crate::pass::{
    CompileContext, Pass, PassError, EVENT_DEGRADED, EVENT_ROUND_ABANDONED, EVENT_TRUNCATED,
};
use crate::simplify::{simplify_terms_deepening, SimplifyOptions};
use crate::synth::synthesize_group;

/// Rounds of the full deepening schedule. The last round scans every
/// candidate pair (breadth `usize::MAX`) at the full ordering lookahead, so
/// completing the schedule matches the legacy unbudgeted search quality.
pub const MAX_ROUNDS: usize = 8;

/// Owns the deepening schedule and the budget accounting of one anytime
/// compilation: which rounds run, how wide each scans, and when to stop.
///
/// Wall-clock interruption is observed through the context's deadline and
/// cancel token; the *logical* budget (`max_rounds`) caps the schedule
/// deterministically, independent of wall clock — the knob the serve tier
/// mapping and the determinism tests use.
#[derive(Debug, Clone)]
pub struct DeepeningController {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    max_rounds: usize,
}

impl DeepeningController {
    /// A controller over the standard schedule, capped at `max_rounds`
    /// (`None` = the full [`MAX_ROUNDS`]-round schedule).
    pub fn new(
        deadline: Option<Instant>,
        cancel: Option<CancelToken>,
        max_rounds: Option<usize>,
    ) -> Self {
        DeepeningController {
            deadline,
            cancel,
            max_rounds: max_rounds.unwrap_or(MAX_ROUNDS).min(MAX_ROUNDS),
        }
    }

    /// The deepest round this controller may run (0 = baseline only).
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// Whether the compilation should stop deepening: the wall-clock
    /// deadline elapsed or the cancel token fired. Cheap enough to poll
    /// between groups and inside the ordering loop.
    pub fn interrupted(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
            || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Candidate-scan breadth (support-pair ranks) of `round` (1-based):
    /// geometric 4, 8, 16, … with the final round unbounded.
    pub fn scan_breadth(&self, round: usize) -> usize {
        if round >= MAX_ROUNDS {
            usize::MAX
        } else {
            4usize << (round - 1)
        }
    }

    /// Ordering lookahead of `round`, ramping up to the configured `full`
    /// window on the final round.
    pub fn lookahead(&self, round: usize, full: usize) -> usize {
        let full = full.max(1);
        if round >= MAX_ROUNDS {
            full
        } else {
            full.min(2usize << round)
        }
    }
}

/// One group's output for one deepening round: circuit, emitted terms, the
/// chosen Clifford sequence (next round's principal variation), and whether
/// optimization panicked and degraded to naive synthesis.
type GroupRound = (Circuit, Vec<(PauliString, f64)>, Vec<Clifford2Q>, bool);

/// The best-so-far compilation state, replaced only on strict cost
/// improvement so quality is monotone non-increasing across rounds.
struct Snapshot {
    subcircuits: Vec<Circuit>,
    group_terms: Vec<Vec<(PauliString, f64)>>,
    order: Vec<usize>,
    circuit: Circuit,
    term_order: Vec<(PauliString, f64)>,
    cost: (usize, usize, usize),
}

/// Lexicographic quality key: 2Q gates, then 2Q depth, then total gates —
/// the objective hierarchy of the paper's Table I metrics.
fn cost_key(circuit: &Circuit) -> (usize, usize, usize) {
    let counts = circuit.counts();
    (counts.two_qubit(), circuit.depth_2q(), counts.total)
}

/// Assembles ordered subcircuits into a circuit + emitted term order (the
/// body of `ConcatPass`, inlined so each round can score its assembly).
fn concat(
    n: usize,
    subcircuits: &[Circuit],
    group_terms: &[Vec<(PauliString, f64)>],
    order: &[usize],
) -> (Circuit, Vec<(PauliString, f64)>) {
    let mut circuit = Circuit::new(n);
    let mut term_order = Vec::new();
    for &i in order {
        circuit.append(&subcircuits[i]);
        term_order.extend(group_terms[i].iter().cloned());
    }
    (circuit, term_order)
}

/// Stages 2–4 of a budgeted pipeline as one anytime pass: naive baseline,
/// then deepening rounds of capped candidate search + interruptible
/// ordering + assembly, keeping the best snapshot. Replaces
/// `SimplifySynthPass` + `OrderPass` + `ConcatPass` when a `pass_budget`
/// is set; unbudgeted compiles never construct it, keeping the legacy path
/// bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnytimePass {
    /// Full ordering lookahead (reached on the final round).
    pub lookahead: usize,
    /// Run Algorithm 1 (deepening); `false` keeps naive per-group synthesis
    /// and deepens only the ordering (the ablation arm).
    pub simplify: bool,
    /// Run the Tetris ordering; `false` keeps first-appearance order.
    pub order_enabled: bool,
    /// Apply the Eq. (7) routing-similarity factor during ordering.
    pub routing_aware: bool,
    /// Group-level worker threads (`0` = auto, `1` = sequential).
    pub threads: usize,
    /// Candidate-scan worker threads per group (`0` = auto).
    pub scan_threads: usize,
    /// Logical budget: deepest round to run (`None` = full schedule).
    /// Output is a pure function of this cap when the wall clock never
    /// interrupts.
    pub max_rounds: Option<usize>,
}

impl Default for AnytimePass {
    fn default() -> Self {
        AnytimePass {
            lookahead: 20,
            simplify: true,
            order_enabled: true,
            routing_aware: false,
            threads: 1,
            scan_threads: 1,
            max_rounds: None,
        }
    }
}

impl AnytimePass {
    /// Runs one deepening round's stage 2 over all groups, fanned out over
    /// `threads` index-aligned slots like `SimplifySynthPass`. Returns
    /// `None` when the controller interrupted mid-round (some group was
    /// never compiled); the round must then be abandoned wholesale.
    #[allow(clippy::too_many_arguments)]
    fn deepen_groups(
        &self,
        n: usize,
        groups: &[IrGroup],
        pvs: &[Vec<Clifford2Q>],
        opts: &SimplifyOptions,
        breadth: usize,
        threads: usize,
        controller: &DeepeningController,
    ) -> Option<Vec<GroupRound>> {
        // `None` from `compile_one` means the controller interrupted the
        // greedy loop mid-group (polled once per epoch, so even a single
        // pathological group yields within one epoch); the whole round is
        // then abandoned. A contained panic still produces a (degraded)
        // result.
        let compile_one = |i: usize, group: &IrGroup| -> Option<GroupRound> {
            let naive = || (naive_circuit(n, group.terms()), group.terms().to_vec());
            if !self.simplify {
                let (c, t) = naive();
                return Some((c, t, Vec::new(), false));
            }
            let attempt = panic::catch_unwind(AssertUnwindSafe(|| {
                simplify_terms_deepening(n, group.terms(), opts, breadth, &pvs[i], &mut || {
                    controller.interrupted()
                })
                .map(|(s, pv)| (synthesize_group(&s), s.term_sequence(), pv))
            }));
            match attempt {
                Ok(Some((circuit, terms, pv))) => Some((circuit, terms, pv, false)),
                Ok(None) => None,
                Err(_) => {
                    let (c, t) = naive();
                    Some((c, t, Vec::new(), true))
                }
            }
        };
        let mut slots: Vec<Option<GroupRound>> = vec![None; groups.len()];
        if threads <= 1 {
            for (i, (g, slot)) in groups.iter().zip(slots.iter_mut()).enumerate() {
                if controller.interrupted() {
                    return None;
                }
                *slot = compile_one(i, g);
                if slot.is_none() {
                    return None;
                }
            }
        } else {
            let chunk = groups.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for (c, (gs, out)) in groups
                    .chunks(chunk)
                    .zip(slots.chunks_mut(chunk))
                    .enumerate()
                {
                    let compile_one = &compile_one;
                    scope.spawn(move || {
                        for (j, (g, slot)) in gs.iter().zip(out.iter_mut()).enumerate() {
                            if controller.interrupted() {
                                return;
                            }
                            *slot = compile_one(c * chunk + j, g);
                            if slot.is_none() {
                                return;
                            }
                        }
                    });
                }
            });
            if slots.iter().any(Option::is_none) {
                return None;
            }
        }
        Some(
            slots
                .into_iter()
                .map(|s| s.expect("every slot was filled"))
                .collect(),
        )
    }
}

impl Pass for AnytimePass {
    fn name(&self) -> &str {
        "anytime-deepen"
    }

    fn run(&self, ctx: &mut CompileContext) -> Result<(), PassError> {
        let n = ctx.num_qubits;
        let controller =
            DeepeningController::new(ctx.deadline, ctx.cancel.clone(), self.max_rounds);
        let opts = SimplifyOptions {
            scan_threads: self.scan_threads,
            naive_cost: false,
        };
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
            t => t,
        }
        .min(ctx.groups.len().max(1));

        // Round 0: the naive baseline, always computed (it is the cheapest
        // valid form) so every interruption point — including a zero
        // budget — yields a complete compilation.
        let subcircuits: Vec<Circuit> = ctx
            .groups
            .iter()
            .map(|g| naive_circuit(n, g.terms()))
            .collect();
        let group_terms: Vec<Vec<(PauliString, f64)>> =
            ctx.groups.iter().map(|g| g.terms().to_vec()).collect();
        let order: Vec<usize> = (0..subcircuits.len()).collect();
        let (circuit, term_order) = concat(n, &subcircuits, &group_terms, &order);
        let mut best = Snapshot {
            cost: cost_key(&circuit),
            subcircuits,
            group_terms,
            order,
            circuit,
            term_order,
        };
        let mut depth_reached = 0usize;
        let mut pvs: Vec<Vec<Clifford2Q>> = vec![Vec::new(); ctx.groups.len()];

        for round in 1..=controller.max_rounds() {
            if controller.interrupted() {
                ctx.record_event(
                    self.name(),
                    EVENT_TRUNCATED,
                    format!(
                        "budget elapsed before deepening round {round}; \
                         keeping round {depth_reached} result"
                    ),
                );
                break;
            }
            let round_start = ctx.obs.as_ref().map(|o| o.now_us());
            let breadth = controller.scan_breadth(round);
            let lookahead = controller.lookahead(round, self.lookahead);
            let Some(rounds) =
                self.deepen_groups(n, &ctx.groups, &pvs, &opts, breadth, threads, &controller)
            else {
                ctx.record_event(
                    self.name(),
                    EVENT_ROUND_ABANDONED,
                    format!(
                        "deadline hit mid-round {round}; \
                         kept round {depth_reached} result"
                    ),
                );
                break;
            };
            let mut subcircuits = Vec::with_capacity(rounds.len());
            let mut group_terms = Vec::with_capacity(rounds.len());
            let mut next_pvs = Vec::with_capacity(rounds.len());
            for (i, (circuit, terms, pv, degraded)) in rounds.into_iter().enumerate() {
                if degraded {
                    ctx.record_event(
                        self.name(),
                        EVENT_DEGRADED,
                        format!(
                            "group {i} fell back to conventional synthesis in round {round} \
                             (optimization panicked)"
                        ),
                    );
                }
                subcircuits.push(circuit);
                group_terms.push(terms);
                next_pvs.push(pv);
            }
            let order = if self.order_enabled {
                let ordered = order_groups_interruptible(
                    &subcircuits,
                    &OrderOptions {
                        lookahead,
                        routing_aware: self.routing_aware,
                    },
                    &mut || controller.interrupted(),
                );
                match ordered {
                    Some(o) => o,
                    None => {
                        ctx.record_event(
                            self.name(),
                            EVENT_ROUND_ABANDONED,
                            format!(
                                "deadline hit mid-round {round} (ordering); \
                                 kept round {depth_reached} result"
                            ),
                        );
                        break;
                    }
                }
            } else {
                (0..subcircuits.len()).collect()
            };
            let (circuit, term_order) = concat(n, &subcircuits, &group_terms, &order);
            let cost = cost_key(&circuit);
            let improved = cost < best.cost;
            depth_reached = round;
            pvs = next_pvs;
            if let Some(obs) = &ctx.obs {
                let m = obs.metrics();
                m.incr(MetricId::AnytimeRounds);
                if improved {
                    m.incr(MetricId::AnytimeImprovements);
                }
            }
            if ctx.obs.is_some() {
                let breadth_label = if breadth == usize::MAX {
                    "full".to_string()
                } else {
                    breadth.to_string()
                };
                let mut span = Span::new(format!("round {round}"), "anytime")
                    .arg("breadth", breadth_label)
                    .arg("lookahead", lookahead)
                    .arg("two_qubit", cost.0 as u64)
                    .arg("depth_2q", cost.1 as u64)
                    .arg("gates", cost.2 as u64)
                    .arg("improved", if improved { "yes" } else { "no" });
                span.start_us = round_start.unwrap_or(0);
                if let Some(obs) = &ctx.obs {
                    span.dur_us = obs.now_us().saturating_sub(span.start_us);
                }
                ctx.push_span(span);
            }
            if improved {
                best = Snapshot {
                    subcircuits,
                    group_terms,
                    order,
                    circuit,
                    term_order,
                    cost,
                };
            }
        }

        ctx.subcircuits = best.subcircuits;
        ctx.group_terms = best.group_terms;
        ctx.order = best.order;
        ctx.circuit = best.circuit;
        ctx.term_order = best.term_order;
        ctx.depth_reached = Some(depth_reached);
        if ctx.cancel_reason().is_some() {
            // The fired token was honored by keeping the best-so-far:
            // downstream required lowering must still run.
            ctx.soft_cancelled = true;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::pass::PassManager;
    use crate::passes::GroupPass;
    use std::time::Duration;

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.parse().unwrap(), 0.02 * (i + 1) as f64))
            .collect()
    }

    fn run_capped(t: &[(PauliString, f64)], n: usize, cap: usize) -> CompileContext {
        let mut ctx = CompileContext::new(n, t);
        let pm = PassManager::new()
            .with(GroupPass)
            .with(AnytimePass {
                max_rounds: Some(cap),
                ..AnytimePass::default()
            })
            .with_budget(Duration::from_secs(600));
        pm.run(&mut ctx).unwrap();
        ctx
    }

    #[test]
    fn zero_rounds_is_the_naive_baseline() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
        let ctx = run_capped(&t, 3, 0);
        assert_eq!(ctx.depth_reached, Some(0));
        let naive = naive_circuit(3, ctx.groups[0].terms());
        assert_eq!(ctx.subcircuits[0], naive);
        assert_eq!(ctx.term_order.len(), t.len());
    }

    #[test]
    fn cost_is_monotone_in_the_round_cap() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY", "IZZ", "XIX", "YYI"]);
        let mut prev: Option<(usize, usize, usize)> = None;
        for cap in [0usize, 1, 2, 4, MAX_ROUNDS] {
            let ctx = run_capped(&t, 3, cap);
            assert_eq!(ctx.depth_reached, Some(cap));
            let cost = cost_key(&ctx.circuit);
            if let Some(p) = prev {
                assert!(cost <= p, "cap {cap}: {cost:?} vs {p:?}");
            }
            prev = Some(cost);
        }
    }

    #[test]
    fn full_schedule_improves_on_the_baseline() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
        let base = run_capped(&t, 3, 0);
        let deep = run_capped(&t, 3, MAX_ROUNDS);
        assert!(
            cost_key(&deep.circuit) < cost_key(&base.circuit),
            "{:?} vs {:?}",
            cost_key(&deep.circuit),
            cost_key(&base.circuit)
        );
    }

    #[test]
    fn output_is_deterministic_across_thread_counts() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY", "ZZI", "IZZ", "XIX"]);
        let run = |threads: usize, scan_threads: usize| {
            let mut ctx = CompileContext::new(3, &t);
            let pm = PassManager::new()
                .with(GroupPass)
                .with(AnytimePass {
                    threads,
                    scan_threads,
                    max_rounds: Some(4),
                    ..AnytimePass::default()
                })
                .with_budget(Duration::from_secs(600));
            pm.run(&mut ctx).unwrap();
            (ctx.circuit, ctx.term_order, ctx.depth_reached)
        };
        let base = run(1, 1);
        for (threads, scan_threads) in [(2, 1), (8, 2), (1, 8), (8, 8)] {
            assert_eq!(
                run(threads, scan_threads),
                base,
                "threads {threads}, scan {scan_threads}"
            );
        }
    }

    #[test]
    fn zero_budget_truncates_to_round_zero() {
        let t = terms(&["ZYY", "ZZY", "IZZ", "XIX"]);
        let mut ctx = CompileContext::new(3, &t);
        let pm = PassManager::new()
            .with(GroupPass)
            .with(AnytimePass::default())
            .with_budget(Duration::ZERO);
        let trace = pm.run(&mut ctx).unwrap();
        assert_eq!(ctx.depth_reached, Some(0));
        assert!(!ctx.circuit.is_empty());
        assert!(!trace.events_of_kind(EVENT_TRUNCATED).is_empty());
        assert_eq!(ctx.term_order.len(), t.len());
    }

    #[test]
    fn fired_token_soft_cancels_with_best_so_far() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY"]);
        let mut ctx = CompileContext::new(3, &t);
        let token = CancelToken::new();
        ctx.cancel = Some(token.clone());
        GroupPass.run(&mut ctx).unwrap();
        token.cancel();
        AnytimePass::default().run(&mut ctx).unwrap();
        assert!(ctx.soft_cancelled);
        assert_eq!(ctx.depth_reached, Some(0));
        assert!(!ctx.circuit.is_empty());
    }
}
