//! Cooperative cancellation for long-running compilations.
//!
//! A [`CancelToken`] is a cheaply cloneable handle shared between a
//! compilation and whoever may want to abandon it (a serving layer, a
//! watchdog thread, a user-facing Ctrl-C handler). Cancellation is
//! *cooperative*: the pipeline checks the token between passes (see
//! [`PassManager::run`](crate::pass::PassManager::run)) and between stage-2
//! groups, so an in-flight unit of work always completes before the
//! pipeline stops — no state is ever observed half-rewritten.
//!
//! Two cancellation reasons are distinguished so callers can map them to
//! different replies: an explicit client request ([`CancelToken::cancel`])
//! and an elapsed wall-clock deadline enforced from outside the pipeline
//! ([`CancelToken::cancel_deadline`]). The first writer wins; a token never
//! transitions back to live.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Why a compilation was cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The client (or owner) explicitly abandoned the request.
    Client,
    /// A wall-clock deadline enforced outside the pipeline elapsed.
    Deadline,
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

/// A shared, lock-free cancellation flag checked by the pipeline between
/// passes and between stage-2 groups.
///
/// Clones share state: cancelling any clone cancels them all. Equality is
/// *identity* (two tokens are equal iff they share state), which keeps
/// [`PhoenixOptions`](crate::PhoenixOptions)'s derived `PartialEq`
/// meaningful without making cancellation state part of option equality.
///
/// ```
/// use phoenix_core::cancel::{CancelReason, CancelToken};
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!token.is_cancelled());
/// watcher.cancel();
/// assert_eq!(token.reason(), Some(CancelReason::Client));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, live token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation on behalf of the client. The first
    /// cancellation (of either kind) wins; later calls are no-ops.
    pub fn cancel(&self) {
        let _ = self
            .state
            .compare_exchange(LIVE, CANCELLED, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Requests cancellation because a wall-clock deadline elapsed.
    pub fn cancel_deadline(&self) {
        let _ = self
            .state
            .compare_exchange(LIVE, DEADLINE, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (for any reason).
    pub fn is_cancelled(&self) -> bool {
        self.state.load(Ordering::Relaxed) != LIVE
    }

    /// The cancellation reason, or `None` while the token is live.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.state.load(Ordering::Relaxed) {
            CANCELLED => Some(CancelReason::Client),
            DEADLINE => Some(CancelReason::Deadline),
            _ => None,
        }
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        c.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.reason(), Some(CancelReason::Client));
    }

    #[test]
    fn first_cancellation_wins() {
        let t = CancelToken::new();
        t.cancel_deadline();
        t.cancel();
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
    }

    #[test]
    fn equality_is_identity() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
    }

    #[test]
    fn concurrent_cancellation_settles_on_one_reason() {
        let t = CancelToken::new();
        std::thread::scope(|s| {
            for i in 0..8 {
                let t = t.clone();
                s.spawn(move || {
                    if i % 2 == 0 {
                        t.cancel();
                    } else {
                        t.cancel_deadline();
                    }
                });
            }
        });
        assert!(t.reason().is_some());
    }
}
