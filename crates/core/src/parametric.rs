//! The structure/angle phase split: parametric compilation orchestration.
//!
//! PHOENIX's pipeline factors cleanly into an **angle-independent structure
//! phase** (grouping, BSF simplification, candidate search, Tetris ordering,
//! concatenation — everything expensive) and a trivial **angle-binding
//! phase** (substituting `θ = 2·(±coeff)` into the synthesized skeleton).
//! This module runs the structure phase with each input coefficient replaced
//! by its [`encode_slot`] payload, decodes the resulting skeleton into a
//! rebindable [`StructureArtifact`], and memoizes it in a shared
//! [`CompileCache`] keyed by the Zobrist digest of the angle-erased
//! canonical IR plus a fingerprint of the structure-relevant options.
//!
//! The slot encoding makes the factoring an *observation*, not a rewrite:
//! the structure phase runs the unmodified passes. No pass reads coefficient
//! magnitudes — Clifford conjugation only flips signs, and the cost
//! functions of Eqs. (6)–(7) are support-based — so every angle the
//! synthesizer emits is exactly `±2(slot+1)`, decodable because integer
//! negation and doubling are exact in IEEE-754. Binding performs the same
//! float operations the cold pipeline would have, so warm and cold outputs
//! are bit-for-bit identical (enforced by `phoenix-verify`'s parametric
//! differential checks).
//!
//! Circuit-level lowering (peephole, SU(4) rebase, KAK, routing) runs
//! *after* binding: peephole merges adjacent rotations by adding their
//! angles, and a sum of two slot payloads is not a slot payload — it would
//! decode silently to the wrong parameter. Keeping the skeleton at the
//! logical level makes every cached angle a pristine encoding.

use std::sync::Arc;

use phoenix_cache::{encode_slot, CompileCache, ProgramKey, StructureArtifact};
use phoenix_obs::metrics::MetricId;
use phoenix_obs::ObsCollector;
use phoenix_pauli::{CanonicalIr, PauliString};

use crate::anytime::AnytimePass;
use crate::error::{validate_program, PhoenixError};
use crate::observe::MetricsObserver;
use crate::pass::{CompileContext, PassManager, PassTrace};
use crate::passes::{ConcatPass, GroupPass, OrderPass, SimplifySynthPass, TransformPass};
use crate::pipeline::{hardware_backend, PhoenixOptions};
use crate::request::Target;

/// SplitMix64-style finalizer used for the options fingerprint.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Fingerprint of every option that can change the *structure* output
/// (grouping, simplification, ordering). Options that only affect the
/// post-bind lowering (router knobs, layout trials) or execution strategy
/// (thread counts — output is thread-count-invariant by construction) are
/// deliberately excluded, so artifacts are shared across them.
pub(crate) fn options_fingerprint(options: &PhoenixOptions, routing_aware: bool) -> u64 {
    let routing_aware = routing_aware || options.routing_aware;
    let mut h = mix(options.lookahead as u64);
    h = mix(h ^ (options.enable_simplification as u64));
    h = mix(h ^ ((options.enable_ordering as u64) << 1));
    h = mix(h ^ ((routing_aware as u64) << 2));
    h
}

/// Whether the split structure/bind path may serve a request with these
/// options. Pass budgets make outputs time-dependent and verification
/// carries state across the whole pipeline, so both fall back to the
/// legacy single-manager path (the cache is simply not consulted).
pub(crate) fn split_path_allowed(options: &PhoenixOptions) -> bool {
    options.pass_budget.is_none() && !options.verify
}

/// The structure-phase pass sequence: the canonical logical passes, minus
/// the verifier attachment that [`split_path_allowed`] excludes. A pass
/// budget *is* attached: `structure()`/`bind()` run this manager even when
/// the split path is disallowed for `run()` (the cache is filtered out by
/// [`obtain_structure`] instead), and a budgeted request must truncate
/// deterministically rather than silently optimize forever.
fn structure_manager(options: &PhoenixOptions, routing_aware: bool) -> PassManager {
    match options.pass_budget {
        // Budgeted structure compiles deepen anytime-style, mirroring
        // `PhoenixCompiler::logical_passes`.
        Some(budget) => PassManager::new()
            .with(GroupPass)
            .with(AnytimePass {
                lookahead: options.lookahead,
                simplify: options.enable_simplification,
                order_enabled: options.enable_ordering,
                routing_aware: routing_aware || options.routing_aware,
                threads: options.stage2_threads,
                scan_threads: options.stage2_scan_threads,
                max_rounds: options.anytime_rounds,
            })
            .with_budget(budget),
        None => PassManager::new()
            .with(GroupPass)
            .with(SimplifySynthPass {
                simplify: options.enable_simplification,
                threads: options.stage2_threads,
                scan_threads: options.stage2_scan_threads,
                fault_inject_group: None,
            })
            .with(OrderPass {
                lookahead: options.lookahead,
                routing_aware: routing_aware || options.routing_aware,
                enabled: options.enable_ordering,
            })
            .with(ConcatPass),
    }
}

/// Runs the structure phase cold: compiles `terms` slot-encoded through the
/// logical pipeline and decodes the skeleton into a [`StructureArtifact`].
///
/// `cache` (when given) is threaded into the context so stage 2 can reuse
/// per-group artifacts; `obs` instruments the run.
pub(crate) fn compile_structure(
    num_qubits: usize,
    terms: &[(PauliString, f64)],
    options: &PhoenixOptions,
    routing_aware: bool,
    cache: Option<&Arc<CompileCache>>,
    obs: Option<&Arc<ObsCollector>>,
) -> Result<(Arc<StructureArtifact>, PassTrace), PhoenixError> {
    // Validate on the slot-encoded terms: structure compilation is
    // independent of the request's coefficients, so a program whose angles
    // are not yet known (or not yet finite) still has a valid structure.
    let slot_terms: Vec<(PauliString, f64)> = terms
        .iter()
        .enumerate()
        .map(|(i, (p, _))| (p.clone(), encode_slot(i)))
        .collect();
    validate_program(num_qubits, &slot_terms)?;
    let digest = CanonicalIr::from_terms(num_qubits, terms).digest();
    let mut ctx = CompileContext::new(num_qubits, &slot_terms);
    ctx.cache = cache.cloned();
    ctx.obs = obs.cloned();
    ctx.cancel = options.cancel.clone();
    let manager = structure_manager(options, routing_aware);
    let manager = if obs.is_some() {
        manager.with_observer(Arc::new(MetricsObserver))
    } else {
        manager
    };
    let trace = manager.run(&mut ctx)?;
    let artifact = StructureArtifact::from_slot_encoded(
        num_qubits,
        terms.len(),
        ctx.num_groups,
        ctx.circuit,
        &ctx.term_order,
        digest,
    )?;
    Ok((Arc::new(artifact), trace))
}

/// Obtains the structure artifact for a request: from the program-level
/// cache when possible, compiling (and inserting) otherwise. Returns the
/// artifact, whether it was a program-cache hit, and the structure-phase
/// trace (empty on a hit — those passes never ran).
pub(crate) fn obtain_structure(
    num_qubits: usize,
    terms: &[(PauliString, f64)],
    options: &PhoenixOptions,
    routing_aware: bool,
    cache: Option<&Arc<CompileCache>>,
    obs: Option<&Arc<ObsCollector>>,
) -> Result<(Arc<StructureArtifact>, bool, PassTrace), PhoenixError> {
    // `structure()`/`bind()` land here regardless of options, so re-apply
    // the same gating `run()` uses before taking the split path: a request
    // carrying a pass budget (even `Duration::ZERO`) or verification must
    // never be served from — or leak into — the cache. A zero/expired
    // budget thus deterministically takes the truncated compile path.
    let cache = cache.filter(|_| split_path_allowed(options));
    let Some(cache) = cache else {
        let (artifact, trace) =
            compile_structure(num_qubits, terms, options, routing_aware, None, obs)?;
        return Ok((artifact, false, trace));
    };
    let key = ProgramKey::new(
        CanonicalIr::from_terms(num_qubits, terms),
        options_fingerprint(options, routing_aware),
    );
    if let Some(artifact) = cache.get_program(&key) {
        // Guard against a digest collision: the artifact must describe a
        // program of the same shape. (CanonicalIr::eq compares the full
        // mask sequence, so colliding keys land in distinct map entries;
        // this check is defensive.)
        if artifact.num_qubits() == num_qubits && artifact.num_slots() == terms.len() {
            if let Some(o) = obs {
                o.metrics().incr(MetricId::CacheProgramHits);
            }
            return Ok((artifact, true, PassTrace::default()));
        }
    }
    if let Some(o) = obs {
        o.metrics().incr(MetricId::CacheProgramMisses);
    }
    let (artifact, trace) =
        compile_structure(num_qubits, terms, options, routing_aware, Some(cache), obs)?;
    let artifact = cache.insert_program(key, artifact);
    Ok((artifact, false, trace))
}

/// The post-bind lowering sequence for `target`: the circuit-level passes
/// the legacy single-manager path would have run after concatenation, on
/// the same options. [`Target::Logical`] lowers with an empty manager.
pub(crate) fn lowering_manager(target: &Target, options: &PhoenixOptions) -> PassManager {
    let manager = match target {
        Target::Logical => PassManager::new(),
        Target::Cnot => PassManager::new().with(TransformPass::peephole()),
        Target::Su4 => PassManager::new().with(TransformPass::su4_rebase()),
        Target::CnotViaKak => PassManager::new()
            .with(TransformPass::su4_rebase())
            .with(TransformPass::kak_resynthesis())
            .with(TransformPass::peephole()),
        Target::Hardware(_) => {
            PassManager::new().append(hardware_backend(&options.router, options.layout_trials))
        }
        Target::Device(device) => PassManager::new().append(crate::pipeline::device_backend(
            device,
            &options.router,
            options.layout_trials,
        )),
        // Fleet requests fan out into per-member `Target::Device` requests
        // before any lowering happens (see `CompileRequest::fleet`), so a
        // fleet target never reaches the lowering manager; lower like
        // `Logical` to stay total.
        Target::Fleet(_) => PassManager::new(),
    };
    match options.pass_budget {
        Some(budget) => manager.with_budget(budget),
        None => manager,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.parse().unwrap(), 0.02 * (i + 1) as f64))
            .collect()
    }

    #[test]
    fn fingerprint_separates_structure_relevant_options() {
        let base = PhoenixOptions::default();
        let mut lk = base.clone();
        lk.lookahead = 7;
        let mut nosimp = base.clone();
        nosimp.enable_simplification = false;
        let mut threads = base.clone();
        threads.stage2_threads = 8;
        assert_ne!(
            options_fingerprint(&base, false),
            options_fingerprint(&lk, false)
        );
        assert_ne!(
            options_fingerprint(&base, false),
            options_fingerprint(&nosimp, false)
        );
        assert_ne!(
            options_fingerprint(&base, false),
            options_fingerprint(&base, true)
        );
        // Thread counts never change the output, so they share artifacts.
        assert_eq!(
            options_fingerprint(&base, false),
            options_fingerprint(&threads, false)
        );
    }

    #[test]
    fn structure_bind_reproduces_the_legacy_logical_compile() {
        let t = terms(&["ZYY", "ZZY", "XYY", "XZY", "IZZ", "XIX"]);
        let opts = PhoenixOptions::default();
        let (artifact, trace) = compile_structure(3, &t, &opts, false, None, None).unwrap();
        assert_eq!(trace.passes.len(), 4);
        let angles: Vec<f64> = t.iter().map(|(_, c)| *c).collect();
        let bound = artifact.bind(&angles).unwrap();
        let legacy = crate::CompileRequest::new(3, &t).run().unwrap();
        assert_eq!(bound.circuit, legacy.circuit);
        assert_eq!(bound.term_order, legacy.term_order);
        assert_eq!(bound.num_groups, legacy.num_groups);
    }

    #[test]
    fn structure_ignores_the_request_coefficients() {
        let a = terms(&["ZYY", "ZZY", "XYY"]);
        let mut b = a.clone();
        for (_, c) in &mut b {
            *c *= -3.25;
        }
        let opts = PhoenixOptions::default();
        let (art_a, _) = compile_structure(3, &a, &opts, false, None, None).unwrap();
        let (art_b, _) = compile_structure(3, &b, &opts, false, None, None).unwrap();
        assert_eq!(art_a.skeleton(), art_b.skeleton());
        assert_eq!(art_a.digest(), art_b.digest());
    }

    #[test]
    fn obtain_structure_hits_the_program_cache_on_recompile() {
        let t = terms(&["ZYY", "ZZY", "IZZ", "XIX"]);
        let opts = PhoenixOptions::default();
        let cache = Arc::new(CompileCache::new());
        let (first, hit1, trace1) =
            obtain_structure(3, &t, &opts, false, Some(&cache), None).unwrap();
        assert!(!hit1);
        assert!(!trace1.passes.is_empty());
        let (second, hit2, trace2) =
            obtain_structure(3, &t, &opts, false, Some(&cache), None).unwrap();
        assert!(hit2);
        assert!(trace2.passes.is_empty());
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!(stats.program_hits, 1);
        assert_eq!(stats.program_misses, 1);
    }

    #[test]
    fn zero_budget_never_enters_the_cached_structure_path() {
        use crate::pass::{EVENT_SKIPPED, EVENT_TRUNCATED};
        use std::time::Duration;
        let t = terms(&["ZYY", "ZZY", "IZZ", "XIX"]);
        let cache = Arc::new(CompileCache::new());
        // Warm the cache budget-free, so a program-cache hit *would* be
        // available if the gating were broken.
        crate::CompileRequest::new(3, &t)
            .cache(&cache)
            .run()
            .unwrap();
        let warmed = cache.stats();
        assert_eq!(warmed.program_misses, 1);
        assert_eq!(cache.num_programs(), 1);
        let budgeted = PhoenixOptions {
            pass_budget: Some(Duration::ZERO),
            ..PhoenixOptions::default()
        };
        // `bind()` under a zero budget: the cache must not be consulted
        // (no new hits or misses of any kind) and the structure phase must
        // deterministically take the truncated path.
        let angles: Vec<f64> = t.iter().map(|(_, c)| *c).collect();
        let out = crate::CompileRequest::new(3, &t)
            .options(budgeted.clone())
            .cache(&cache)
            .trace(true)
            .bind(&angles)
            .unwrap();
        assert_eq!(cache.stats(), warmed);
        assert_eq!(cache.num_programs(), 1);
        let trace = out.trace.unwrap();
        assert!(
            trace
                .events
                .iter()
                .any(|e| e.kind == EVENT_TRUNCATED || e.kind == EVENT_SKIPPED),
            "zero budget must truncate: {:?}",
            trace.events
        );
        // `structure()` under the same budget also bypasses the cache.
        crate::CompileRequest::new(3, &t)
            .options(budgeted)
            .cache(&cache)
            .structure()
            .unwrap();
        assert_eq!(cache.stats(), warmed);
        assert_eq!(cache.num_programs(), 1);
    }
}
