//! The compile report: the machine-readable [`ObsReport`] bundle and its
//! human-readable rendering.
//!
//! [`render`] produces the text report the `--obs` flag prints: per-pass
//! timing with gate/depth deltas, the slowest stage-2 groups, a
//! degraded/retried/truncated/skipped event rollup, and the non-zero
//! metrics. [`ObsReport`] itself serializes to JSON for `results/`.

use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSnapshot;
use crate::span::Span;

/// A robustness/verification event mirrored out of the pass trace
/// (`degraded`, `retried`, `truncated`, `skipped`, `verified`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsEvent {
    /// Name of the pass that raised the event.
    pub pass: String,
    /// Event class.
    pub kind: String,
    /// Human-readable elaboration.
    pub detail: String,
}

/// Everything one instrumented compilation observed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsReport {
    /// The span tree, rooted at `pipeline`.
    pub root: Span,
    /// Per-compilation metrics (deterministic for a given program).
    pub metrics: MetricsSnapshot,
    /// Delta of the process-global registry over this compilation
    /// (simulator/router totals; approximate under concurrent
    /// compilations).
    pub global_metrics: MetricsSnapshot,
    /// Robustness events raised during compilation.
    pub events: Vec<ObsEvent>,
}

impl ObsReport {
    /// Renders the human-readable compile report.
    pub fn render(&self) -> String {
        render(self)
    }
}

/// Right-pads or truncates a cell to `w` characters.
fn pad(s: &str, w: usize) -> String {
    if s.len() >= w {
        s.to_string()
    } else {
        format!("{s}{}", " ".repeat(w - s.len()))
    }
}

fn arg<'a>(span: &'a Span, key: &str) -> Option<&'a str> {
    span.args
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

fn arg_i64(span: &Span, key: &str) -> Option<i64> {
    arg(span, key).and_then(|v| v.parse().ok())
}

/// Signed delta between a span's `<key>_before` / `<key>_after` args.
fn delta(span: &Span, key: &str) -> Option<i64> {
    Some(arg_i64(span, &format!("{key}_after"))? - arg_i64(span, &format!("{key}_before"))?)
}

fn fmt_delta(d: Option<i64>) -> String {
    match d {
        Some(0) | None => "·".to_string(),
        Some(d) if d > 0 => format!("+{d}"),
        Some(d) => d.to_string(),
    }
}

/// Renders the human-readable compile report for one compilation.
pub fn render(report: &ObsReport) -> String {
    let mut out = String::new();
    let total_ms = report.root.dur_us as f64 / 1e3;
    out.push_str(&format!(
        "compile report — {} spans, {:.3} ms total\n",
        report.root.len(),
        total_ms
    ));

    // Per-pass table: timing plus gate/depth deltas from the span args.
    out.push_str("\npasses (time, share, Δcnot, Δ2q-depth, children):\n");
    for pass in &report.root.children {
        let ms = pass.dur_us as f64 / 1e3;
        let share = if report.root.dur_us > 0 {
            100.0 * pass.dur_us as f64 / report.root.dur_us as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {} {:>9.3} ms {:>5.1}%  cnot {:>5}  depth2q {:>5}  {:>4} spans\n",
            pad(&pass.name, 18),
            ms,
            share,
            fmt_delta(delta(pass, "cnot")),
            fmt_delta(delta(pass, "depth_2q")),
            pass.len() - 1,
        ));
    }

    // Slowest stage-2 groups, if any were recorded.
    let mut groups: Vec<&Span> = Vec::new();
    for pass in &report.root.children {
        groups.extend(pass.children.iter().filter(|c| c.cat == "group"));
    }
    if !groups.is_empty() {
        groups.sort_by(|a, b| b.dur_us.cmp(&a.dur_us).then(a.name.cmp(&b.name)));
        out.push_str(&format!(
            "\nstage-2 groups ({} total; slowest first):\n",
            groups.len()
        ));
        for g in groups.iter().take(8) {
            out.push_str(&format!(
                "  {} {:>9.3} ms  terms {:>4}  cnot {:>4}  saved {:>4}\n",
                pad(&g.name, 10),
                g.dur_us as f64 / 1e3,
                arg(g, "terms").unwrap_or("?"),
                arg(g, "cnot").unwrap_or("?"),
                arg(g, "cnots_saved").unwrap_or("?"),
            ));
        }
        if groups.len() > 8 {
            out.push_str(&format!("  … and {} more\n", groups.len() - 8));
        }
    }

    // Event rollup: kind → count, then the individual events.
    if !report.events.is_empty() {
        let mut kinds: Vec<(&str, usize)> = Vec::new();
        for e in &report.events {
            match kinds.iter_mut().find(|(k, _)| *k == e.kind) {
                Some((_, n)) => *n += 1,
                None => kinds.push((&e.kind, 1)),
            }
        }
        kinds.sort();
        let rollup: Vec<String> = kinds.iter().map(|(k, n)| format!("{k} ×{n}")).collect();
        out.push_str(&format!("\nevents: {}\n", rollup.join(", ")));
        for e in report.events.iter().take(12) {
            out.push_str(&format!("  [{}] {}: {}\n", e.kind, e.pass, e.detail));
        }
        if report.events.len() > 12 {
            out.push_str(&format!("  … and {} more\n", report.events.len() - 12));
        }
    }

    // Anytime deepening summary (budgeted compiles only).
    let counter = |name: &str| {
        report
            .metrics
            .counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    };
    let rounds = counter("anytime_rounds");
    if rounds > 0 {
        let improvements = counter("anytime_improvements");
        out.push_str(&format!(
            "\nanytime: {rounds} deepening rounds, {improvements} improved the best-so-far \
             ({:.2} improvements/round)\n",
            improvements as f64 / rounds as f64
        ));
        for pass in &report.root.children {
            for r in pass.children.iter().filter(|c| c.cat == "anytime") {
                out.push_str(&format!(
                    "  {} {:>9.3} ms  breadth {:>5}  2q {:>4}  depth2q {:>4}  improved {}\n",
                    pad(&r.name, 10),
                    r.dur_us as f64 / 1e3,
                    arg(r, "breadth").unwrap_or("?"),
                    arg(r, "two_qubit").unwrap_or("?"),
                    arg(r, "depth_2q").unwrap_or("?"),
                    arg(r, "improved").unwrap_or("?"),
                ));
            }
        }
    }

    // Non-zero metrics.
    let counters: Vec<String> = report
        .metrics
        .counters
        .iter()
        .filter(|c| c.value > 0)
        .map(|c| format!("  {} = {}", pad(&c.name, 22), c.value))
        .collect();
    if !counters.is_empty() {
        out.push_str("\nmetrics:\n");
        out.push_str(&counters.join("\n"));
        out.push('\n');
    }
    for h in &report.metrics.histograms {
        if h.count > 0 {
            out.push_str(&format!(
                "  {} n={} sum={} mean={:.1}\n",
                pad(&h.name, 22),
                h.count,
                h.sum,
                h.sum as f64 / h.count as f64
            ));
        }
    }
    let globals: Vec<String> = report
        .global_metrics
        .counters
        .iter()
        .filter(|c| c.value > 0)
        .map(|c| format!("  {} = {}", pad(&c.name, 22), c.value))
        .collect();
    if !globals.is_empty() {
        out.push_str("\nglobal metrics (process-wide delta):\n");
        out.push_str(&globals.join("\n"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_report() -> ObsReport {
        let mut pass = Span::new("simplify-synth", "pass")
            .arg("cnot_before", 0)
            .arg("cnot_after", 0)
            .arg("depth_2q_before", 0)
            .arg("depth_2q_after", 0);
        pass.start_us = 0;
        pass.dur_us = 2000;
        let mut g = Span::new("group 0", "group")
            .arg("terms", 4)
            .arg("cnot", 6)
            .arg("cnots_saved", 10);
        g.start_us = 100;
        g.dur_us = 1500;
        pass.children.push(g);
        let mut concat = Span::new("concat", "pass")
            .arg("cnot_before", 0)
            .arg("cnot_after", 6)
            .arg("depth_2q_before", 0)
            .arg("depth_2q_after", 4);
        concat.start_us = 2000;
        concat.dur_us = 500;
        let mut root = Span::new("pipeline", "pipeline");
        root.dur_us = 2500;
        root.children = vec![pass, concat];
        ObsReport {
            root,
            metrics: MetricsRegistry::new().snapshot(),
            global_metrics: MetricsRegistry::new().snapshot(),
            events: vec![ObsEvent {
                pass: "layout-route".into(),
                kind: "retried".into(),
                detail: "searched layout abandoned".into(),
            }],
        }
    }

    #[test]
    fn render_contains_passes_groups_and_events() {
        let text = render(&sample_report());
        assert!(text.contains("simplify-synth"), "{text}");
        assert!(text.contains("group 0"), "{text}");
        assert!(text.contains("retried ×1"), "{text}");
        assert!(text.contains("cnot    +6"), "{text}");
    }

    /// Snapshot of the full rendered report for a fixed input — any
    /// formatting change must be made deliberately, by updating this
    /// expected text.
    #[test]
    fn render_snapshot() {
        let expected = "\
compile report — 4 spans, 2.500 ms total

passes (time, share, Δcnot, Δ2q-depth, children):
  simplify-synth         2.000 ms  80.0%  cnot     ·  depth2q     ·     1 spans
  concat                 0.500 ms  20.0%  cnot    +6  depth2q    +4     0 spans

stage-2 groups (1 total; slowest first):
  group 0        1.500 ms  terms    4  cnot    6  saved   10

events: retried ×1
  [retried] layout-route: searched layout abandoned
  group_cnots            n=1 sum=6 mean=6.0
  group_cnots_saved      n=1 sum=10 mean=10.0
  group_terms            n=1 sum=4 mean=4.0
";
        let mut report = sample_report();
        let m = MetricsRegistry::new();
        m.observe(crate::metrics::HistogramId::GroupTerms, 4);
        m.observe(crate::metrics::HistogramId::GroupCnots, 6);
        m.observe(crate::metrics::HistogramId::GroupCnotsSaved, 10);
        report.metrics = m.snapshot();
        assert_eq!(render(&report), expected);
    }

    #[test]
    fn anytime_summary_appears_only_for_budgeted_compiles() {
        let plain = render(&sample_report());
        assert!(!plain.contains("anytime:"), "{plain}");

        let mut report = sample_report();
        let mut round = Span::new("round 1", "anytime")
            .arg("breadth", 4)
            .arg("lookahead", 4)
            .arg("two_qubit", 6)
            .arg("depth_2q", 4)
            .arg("gates", 12)
            .arg("improved", "yes");
        round.dur_us = 300;
        report.root.children[0].children.push(round);
        let m = MetricsRegistry::new();
        m.incr(crate::metrics::MetricId::AnytimeRounds);
        m.incr(crate::metrics::MetricId::AnytimeImprovements);
        report.metrics = m.snapshot();
        let text = render(&report);
        assert!(
            text.contains("anytime: 1 deepening rounds, 1 improved the best-so-far"),
            "{text}"
        );
        assert!(text.contains("round 1"), "{text}");
        assert!(text.contains("improved yes"), "{text}");
    }

    #[test]
    fn delta_formatting() {
        assert_eq!(fmt_delta(Some(3)), "+3");
        assert_eq!(fmt_delta(Some(-2)), "-2");
        assert_eq!(fmt_delta(Some(0)), "·");
        assert_eq!(fmt_delta(None), "·");
    }
}
