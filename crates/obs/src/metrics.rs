//! Lock-free metrics: a fixed catalog of atomic counters, gauges and
//! fixed-bucket histograms.
//!
//! The registry is deliberately *not* a string-keyed map: every metric the
//! workspace records is declared up front in [`MetricId`], so a
//! [`MetricsRegistry`] is a plain array of atomics. Recording a sample is a
//! single `fetch_add` / `store` with relaxed ordering — no locks, no
//! allocation, no hashing — which is what lets instrumentation stay in the
//! stage-2 hot path without measurable overhead.
//!
//! Two registries matter in practice:
//!
//! - a **per-compilation** registry owned by an
//!   `ObsCollector`, whose totals are deterministic for a
//!   given program (and thread-count-independent — the proptests in
//!   `phoenix-core` enforce this);
//! - the **process-global** registry ([`global`]), fed by substrate crates
//!   (router swap insertions, simulator gate applications) that have no
//!   compilation context to thread a collector through. Global recording is
//!   additionally gated on [`enabled`] so the disabled cost is one relaxed
//!   atomic load.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Every counter the PHOENIX pipeline records. The discriminant indexes the
/// registry's counter array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum MetricId {
    /// IR groups compiled by stage 2.
    GroupsCompiled,
    /// Pauli terms covered by the compiled groups.
    TermsCompiled,
    /// CNOTs saved by stage-2 BSF simplification vs the conventional
    /// `2(w-1)`-per-term synthesis estimate.
    CnotsSavedStage2,
    /// Stage-2 groups that fell back to conventional synthesis after a
    /// contained panic.
    Stage2Degraded,
    /// Stage-2 groups truncated by an elapsed pass budget.
    Stage2Truncated,
    /// Groups permuted by the Tetris-like ordering stage.
    OrderedGroups,
    /// SWAPs inserted by SABRE routing (successful attempt only).
    SabreSwaps,
    /// Routing attempts abandoned by the retry ladder.
    RouterRetries,
    /// Routing attempts started (successful or not).
    RouterAttempts,
    /// Passes executed by the pass manager.
    PassesRun,
    /// Optional passes skipped by the pass budget.
    PassesSkipped,
    /// Pass-boundary validations accepted by observers.
    BoundariesVerified,
    /// Gate applications performed by the state-vector simulator
    /// (global registry only — the simulator has no compile context).
    SimGateOps,
    /// SWAPs inserted by the router, process-wide (global registry only).
    SabreSwapsTotal,
    /// Bridge gates emitted by the router, process-wide (global registry
    /// only).
    SabreBridgesTotal,
    /// Whole-program structure-artifact cache lookups that hit.
    CacheProgramHits,
    /// Whole-program structure-artifact cache lookups that missed.
    CacheProgramMisses,
    /// Per-group synthesis cache lookups that hit.
    CacheGroupHits,
    /// Per-group synthesis cache lookups that missed.
    CacheGroupMisses,
    /// Requests admitted to the serve queue (`phoenixd`).
    ServeAdmitted,
    /// Requests shed with `Overloaded` by admission control.
    ServeShed,
    /// Requests abandoned by an explicit client cancellation.
    ServeCancelled,
    /// Requests abandoned by the server-side wall-clock watchdog.
    ServeDeadlineExceeded,
    /// Worker panics contained by the serve layer (the process lived).
    ServePanicsContained,
    /// Deepening rounds completed by the anytime optimizer.
    AnytimeRounds,
    /// Deepening rounds that strictly improved the best-so-far circuit.
    AnytimeImprovements,
    /// Fleet compilations executed (one per `Target::Fleet` request).
    FleetCompiles,
    /// Per-device member compiles attempted across all fleet requests.
    FleetMembersCompiled,
}

/// All counters, in discriminant order. Kept in sync with [`MetricId`] by
/// the `catalog_is_complete` test.
pub const COUNTERS: [MetricId; 28] = [
    MetricId::GroupsCompiled,
    MetricId::TermsCompiled,
    MetricId::CnotsSavedStage2,
    MetricId::Stage2Degraded,
    MetricId::Stage2Truncated,
    MetricId::OrderedGroups,
    MetricId::SabreSwaps,
    MetricId::RouterRetries,
    MetricId::RouterAttempts,
    MetricId::PassesRun,
    MetricId::PassesSkipped,
    MetricId::BoundariesVerified,
    MetricId::SimGateOps,
    MetricId::SabreSwapsTotal,
    MetricId::SabreBridgesTotal,
    MetricId::CacheProgramHits,
    MetricId::CacheProgramMisses,
    MetricId::CacheGroupHits,
    MetricId::CacheGroupMisses,
    MetricId::ServeAdmitted,
    MetricId::ServeShed,
    MetricId::ServeCancelled,
    MetricId::ServeDeadlineExceeded,
    MetricId::ServePanicsContained,
    MetricId::AnytimeRounds,
    MetricId::AnytimeImprovements,
    MetricId::FleetCompiles,
    MetricId::FleetMembersCompiled,
];

impl MetricId {
    /// The stable snake_case name used in snapshots and reports.
    pub fn name(self) -> &'static str {
        match self {
            MetricId::GroupsCompiled => "groups_compiled",
            MetricId::TermsCompiled => "terms_compiled",
            MetricId::CnotsSavedStage2 => "cnots_saved_stage2",
            MetricId::Stage2Degraded => "stage2_degraded",
            MetricId::Stage2Truncated => "stage2_truncated",
            MetricId::OrderedGroups => "ordered_groups",
            MetricId::SabreSwaps => "sabre_swaps",
            MetricId::RouterRetries => "router_retries",
            MetricId::RouterAttempts => "router_attempts",
            MetricId::PassesRun => "passes_run",
            MetricId::PassesSkipped => "passes_skipped",
            MetricId::BoundariesVerified => "boundaries_verified",
            MetricId::SimGateOps => "sim_gate_ops",
            MetricId::SabreSwapsTotal => "sabre_swaps_total",
            MetricId::SabreBridgesTotal => "sabre_bridges_total",
            MetricId::CacheProgramHits => "cache_program_hits",
            MetricId::CacheProgramMisses => "cache_program_misses",
            MetricId::CacheGroupHits => "cache_group_hits",
            MetricId::CacheGroupMisses => "cache_group_misses",
            MetricId::ServeAdmitted => "serve_admitted",
            MetricId::ServeShed => "serve_shed",
            MetricId::ServeCancelled => "serve_cancelled",
            MetricId::ServeDeadlineExceeded => "serve_deadline_exceeded",
            MetricId::ServePanicsContained => "serve_panics_contained",
            MetricId::AnytimeRounds => "anytime_rounds",
            MetricId::AnytimeImprovements => "anytime_improvements",
            MetricId::FleetCompiles => "fleet_compiles",
            MetricId::FleetMembersCompiled => "fleet_members_compiled",
        }
    }
}

/// The gauge catalog: last-write-wins instantaneous values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum GaugeId {
    /// Worker threads stage 2 actually used.
    Stage2Threads,
    /// Lookahead window of the ordering stage.
    OrderLookahead,
    /// Physical qubits of the routing target.
    DeviceQubits,
}

/// All gauges, in discriminant order.
pub const GAUGES: [GaugeId; 3] = [
    GaugeId::Stage2Threads,
    GaugeId::OrderLookahead,
    GaugeId::DeviceQubits,
];

impl GaugeId {
    /// The stable snake_case name used in snapshots and reports.
    pub fn name(self) -> &'static str {
        match self {
            GaugeId::Stage2Threads => "stage2_threads",
            GaugeId::OrderLookahead => "order_lookahead",
            GaugeId::DeviceQubits => "device_qubits",
        }
    }
}

/// The histogram catalog: power-of-two-bucketed distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistogramId {
    /// Terms per IR group.
    GroupTerms,
    /// CNOTs per synthesized group subcircuit.
    GroupCnots,
    /// CNOTs saved per group vs conventional synthesis.
    GroupCnotsSaved,
}

/// All histograms, in discriminant order.
pub const HISTOGRAMS: [HistogramId; 3] = [
    HistogramId::GroupTerms,
    HistogramId::GroupCnots,
    HistogramId::GroupCnotsSaved,
];

impl HistogramId {
    /// The stable snake_case name used in snapshots and reports.
    pub fn name(self) -> &'static str {
        match self {
            HistogramId::GroupTerms => "group_terms",
            HistogramId::GroupCnots => "group_cnots",
            HistogramId::GroupCnotsSaved => "group_cnots_saved",
        }
    }
}

/// Number of buckets per histogram: bucket `i` counts samples in
/// `[2^(i-1), 2^i)` (bucket 0 counts zeros and ones), with the last bucket
/// open-ended.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A fixed-bucket histogram over `u64` samples. Buckets are powers of two,
/// so `record` is a `leading_zeros` plus one atomic add.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// The bucket index a value falls into.
    fn bucket_of(value: u64) -> usize {
        // 0 and 1 land in bucket 0; 2..4 in 1; 4..8 in 2; ...
        let bits = 64 - value.max(1).leading_zeros() as usize;
        (bits - 1).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one sample (lock-free, relaxed).
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of the bucket occupancies.
    pub fn buckets(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// The lock-free registry: one atomic slot per catalog entry.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: [AtomicU64; COUNTERS.len()],
    gauges: [AtomicI64; GAUGES.len()],
    histograms: [Histogram; HISTOGRAMS.len()],
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `n` to a counter (lock-free, relaxed).
    pub fn add(&self, id: MetricId, n: u64) {
        self.counters[id as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    pub fn incr(&self, id: MetricId) {
        self.add(id, 1);
    }

    /// Current value of a counter.
    pub fn counter(&self, id: MetricId) -> u64 {
        self.counters[id as usize].load(Ordering::Relaxed)
    }

    /// Sets a gauge (last write wins).
    pub fn set_gauge(&self, id: GaugeId, value: i64) {
        self.gauges[id as usize].store(value, Ordering::Relaxed);
    }

    /// Current value of a gauge.
    pub fn gauge(&self, id: GaugeId) -> i64 {
        self.gauges[id as usize].load(Ordering::Relaxed)
    }

    /// Records a histogram sample.
    pub fn observe(&self, id: HistogramId, value: u64) {
        self.histograms[id as usize].record(value);
    }

    /// Read access to a histogram.
    pub fn histogram(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id as usize]
    }

    /// A serializable point-in-time copy, sorted by metric name so output
    /// is deterministic. Zero-valued counters/gauges and empty histograms
    /// are retained — a report should show what was *not* exercised too.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterSnapshot> = COUNTERS
            .iter()
            .map(|&id| CounterSnapshot {
                name: id.name().to_string(),
                value: self.counter(id),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSnapshot> = GAUGES
            .iter()
            .map(|&id| GaugeSnapshot {
                name: id.name().to_string(),
                value: self.gauge(id),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = HISTOGRAMS
            .iter()
            .map(|&id| {
                let h = self.histogram(id);
                HistogramSnapshot {
                    name: id.name().to_string(),
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h.buckets(),
                }
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One counter's snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Catalog name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One gauge's snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Catalog name.
    pub name: String,
    /// Last stored value.
    pub value: i64,
}

/// One histogram's snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Catalog name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Power-of-two bucket occupancies.
    pub buckets: Vec<u64>,
}

/// A serializable, name-sorted copy of a registry.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter value by name (`None` for unknown names).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The counter-wise difference `self - earlier`, for turning two global
    /// snapshots into a per-interval reading. Gauges keep `self`'s values;
    /// histogram buckets subtract saturating (a shrinking counter means the
    /// snapshots were taken out of order — clamped to zero rather than
    /// wrapped).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|c| CounterSnapshot {
                name: c.name.clone(),
                value: c
                    .value
                    .saturating_sub(earlier.counter(&c.name).unwrap_or(0)),
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                let before = earlier.histograms.iter().find(|e| e.name == h.name);
                HistogramSnapshot {
                    name: h.name.clone(),
                    count: h.count.saturating_sub(before.map_or(0, |b| b.count)),
                    sum: h.sum.saturating_sub(before.map_or(0, |b| b.sum)),
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| {
                            v.saturating_sub(
                                before.and_then(|b| b.buckets.get(i)).copied().unwrap_or(0),
                            )
                        })
                        .collect(),
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Whether every counter and histogram is zero/empty.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|c| c.value == 0) && self.histograms.iter().all(|h| h.count == 0)
    }
}

static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns process-global metric recording on or off. Substrate crates
/// (router, simulator) consult [`enabled`] before touching the global
/// registry, so the disabled cost is one relaxed load.
pub fn set_enabled(on: bool) {
    GLOBAL_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether process-global metric recording is on.
pub fn enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

/// The process-global registry, for instrumentation points with no
/// compilation context (simulator kernels, router internals). Callers
/// should gate recording on [`enabled`].
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete() {
        // The const arrays enumerate every variant in discriminant order.
        for (i, id) in COUNTERS.iter().enumerate() {
            assert_eq!(*id as usize, i, "counter {} out of order", id.name());
        }
        for (i, id) in GAUGES.iter().enumerate() {
            assert_eq!(*id as usize, i, "gauge {} out of order", id.name());
        }
        for (i, id) in HISTOGRAMS.iter().enumerate() {
            assert_eq!(*id as usize, i, "histogram {} out of order", id.name());
        }
    }

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::new();
        r.incr(MetricId::GroupsCompiled);
        r.add(MetricId::GroupsCompiled, 4);
        assert_eq!(r.counter(MetricId::GroupsCompiled), 5);
        assert_eq!(r.counter(MetricId::SabreSwaps), 0);
    }

    #[test]
    fn gauges_take_last_write() {
        let r = MetricsRegistry::new();
        r.set_gauge(GaugeId::Stage2Threads, 8);
        r.set_gauge(GaugeId::Stage2Threads, 2);
        assert_eq!(r.gauge(GaugeId::Stage2Threads), 2);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 1);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(1023), 9);
        assert_eq!(Histogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_tracks_count_and_sum() {
        let r = MetricsRegistry::new();
        for v in [1, 2, 3, 100] {
            r.observe(HistogramId::GroupTerms, v);
        }
        let h = r.histogram(HistogramId::GroupTerms);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.buckets().iter().sum::<u64>(), 4);
    }

    #[test]
    fn snapshot_is_name_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.incr(MetricId::SabreSwaps);
        let s = r.snapshot();
        assert_eq!(s.counters.len(), COUNTERS.len());
        assert!(s.counters.windows(2).all(|w| w[0].name <= w[1].name));
        assert_eq!(s.counter("sabre_swaps"), Some(1));
        assert_eq!(s.counter("router_retries"), Some(0));
        assert_eq!(s.counter("no_such_metric"), None);
    }

    #[test]
    fn delta_subtracts_counters_and_histograms() {
        let r = MetricsRegistry::new();
        r.add(MetricId::SimGateOps, 10);
        r.observe(HistogramId::GroupTerms, 5);
        let before = r.snapshot();
        r.add(MetricId::SimGateOps, 7);
        r.observe(HistogramId::GroupTerms, 9);
        let delta = r.snapshot().delta_since(&before);
        assert_eq!(delta.counter("sim_gate_ops"), Some(7));
        let h = delta
            .histograms
            .iter()
            .find(|h| h.name == "group_terms")
            .unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 9);
    }

    #[test]
    fn global_flag_toggles() {
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let r = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        r.incr(MetricId::PassesRun);
                        r.observe(HistogramId::GroupCnots, 3);
                    }
                });
            }
        });
        assert_eq!(r.counter(MetricId::PassesRun), 8000);
        assert_eq!(r.histogram(HistogramId::GroupCnots).count(), 8000);
    }
}
