//! Structured observability for the PHOENIX compiler.
//!
//! The paper's evaluation is about *where* gate count and depth are won or
//! lost across the three pipeline stages; this crate is the substrate that
//! answers such questions about the implementation itself. Three layers:
//!
//! 1. **[`metrics`]** — a lock-free [`MetricsRegistry`]: a fixed catalog of
//!    atomic counters ([`MetricId`]: `groups_compiled`,
//!    `cnots_saved_stage2`, `sabre_swaps`, `router_retries`, ...), gauges
//!    and fixed-bucket histograms. Recording is a relaxed atomic op;
//!    a process-[`global`](metrics::global) registry (gated on
//!    [`metrics::enabled`]) serves instrumentation points with no
//!    compilation context, such as simulator kernels.
//! 2. **[`span`]** — hierarchical [`Span`] trees (pipeline → pass →
//!    stage-2 group → candidate scan / router attempt) collected per
//!    compilation by an [`ObsCollector`]. Structure and arguments are
//!    deterministic and thread-count-independent; only timings vary.
//! 3. **Exporters** — [`perfetto`] writes Chrome/Perfetto trace-event JSON
//!    loadable in `ui.perfetto.dev`; [`report`] bundles spans + metrics +
//!    events into an [`ObsReport`] with a human-readable rendering.
//!
//! The compiler front end is `phoenix_core`'s `CompileRequest::obs(true)`;
//! every experiment binary exposes it as `--obs` / `PHOENIX_OBS=1`.
//!
//! # Examples
//!
//! ```
//! use phoenix_obs::{ObsCollector, Span};
//! use phoenix_obs::metrics::MetricId;
//!
//! let collector = ObsCollector::new();
//! collector.metrics().add(MetricId::GroupsCompiled, 3);
//! let mut pass = Span::new("simplify-synth", "pass");
//! pass.dur_us = 1200;
//! collector.push_root(pass);
//! let report = collector.finish(Vec::new());
//! assert_eq!(report.metrics.counter("groups_compiled"), Some(3));
//! assert_eq!(report.root.name, "pipeline");
//! let trace = phoenix_obs::perfetto::to_trace_file("demo", &report);
//! assert!(!trace.trace_events.is_empty());
//! ```

pub mod metrics;
pub mod perfetto;
pub mod report;
pub mod span;

pub use metrics::{GaugeId, HistogramId, MetricId, MetricsRegistry, MetricsSnapshot};
pub use perfetto::{TraceEvent, TraceEventFile};
pub use report::{ObsEvent, ObsReport};
pub use span::{ObsCollector, Span};
