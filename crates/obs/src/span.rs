//! Hierarchical spans: the timing tree of one compilation.
//!
//! A [`Span`] is a named, timed node with string-keyed arguments and child
//! spans. The PHOENIX pipeline records one root `pipeline` span per
//! compilation, a child per executed pass, and deeper children for units of
//! work inside a pass (stage-2 groups, their candidate scans, router
//! attempts) — the tree the paper's stage-attribution questions ("where did
//! the CNOTs go?") are answered from.
//!
//! Timings are wall-clock and therefore run-to-run noise; everything else
//! (names, nesting, arguments) is deterministic for a given program, and —
//! because stage-2 workers write spans into index-aligned slots —
//! independent of the thread count. [`Span::skeleton`] strips the timings
//! so tests can assert exactly that.

use std::sync::Mutex;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::metrics::{self, MetricsRegistry, MetricsSnapshot};
use crate::report::{ObsEvent, ObsReport};

/// One node of the span tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Display name (pass name, `group 3`, `route:searched`, ...).
    pub name: String,
    /// Category, used as the Perfetto `cat` field (`pipeline`, `pass`,
    /// `group`, `route`, ...).
    pub cat: String,
    /// Start, in microseconds since the collector's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Deterministic key/value annotations (gate counts, deltas, labels —
    /// never timings).
    pub args: Vec<(String, String)>,
    /// Child spans, in deterministic order.
    pub children: Vec<Span>,
}

impl Span {
    /// A zero-length span at the epoch.
    pub fn new(name: impl Into<String>, cat: impl Into<String>) -> Self {
        Span {
            name: name.into(),
            cat: cat.into(),
            start_us: 0,
            dur_us: 0,
            args: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Appends an argument (builder style).
    pub fn arg(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.args.push((key.into(), value.to_string()));
        self
    }

    /// Total number of nodes in this subtree (self included).
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(Span::len).sum::<usize>()
    }

    /// Whether the subtree is a single node. Present for `len` symmetry.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// The deterministic part of the subtree: a copy with every
    /// `start_us`/`dur_us` zeroed. Two compilations of the same program
    /// must produce equal skeletons regardless of `stage2_threads`.
    pub fn skeleton(&self) -> Span {
        Span {
            name: self.name.clone(),
            cat: self.cat.clone(),
            start_us: 0,
            dur_us: 0,
            args: self.args.clone(),
            children: self.children.iter().map(Span::skeleton).collect(),
        }
    }

    /// Depth-first search for the first span with `name`.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Per-compilation observability state: a timing epoch, a lock-free
/// [`MetricsRegistry`], and the accumulating span roots.
///
/// The collector is `Sync`: metrics are atomics, and the span list is
/// behind a coarse mutex touched once per pass (never inside worker
/// loops — passes accumulate child spans locally and the pass manager
/// pushes the assembled pass span).
#[derive(Debug)]
pub struct ObsCollector {
    epoch: Instant,
    metrics: MetricsRegistry,
    global_at_start: MetricsSnapshot,
    roots: Mutex<Vec<Span>>,
}

impl Default for ObsCollector {
    fn default() -> Self {
        ObsCollector::new()
    }
}

impl ObsCollector {
    /// A fresh collector; the epoch is now. Also snapshots the global
    /// registry so the final report can show the global delta attributable
    /// to this compilation (approximate under concurrent compilations).
    pub fn new() -> Self {
        ObsCollector {
            epoch: Instant::now(),
            metrics: MetricsRegistry::new(),
            global_at_start: metrics::global().snapshot(),
            roots: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds elapsed since the collector's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// The per-compilation metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Appends a top-level span (one per executed pass, in order).
    pub fn push_root(&self, span: Span) {
        self.roots
            .lock()
            .expect("span list mutex poisoned")
            .push(span);
    }

    /// Assembles the final report: the recorded spans wrapped in a
    /// `pipeline` root, the per-compilation metrics snapshot, and the
    /// global-registry delta since the collector was created.
    pub fn finish(&self, events: Vec<ObsEvent>) -> ObsReport {
        let children = std::mem::take(&mut *self.roots.lock().expect("span list mutex poisoned"));
        let start = children.first().map_or(0, |s| s.start_us);
        let end = children
            .iter()
            .map(|s| s.start_us + s.dur_us)
            .max()
            .unwrap_or(0);
        let root = Span {
            name: "pipeline".to_string(),
            cat: "pipeline".to_string(),
            start_us: start,
            dur_us: end.saturating_sub(start),
            args: Vec::new(),
            children,
        };
        ObsReport {
            root,
            metrics: self.metrics.snapshot(),
            global_metrics: metrics::global()
                .snapshot()
                .delta_since(&self.global_at_start),
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricId;

    #[test]
    fn span_builder_and_len() {
        let mut s = Span::new("pass", "pass").arg("gates", 12);
        s.children.push(Span::new("group 0", "group"));
        s.children.push(Span::new("group 1", "group"));
        assert_eq!(s.len(), 3);
        assert_eq!(s.args, vec![("gates".to_string(), "12".to_string())]);
        assert!(s.find("group 1").is_some());
        assert!(s.find("group 7").is_none());
    }

    #[test]
    fn skeleton_strips_timings_only() {
        let mut s = Span::new("pass", "pass").arg("cnot", 3);
        s.start_us = 100;
        s.dur_us = 50;
        let mut child = Span::new("group 0", "group");
        child.start_us = 120;
        child.dur_us = 10;
        s.children.push(child);
        let k = s.skeleton();
        assert_eq!(k.start_us, 0);
        assert_eq!(k.dur_us, 0);
        assert_eq!(k.children[0].start_us, 0);
        assert_eq!(k.name, "pass");
        assert_eq!(k.args, s.args);
    }

    #[test]
    fn collector_wraps_roots_into_pipeline_span() {
        let c = ObsCollector::new();
        c.metrics().incr(MetricId::PassesRun);
        let mut a = Span::new("group", "pass");
        a.start_us = 10;
        a.dur_us = 5;
        let mut b = Span::new("concat", "pass");
        b.start_us = 20;
        b.dur_us = 7;
        c.push_root(a);
        c.push_root(b);
        let report = c.finish(Vec::new());
        assert_eq!(report.root.name, "pipeline");
        assert_eq!(report.root.children.len(), 2);
        assert_eq!(report.root.start_us, 10);
        assert_eq!(report.root.dur_us, 17);
        assert_eq!(report.metrics.counter("passes_run"), Some(1));
    }

    #[test]
    fn empty_collector_finishes_cleanly() {
        let report = ObsCollector::new().finish(Vec::new());
        assert_eq!(report.root.len(), 1);
        assert_eq!(report.root.dur_us, 0);
    }
}
