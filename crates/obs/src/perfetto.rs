//! Chrome/Perfetto trace-event export.
//!
//! Serializes a span tree (or a batch of labelled trees) into the JSON
//! trace-event format both `chrome://tracing` and <https://ui.perfetto.dev>
//! load directly: an object with a `traceEvents` array of complete (`"X"`)
//! duration events plus instant (`"i"`) events for robustness events and
//! metadata (`"M"`) events naming each track.
//!
//! The exported [`TraceEventFile`] round-trips through the vendored
//! `serde_json` (see the unit tests), which is what the CI smoke step
//! asserts for `table1 --quick --obs`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::report::ObsReport;
use crate::span::Span;

/// One Chrome trace event. Fields follow the trace-event format spec;
/// `ph` is the phase (`X` complete, `i` instant, `M` metadata).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event / span name.
    pub name: String,
    /// Category (span `cat`, or `event` for instants).
    pub cat: String,
    /// Phase: `X`, `i`, or `M`.
    pub ph: String,
    /// Timestamp in microseconds.
    pub ts: u64,
    /// Duration in microseconds (0 for non-`X` phases).
    pub dur: u64,
    /// Process id (always 1 — one process per export).
    pub pid: u64,
    /// Thread id; each labelled compilation gets its own track.
    pub tid: u64,
    /// String arguments (span args, event details, track names).
    pub args: BTreeMap<String, String>,
}

/// A loadable trace file: `{"traceEvents": [...]}`.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEventFile {
    /// The events, in emission order.
    pub trace_events: Vec<TraceEvent>,
}

// Hand-written (de)serialization: the JSON key is `traceEvents` (camelCase,
// required by the trace-event format) and the vendored serde stub has no
// rename attribute.
impl Serialize for TraceEventFile {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![(
            "traceEvents".to_string(),
            self.trace_events.to_content(),
        )])
    }
}

impl Deserialize for TraceEventFile {
    fn from_content(content: &serde::Content) -> Result<Self, String> {
        let events = content
            .get("traceEvents")
            .ok_or_else(|| "missing `traceEvents` key".to_string())?;
        Ok(TraceEventFile {
            trace_events: Vec::<TraceEvent>::from_content(events)?,
        })
    }
}

fn flatten(span: &Span, tid: u64, out: &mut Vec<TraceEvent>) {
    out.push(TraceEvent {
        name: span.name.clone(),
        cat: span.cat.clone(),
        ph: "X".to_string(),
        ts: span.start_us,
        dur: span.dur_us,
        pid: 1,
        tid,
        args: span.args.iter().cloned().collect(),
    });
    for child in &span.children {
        flatten(child, tid, out);
    }
}

/// Exports one report on track `tid`, labelled `label`.
fn export_one(label: &str, report: &ObsReport, tid: u64, out: &mut Vec<TraceEvent>) {
    let mut meta_args = BTreeMap::new();
    meta_args.insert("name".to_string(), label.to_string());
    out.push(TraceEvent {
        name: "thread_name".to_string(),
        cat: "__metadata".to_string(),
        ph: "M".to_string(),
        ts: 0,
        dur: 0,
        pid: 1,
        tid,
        args: meta_args,
    });
    flatten(&report.root, tid, out);
    for event in &report.events {
        let mut args = BTreeMap::new();
        args.insert("pass".to_string(), event.pass.clone());
        args.insert("detail".to_string(), event.detail.clone());
        out.push(TraceEvent {
            name: format!("{}:{}", event.kind, event.pass),
            cat: "event".to_string(),
            ph: "i".to_string(),
            // Instant events carry no own timestamp in the span model;
            // anchor them at the root span's start.
            ts: report.root.start_us,
            dur: 0,
            pid: 1,
            tid,
            args,
        });
    }
}

/// Builds a trace file from one report.
pub fn to_trace_file(label: &str, report: &ObsReport) -> TraceEventFile {
    to_trace_file_batch(std::slice::from_ref(&(label.to_string(), report.clone())))
}

/// Builds a trace file with one track per labelled report — the shape the
/// bench binaries write, one track per benchmark.
pub fn to_trace_file_batch(reports: &[(String, ObsReport)]) -> TraceEventFile {
    let mut events = Vec::new();
    for (i, (label, report)) in reports.iter().enumerate() {
        export_one(label, report, i as u64 + 1, &mut events);
    }
    TraceEventFile {
        trace_events: events,
    }
}

/// Serializes a trace file to pretty JSON.
///
/// # Errors
///
/// Propagates serializer errors (infallible with the vendored stub).
pub fn to_json(file: &TraceEventFile) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(file)
}

/// Parses trace-event JSON back (used by round-trip tests and smoke
/// checks).
///
/// # Errors
///
/// Returns a parse error when the text is not a well-formed trace file.
pub fn from_json(text: &str) -> Result<TraceEventFile, serde_json::Error> {
    let value: serde_json::Value = serde_json::from_str(text)?;
    serde_json::from_value(&value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::report::ObsEvent;

    fn report() -> ObsReport {
        let mut root = Span::new("pipeline", "pipeline");
        root.dur_us = 100;
        let mut pass = Span::new("group", "pass").arg("cnot_after", 3);
        pass.start_us = 5;
        pass.dur_us = 40;
        pass.children.push(Span::new("group 0", "group"));
        root.children.push(pass);
        ObsReport {
            root,
            metrics: MetricsRegistry::new().snapshot(),
            global_metrics: MetricsRegistry::new().snapshot(),
            events: vec![ObsEvent {
                pass: "layout-route".into(),
                kind: "retried".into(),
                detail: "x".into(),
            }],
        }
    }

    #[test]
    fn export_flattens_the_tree_with_metadata_and_instants() {
        let file = to_trace_file("uccsd_h2", &report());
        // 1 metadata + 3 spans + 1 instant.
        assert_eq!(file.trace_events.len(), 5);
        assert_eq!(file.trace_events[0].ph, "M");
        assert_eq!(file.trace_events[0].args["name"], "uccsd_h2");
        assert!(file
            .trace_events
            .iter()
            .any(|e| e.ph == "X" && e.name == "group 0"));
        assert!(file
            .trace_events
            .iter()
            .any(|e| e.ph == "i" && e.name == "retried:layout-route"));
    }

    #[test]
    fn batch_export_separates_tracks() {
        let r = report();
        let file =
            to_trace_file_batch(&[("a".to_string(), r.clone()), ("b".to_string(), r.clone())]);
        let tids: std::collections::BTreeSet<u64> =
            file.trace_events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2);
    }

    #[test]
    fn json_round_trips() {
        let file = to_trace_file("rt", &report());
        let text = to_json(&file).unwrap();
        let back = from_json(&text).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_json("{\"traceEvents\": 7}").is_err());
        assert!(from_json("not json").is_err());
    }
}
