//! Property-based tests of the fermionic algebra and program generators.

use phoenix_hamil::{
    annihilation, creation, double_excitation, models, qaoa, single_excitation, trotter, uccsd,
    FermionEncoding, Hamiltonian,
};
use phoenix_mathkit::Complex;
use phoenix_pauli::PauliPolynomial;
use proptest::prelude::*;

fn encodings(n: usize) -> Vec<FermionEncoding> {
    vec![
        FermionEncoding::jordan_wigner(n),
        FermionEncoding::bravyi_kitaev(n),
        FermionEncoding::parity(n),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CAR relations hold for random mode pairs under every encoding.
    #[test]
    fn car_relations(n in 2usize..7, i in 0usize..7, j in 0usize..7) {
        prop_assume!(i < n && j < n);
        for enc in encodings(n) {
            let ai = annihilation(&enc, i);
            let ajd = creation(&enc, j);
            let anti = ai.mul(&ajd).add(&ajd.mul(&ai));
            if i == j {
                prop_assert_eq!(anti, PauliPolynomial::scalar(n, Complex::ONE));
            } else {
                prop_assert!(anti.is_zero(), "{} modes {} {}", enc.name(), i, j);
            }
        }
    }

    /// Excitation generators are anti-Hermitian and particle conserving.
    #[test]
    fn excitations_are_antihermitian(
        n in 4usize..7,
        i in 0usize..7,
        a in 0usize..7,
    ) {
        prop_assume!(i < n && a < n && i != a);
        for enc in encodings(n) {
            let t = single_excitation(&enc, i, a);
            prop_assert_eq!(t.dagger(), t.scale(-Complex::ONE));
        }
    }

    /// Doubles expand to at most 8 strings with uniform |coefficient|.
    #[test]
    fn doubles_have_uniform_magnitudes(seed in 0u64..50) {
        let n = 6;
        let orbs = {
            // Four distinct orbitals derived from the seed.
            let mut v = vec![0usize; 4];
            let mut s = seed;
            for slot in v.iter_mut() {
                *slot = (s % 6) as usize;
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            v.sort_unstable();
            v.dedup();
            v
        };
        prop_assume!(orbs.len() == 4);
        for enc in encodings(n) {
            let t = double_excitation(&enc, orbs[0], orbs[1], orbs[2], orbs[3]);
            prop_assert!(t.num_terms() <= 8, "{}", enc.name());
            let mags: Vec<f64> = t.iter().map(|term| term.coeff.abs()).collect();
            for m in &mags {
                prop_assert!((m - mags[0]).abs() < 1e-12);
            }
        }
    }

    /// Trotterization preserves total coefficient mass per string.
    #[test]
    fn trotter_preserves_coefficient_mass(r in 1usize..6) {
        let h = models::heisenberg_chain(5, 0.7, -0.3, 0.2);
        let fine = trotter::repeated_steps(h.terms(), r);
        prop_assert_eq!(fine.len(), h.len() * r);
        let mass = |terms: &[(phoenix_pauli::PauliString, f64)]| -> f64 {
            terms.iter().map(|t| t.1).sum()
        };
        prop_assert!((mass(&fine) - mass(h.terms())).abs() < 1e-12);
        let s2 = trotter::second_order(h.terms());
        prop_assert!((mass(&s2) - mass(h.terms())).abs() < 1e-12);
    }

    /// QAOA programs over any seed are valid regular-graph cost layers.
    #[test]
    fn qaoa_programs_are_well_formed(seed in 0u64..200, idx in 0usize..2, size in 0usize..3) {
        let kind = [qaoa::QaoaKind::Rand4, qaoa::QaoaKind::Reg3][idx];
        let n = [16, 20, 24][size];
        let h = qaoa::benchmark(kind, n, seed);
        let d = match kind {
            qaoa::QaoaKind::Rand4 => 4,
            qaoa::QaoaKind::Reg3 => 3,
        };
        prop_assert_eq!(h.len(), n * d / 2);
        let mut degree = vec![0usize; n];
        for (p, _) in h.terms() {
            prop_assert_eq!(p.weight(), 2);
            for q in p.support() {
                degree[q] += 1;
            }
        }
        prop_assert!(degree.iter().all(|&x| x == d));
    }

    /// Rescaling programs scales every coefficient uniformly.
    #[test]
    fn rescaling_is_uniform(scale in 0.01f64..10.0) {
        let h: Hamiltonian = models::tfim_chain(6, 1.0, 0.5);
        let r = h.rescaled(scale);
        for ((p1, c1), (p2, c2)) in h.terms().iter().zip(r.terms()) {
            prop_assert_eq!(p1, p2);
            prop_assert!((c2 - c1 * scale).abs() < 1e-12);
        }
    }
}

/// Non-proptest sanity: the UCCSD `#Pauli` formula matches the enumeration
/// for a sweep of synthetic sizes.
#[test]
fn uccsd_term_count_formula() {
    for (n_so, n_elec) in [(8, 2), (8, 4), (10, 4), (12, 6)] {
        let (singles, doubles) = uccsd::excitations(n_so, n_elec);
        let occ_per_spin = n_elec / 2;
        let virt_per_spin = (n_so - n_elec) / 2;
        let s_expect = 2 * occ_per_spin * virt_per_spin;
        assert_eq!(singles.len(), s_expect, "singles {n_so},{n_elec}");
        let c2 = |k: usize| k * (k.saturating_sub(1)) / 2;
        let d_expect = 2 * c2(occ_per_spin) * c2(virt_per_spin)          // αα + ββ
            + occ_per_spin * occ_per_spin * virt_per_spin * virt_per_spin; // αβ
        assert_eq!(doubles.len(), d_expect, "doubles {n_so},{n_elec}");
    }
}
