//! The UCCSD benchmark suite of Table I.
//!
//! Molecule specifications carry only what determines the Pauli-string
//! patterns: spatial-orbital and electron counts (STO-3G sizes) and the
//! frozen-core reduction. Spin orbitals are interleaved (`2p + σ`), filled
//! bottom-up (closed shell), and excitations are enumerated spin-conserving
//! — which reproduces the paper's per-benchmark `#Pauli` exactly.

use crate::{double_excitation, single_excitation, FermionEncoding, Hamiltonian};
use phoenix_mathkit::Xoshiro256;

/// The fermion-to-qubit encoding used for a UCCSD ansatz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// Jordan–Wigner.
    JordanWigner,
    /// Bravyi–Kitaev (Fenwick tree).
    BravyiKitaev,
}

impl Encoding {
    /// Short suffix used in benchmark names (`JW` / `BK`).
    pub fn suffix(self) -> &'static str {
        match self {
            Encoding::JordanWigner => "JW",
            Encoding::BravyiKitaev => "BK",
        }
    }

    /// Instantiates the encoding over `n` modes.
    pub fn build(self, n: usize) -> FermionEncoding {
        match self {
            Encoding::JordanWigner => FermionEncoding::jordan_wigner(n),
            Encoding::BravyiKitaev => FermionEncoding::bravyi_kitaev(n),
        }
    }
}

/// An STO-3G molecule specification for the Table-I suite.
///
/// # Examples
///
/// ```
/// use phoenix_hamil::Molecule;
///
/// let m = Molecule::h2o();
/// assert_eq!(m.spin_orbitals(false), 14);
/// assert_eq!(m.spin_orbitals(true), 12); // frozen core
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Molecule {
    name: &'static str,
    spatial: usize,
    electrons: usize,
    frozen_spatial: usize,
}

impl Molecule {
    /// Methylene, CH₂: 7 spatial orbitals, 8 electrons.
    pub fn ch2() -> Self {
        Molecule {
            name: "CH2",
            spatial: 7,
            electrons: 8,
            frozen_spatial: 1,
        }
    }

    /// Water, H₂O: 7 spatial orbitals, 10 electrons.
    pub fn h2o() -> Self {
        Molecule {
            name: "H2O",
            spatial: 7,
            electrons: 10,
            frozen_spatial: 1,
        }
    }

    /// Lithium hydride, LiH: 6 spatial orbitals, 4 electrons.
    pub fn lih() -> Self {
        Molecule {
            name: "LiH",
            spatial: 6,
            electrons: 4,
            frozen_spatial: 1,
        }
    }

    /// Imidogen, NH: 6 spatial orbitals, 8 electrons.
    pub fn nh() -> Self {
        Molecule {
            name: "NH",
            spatial: 6,
            electrons: 8,
            frozen_spatial: 1,
        }
    }

    /// The four molecules of the Table-I suite.
    pub fn suite() -> [Molecule; 4] {
        [
            Molecule::ch2(),
            Molecule::h2o(),
            Molecule::lih(),
            Molecule::nh(),
        ]
    }

    /// The molecule name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Spin-orbital (= qubit) count, optionally with the core frozen.
    pub fn spin_orbitals(&self, frozen: bool) -> usize {
        2 * (self.spatial - if frozen { self.frozen_spatial } else { 0 })
    }

    /// Active electron count, optionally with the core frozen.
    pub fn active_electrons(&self, frozen: bool) -> usize {
        self.electrons - if frozen { 2 * self.frozen_spatial } else { 0 }
    }
}

/// Spin of an interleaved spin orbital (0 = α, 1 = β).
fn spin(orb: usize) -> usize {
    orb % 2
}

/// A single excitation `i → a`.
pub type Single = (usize, usize);
/// A double excitation `(i, j) → (a, b)`.
pub type Double = (usize, usize, usize, usize);

/// Enumerates spin-conserving UCCSD excitations for `n_so` spin orbitals
/// with the lowest `n_elec` occupied. Returns `(singles, doubles)`.
pub fn excitations(n_so: usize, n_elec: usize) -> (Vec<Single>, Vec<Double>) {
    let occ: Vec<usize> = (0..n_elec).collect();
    let virt: Vec<usize> = (n_elec..n_so).collect();
    let mut singles = Vec::new();
    for &i in &occ {
        for &a in &virt {
            if spin(i) == spin(a) {
                singles.push((i, a));
            }
        }
    }
    let mut doubles = Vec::new();
    for (ii, &i) in occ.iter().enumerate() {
        for &j in &occ[ii + 1..] {
            for (aa, &a) in virt.iter().enumerate() {
                for &b in &virt[aa + 1..] {
                    let mut sin = [spin(i), spin(j)];
                    let mut sout = [spin(a), spin(b)];
                    sin.sort_unstable();
                    sout.sort_unstable();
                    if sin == sout {
                        doubles.push((i, j, a, b));
                    }
                }
            }
        }
    }
    (singles, doubles)
}

/// Builds the UCCSD ansatz program (one Trotter step) for a molecule.
///
/// Amplitudes are seeded synthetic values in `[-0.05, 0.05)`; the same
/// `seed` yields the same amplitudes under both encodings, mirroring the
/// paper's shared-molecule setup.
///
/// # Examples
///
/// ```
/// use phoenix_hamil::{uccsd, Molecule};
///
/// let p = uccsd::ansatz(Molecule::nh(), true, uccsd::Encoding::BravyiKitaev, 7);
/// assert_eq!(p.name(), "NH_frz_BK");
/// assert_eq!(p.num_qubits(), 10);
/// assert_eq!(p.len(), 360); // Table I
/// ```
pub fn ansatz(mol: Molecule, frozen: bool, encoding: Encoding, seed: u64) -> Hamiltonian {
    let n = mol.spin_orbitals(frozen);
    let n_elec = mol.active_electrons(frozen);
    let enc = encoding.build(n);
    let (singles, doubles) = excitations(n, n_elec);

    let mut rng = Xoshiro256::seed_from_u64(seed ^ fxhash(mol.name) ^ (frozen as u64) << 32);
    let mut terms = Vec::new();
    let mut emit = |poly: phoenix_pauli::PauliPolynomial, t: f64| {
        // T is anti-Hermitian: every coefficient is i·γ with real γ, so
        // exp(t·T) = Π exp(-i·(−t·γ_m)·P_m); the terms of one excitation
        // mutually commute so the product is exact.
        for term in poly.iter() {
            debug_assert!(term.coeff.re.abs() < 1e-12, "anti-hermitian generator");
            terms.push((term.string, -t * term.coeff.im));
        }
    };
    for &(i, a) in &singles {
        let t = rng.next_range_f64(-0.05, 0.05);
        emit(single_excitation(&enc, i, a), t);
    }
    for &(i, j, a, b) in &doubles {
        let t = rng.next_range_f64(-0.05, 0.05);
        emit(double_excitation(&enc, i, j, a, b), t);
    }

    let name = format!(
        "{}_{}_{}",
        mol.name,
        if frozen { "frz" } else { "cmplt" },
        encoding.suffix()
    );
    Hamiltonian::new(name, n, terms)
}

/// Builds all 16 Table-I benchmarks in the paper's listing order
/// (molecule × BK/JW × complete/frozen).
pub fn table1_suite(seed: u64) -> Vec<Hamiltonian> {
    let mut out = Vec::new();
    for mol in Molecule::suite() {
        for frozen in [false, true] {
            for enc in [Encoding::BravyiKitaev, Encoding::JordanWigner] {
                out.push(ansatz(mol, frozen, enc, seed));
            }
        }
    }
    out
}

/// Tiny deterministic string hash for seed mixing.
fn fxhash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (name, qubits, #Pauli, w_max) straight from Table I (JW rows).
    const TABLE1_JW: [(&str, usize, usize, usize); 8] = [
        ("CH2_cmplt_JW", 14, 1488, 14),
        ("CH2_frz_JW", 12, 828, 12),
        ("H2O_cmplt_JW", 14, 1000, 14),
        ("H2O_frz_JW", 12, 640, 12),
        ("LiH_cmplt_JW", 12, 640, 12),
        ("LiH_frz_JW", 10, 144, 10),
        ("NH_cmplt_JW", 12, 640, 12),
        ("NH_frz_JW", 10, 360, 10),
    ];

    #[test]
    fn jw_suite_matches_table1_exactly() {
        for &(name, q, np, wmax) in &TABLE1_JW {
            let (mol, frozen) = lookup(name);
            let h = ansatz(mol, frozen, Encoding::JordanWigner, 7);
            assert_eq!(h.name(), name);
            assert_eq!(h.num_qubits(), q, "{name} qubits");
            assert_eq!(h.len(), np, "{name} #pauli");
            assert_eq!(h.max_weight(), wmax, "{name} w_max");
        }
    }

    #[test]
    fn bk_suite_matches_table1_sizes() {
        // BK rows share #Pauli and #qubits with JW; w_max is encoding
        // dependent (Table I lists 9–10) — assert it is strictly below JW's.
        for &(jw_name, q, np, wmax_jw) in &TABLE1_JW {
            let (mol, frozen) = lookup(jw_name);
            let h = ansatz(mol, frozen, Encoding::BravyiKitaev, 7);
            assert_eq!(h.num_qubits(), q);
            assert_eq!(h.len(), np, "{} #pauli", h.name());
            assert!(
                h.max_weight() <= wmax_jw,
                "{}: BK w_max {} vs JW {}",
                h.name(),
                h.max_weight(),
                wmax_jw
            );
        }
    }

    fn lookup(name: &str) -> (Molecule, bool) {
        let mol = match &name[..3] {
            "CH2" => Molecule::ch2(),
            "H2O" => Molecule::h2o(),
            "LiH" => Molecule::lih(),
            _ => Molecule::nh(),
        };
        (mol, name.contains("frz"))
    }

    #[test]
    fn excitation_counts_for_lih_frozen() {
        // 2 electrons in 10 spin orbitals: 8 singles, 16 doubles.
        let (s, d) = excitations(10, 2);
        assert_eq!(s.len(), 8);
        assert_eq!(d.len(), 16);
    }

    #[test]
    fn ansatz_is_deterministic() {
        let a = ansatz(Molecule::lih(), true, Encoding::JordanWigner, 3);
        let b = ansatz(Molecule::lih(), true, Encoding::JordanWigner, 3);
        assert_eq!(a, b);
        let c = ansatz(Molecule::lih(), true, Encoding::JordanWigner, 4);
        assert_ne!(a.terms()[0].1, c.terms()[0].1, "seed changes amplitudes");
    }

    #[test]
    fn same_seed_same_amplitude_multiset_across_encodings() {
        let jw = ansatz(Molecule::nh(), true, Encoding::JordanWigner, 11);
        let bk = ansatz(Molecule::nh(), true, Encoding::BravyiKitaev, 11);
        let mut a: Vec<i64> = jw
            .terms()
            .iter()
            .map(|t| (t.1.abs() * 1e12) as i64)
            .collect();
        let mut b: Vec<i64> = bk
            .terms()
            .iter()
            .map(|t| (t.1.abs() * 1e12) as i64)
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn table1_suite_has_16_benchmarks() {
        let suite = table1_suite(7);
        assert_eq!(suite.len(), 16);
        let names: std::collections::BTreeSet<_> =
            suite.iter().map(|h| h.name().to_string()).collect();
        assert_eq!(names.len(), 16, "names unique");
    }

    #[test]
    fn spin_is_conserved_in_enumeration() {
        let (s, d) = excitations(8, 4);
        for (i, a) in s {
            assert_eq!(i % 2, a % 2);
        }
        for (i, j, a, b) in d {
            assert_eq!((i % 2) + (j % 2), (a % 2) + (b % 2));
        }
    }
}
