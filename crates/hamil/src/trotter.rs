//! Trotterization helpers (Eq. (1) of the paper).
//!
//! A Hamiltonian `H = Σ hⱼ Pⱼ` evolved for the duration absorbed in its
//! coefficients is approximated by the first-order product `S₁ = Π e^{-i hⱼ Pⱼ}`
//! (the term list itself), the palindromic second-order product `S₂`, or
//! `r` repeated finer steps. Compilers consume the resulting term lists
//! like any other program; the arrangement freedom inside each step is what
//! PHOENIX exploits.
//!
//! Note that compilers treat the whole term list as one reorderable Trotter
//! product: support-grouping may merge duplicated terms *across* repeated
//! steps, trading the finer-step error structure for gate count. To enforce
//! strict step boundaries, compile each step separately and concatenate the
//! circuits.

use crate::Hamiltonian;
use phoenix_pauli::PauliString;

/// Second-order (Suzuki) step: forward half-coefficients then the reverse
/// sweep, `S₂ = Π_{j=1..L} e^{-i hⱼ/2 Pⱼ} · Π_{j=L..1} e^{-i hⱼ/2 Pⱼ}`.
///
/// # Examples
///
/// ```
/// use phoenix_hamil::{trotter, Hamiltonian};
/// use phoenix_pauli::PauliString;
///
/// let h = Hamiltonian::new("toy", 1, vec![
///     ("X".parse::<PauliString>()?, 1.0),
///     ("Z".parse()?, 2.0),
/// ]);
/// let s2 = trotter::second_order(h.terms());
/// assert_eq!(s2.len(), 4);
/// assert_eq!(s2[0].1, 0.5);
/// assert_eq!(s2[3], s2[0]); // palindrome
/// # Ok::<(), phoenix_pauli::ParsePauliStringError>(())
/// ```
pub fn second_order(terms: &[(PauliString, f64)]) -> Vec<(PauliString, f64)> {
    let mut out: Vec<(PauliString, f64)> =
        terms.iter().map(|(p, c)| (p.clone(), c / 2.0)).collect();
    out.extend(terms.iter().rev().map(|(p, c)| (p.clone(), c / 2.0)));
    out
}

/// `r` repeated first-order steps with coefficients divided by `r` —
/// finer-grained Trotterization at proportionally larger circuit size.
///
/// # Panics
///
/// Panics if `r == 0`.
pub fn repeated_steps(terms: &[(PauliString, f64)], r: usize) -> Vec<(PauliString, f64)> {
    assert!(r > 0, "need at least one trotter step");
    let step: Vec<(PauliString, f64)> = terms
        .iter()
        .map(|(p, c)| (p.clone(), c / r as f64))
        .collect();
    let mut out = Vec::with_capacity(terms.len() * r);
    for _ in 0..r {
        out.extend(step.iter().cloned());
    }
    out
}

/// Convenience wrappers returning new [`Hamiltonian`] programs.
impl Hamiltonian {
    /// The second-order Trotter step of this program.
    pub fn second_order(&self) -> Hamiltonian {
        Hamiltonian::new(
            format!("{}_S2", self.name()),
            self.num_qubits(),
            second_order(self.terms()),
        )
    }

    /// `r` repeated first-order steps of this program.
    ///
    /// # Panics
    ///
    /// Panics if `r == 0`.
    pub fn repeated(&self, r: usize) -> Hamiltonian {
        Hamiltonian::new(
            format!("{}_r{r}", self.name()),
            self.num_qubits(),
            repeated_steps(self.terms(), r),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Vec<(PauliString, f64)> {
        vec![
            ("XI".parse().unwrap(), 0.4),
            ("ZZ".parse().unwrap(), -0.2),
            ("IY".parse().unwrap(), 0.1),
        ]
    }

    #[test]
    fn second_order_is_palindromic() {
        let s2 = second_order(&toy());
        assert_eq!(s2.len(), 6);
        for (a, b) in s2.iter().zip(s2.iter().rev()) {
            assert_eq!(a, b);
        }
        let total: f64 = s2.iter().map(|t| t.1).sum();
        let orig: f64 = toy().iter().map(|t| t.1).sum();
        assert!((total - orig).abs() < 1e-15, "total phase preserved");
    }

    #[test]
    fn repeated_steps_partition_coefficients() {
        let r = repeated_steps(&toy(), 4);
        assert_eq!(r.len(), 12);
        assert!((r[0].1 - 0.1).abs() < 1e-15);
        let total: f64 = r.iter().map(|t| t.1).sum();
        assert!((total - 0.3).abs() < 1e-12);
    }

    #[test]
    fn hamiltonian_wrappers_rename() {
        let h = Hamiltonian::new("toy", 2, toy());
        assert_eq!(h.second_order().name(), "toy_S2");
        assert_eq!(h.repeated(3).name(), "toy_r3");
        assert_eq!(h.repeated(3).len(), 9);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_steps_rejected() {
        let _ = repeated_steps(&toy(), 0);
    }
}
