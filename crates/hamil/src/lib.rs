//! Hamiltonian and ansatz generators for the PHOENIX evaluation.
//!
//! The paper evaluates on two program families:
//!
//! 1. **UCCSD** molecular-simulation ansatzes (CH₂, H₂O, LiH, NH with
//!    complete and frozen-core orbital spaces, under Jordan–Wigner and
//!    Bravyi–Kitaev encodings — Table I);
//! 2. **QAOA** programs on random 4-regular and 3-regular graphs (Table IV).
//!
//! Since the original molecular integrals require a chemistry package, this
//! crate instead implements the *fermionic operator algebra itself*:
//! creation/annihilation operators under any linear occupation encoding
//! ([`FermionEncoding::jordan_wigner`], [`FermionEncoding::bravyi_kitaev`],
//! [`FermionEncoding::parity`]), from which UCCSD excitation generators are
//! expanded into phase-exact Pauli polynomials. The resulting Pauli-string
//! *patterns* are identical to the real ansatzes — the spin-conserving
//! excitation enumeration reproduces the paper's per-benchmark `#Pauli`
//! exactly — while amplitudes are seeded synthetic values (they do not
//! affect gate counts; for algorithmic-error studies they are rescaled as in
//! the paper's Fig. 8 protocol).
//!
//! # Examples
//!
//! ```
//! use phoenix_hamil::{uccsd, Molecule};
//!
//! let program = uccsd::ansatz(Molecule::lih(), false, uccsd::Encoding::JordanWigner, 7);
//! assert_eq!(program.num_qubits(), 12);
//! assert_eq!(program.len(), 640); // matches Table I's LiH_cmplt_JW
//! ```

mod encoding;
mod fermion;
mod hamiltonian;
pub mod models;
pub mod molecular;
pub mod qaoa;
pub mod trotter;
pub mod uccsd;

pub use encoding::{EncodingError, FermionEncoding};
pub use fermion::{annihilation, creation, double_excitation, number_operator, single_excitation};
pub use hamiltonian::{HamilError, Hamiltonian};
pub use uccsd::Molecule;
