//! Linear fermion-to-qubit occupation encodings.
//!
//! A *linear* encoding stores on qubit `i` the parity of a subset of mode
//! occupations: `q_i = ⊕_j M[i][j]·n_j` for an invertible GF(2) matrix `M`.
//! Jordan–Wigner is `M = I`; Bravyi–Kitaev is the Fenwick-tree partial-sum
//! matrix (Seeley–Richard–Love); the parity encoding is the running-sum
//! lower-triangular matrix.
//!
//! From `M` the Majorana operators follow mechanically:
//!
//! - flipping mode `j` flips the qubits of column `j` (*update set*);
//! - the parity of modes `< j` is read from `⊕_{j'<j}` rows of `M⁻¹`
//!   (*parity set*);
//! - the occupation `n_j` is read from row `j` of `M⁻¹` (*occupation set*).
//!
//! This derivation replaces hand-transcribed update/parity/flip-set tables
//! and is validated by canonical-anticommutation-relation property tests in
//! [`crate::fermion`].

use phoenix_pauli::PauliString;

/// A linear fermion-to-qubit encoding over `n` modes/qubits.
///
/// # Examples
///
/// ```
/// use phoenix_hamil::FermionEncoding;
///
/// let bk = FermionEncoding::bravyi_kitaev(4);
/// // Qubit 3 stores the parity of all four modes in BK.
/// assert_eq!(bk.update_set(0), vec![0, 1, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FermionEncoding {
    name: &'static str,
    n: usize,
    /// Row `i` = bit mask over modes stored (xor-ed) on qubit `i`.
    m: Vec<u128>,
    /// Row `j` of `M⁻¹` = bit mask over qubits whose xor gives `n_j`.
    minv: Vec<u128>,
}

impl FermionEncoding {
    /// Builds an encoding from its occupation matrix rows.
    ///
    /// # Panics
    ///
    /// Panics if `m` is singular over GF(2) or `n > 128`.
    pub fn from_matrix(name: &'static str, n: usize, m: Vec<u128>) -> Self {
        assert!(n <= 128, "at most 128 modes supported");
        assert_eq!(m.len(), n, "matrix must be n×n");
        let minv = gf2_inverse(n, &m).expect("encoding matrix must be invertible");
        FermionEncoding { name, n, m, minv }
    }

    /// Jordan–Wigner: qubit `i` stores `n_i` directly.
    pub fn jordan_wigner(n: usize) -> Self {
        FermionEncoding::from_matrix("JW", n, (0..n).map(|i| 1u128 << i).collect())
    }

    /// Bravyi–Kitaev: qubit `i` stores the Fenwick-tree partial sum of
    /// modes `(i+1) − lowbit(i+1) .. i`.
    pub fn bravyi_kitaev(n: usize) -> Self {
        let rows = (0..n)
            .map(|i| {
                let k = (i + 1) as u128;
                let low = k & k.wrapping_neg();
                // Modes (k-low)..k, 0-based.
                let hi_mask = if k >= 128 {
                    u128::MAX
                } else {
                    (1u128 << k) - 1
                };
                let lo_mask = (1u128 << (k - low)) - 1;
                hi_mask & !lo_mask
            })
            .collect();
        FermionEncoding::from_matrix("BK", n, rows)
    }

    /// Parity encoding: qubit `i` stores `n_0 ⊕ ⋯ ⊕ n_i`.
    pub fn parity(n: usize) -> Self {
        let rows = (0..n)
            .map(|i| {
                if i + 1 >= 128 {
                    u128::MAX
                } else {
                    (1u128 << (i + 1)) - 1
                }
            })
            .collect();
        FermionEncoding::from_matrix("parity", n, rows)
    }

    /// Short display name (`"JW"`, `"BK"`, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of modes (= qubits).
    pub fn num_modes(&self) -> usize {
        self.n
    }

    /// Qubits that flip when mode `j` flips (column `j` of `M`).
    pub fn update_set(&self, j: usize) -> Vec<usize> {
        (0..self.n).filter(|&i| self.m[i] >> j & 1 == 1).collect()
    }

    /// Qubits whose xor gives the parity of modes `< j`.
    pub fn parity_set(&self, j: usize) -> Vec<usize> {
        let mask = self.parity_mask(j);
        (0..self.n).filter(|&i| mask >> i & 1 == 1).collect()
    }

    /// Qubits whose xor gives `n_j` (row `j` of `M⁻¹`).
    pub fn occupation_set(&self, j: usize) -> Vec<usize> {
        (0..self.n)
            .filter(|&i| self.minv[j] >> i & 1 == 1)
            .collect()
    }

    fn update_mask(&self, j: usize) -> u128 {
        let mut mask = 0u128;
        for i in 0..self.n {
            if self.m[i] >> j & 1 == 1 {
                mask |= 1 << i;
            }
        }
        mask
    }

    fn parity_mask(&self, j: usize) -> u128 {
        (0..j).fold(0u128, |acc, jp| acc ^ self.minv[jp])
    }

    /// The Majorana operator `c_j` (`a_j + a_j†`): X on the update set
    /// times Z on the parity set.
    ///
    /// For the triangular encodings here the two sets are disjoint, so the
    /// result is a plain Hermitian Pauli string.
    pub fn majorana_c(&self, j: usize) -> PauliString {
        let x = self.update_mask(j);
        let z = self.parity_mask(j);
        debug_assert_eq!(x & z, 0, "update and parity sets overlap");
        PauliString::from_masks(self.n, x, z)
    }

    /// The Z-string `(-1)^{n_j}` on the occupation set of mode `j`.
    pub fn occupation_z(&self, j: usize) -> PauliString {
        PauliString::from_masks(self.n, 0, self.minv[j])
    }
}

/// Inverts an `n×n` GF(2) matrix given as row bit masks.
fn gf2_inverse(n: usize, rows: &[u128]) -> Option<Vec<u128>> {
    let mut a = rows.to_vec();
    let mut inv: Vec<u128> = (0..n).map(|i| 1u128 << i).collect();
    for col in 0..n {
        // Find pivot.
        let pivot = (col..n).find(|&r| a[r] >> col & 1 == 1)?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        for r in 0..n {
            if r != col && a[r] >> col & 1 == 1 {
                a[r] ^= a[col];
                inv[r] ^= inv[col];
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jw_sets_are_textbook() {
        let jw = FermionEncoding::jordan_wigner(5);
        assert_eq!(jw.update_set(3), vec![3]);
        assert_eq!(jw.parity_set(3), vec![0, 1, 2]);
        assert_eq!(jw.occupation_set(3), vec![3]);
        assert_eq!(jw.majorana_c(2).label(), "ZZXII");
    }

    #[test]
    fn bk_matrix_matches_seeley_richard_love_n4() {
        // β₄ rows: q0 = n0, q1 = n0+n1, q2 = n2, q3 = n0+n1+n2+n3.
        let bk = FermionEncoding::bravyi_kitaev(4);
        assert_eq!(bk.update_set(0), vec![0, 1, 3]);
        assert_eq!(bk.update_set(1), vec![1, 3]);
        assert_eq!(bk.update_set(2), vec![2, 3]);
        assert_eq!(bk.update_set(3), vec![3]);
        assert_eq!(bk.parity_set(2), vec![1]);
        assert_eq!(bk.parity_set(3), vec![1, 2]);
        assert_eq!(bk.occupation_set(3), vec![1, 2, 3]);
    }

    #[test]
    fn parity_encoding_sets() {
        let p = FermionEncoding::parity(4);
        assert_eq!(p.update_set(1), vec![1, 2, 3]);
        assert_eq!(p.parity_set(2), vec![1]);
        assert_eq!(p.occupation_set(2), vec![1, 2]);
    }

    #[test]
    fn gf2_inverse_roundtrip() {
        let bk = FermionEncoding::bravyi_kitaev(13);
        // M · M⁻¹ = I: n_j recovered from qubits must hit exactly mode j.
        for j in 0..13 {
            let mut acc = 0u128;
            for i in bk.occupation_set(j) {
                acc ^= bk.m[i];
            }
            assert_eq!(acc, 1u128 << j, "mode {j}");
        }
    }

    #[test]
    fn majorana_weights_scale_logarithmically_for_bk() {
        // BK Majoranas have O(log n) weight while JW's grow linearly.
        let n = 64;
        let jw = FermionEncoding::jordan_wigner(n);
        let bk = FermionEncoding::bravyi_kitaev(n);
        assert_eq!(jw.majorana_c(n - 1).weight(), n);
        assert!(bk.majorana_c(n - 1).weight() <= 8);
    }

    #[test]
    fn singular_matrix_rejected() {
        assert!(gf2_inverse(2, &[0b01, 0b01]).is_none());
    }
}
