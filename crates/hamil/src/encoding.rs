//! Linear fermion-to-qubit occupation encodings.
//!
//! A *linear* encoding stores on qubit `i` the parity of a subset of mode
//! occupations: `q_i = ⊕_j M[i][j]·n_j` for an invertible GF(2) matrix `M`.
//! Jordan–Wigner is `M = I`; Bravyi–Kitaev is the Fenwick-tree partial-sum
//! matrix (Seeley–Richard–Love); the parity encoding is the running-sum
//! lower-triangular matrix.
//!
//! From `M` the Majorana operators follow mechanically:
//!
//! - flipping mode `j` flips the qubits of column `j` (*update set*);
//! - the parity of modes `< j` is read from `⊕_{j'<j}` rows of `M⁻¹`
//!   (*parity set*);
//! - the occupation `n_j` is read from row `j` of `M⁻¹` (*occupation set*).
//!
//! This derivation replaces hand-transcribed update/parity/flip-set tables
//! and is validated by canonical-anticommutation-relation property tests in
//! [`crate::fermion`].
//!
//! Matrix rows are packed [`QubitMask`]s, so encodings scale past 128 modes
//! with word-parallel GF(2) row elimination.

use phoenix_pauli::{PauliString, QubitMask, MAX_QUBITS};
use std::fmt;

/// Error constructing a [`FermionEncoding`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodingError {
    /// The requested mode count exceeded [`MAX_QUBITS`].
    UnsupportedWidth {
        /// The offending mode count.
        num_modes: usize,
    },
    /// The occupation matrix was not `n × n`.
    ShapeMismatch {
        /// Expected row count `n`.
        expected: usize,
        /// Provided row count.
        found: usize,
    },
    /// The occupation matrix was singular over GF(2).
    SingularMatrix,
}

impl fmt::Display for EncodingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingError::UnsupportedWidth { num_modes } => write!(
                f,
                "encoding over {num_modes} modes exceeds the supported maximum of {MAX_QUBITS}"
            ),
            EncodingError::ShapeMismatch { expected, found } => {
                write!(
                    f,
                    "occupation matrix must be {expected}×{expected}, got {found} rows"
                )
            }
            EncodingError::SingularMatrix => {
                write!(f, "encoding matrix must be invertible over GF(2)")
            }
        }
    }
}

impl std::error::Error for EncodingError {}

/// A linear fermion-to-qubit encoding over `n` modes/qubits.
///
/// # Examples
///
/// ```
/// use phoenix_hamil::FermionEncoding;
///
/// let bk = FermionEncoding::bravyi_kitaev(4);
/// // Qubit 3 stores the parity of all four modes in BK.
/// assert_eq!(bk.update_set(0), vec![0, 1, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FermionEncoding {
    name: &'static str,
    n: usize,
    /// Row `i` = bit mask over modes stored (xor-ed) on qubit `i`.
    m: Vec<QubitMask>,
    /// Row `j` of `M⁻¹` = bit mask over qubits whose xor gives `n_j`.
    minv: Vec<QubitMask>,
}

impl FermionEncoding {
    /// Builds an encoding from its occupation matrix rows.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square-invertible or `n > MAX_QUBITS`;
    /// use [`FermionEncoding::try_from_matrix`] for a typed error.
    pub fn from_matrix(name: &'static str, n: usize, m: Vec<QubitMask>) -> Self {
        Self::try_from_matrix(name, n, m).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`FermionEncoding::from_matrix`].
    ///
    /// # Errors
    ///
    /// Returns [`EncodingError`] if `n > MAX_QUBITS`, the matrix is not
    /// `n × n`, or it is singular over GF(2).
    pub fn try_from_matrix(
        name: &'static str,
        n: usize,
        m: Vec<QubitMask>,
    ) -> Result<Self, EncodingError> {
        if n > MAX_QUBITS {
            return Err(EncodingError::UnsupportedWidth { num_modes: n });
        }
        if m.len() != n {
            return Err(EncodingError::ShapeMismatch {
                expected: n,
                found: m.len(),
            });
        }
        let minv = gf2_inverse(n, &m).ok_or(EncodingError::SingularMatrix)?;
        Ok(FermionEncoding { name, n, m, minv })
    }

    /// Jordan–Wigner: qubit `i` stores `n_i` directly.
    pub fn jordan_wigner(n: usize) -> Self {
        FermionEncoding::from_matrix("JW", n, (0..n).map(QubitMask::single).collect())
    }

    /// Bravyi–Kitaev: qubit `i` stores the Fenwick-tree partial sum of
    /// modes `(i+1) − lowbit(i+1) .. i`.
    pub fn bravyi_kitaev(n: usize) -> Self {
        let rows = (0..n)
            .map(|i| {
                let k = i + 1;
                let low = k & k.wrapping_neg();
                // Modes (k-low)..k, 0-based.
                let mut row = QubitMask::ones(k);
                row.andnot_with(&QubitMask::ones(k - low));
                row
            })
            .collect();
        FermionEncoding::from_matrix("BK", n, rows)
    }

    /// Parity encoding: qubit `i` stores `n_0 ⊕ ⋯ ⊕ n_i`.
    pub fn parity(n: usize) -> Self {
        FermionEncoding::from_matrix(
            "parity",
            n,
            (0..n).map(|i| QubitMask::ones(i + 1)).collect(),
        )
    }

    /// Short display name (`"JW"`, `"BK"`, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of modes (= qubits).
    pub fn num_modes(&self) -> usize {
        self.n
    }

    /// Qubits that flip when mode `j` flips (column `j` of `M`).
    pub fn update_set(&self, j: usize) -> Vec<usize> {
        (0..self.n).filter(|&i| self.m[i].bit(j)).collect()
    }

    /// Qubits whose xor gives the parity of modes `< j`.
    pub fn parity_set(&self, j: usize) -> Vec<usize> {
        self.parity_mask(j).to_indices()
    }

    /// Qubits whose xor gives `n_j` (row `j` of `M⁻¹`).
    pub fn occupation_set(&self, j: usize) -> Vec<usize> {
        self.minv[j].to_indices()
    }

    fn update_mask(&self, j: usize) -> QubitMask {
        let mut mask = QubitMask::zeros(self.n);
        for i in 0..self.n {
            if self.m[i].bit(j) {
                mask.set_bit(i);
            }
        }
        mask
    }

    fn parity_mask(&self, j: usize) -> QubitMask {
        let mut acc = QubitMask::zeros(self.n);
        for jp in 0..j {
            acc.xor_with(&self.minv[jp]);
        }
        acc
    }

    /// The Majorana operator `c_j` (`a_j + a_j†`): X on the update set
    /// times Z on the parity set.
    ///
    /// For the triangular encodings here the two sets are disjoint, so the
    /// result is a plain Hermitian Pauli string.
    pub fn majorana_c(&self, j: usize) -> PauliString {
        let x = self.update_mask(j);
        let z = self.parity_mask(j);
        debug_assert!(!x.intersects(&z), "update and parity sets overlap");
        PauliString::from_packed(self.n, x, z)
    }

    /// The Z-string `(-1)^{n_j}` on the occupation set of mode `j`.
    pub fn occupation_z(&self, j: usize) -> PauliString {
        PauliString::from_packed(self.n, QubitMask::zeros(self.n), self.minv[j].clone())
    }
}

/// Inverts an `n×n` GF(2) matrix given as packed row bit masks
/// (word-parallel Gauss–Jordan elimination: each row update is one XOR
/// sweep over `⌈n/64⌉` words).
fn gf2_inverse(n: usize, rows: &[QubitMask]) -> Option<Vec<QubitMask>> {
    let mut a = rows.to_vec();
    let mut inv: Vec<QubitMask> = (0..n).map(QubitMask::single).collect();
    for col in 0..n {
        // Find pivot.
        let pivot = (col..n).find(|&r| a[r].bit(col))?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        for r in 0..n {
            if r != col && a[r].bit(col) {
                let (pa, pinv) = (a[col].clone(), inv[col].clone());
                a[r].xor_with(&pa);
                inv[r].xor_with(&pinv);
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jw_sets_are_textbook() {
        let jw = FermionEncoding::jordan_wigner(5);
        assert_eq!(jw.update_set(3), vec![3]);
        assert_eq!(jw.parity_set(3), vec![0, 1, 2]);
        assert_eq!(jw.occupation_set(3), vec![3]);
        assert_eq!(jw.majorana_c(2).label(), "ZZXII");
    }

    #[test]
    fn bk_matrix_matches_seeley_richard_love_n4() {
        // β₄ rows: q0 = n0, q1 = n0+n1, q2 = n2, q3 = n0+n1+n2+n3.
        let bk = FermionEncoding::bravyi_kitaev(4);
        assert_eq!(bk.update_set(0), vec![0, 1, 3]);
        assert_eq!(bk.update_set(1), vec![1, 3]);
        assert_eq!(bk.update_set(2), vec![2, 3]);
        assert_eq!(bk.update_set(3), vec![3]);
        assert_eq!(bk.parity_set(2), vec![1]);
        assert_eq!(bk.parity_set(3), vec![1, 2]);
        assert_eq!(bk.occupation_set(3), vec![1, 2, 3]);
    }

    #[test]
    fn parity_encoding_sets() {
        let p = FermionEncoding::parity(4);
        assert_eq!(p.update_set(1), vec![1, 2, 3]);
        assert_eq!(p.parity_set(2), vec![1]);
        assert_eq!(p.occupation_set(2), vec![1, 2]);
    }

    #[test]
    fn gf2_inverse_roundtrip() {
        let bk = FermionEncoding::bravyi_kitaev(13);
        // M · M⁻¹ = I: n_j recovered from qubits must hit exactly mode j.
        for j in 0..13 {
            let mut acc = QubitMask::zeros(13);
            for i in bk.occupation_set(j) {
                acc.xor_with(&bk.m[i]);
            }
            assert_eq!(acc, QubitMask::single(j), "mode {j}");
        }
    }

    #[test]
    fn encodings_scale_past_128_modes() {
        // The former hard cap: 200-mode encodings must build and satisfy
        // M · M⁻¹ = I across the u64 word seams.
        let n = 200;
        for enc in [
            FermionEncoding::jordan_wigner(n),
            FermionEncoding::bravyi_kitaev(n),
            FermionEncoding::parity(n),
        ] {
            for j in [0, 63, 64, 127, 128, 199] {
                let mut acc = QubitMask::zeros(n);
                for i in enc.occupation_set(j) {
                    acc.xor_with(&enc.m[i]);
                }
                assert_eq!(acc, QubitMask::single(j), "{} mode {j}", enc.name());
            }
            // Majoranas stay well-formed.
            assert!(enc.majorana_c(n - 1).weight() >= 1);
        }
        // BK weight stays logarithmic out here.
        let bk = FermionEncoding::bravyi_kitaev(n);
        assert!(bk.majorana_c(n - 1).weight() <= 10);
    }

    #[test]
    fn majorana_weights_scale_logarithmically_for_bk() {
        // BK Majoranas have O(log n) weight while JW's grow linearly.
        let n = 64;
        let jw = FermionEncoding::jordan_wigner(n);
        let bk = FermionEncoding::bravyi_kitaev(n);
        assert_eq!(jw.majorana_c(n - 1).weight(), n);
        assert!(bk.majorana_c(n - 1).weight() <= 8);
    }

    #[test]
    fn try_from_matrix_reports_typed_errors() {
        let singular = vec![QubitMask::from_u128(0b01), QubitMask::from_u128(0b01)];
        assert_eq!(
            FermionEncoding::try_from_matrix("bad", 2, singular).unwrap_err(),
            EncodingError::SingularMatrix
        );
        assert_eq!(
            FermionEncoding::try_from_matrix("wide", MAX_QUBITS + 1, vec![]).unwrap_err(),
            EncodingError::UnsupportedWidth {
                num_modes: MAX_QUBITS + 1
            }
        );
        let err =
            FermionEncoding::try_from_matrix("shape", 2, vec![QubitMask::single(0)]).unwrap_err();
        assert!(err.to_string().contains("2×2"));
    }

    #[test]
    fn singular_matrix_rejected() {
        assert!(
            gf2_inverse(2, &[QubitMask::from_u128(0b01), QubitMask::from_u128(0b01)]).is_none()
        );
    }
}
