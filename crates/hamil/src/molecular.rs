//! Synthetic molecular-style Hamiltonians.
//!
//! The paper's target applications are electronic-structure simulations;
//! without a chemistry package we generate seeded Hamiltonians with the
//! same *operator structure* — one-body hopping plus two-body
//! density–density (Coulomb-like) interactions:
//!
//! ```text
//! H = Σ_p ε_p n_p + Σ_{p<q} t_pq (a_p† a_q + a_q† a_p) + Σ_{p<q} v_pq n_p n_q
//! ```
//!
//! mapped through any [`FermionEncoding`]. The resulting Pauli Hamiltonians
//! exhibit the mixed-weight string patterns (diagonal Z/ZZ terms plus
//! hopping ladders) characteristic of real molecular problems, and pair
//! with the UCCSD ansatzes for VQE-style energy evaluations.

use crate::{annihilation, creation, number_operator, FermionEncoding, Hamiltonian};
use phoenix_mathkit::{Complex, Xoshiro256};
use phoenix_pauli::PauliPolynomial;

/// Generates a seeded molecular-style Hamiltonian over `n` spin orbitals.
///
/// Coefficient scales loosely follow chemistry conventions: on-site
/// energies O(1), hopping O(0.2), Coulomb O(0.1), decaying with orbital
/// distance.
///
/// # Panics
///
/// Panics if `n` exceeds the encoding's mode count.
///
/// # Examples
///
/// ```
/// use phoenix_hamil::{molecular, FermionEncoding};
///
/// let h = molecular::synthetic(&FermionEncoding::jordan_wigner(6), 42);
/// assert_eq!(h.num_qubits(), 6);
/// assert!(h.len() > 6, "one- and two-body terms present");
/// ```
pub fn synthetic(enc: &FermionEncoding, seed: u64) -> Hamiltonian {
    let n = enc.num_modes();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut h = PauliPolynomial::zero(n);

    // On-site energies.
    for p in 0..n {
        let eps = rng.next_range_f64(-1.0, 1.0);
        h = h.add(&number_operator(enc, p).scale(Complex::from_re(eps)));
    }
    // Hopping with distance decay (spin-conserving on interleaved orbitals).
    for p in 0..n {
        for q in p + 1..n {
            if p % 2 != q % 2 {
                continue;
            }
            let decay = 1.0 / (1.0 + ((q - p) / 2) as f64);
            let t = rng.next_range_f64(-0.2, 0.2) * decay;
            if t.abs() < 1e-3 {
                continue;
            }
            let hop = creation(enc, p).mul(&annihilation(enc, q));
            h = h.add(&hop.add(&hop.dagger()).scale(Complex::from_re(t)));
        }
    }
    // Density–density interactions.
    for p in 0..n {
        for q in p + 1..n {
            let decay = 1.0 / (1.0 + (q - p) as f64);
            let v = rng.next_range_f64(0.0, 0.1) * decay;
            if v < 1e-3 {
                continue;
            }
            let nn = number_operator(enc, p).mul(&number_operator(enc, q));
            h = h.add(&nn.scale(Complex::from_re(v)));
        }
    }

    let terms = h.pruned(1e-12).real_terms(1e-9);
    Hamiltonian::new(format!("molsyn{n}_{}", enc.name()), n, terms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hermitian_by_construction() {
        // real_terms() inside `synthetic` already asserts hermiticity; here
        // we check structural expectations.
        let h = synthetic(&FermionEncoding::jordan_wigner(6), 1);
        assert!(h.len() > 10);
        assert!(h.max_weight() >= 2);
        // Diagonal (Z-only) terms exist (number operators).
        assert!(h
            .terms()
            .iter()
            .any(|(p, _)| p.x_mask().is_zero() && !p.is_identity()));
        // Hopping (X/Y) terms exist.
        assert!(h.terms().iter().any(|(p, _)| !p.x_mask().is_zero()));
    }

    #[test]
    fn deterministic_per_seed() {
        let e = FermionEncoding::bravyi_kitaev(6);
        assert_eq!(synthetic(&e, 5), synthetic(&e, 5));
        assert_ne!(synthetic(&e, 5), synthetic(&e, 6));
    }

    #[test]
    fn encodings_give_same_spectrum_size() {
        // Same fermionic operator: both encodings produce Hamiltonians over
        // the same register (term counts may differ by encoding-dependent
        // merges, but not wildly).
        let jw = synthetic(&FermionEncoding::jordan_wigner(6), 9);
        let bk = synthetic(&FermionEncoding::bravyi_kitaev(6), 9);
        assert_eq!(jw.num_qubits(), bk.num_qubits());
        let ratio = jw.len() as f64 / bk.len() as f64;
        assert!((0.5..2.0).contains(&ratio), "{} vs {}", jw.len(), bk.len());
    }

    #[test]
    fn conserves_particle_number() {
        // [H, N] = 0 by construction (hopping + density terms).
        let enc = FermionEncoding::jordan_wigner(4);
        let h = synthetic(&enc, 3);
        let mut hp = PauliPolynomial::zero(4);
        for (p, c) in h.terms() {
            hp.add_term(p.clone(), Complex::from_re(*c));
        }
        let mut total_n = PauliPolynomial::zero(4);
        for j in 0..4 {
            total_n = total_n.add(&number_operator(&enc, j));
        }
        let comm = hp.mul(&total_n).sub(&total_n.mul(&hp));
        assert!(comm.pruned(1e-10).is_zero());
    }
}
