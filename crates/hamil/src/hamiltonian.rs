//! The Pauli-string program representation handed to compilers.

use phoenix_pauli::PauliString;
use std::fmt;

/// Why a program was rejected by [`Hamiltonian::try_new`].
#[derive(Debug, Clone, PartialEq)]
pub enum HamilError {
    /// A term acts on a different number of qubits than the program
    /// declares.
    TermWidthMismatch {
        /// Index of the offending term.
        index: usize,
        /// Declared program width.
        expected: usize,
        /// The term's width.
        found: usize,
    },
    /// A coefficient is NaN or infinite.
    NonFiniteCoefficient {
        /// Index of the offending term.
        index: usize,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for HamilError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HamilError::TermWidthMismatch {
                index,
                expected,
                found,
            } => write!(
                f,
                "term {index} acts on {found} qubits but the program declares {expected}"
            ),
            HamilError::NonFiniteCoefficient { index, value } => {
                write!(f, "term {index} has non-finite coefficient {value}")
            }
        }
    }
}

impl std::error::Error for HamilError {}

/// A Hamiltonian-simulation program: an ordered list of Pauli
/// exponentiations `exp(-i·cⱼ·Pⱼ)` (one Trotter step), plus a display name.
///
/// This is the input format of every compiler in the workspace; the term
/// *order* is the "original" (naive) arrangement a compiler is free to
/// permute.
///
/// # Examples
///
/// ```
/// use phoenix_hamil::Hamiltonian;
/// use phoenix_pauli::PauliString;
///
/// let h = Hamiltonian::new(
///     "toy",
///     2,
///     vec![("XX".parse::<PauliString>()?, 0.5), ("ZI".parse()?, -1.0)],
/// );
/// assert_eq!(h.len(), 2);
/// assert_eq!(h.max_weight(), 2);
/// # Ok::<(), phoenix_pauli::ParsePauliStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hamiltonian {
    name: String,
    n: usize,
    terms: Vec<(PauliString, f64)>,
}

impl Hamiltonian {
    /// Creates a program from terms.
    ///
    /// # Panics
    ///
    /// Panics if a term's qubit count differs from `n` — use
    /// [`Hamiltonian::try_new`] for graceful rejection.
    pub fn new(name: impl Into<String>, n: usize, terms: Vec<(PauliString, f64)>) -> Self {
        for (p, _) in &terms {
            assert_eq!(p.num_qubits(), n, "term qubit count mismatch");
        }
        Hamiltonian {
            name: name.into(),
            n,
            terms,
        }
    }

    /// Fallible [`Hamiltonian::new`]: additionally validates that every
    /// coefficient is finite, returning a typed [`HamilError`] instead of
    /// panicking on malformed input.
    pub fn try_new(
        name: impl Into<String>,
        n: usize,
        terms: Vec<(PauliString, f64)>,
    ) -> Result<Self, HamilError> {
        for (index, (p, c)) in terms.iter().enumerate() {
            if p.num_qubits() != n {
                return Err(HamilError::TermWidthMismatch {
                    index,
                    expected: n,
                    found: p.num_qubits(),
                });
            }
            if !c.is_finite() {
                return Err(HamilError::NonFiniteCoefficient { index, value: *c });
            }
        }
        Ok(Hamiltonian {
            name: name.into(),
            n,
            terms,
        })
    }

    /// The program name (e.g. `"LiH_frz_JW"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The terms, in original order.
    pub fn terms(&self) -> &[(PauliString, f64)] {
        &self.terms
    }

    /// Number of Pauli exponentiations (`#Pauli` in Table I).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the program has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Maximum Pauli weight over all terms (`w_max` in Table I).
    pub fn max_weight(&self) -> usize {
        self.terms
            .iter()
            .map(|(p, _)| p.weight())
            .max()
            .unwrap_or(0)
    }

    /// Returns a copy with every coefficient multiplied by `scale` — the
    /// coefficient-rescaling protocol of the paper's Fig. 8 (different
    /// evolution durations).
    pub fn rescaled(&self, scale: f64) -> Hamiltonian {
        Hamiltonian {
            name: self.name.clone(),
            n: self.n,
            terms: self
                .terms
                .iter()
                .map(|(p, c)| (p.clone(), c * scale))
                .collect(),
        }
    }
}

impl fmt::Display for Hamiltonian {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} qubits, {} pauli terms, w_max {}",
            self.name,
            self.n,
            self.terms.len(),
            self.max_weight()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let h = Hamiltonian::new(
            "t",
            3,
            vec![("XXI".parse().unwrap(), 1.0), ("ZZZ".parse().unwrap(), 0.5)],
        );
        assert_eq!(h.name(), "t");
        assert_eq!(h.num_qubits(), 3);
        assert_eq!(h.len(), 2);
        assert!(!h.is_empty());
        assert_eq!(h.max_weight(), 3);
    }

    #[test]
    fn rescale_scales_coefficients_only() {
        let h = Hamiltonian::new("t", 1, vec![("X".parse().unwrap(), 2.0)]);
        let r = h.rescaled(0.25);
        assert_eq!(r.terms()[0].1, 0.5);
        assert_eq!(r.terms()[0].0, h.terms()[0].0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_arity_panics() {
        let _ = Hamiltonian::new("t", 2, vec![("X".parse().unwrap(), 1.0)]);
    }

    #[test]
    fn try_new_rejects_wrong_arity_gracefully() {
        let e = Hamiltonian::try_new("t", 2, vec![("X".parse().unwrap(), 1.0)]).unwrap_err();
        assert_eq!(
            e,
            HamilError::TermWidthMismatch {
                index: 0,
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn try_new_rejects_non_finite_coefficients() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let e = Hamiltonian::try_new("t", 1, vec![("X".parse().unwrap(), bad)]).unwrap_err();
            assert!(matches!(
                e,
                HamilError::NonFiniteCoefficient { index: 0, .. }
            ));
        }
    }

    #[test]
    fn try_new_accepts_valid_programs() {
        let h = Hamiltonian::try_new("t", 2, vec![("XY".parse().unwrap(), 0.3)]).unwrap();
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn display_mentions_stats() {
        let h = Hamiltonian::new("prog", 2, vec![("XY".parse().unwrap(), 1.0)]);
        let s = h.to_string();
        assert!(s.contains("prog") && s.contains("2 qubits"));
    }
}
