//! Extra spin-model generators exercising the "generic Hamiltonian
//! simulation" claim beyond the paper's two benchmark families.

use crate::Hamiltonian;
use phoenix_pauli::{Pauli, PauliString};

/// Transverse-field Ising model on a chain:
/// `H = J Σ Z_i Z_{i+1} + h Σ X_i`.
///
/// # Examples
///
/// ```
/// use phoenix_hamil::models::tfim_chain;
///
/// let h = tfim_chain(4, 1.0, 0.5);
/// assert_eq!(h.len(), 3 + 4);
/// ```
pub fn tfim_chain(n: usize, j: f64, h: f64) -> Hamiltonian {
    let mut terms = Vec::new();
    for i in 0..n.saturating_sub(1) {
        terms.push((
            PauliString::from_sparse(n, &[(i, Pauli::Z), (i + 1, Pauli::Z)]),
            j,
        ));
    }
    for i in 0..n {
        terms.push((PauliString::single(n, i, Pauli::X), h));
    }
    Hamiltonian::new(format!("TFIM-{n}"), n, terms)
}

/// Heisenberg XYZ model on a chain:
/// `H = Σ_i (Jx X_i X_{i+1} + Jy Y_i Y_{i+1} + Jz Z_i Z_{i+1})`.
pub fn heisenberg_chain(n: usize, jx: f64, jy: f64, jz: f64) -> Hamiltonian {
    let mut terms = Vec::new();
    for i in 0..n.saturating_sub(1) {
        for (p, c) in [(Pauli::X, jx), (Pauli::Y, jy), (Pauli::Z, jz)] {
            terms.push((PauliString::from_sparse(n, &[(i, p), (i + 1, p)]), c));
        }
    }
    Hamiltonian::new(format!("Heis-{n}"), n, terms)
}

/// Fermi–Hubbard-like hopping + interaction on a chain under Jordan–Wigner:
/// hopping `t(X_i X_{i+1} + Y_i Y_{i+1})/2` and interaction `u Z_i Z_{i+1}/4`.
pub fn hubbard_chain_jw(n: usize, t: f64, u: f64) -> Hamiltonian {
    let mut terms = Vec::new();
    for i in 0..n.saturating_sub(1) {
        terms.push((
            PauliString::from_sparse(n, &[(i, Pauli::X), (i + 1, Pauli::X)]),
            t / 2.0,
        ));
        terms.push((
            PauliString::from_sparse(n, &[(i, Pauli::Y), (i + 1, Pauli::Y)]),
            t / 2.0,
        ));
        terms.push((
            PauliString::from_sparse(n, &[(i, Pauli::Z), (i + 1, Pauli::Z)]),
            u / 4.0,
        ));
    }
    Hamiltonian::new(format!("Hubbard-{n}"), n, terms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfim_term_structure() {
        let h = tfim_chain(5, 1.0, 0.3);
        assert_eq!(h.num_qubits(), 5);
        assert_eq!(h.len(), 4 + 5);
        assert_eq!(h.max_weight(), 2);
        let oneq = h.terms().iter().filter(|(p, _)| p.weight() == 1).count();
        assert_eq!(oneq, 5);
    }

    #[test]
    fn heisenberg_has_three_terms_per_bond() {
        let h = heisenberg_chain(4, 1.0, 1.0, 0.5);
        assert_eq!(h.len(), 9);
        assert!(h.terms().iter().all(|(p, _)| p.weight() == 2));
    }

    #[test]
    fn hubbard_coefficients() {
        let h = hubbard_chain_jw(3, 2.0, 4.0);
        assert_eq!(h.len(), 6);
        assert!(h.terms().iter().any(|(_, c)| (*c - 1.0).abs() < 1e-15));
    }

    #[test]
    fn single_site_edge_cases() {
        assert_eq!(tfim_chain(1, 1.0, 1.0).len(), 1);
        assert!(heisenberg_chain(1, 1.0, 1.0, 1.0).is_empty());
    }
}
