//! QAOA benchmark programs (Table IV): 2-local ZZ Hamiltonians on seeded
//! random-regular graphs.
//!
//! The paper's QAOA suite uses random graphs with node degree 4
//! (`Rand-{16,20,24}`) and 3-regular graphs (`Reg3-{16,20,24}`), so
//! `#Pauli = n·d/2` edges per program.

use crate::Hamiltonian;
use phoenix_mathkit::Xoshiro256;
use phoenix_pauli::{Pauli, PauliString};

/// Generates a random `d`-regular simple graph on `n` vertices via the
/// configuration (pairing) model with rejection, deterministically from
/// `seed`.
///
/// # Panics
///
/// Panics if `n·d` is odd or `d >= n` (no such graph exists).
pub fn random_regular_graph(n: usize, d: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!((n * d).is_multiple_of(2), "n·d must be even");
    assert!(d < n, "degree must be below vertex count");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    'attempt: for _ in 0..10_000 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        rng.shuffle(&mut stubs);
        let mut edges = std::collections::BTreeSet::new();
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b || !edges.insert((a.min(b), a.max(b))) {
                continue 'attempt; // self-loop or multi-edge: reject
            }
        }
        return edges.into_iter().collect();
    }
    unreachable!("pairing model converges for the sizes used here")
}

/// Builds a QAOA cost-layer program for a graph: one `exp(-i·γₑ·Z_u Z_v)`
/// per edge, with seeded edge weights in `[0.1, 1.0)`.
///
/// Mixer rotations are 1Q gates (free in every metric) and are omitted, so
/// `#Pauli` equals the edge count as in Table IV.
pub fn maxcut_program(
    name: impl Into<String>,
    n: usize,
    edges: &[(usize, usize)],
    seed: u64,
) -> Hamiltonian {
    let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let terms = edges
        .iter()
        .map(|&(u, v)| {
            let p = PauliString::from_sparse(n, &[(u, Pauli::Z), (v, Pauli::Z)]);
            (p, rng.next_range_f64(0.1, 1.0))
        })
        .collect();
    Hamiltonian::new(name, n, terms)
}

/// A Table-IV benchmark: `Rand-n` is 4-regular, `Reg3-n` is 3-regular.
pub fn benchmark(kind: QaoaKind, n: usize, seed: u64) -> Hamiltonian {
    let (d, prefix) = match kind {
        QaoaKind::Rand4 => (4, "Rand"),
        QaoaKind::Reg3 => (3, "Reg3"),
    };
    let edges = random_regular_graph(n, d, seed);
    maxcut_program(format!("{prefix}-{n}"), n, &edges, seed)
}

/// The two QAOA graph families of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QaoaKind {
    /// Random graphs with node degree 4 (`Rand-n`).
    Rand4,
    /// 3-regular graphs (`Reg3-n`).
    Reg3,
}

/// All six Table-IV benchmarks, in the paper's row order.
pub fn table4_suite(seed: u64) -> Vec<Hamiltonian> {
    let mut out = Vec::new();
    for kind in [QaoaKind::Rand4, QaoaKind::Reg3] {
        for n in [16, 20, 24] {
            out.push(benchmark(kind, n, seed.wrapping_add(n as u64)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_graph_has_uniform_degree() {
        for (n, d) in [(16, 4), (20, 3), (24, 4)] {
            let edges = random_regular_graph(n, d, 42);
            assert_eq!(edges.len(), n * d / 2);
            let mut deg = vec![0usize; n];
            for (a, b) in &edges {
                assert_ne!(a, b);
                deg[*a] += 1;
                deg[*b] += 1;
            }
            assert!(deg.iter().all(|&x| x == d), "n={n} d={d}");
        }
    }

    #[test]
    fn graph_generation_is_deterministic() {
        assert_eq!(
            random_regular_graph(20, 4, 5),
            random_regular_graph(20, 4, 5)
        );
        assert_ne!(
            random_regular_graph(20, 4, 5),
            random_regular_graph(20, 4, 6)
        );
    }

    #[test]
    fn table4_sizes_match_paper() {
        let suite = table4_suite(1);
        let expect = [
            ("Rand-16", 32),
            ("Rand-20", 40),
            ("Rand-24", 48),
            ("Reg3-16", 24),
            ("Reg3-20", 30),
            ("Reg3-24", 36),
        ];
        assert_eq!(suite.len(), 6);
        for (h, (name, np)) in suite.iter().zip(expect) {
            assert_eq!(h.name(), name);
            assert_eq!(h.len(), np, "{name}");
            assert_eq!(h.max_weight(), 2);
        }
    }

    #[test]
    fn program_terms_are_zz() {
        let h = benchmark(QaoaKind::Reg3, 16, 3);
        for (p, c) in h.terms() {
            assert_eq!(p.weight(), 2);
            assert!(p.support().iter().all(|&q| p.get(q) == Pauli::Z));
            assert!((0.1..1.0).contains(c));
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_stub_count_rejected() {
        let _ = random_regular_graph(5, 3, 1);
    }
}
