//! Fermionic creation/annihilation operators and UCCSD excitation
//! generators as phase-exact Pauli polynomials.

use crate::FermionEncoding;
use phoenix_mathkit::Complex;
use phoenix_pauli::PauliPolynomial;

/// The annihilation operator `a_j` under the given encoding.
///
/// Built from the Majorana `c_j` and the occupation Z-string:
/// `a_j = ½ · c_j · (I − Z_{occ(j)})`.
///
/// # Examples
///
/// ```
/// use phoenix_hamil::{annihilation, FermionEncoding};
///
/// let jw = FermionEncoding::jordan_wigner(3);
/// let a1 = annihilation(&jw, 1);
/// // JW: a₁ = ½ (X+iY)₁ Z₀ — two Pauli terms.
/// assert_eq!(a1.num_terms(), 2);
/// ```
pub fn annihilation(enc: &FermionEncoding, j: usize) -> PauliPolynomial {
    let n = enc.num_modes();
    let c = PauliPolynomial::term(n, enc.majorana_c(j), Complex::ONE);
    let zf = PauliPolynomial::term(n, enc.occupation_z(j), Complex::ONE);
    let projector = PauliPolynomial::scalar(n, Complex::ONE).sub(&zf);
    c.mul(&projector).scale(Complex::from_re(0.5))
}

/// The creation operator `a_j† = (a_j)†`.
pub fn creation(enc: &FermionEncoding, j: usize) -> PauliPolynomial {
    annihilation(enc, j).dagger()
}

/// The number operator `n_j = a_j† a_j`; equals `(I − Z_{occ(j)})/2`.
pub fn number_operator(enc: &FermionEncoding, j: usize) -> PauliPolynomial {
    creation(enc, j).mul(&annihilation(enc, j))
}

/// The anti-Hermitian UCCSD single-excitation generator
/// `T_{i→a} = a_a† a_i − a_i† a_a`.
///
/// # Panics
///
/// Panics if `i == a`.
pub fn single_excitation(enc: &FermionEncoding, i: usize, a: usize) -> PauliPolynomial {
    assert_ne!(i, a, "excitation needs distinct orbitals");
    let fwd = creation(enc, a).mul(&annihilation(enc, i));
    fwd.sub(&fwd.dagger())
}

/// The anti-Hermitian UCCSD double-excitation generator
/// `T_{ij→ab} = a_a† a_b† a_j a_i − h.c.`.
///
/// # Panics
///
/// Panics if the four orbitals are not pairwise distinct.
pub fn double_excitation(
    enc: &FermionEncoding,
    i: usize,
    j: usize,
    a: usize,
    b: usize,
) -> PauliPolynomial {
    let orbs = [i, j, a, b];
    for (k, &x) in orbs.iter().enumerate() {
        for &y in &orbs[k + 1..] {
            assert_ne!(x, y, "excitation needs distinct orbitals");
        }
    }
    let fwd = creation(enc, a)
        .mul(&creation(enc, b))
        .mul(&annihilation(enc, j))
        .mul(&annihilation(enc, i));
    fwd.sub(&fwd.dagger())
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_pauli::PauliString;

    fn encodings(n: usize) -> Vec<FermionEncoding> {
        vec![
            FermionEncoding::jordan_wigner(n),
            FermionEncoding::bravyi_kitaev(n),
            FermionEncoding::parity(n),
        ]
    }

    /// {a_i, a_j†} = δ_ij·I and {a_i, a_j} = 0 for every encoding.
    #[test]
    fn canonical_anticommutation_relations() {
        let n = 5;
        for enc in encodings(n) {
            for i in 0..n {
                for j in 0..n {
                    let ai = annihilation(&enc, i);
                    let ajd = creation(&enc, j);
                    let anti = ai.mul(&ajd).add(&ajd.mul(&ai));
                    if i == j {
                        let want = PauliPolynomial::scalar(n, Complex::ONE);
                        assert_eq!(anti, want, "{} {{a_{i}, a_{j}†}}", enc.name());
                    } else {
                        assert!(anti.is_zero(), "{} {{a_{i}, a_{j}†}} ≠ 0", enc.name());
                    }
                    let aj = annihilation(&enc, j);
                    let anti2 = ai.mul(&aj).add(&aj.mul(&ai));
                    assert!(anti2.is_zero(), "{} {{a_{i}, a_{j}}} ≠ 0", enc.name());
                }
            }
        }
    }

    #[test]
    fn number_operator_is_projector_form() {
        let n = 4;
        for enc in encodings(n) {
            for j in 0..n {
                let num = number_operator(&enc, j);
                let zf = PauliPolynomial::term(n, enc.occupation_z(j), Complex::ONE);
                let want = PauliPolynomial::scalar(n, Complex::ONE)
                    .sub(&zf)
                    .scale(Complex::from_re(0.5));
                assert_eq!(num, want, "{} n_{j}", enc.name());
            }
        }
    }

    #[test]
    fn jw_single_excitation_is_textbook() {
        // T_{0→2} under JW = i/2 (X Z Y − Y Z X) pattern: two terms,
        // imaginary coefficients, weight 3.
        let jw = FermionEncoding::jordan_wigner(3);
        let t = single_excitation(&jw, 0, 2);
        assert_eq!(t.num_terms(), 2);
        for term in t.iter() {
            assert_eq!(term.string.weight(), 3);
            assert!(term.coeff.re.abs() < 1e-14, "anti-hermitian ⇒ imaginary");
            assert!((term.coeff.abs() - 0.5).abs() < 1e-14);
        }
        let labels: Vec<String> = t.iter().map(|t| t.string.label()).collect();
        assert!(labels.contains(&"XZY".to_string()));
        assert!(labels.contains(&"YZX".to_string()));
    }

    #[test]
    fn single_excitation_is_antihermitian() {
        for enc in encodings(4) {
            let t = single_excitation(&enc, 1, 3);
            assert_eq!(t.dagger(), t.scale(-Complex::ONE), "{}", enc.name());
        }
    }

    #[test]
    fn double_excitation_has_eight_terms_under_jw() {
        let jw = FermionEncoding::jordan_wigner(6);
        let t = double_excitation(&jw, 0, 1, 4, 5);
        assert_eq!(t.num_terms(), 8);
        assert_eq!(t.dagger(), t.scale(-Complex::ONE));
    }

    #[test]
    fn double_excitation_terms_match_across_encodings() {
        // Same excitation, different encodings: same term count, same
        // coefficient magnitudes (patterns differ).
        let t_jw = double_excitation(&FermionEncoding::jordan_wigner(6), 0, 1, 3, 5);
        let t_bk = double_excitation(&FermionEncoding::bravyi_kitaev(6), 0, 1, 3, 5);
        assert_eq!(t_jw.num_terms(), t_bk.num_terms());
        let mags = |p: &PauliPolynomial| {
            let mut v: Vec<i64> = p.iter().map(|t| (t.coeff.abs() * 1e12) as i64).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(mags(&t_jw), mags(&t_bk));
    }

    #[test]
    fn excitation_commutes_with_total_number() {
        // [T, N] = 0 where N = Σ n_j: particle-number conservation.
        let n = 4;
        for enc in encodings(n) {
            let mut total = PauliPolynomial::zero(n);
            for j in 0..n {
                total = total.add(&number_operator(&enc, j));
            }
            let t = double_excitation(&enc, 0, 1, 2, 3);
            let comm = t.mul(&total).sub(&total.mul(&t));
            assert!(comm.is_zero(), "{}", enc.name());
        }
    }

    #[test]
    fn annihilation_kills_vacuum_under_jw() {
        // ⟨0| a_j† = 0 ⟺ a_j |vac⟩ = 0: check via matrices on 3 qubits.
        let jw = FermionEncoding::jordan_wigner(3);
        let a = annihilation(&jw, 1);
        let mut m = phoenix_mathkit::CMatrix::zeros(8, 8);
        for t in a.iter() {
            m = &m + &t.string.to_matrix().scale(t.coeff);
        }
        // Column 0 (vacuum) must be zero.
        for r in 0..8 {
            assert!(m[(r, 0)].abs() < 1e-14);
        }
        // a_1 |010⟩ = |000⟩ (qubit 1 = bit 1 ⇒ basis index 2).
        assert!((m[(0, 2)].abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "distinct orbitals")]
    fn repeated_orbital_rejected() {
        let jw = FermionEncoding::jordan_wigner(4);
        let _ = double_excitation(&jw, 0, 1, 1, 3);
    }

    #[test]
    fn identity_string_absent_from_generators() {
        for enc in encodings(5) {
            let t = double_excitation(&enc, 0, 2, 3, 4);
            assert!(
                t.iter().all(|term| !term.string.is_identity()),
                "{}",
                enc.name()
            );
            let _ = PauliString::identity(5); // silence unused import in cfg
        }
    }
}
