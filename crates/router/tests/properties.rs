//! Property-based tests: routing always yields coupling-legal circuits that
//! preserve per-qubit logical gate sequences.

use phoenix_circuit::{Circuit, Gate};
use phoenix_router::{greedy_layout, route, search_layout, Layout, RouterOptions};
use phoenix_topology::CouplingGraph;
use proptest::prelude::*;

fn arb_program(n: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec((0usize..n, 0usize..n, -1.0f64..1.0, 0usize..3), 1..30).prop_map(
        move |ops| {
            let mut c = Circuit::new(n);
            for (a, b, t, kind) in ops {
                match kind {
                    0 if a != b => c.push(Gate::Cnot(a, b)),
                    1 => c.push(Gate::Rz(a, t)),
                    _ => c.push(Gate::H(a)),
                }
            }
            c
        },
    )
}

fn devices() -> Vec<CouplingGraph> {
    vec![
        CouplingGraph::line(8),
        CouplingGraph::grid(2, 4),
        CouplingGraph::ring(8),
    ]
}

/// Replays the routed circuit, tracking the layout through SWAPs, and
/// checks legality + per-qubit logical sequences.
fn check(logical: &Circuit, device: &CouplingGraph, opts: &RouterOptions) {
    let lowered = logical.lower_to_cnot();
    let initial = search_layout(&lowered, device, opts, 2);
    let routed = route(&lowered, device, initial.clone(), opts);
    let mut layout = initial;
    let mut replay: Vec<Gate> = Vec::new();
    for g in routed.circuit.gates() {
        match g {
            Gate::Swap(p1, p2) => {
                assert!(device.contains_edge(*p1, *p2));
                layout.swap_physical(*p1, *p2);
            }
            g => {
                let (pa, pb) = g.qubits();
                if let Some(pb) = pb {
                    assert!(device.contains_edge(pa, pb), "illegal 2q placement");
                }
                let la = layout.logical(pa).expect("mapped");
                match pb {
                    Some(pb) => {
                        let lb = layout.logical(pb).expect("mapped");
                        replay.push(Gate::Cnot(la, lb));
                    }
                    None => replay.push(g.map_qubits(&mut |_| la)),
                }
            }
        }
    }
    if opts.use_bridge {
        // Bridges rewrite CNOTs 1→4; only legality is checked above.
        return;
    }
    let per_qubit = |gates: &[Gate]| -> Vec<Vec<Gate>> {
        let mut v = vec![Vec::new(); lowered.num_qubits()];
        for g in gates {
            let (a, b) = g.qubits();
            v[a].push(g.clone());
            if let Some(b) = b {
                v[b].push(g.clone());
            }
        }
        v
    };
    assert_eq!(per_qubit(&replay), per_qubit(lowered.gates()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn routing_preserves_programs(c in arb_program(8)) {
        for device in devices() {
            check(&c, &device, &RouterOptions::default());
        }
    }

    #[test]
    fn bridged_routing_is_legal(c in arb_program(8)) {
        let opts = RouterOptions {
            use_bridge: true,
            ..RouterOptions::default()
        };
        for device in devices() {
            check(&c, &device, &opts);
        }
    }

    #[test]
    fn layouts_are_injective(c in arb_program(8)) {
        let device = CouplingGraph::grid(3, 3);
        let l: Layout = greedy_layout(&c, &device);
        let mut seen = std::collections::BTreeSet::new();
        for q in 0..8 {
            prop_assert!(seen.insert(l.phys(q).expect("mapped")));
        }
    }
}
