//! Initial-layout search (the SabreLayout strategy).
//!
//! Routing quality depends heavily on the starting placement. This module
//! provides the standard two-step search: a greedy interaction-weighted
//! seed placement, refined by forward/backward SABRE routing iterations
//! (each pass routes the circuit, adopts the final layout, and routes the
//! reversed circuit back).

use crate::{try_route, Layout, RouteError, RoutedCircuit, RouterOptions};
use phoenix_circuit::Circuit;
use phoenix_topology::CouplingGraph;
use std::collections::BTreeMap;
use std::time::Instant;

/// Greedy seed: logical qubits are placed in decreasing interaction weight,
/// each onto the free physical qubit minimizing the weighted distance to
/// its already placed partners.
pub fn greedy_layout(circuit: &Circuit, device: &CouplingGraph) -> Layout {
    let n_log = circuit.num_qubits();
    let n_phys = device.num_qubits();
    assert!(n_log <= n_phys, "device too small");

    // Interaction weights.
    let mut w: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    let mut strength = vec![0.0f64; n_log];
    for g in circuit.gates() {
        if let (a, Some(b)) = g.qubits() {
            *w.entry((a.min(b), a.max(b))).or_insert(0.0) += 1.0;
            strength[a] += 1.0;
            strength[b] += 1.0;
        }
    }
    let mut order: Vec<usize> = (0..n_log).collect();
    order.sort_by(|&a, &b| strength[b].total_cmp(&strength[a]));

    // Device center: minimum eccentricity.
    let center = (0..n_phys)
        .min_by_key(|&p| {
            (0..n_phys)
                .map(|q| device.distance(p, q))
                .max()
                .unwrap_or(0)
        })
        .unwrap_or(0);

    let mut assignment = vec![usize::MAX; n_log];
    let mut free: Vec<usize> = (0..n_phys).collect();
    for (rank, &l) in order.iter().enumerate() {
        let best = if rank == 0 {
            free.iter().position(|&p| p == center).unwrap_or(0)
        } else {
            let mut best_pos = 0;
            let mut best_cost = f64::INFINITY;
            for (pos, &p) in free.iter().enumerate() {
                let mut cost = 0.0;
                for (&(a, b), &weight) in &w {
                    let partner = if a == l {
                        b
                    } else if b == l {
                        a
                    } else {
                        continue;
                    };
                    if assignment[partner] != usize::MAX {
                        cost += weight * device.distance(p, assignment[partner]) as f64;
                    }
                }
                if cost < best_cost {
                    best_cost = cost;
                    best_pos = pos;
                }
            }
            best_pos
        };
        assignment[l] = free.remove(best);
    }
    Layout::from_assignment(assignment, n_phys)
}

/// SabreLayout-style refinement: starting from [`greedy_layout`], route
/// forward and backward `iters` times, adopting final layouts, and return
/// the layout that produced the fewest forward swaps.
///
/// Candidates whose trial routing fails (e.g. the SWAP budget runs out on
/// a pathological instance) are skipped rather than aborting the search;
/// if every candidate fails the greedy seed is returned and the caller's
/// own routing attempt surfaces the error.
pub fn search_layout(
    circuit: &Circuit,
    device: &CouplingGraph,
    opts: &RouterOptions,
    iters: usize,
) -> Layout {
    let lowered = circuit.lower_to_cnot();
    let reversed = Circuit::from_gates(
        lowered.num_qubits(),
        lowered.gates().iter().rev().cloned().collect(),
    );
    let seed = greedy_layout(&lowered, device);
    let mut current = seed.clone();
    let mut best = seed.clone();
    let mut best_swaps = usize::MAX;
    for _ in 0..iters.max(1) {
        let fwd = match try_route(&lowered, device, current.clone(), opts) {
            Ok(r) => r,
            Err(_) => return if best_swaps == usize::MAX { seed } else { best },
        };
        if fwd.num_swaps < best_swaps {
            best_swaps = fwd.num_swaps;
            best = current.clone();
        }
        match try_route(&reversed, device, fwd.final_layout, opts) {
            Ok(bwd) => current = bwd.final_layout,
            Err(_) => return best,
        }
    }
    // Final check on the last candidate.
    if let Ok(fwd) = try_route(&lowered, device, current.clone(), opts) {
        if fwd.num_swaps < best_swaps {
            best = current;
        }
    }
    best
}

/// One abandoned routing attempt inside [`route_with_retry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteRetry {
    /// Which layout strategy was tried (`"searched"`, `"greedy-seed"`,
    /// `"trivial"`).
    pub strategy: &'static str,
    /// Why the attempt was abandoned.
    pub error: RouteError,
}

/// One routing attempt of the retry ladder, timed: the instrumentation
/// record [`route_with_attempt_log`] returns for every attempt it made,
/// successful or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteAttempt {
    /// Which layout strategy was tried (`"searched"`, `"greedy-seed"`,
    /// `"trivial"`).
    pub strategy: &'static str,
    /// Wall-clock of the attempt — layout construction (including the
    /// refinement search for `"searched"`) plus the routing itself — in
    /// microseconds.
    pub micros: u64,
    /// SWAPs the attempt inserted, when it succeeded.
    pub swaps: Option<usize>,
    /// Why the attempt was abandoned, when it failed.
    pub error: Option<RouteError>,
}

/// Routing with a graceful-degradation ladder instead of a panic: try the
/// refined [`search_layout`] placement first, then the plain greedy seed
/// (an alternate starting point that often escapes a budget blow-up), and
/// finally the trivial layout with a quadrupled SWAP budget. Returns the
/// first success together with a per-attempt log (the last entry is the
/// successful one), or the last error when even the trivial fallback fails
/// (the instance is genuinely unroutable, e.g. a disconnected device
/// region).
///
/// Layouts are constructed lazily per attempt, so the log's timings
/// attribute layout-search cost to the attempt that paid it.
pub fn route_with_attempt_log(
    circuit: &Circuit,
    device: &CouplingGraph,
    opts: &RouterOptions,
    layout_trials: usize,
) -> Result<(RoutedCircuit, Vec<RouteAttempt>), RouteError> {
    let lowered = circuit.lower_to_cnot();
    let n_log = lowered.num_qubits();
    let n_phys = device.num_qubits();
    if n_log > n_phys {
        return Err(RouteError::DeviceTooSmall {
            logical: n_log,
            physical: n_phys,
        });
    }
    let mut relaxed = opts.clone();
    relaxed.max_swaps = opts
        .swap_budget(lowered.counts().two_qubit(), n_phys)
        .saturating_mul(4);
    let mut attempts = Vec::new();
    let mut last_err = None;
    for strategy in ["searched", "greedy-seed", "trivial"] {
        let t0 = Instant::now();
        let (layout, o) = match strategy {
            "searched" => (search_layout(&lowered, device, opts, layout_trials), opts),
            "greedy-seed" => (greedy_layout(&lowered, device), opts),
            _ => (Layout::trivial(n_log, n_phys), &relaxed),
        };
        let result = try_route(&lowered, device, layout, o);
        let micros = t0.elapsed().as_micros() as u64;
        match result {
            Ok(routed) => {
                attempts.push(RouteAttempt {
                    strategy,
                    micros,
                    swaps: Some(routed.num_swaps),
                    error: None,
                });
                return Ok((routed, attempts));
            }
            Err(error) => {
                attempts.push(RouteAttempt {
                    strategy,
                    micros,
                    swaps: None,
                    error: Some(error.clone()),
                });
                last_err = Some(error);
            }
        }
    }
    Err(last_err.expect("all three attempts recorded an error"))
}

/// [`route_with_attempt_log`] reduced to the legacy shape: the first
/// success plus the *abandoned* attempts only.
pub fn route_with_retry(
    circuit: &Circuit,
    device: &CouplingGraph,
    opts: &RouterOptions,
    layout_trials: usize,
) -> Result<(RoutedCircuit, Vec<RouteRetry>), RouteError> {
    route_with_attempt_log(circuit, device, opts, layout_trials).map(|(routed, attempts)| {
        let retries = attempts
            .into_iter()
            .filter_map(|a| {
                a.error.map(|error| RouteRetry {
                    strategy: a.strategy,
                    error,
                })
            })
            .collect();
        (routed, retries)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route;
    use phoenix_circuit::Gate;

    fn program(n: usize, pairs: &[(usize, usize)]) -> Circuit {
        let mut c = Circuit::new(n);
        for &(a, b) in pairs {
            c.push(Gate::Cnot(a, b));
        }
        c
    }

    #[test]
    fn greedy_places_interacting_pairs_adjacent() {
        // Two hot pairs on a line device: both should be adjacent.
        let c = program(4, &[(0, 3), (0, 3), (0, 3), (1, 2)]);
        let dev = CouplingGraph::line(6);
        let l = greedy_layout(&c, &dev);
        assert_eq!(dev.distance(l.phys(0).unwrap(), l.phys(3).unwrap()), 1);
    }

    #[test]
    fn search_layout_beats_trivial_on_scrambled_program() {
        // A program whose hot pairs are far apart under the identity map.
        let pairs: Vec<(usize, usize)> = (0..8).map(|i| (i, (i + 4) % 8)).collect();
        let many: Vec<(usize, usize)> = pairs
            .iter()
            .flat_map(|&p| std::iter::repeat_n(p, 4))
            .collect();
        let c = program(8, &many);
        let dev = CouplingGraph::grid(2, 4);
        let opts = RouterOptions::default();
        let trivial = route(&c, &dev, Layout::trivial(8, 8), &opts).num_swaps;
        let searched = search_layout(&c, &dev, &opts, 3);
        let smart = route(&c, &dev, searched, &opts).num_swaps;
        assert!(smart <= trivial, "searched {smart} vs trivial {trivial}");
    }

    #[test]
    fn layout_is_valid_bijection() {
        let c = program(5, &[(0, 4), (1, 3)]);
        let dev = CouplingGraph::manhattan65();
        let l = search_layout(&c, &dev, &RouterOptions::default(), 2);
        let mut seen = std::collections::BTreeSet::new();
        for q in 0..5 {
            assert!(seen.insert(l.phys(q).unwrap()), "physical slot reused");
        }
    }

    #[test]
    fn retry_ladder_succeeds_on_a_routable_program() {
        let c = program(5, &[(0, 4), (1, 3), (0, 2)]);
        let dev = CouplingGraph::line(5);
        let (routed, retries) =
            route_with_retry(&c, &dev, &RouterOptions::default(), 2).expect("routable");
        assert!(retries.is_empty(), "first attempt should succeed");
        assert!(routed.circuit.len() >= c.len());
    }

    #[test]
    fn retry_ladder_falls_back_when_the_budget_is_tight() {
        // A budget of 1 makes the searched and greedy attempts fail on a
        // program needing several swaps; the trivial fallback gets 4×.
        let pairs: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 3) % 6)).collect();
        let c = program(6, &pairs);
        let dev = CouplingGraph::line(6);
        let opts = RouterOptions {
            max_swaps: 1,
            ..RouterOptions::default()
        };
        match route_with_retry(&c, &dev, &opts, 1) {
            Ok((_, retries)) => assert!(!retries.is_empty(), "must have retried"),
            Err(RouteError::SwapBudgetExceeded { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn retry_ladder_reports_unroutable_instances() {
        // All three logical qubits interact pairwise but physical qubit 2
        // is isolated: whichever logical lands there is stranded, so no
        // layout can route the whole program.
        let c = program(3, &[(0, 1), (1, 2), (0, 2)]);
        let dev = CouplingGraph::from_edges(3, [(0, 1)]);
        let err = route_with_retry(&c, &dev, &RouterOptions::default(), 1)
            .expect_err("disconnected region is unroutable");
        assert!(matches!(
            err,
            RouteError::SwapBudgetExceeded { .. } | RouteError::NoSwapCandidate { .. }
        ));
    }
}
