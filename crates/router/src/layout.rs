//! Logical-to-physical qubit layouts.

use std::fmt;

/// A bijection-up-to-padding between logical qubits and physical qubits.
///
/// There may be more physical than logical qubits; unassigned physical
/// qubits map back to `usize::MAX` in the inverse table.
///
/// # Examples
///
/// ```
/// use phoenix_router::Layout;
///
/// let mut l = Layout::trivial(2, 4);
/// assert_eq!(l.phys(1), Some(1));
/// l.swap_physical(1, 3);
/// assert_eq!(l.phys(1), Some(3));
/// assert_eq!(l.phys(7), None); // unmapped logical qubit
/// assert_eq!(l.logical(3), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    l2p: Vec<usize>,
    p2l: Vec<usize>,
}

impl Layout {
    /// The identity layout: logical `i` on physical `i`.
    ///
    /// # Panics
    ///
    /// Panics if `n_logical > n_physical`.
    pub fn trivial(n_logical: usize, n_physical: usize) -> Self {
        assert!(
            n_logical <= n_physical,
            "device too small: {n_logical} logical vs {n_physical} physical"
        );
        let l2p: Vec<usize> = (0..n_logical).collect();
        let mut p2l = vec![usize::MAX; n_physical];
        for (l, &p) in l2p.iter().enumerate() {
            p2l[p] = l;
        }
        Layout { l2p, p2l }
    }

    /// A layout from an explicit logical→physical assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is not injective or exceeds `n_physical`.
    pub fn from_assignment(l2p: Vec<usize>, n_physical: usize) -> Self {
        let mut p2l = vec![usize::MAX; n_physical];
        for (l, &p) in l2p.iter().enumerate() {
            assert!(p < n_physical, "physical index {p} out of range");
            assert_eq!(p2l[p], usize::MAX, "physical qubit {p} assigned twice");
            p2l[p] = l;
        }
        Layout { l2p, p2l }
    }

    /// Number of logical qubits.
    pub fn num_logical(&self) -> usize {
        self.l2p.len()
    }

    /// Number of physical qubits.
    pub fn num_physical(&self) -> usize {
        self.p2l.len()
    }

    /// Physical location of logical qubit `l`, or `None` if `l` is not a
    /// logical qubit of this layout.
    #[inline]
    pub fn phys(&self, l: usize) -> Option<usize> {
        self.l2p.get(l).copied()
    }

    /// Logical qubit on physical `p`, if any (`None` also for out-of-range
    /// physical indices).
    #[inline]
    pub fn logical(&self, p: usize) -> Option<usize> {
        match self.p2l.get(p).copied() {
            None | Some(usize::MAX) => None,
            Some(l) => Some(l),
        }
    }

    /// Exchanges the logical occupants of two physical qubits (either may be
    /// empty).
    pub fn swap_physical(&mut self, p1: usize, p2: usize) {
        let l1 = self.p2l[p1];
        let l2 = self.p2l[p2];
        self.p2l[p1] = l2;
        self.p2l[p2] = l1;
        if l1 != usize::MAX {
            self.l2p[l1] = p2;
        }
        if l2 != usize::MAX {
            self.l2p[l2] = p1;
        }
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "layout {:?}", self.l2p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_is_identity() {
        let l = Layout::trivial(3, 5);
        for q in 0..3 {
            assert_eq!(l.phys(q), Some(q));
            assert_eq!(l.logical(q), Some(q));
        }
        assert_eq!(l.logical(4), None);
    }

    #[test]
    fn swap_updates_both_tables() {
        let mut l = Layout::trivial(2, 3);
        l.swap_physical(0, 2); // qubit 0 moves to empty slot 2
        assert_eq!(l.phys(0), Some(2));
        assert_eq!(l.logical(0), None);
        assert_eq!(l.logical(2), Some(0));
        l.swap_physical(1, 2);
        assert_eq!(l.phys(0), Some(1));
        assert_eq!(l.phys(1), Some(2));
    }

    #[test]
    fn unmapped_lookups_return_none_instead_of_panicking() {
        let l = Layout::trivial(2, 3);
        assert_eq!(l.phys(2), None);
        assert_eq!(l.phys(usize::MAX), None);
        assert_eq!(l.logical(3), None);
    }

    #[test]
    fn swap_is_involutive() {
        let mut l = Layout::trivial(4, 4);
        l.swap_physical(1, 3);
        l.swap_physical(1, 3);
        assert_eq!(l, Layout::trivial(4, 4));
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_assignment_rejected() {
        let _ = Layout::from_assignment(vec![0, 0], 2);
    }

    #[test]
    #[should_panic(expected = "device too small")]
    fn too_many_logical_rejected() {
        let _ = Layout::trivial(5, 3);
    }
}
