//! The SABRE-style swap router.

use crate::Layout;
use phoenix_circuit::{Circuit, Gate};
use phoenix_topology::CouplingGraph;
use std::fmt;

/// Tuning knobs for the router.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterOptions {
    /// Size of the lookahead (extended) gate set.
    pub extended_set_size: usize,
    /// Relative weight of the extended set in the swap score.
    pub extended_weight: f64,
    /// Per-swap decay added to recently moved qubits (discourages
    /// ping-ponging); reset every [`RouterOptions::decay_reset`] swaps.
    pub decay: f64,
    /// Number of swaps between decay resets.
    pub decay_reset: usize,
    /// Execute distance-2 CNOTs through an ancilla-free *bridge* (4 CNOTs,
    /// no layout change — Itoko et al.) when the pair does not recur in the
    /// lookahead window; otherwise fall back to SWAPs.
    pub use_bridge: bool,
    /// Hard cap on inserted SWAPs before the router gives up with
    /// [`RouteError::SwapBudgetExceeded`] instead of looping on a
    /// pathological instance. `0` selects an automatic budget generous
    /// enough for any legitimately routable program (see
    /// [`RouterOptions::swap_budget`]).
    pub max_swaps: usize,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            extended_set_size: 20,
            extended_weight: 0.5,
            decay: 0.001,
            decay_reset: 5,
            use_bridge: false,
            max_swaps: 0,
        }
    }
}

impl RouterOptions {
    /// The effective SWAP budget for a circuit with `num_2q` two-qubit
    /// gates on an `n_phys`-qubit device: `max_swaps` when nonzero,
    /// otherwise an automatic bound. Every 2Q gate needs at most
    /// `diameter − 1 < n_phys` swaps, so the automatic budget is only hit
    /// when routing cannot make progress (e.g. a disconnected region).
    pub fn swap_budget(&self, num_2q: usize, n_phys: usize) -> usize {
        if self.max_swaps != 0 {
            return self.max_swaps;
        }
        64usize.saturating_add(num_2q.saturating_mul(n_phys.max(1)))
    }
}

/// Why routing was rejected or abandoned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The circuit uses more qubits than the device offers.
    DeviceTooSmall {
        /// Logical qubits required.
        logical: usize,
        /// Physical qubits available.
        physical: usize,
    },
    /// The initial layout maps a different number of logical qubits than
    /// the circuit declares.
    LayoutMismatch {
        /// Logical qubits of the layout.
        layout: usize,
        /// Logical qubits of the circuit.
        circuit: usize,
    },
    /// A blocked 2Q gate has no candidate SWAP — one of its qubits sits on
    /// an isolated physical qubit.
    NoSwapCandidate {
        /// The blocked logical pair.
        pair: (usize, usize),
    },
    /// The SWAP budget ran out before all gates executed — the instance is
    /// pathological (typically a disconnected device region) or the
    /// configured [`RouterOptions::max_swaps`] was too tight.
    SwapBudgetExceeded {
        /// The budget that was exhausted.
        budget: usize,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::DeviceTooSmall { logical, physical } => write!(
                f,
                "device too small: {logical} logical qubits vs {physical} physical"
            ),
            RouteError::LayoutMismatch { layout, circuit } => write!(
                f,
                "layout maps {layout} logical qubits but the circuit uses {circuit}"
            ),
            RouteError::NoSwapCandidate { pair: (a, b) } => write!(
                f,
                "no swap candidate for blocked gate on logical pair ({a}, {b}); \
                 is the device region disconnected?"
            ),
            RouteError::SwapBudgetExceeded { budget } => {
                write!(
                    f,
                    "swap budget of {budget} exhausted before routing finished"
                )
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// The result of routing: a physical circuit plus bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedCircuit {
    /// Physical-indexed circuit containing the original gates (relabelled)
    /// and inserted [`Gate::Swap`]s.
    pub circuit: Circuit,
    /// Number of inserted SWAPs.
    pub num_swaps: usize,
    /// Layout before the first gate — the placement the routed circuit's
    /// semantics are defined against (logical qubit `l` enters at physical
    /// qubit `initial_layout.phys(l)`). Needed for permutation-aware
    /// equivalence checking of routed circuits.
    pub initial_layout: Layout,
    /// Layout after the last gate (logical qubit `l` ends at physical
    /// qubit `final_layout.phys(l)`).
    pub final_layout: Layout,
}

/// Routes a logical circuit onto a coupling graph starting from
/// `initial_layout`, inserting SWAPs so every 2Q gate acts on coupled
/// physical qubits.
///
/// The input is lowered to `{1Q, CNOT}` first. The algorithm is the SABRE
/// heuristic: execute the front layer greedily; when stuck, apply the swap
/// (among edges touching front-layer qubits) minimizing the summed
/// front-layer distance plus a weighted lookahead term, with a decay factor
/// discouraging repeated moves of the same qubit.
///
/// # Panics
///
/// Panics on any [`RouteError`] — use [`try_route`] for graceful rejection.
pub fn route(
    logical: &Circuit,
    device: &CouplingGraph,
    initial_layout: Layout,
    opts: &RouterOptions,
) -> RoutedCircuit {
    try_route(logical, device, initial_layout, opts)
        .unwrap_or_else(|e| panic!("routing failed: {e}"))
}

/// Fallible [`route`]: rejects undersized devices, mismatched layouts, and
/// instances whose SWAP budget runs out (disconnected regions included)
/// with a typed [`RouteError`] instead of panicking or looping.
pub fn try_route(
    logical: &Circuit,
    device: &CouplingGraph,
    initial_layout: Layout,
    opts: &RouterOptions,
) -> Result<RoutedCircuit, RouteError> {
    let lowered = logical.lower_to_cnot();
    let n_log = lowered.num_qubits();
    let n_phys = device.num_qubits();
    if n_log > n_phys {
        return Err(RouteError::DeviceTooSmall {
            logical: n_log,
            physical: n_phys,
        });
    }
    if initial_layout.num_logical() != n_log {
        return Err(RouteError::LayoutMismatch {
            layout: initial_layout.num_logical(),
            circuit: n_log,
        });
    }
    // Arity was just validated, so every logical qubit of the circuit maps.
    let ph = |layout: &Layout, l: usize| -> usize {
        layout.phys(l).expect("layout arity validated above")
    };
    let budget = opts.swap_budget(lowered.counts().two_qubit(), n_phys);

    // Per-qubit gate queues: gate g is ready when it heads the queue of
    // each of its qubits.
    let gates = lowered.gates();
    let mut queues: Vec<std::collections::VecDeque<usize>> = vec![Default::default(); n_log];
    for (gi, g) in gates.iter().enumerate() {
        let (a, b) = g.qubits();
        queues[a].push_back(gi);
        if let Some(b) = b {
            queues[b].push_back(gi);
        }
    }

    let start_layout = initial_layout.clone();
    let mut layout = initial_layout;
    let mut out = Circuit::new(n_phys);
    let mut num_swaps = 0usize;
    let mut decay = vec![0.0f64; n_phys];
    let mut swaps_since_reset = 0usize;
    let mut last_swap: Option<(usize, usize)> = None;

    let ready = |queues: &[std::collections::VecDeque<usize>], gi: usize, g: &Gate| -> bool {
        let (a, b) = g.qubits();
        queues[a].front() == Some(&gi) && b.is_none_or(|b| queues[b].front() == Some(&gi))
    };

    loop {
        // Phase 1: drain everything executable.
        let mut any_executed = false;
        let mut progressed = true;
        while progressed {
            progressed = false;
            // Scan the front of each queue once.
            let fronts: Vec<usize> = queues.iter().filter_map(|q| q.front().copied()).collect();
            for gi in fronts {
                let g = &gates[gi];
                if !ready(&queues, gi, g) {
                    continue;
                }
                let (a, b) = g.qubits();
                let executable = match b {
                    None => true,
                    Some(b) => device.contains_edge(ph(&layout, a), ph(&layout, b)),
                };
                if executable {
                    out.push(g.map_qubits(&mut |q| ph(&layout, q)));
                    queues[a].pop_front();
                    if let Some(b) = b {
                        queues[b].pop_front();
                    }
                    progressed = true;
                    any_executed = true;
                }
            }
        }
        if any_executed {
            last_swap = None;
        }

        // Front layer: ready-but-blocked 2Q gates.
        let front: Vec<(usize, usize)> = {
            let mut f = Vec::new();
            for q in 0..n_log {
                if let Some(&gi) = queues[q].front() {
                    let g = &gates[gi];
                    if let (a, Some(b)) = g.qubits() {
                        if ready(&queues, gi, g) && a == q {
                            f.push((a, b));
                        }
                    }
                }
            }
            f
        };
        if front.is_empty() {
            break; // all gates executed
        }

        // Extended set: the next few 2Q gates beyond the front layer.
        let extended = extended_set(gates, &queues, opts.extended_set_size);

        // Bridge option: a distance-2 CNOT whose pair does not recur soon
        // is cheaper as 4 CNOTs through the middle qubit than as SWAPs.
        if opts.use_bridge {
            let mut bridged = false;
            for &(a, b) in &front {
                let (pa, pb) = (ph(&layout, a), ph(&layout, b));
                if device.distance(pa, pb) != 2 {
                    continue;
                }
                let recurs = extended
                    .iter()
                    .filter(|&&(ea, eb)| (ea, eb) == (a, b) || (ea, eb) == (b, a))
                    .count()
                    > 1;
                if recurs {
                    continue;
                }
                let path = device
                    .shortest_path(pa, pb)
                    .expect("distance-2 pair is connected");
                let m = path[1];
                // CX(pa,pb) = CX(pa,m)·CX(m,pb)·CX(pa,m)·CX(m,pb) in circuit order.
                for _ in 0..2 {
                    out.push(Gate::Cnot(pa, m));
                    out.push(Gate::Cnot(m, pb));
                }
                if phoenix_obs::metrics::enabled() {
                    phoenix_obs::metrics::global()
                        .incr(phoenix_obs::metrics::MetricId::SabreBridgesTotal);
                }
                // Retire the logical gate.
                let gi = *queues[a].front().expect("front gate exists");
                debug_assert_eq!(queues[b].front(), Some(&gi));
                queues[a].pop_front();
                queues[b].pop_front();
                bridged = true;
                break;
            }
            if bridged {
                last_swap = None;
                continue;
            }
        }

        // Candidate swaps: device edges touching any front-layer qubit.
        // The swap that would undo the previous one is excluded to rule out
        // ping-pong livelock (it can never be the sole candidate: the edge
        // that was just swapped still offers its other-endpoint moves).
        let mut best: Option<((usize, usize), f64)> = None;
        for &(a, b) in &front {
            for &l in &[a, b] {
                let p = ph(&layout, l);
                for &nb in device.neighbors(p).unwrap_or(&[]) {
                    let edge = (p.min(nb), p.max(nb));
                    if Some(edge) == last_swap {
                        continue;
                    }
                    let mut trial = layout.clone();
                    trial.swap_physical(edge.0, edge.1);
                    let mut score = 0.0;
                    for &(fa, fb) in &front {
                        score += device.distance(ph(&trial, fa), ph(&trial, fb)) as f64;
                    }
                    if !extended.is_empty() {
                        let mut ext = 0.0;
                        for &(ea, eb) in &extended {
                            ext += device.distance(ph(&trial, ea), ph(&trial, eb)) as f64;
                        }
                        score += opts.extended_weight * ext / extended.len() as f64;
                    }
                    score *= 1.0 + decay[edge.0] + decay[edge.1];
                    if best.is_none_or(|(_, s)| score < s) {
                        best = Some((edge, score));
                    }
                }
            }
        }
        let ((p1, p2), _) = best.ok_or(RouteError::NoSwapCandidate { pair: front[0] })?;
        if num_swaps >= budget {
            return Err(RouteError::SwapBudgetExceeded { budget });
        }
        out.push(Gate::Swap(p1, p2));
        if phoenix_obs::metrics::enabled() {
            phoenix_obs::metrics::global().incr(phoenix_obs::metrics::MetricId::SabreSwapsTotal);
        }
        layout.swap_physical(p1, p2);
        last_swap = Some((p1, p2));
        num_swaps += 1;
        decay[p1] += opts.decay;
        decay[p2] += opts.decay;
        swaps_since_reset += 1;
        if swaps_since_reset >= opts.decay_reset {
            decay.iter_mut().for_each(|d| *d = 0.0);
            swaps_since_reset = 0;
        }
    }

    Ok(RoutedCircuit {
        circuit: out,
        num_swaps,
        initial_layout: start_layout,
        final_layout: layout,
    })
}

/// Collects up to `k` upcoming 2Q gates past the front layer (in program
/// order), as logical qubit pairs.
fn extended_set(
    gates: &[Gate],
    queues: &[std::collections::VecDeque<usize>],
    k: usize,
) -> Vec<(usize, usize)> {
    let executed_before: std::collections::BTreeSet<usize> =
        queues.iter().filter_map(|q| q.front().copied()).collect();
    let min_pending = match executed_before.iter().next() {
        Some(&m) => m,
        None => return Vec::new(),
    };
    gates
        .iter()
        .enumerate()
        .skip(min_pending)
        .filter_map(|(_, g)| match g.qubits() {
            (a, Some(b)) => Some((a, b)),
            _ => None,
        })
        .take(k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_circuit::Gate;

    fn opts() -> RouterOptions {
        RouterOptions::default()
    }

    /// The routed circuit, with swaps replayed, must execute every original
    /// CNOT on coupled qubits and preserve the logical gate sequence.
    fn verify_routing(logical: &Circuit, device: &CouplingGraph, routed: &RoutedCircuit) {
        let lowered = logical.lower_to_cnot();
        let mut layout = Layout::trivial(lowered.num_qubits(), device.num_qubits());
        let mut replay: Vec<Gate> = Vec::new();
        for g in routed.circuit.gates() {
            match g {
                Gate::Swap(p1, p2) => {
                    assert!(device.contains_edge(*p1, *p2), "swap on non-edge");
                    layout.swap_physical(*p1, *p2);
                }
                Gate::Cnot(pa, pb) => {
                    assert!(device.contains_edge(*pa, *pb), "cnot on non-edge");
                    let la = layout.logical(*pa).expect("control is mapped");
                    let lb = layout.logical(*pb).expect("target is mapped");
                    replay.push(Gate::Cnot(la, lb));
                }
                one_q => {
                    let (p, _) = one_q.qubits();
                    let l = layout.logical(p).expect("qubit is mapped");
                    replay.push(one_q.map_qubits(&mut |_| l));
                }
            }
        }
        // The router may reorder gates on disjoint qubits (that commutes);
        // semantics are preserved iff every qubit sees the same gate
        // subsequence as in the original program.
        assert_eq!(replay.len(), lowered.len(), "gate count preserved");
        let per_qubit = |gates: &[Gate]| -> Vec<Vec<Gate>> {
            let mut v = vec![Vec::new(); lowered.num_qubits()];
            for g in gates {
                let (a, b) = g.qubits();
                v[a].push(g.clone());
                if let Some(b) = b {
                    v[b].push(g.clone());
                }
            }
            v
        };
        assert_eq!(
            per_qubit(&replay),
            per_qubit(lowered.gates()),
            "per-qubit gate sequences preserved"
        );
    }

    #[test]
    fn all_to_all_needs_no_swaps() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cnot(0, 3));
        c.push(Gate::Cnot(1, 2));
        let dev = CouplingGraph::all_to_all(4);
        let r = route(&c, &dev, Layout::trivial(4, 4), &opts());
        assert_eq!(r.num_swaps, 0);
        verify_routing(&c, &dev, &r);
    }

    #[test]
    fn adjacent_gate_passes_through() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot(0, 1));
        let dev = CouplingGraph::line(3);
        let r = route(&c, &dev, Layout::trivial(3, 3), &opts());
        assert_eq!(r.num_swaps, 0);
        assert_eq!(r.circuit.counts().cnot, 1);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        let mut c = Circuit::new(5);
        c.push(Gate::Cnot(0, 4));
        let dev = CouplingGraph::line(5);
        let r = route(&c, &dev, Layout::trivial(5, 5), &opts());
        assert!(r.num_swaps >= 3, "distance 4 needs ≥3 swaps");
        verify_routing(&c, &dev, &r);
    }

    #[test]
    fn routing_preserves_semantics_on_random_program() {
        let mut rng = phoenix_mathkit::Xoshiro256::seed_from_u64(9);
        let n = 8;
        let mut c = Circuit::new(n);
        for _ in 0..40 {
            let a = rng.next_below(n);
            let mut b = rng.next_below(n);
            while b == a {
                b = rng.next_below(n);
            }
            c.push(Gate::Cnot(a, b));
            c.push(Gate::Rz(a, rng.next_f64()));
        }
        let dev = CouplingGraph::grid(2, 4);
        let r = route(&c, &dev, Layout::trivial(n, 8), &opts());
        verify_routing(&c, &dev, &r);
    }

    #[test]
    fn heavy_hex_routing_terminates_and_verifies() {
        let mut c = Circuit::new(16);
        for i in 0..15 {
            c.push(Gate::Cnot(i, (i + 5) % 16));
        }
        let dev = CouplingGraph::manhattan65();
        let r = route(&c, &dev, Layout::trivial(16, 65), &opts());
        verify_routing(&c, &dev, &r);
        assert!(r.num_swaps > 0);
    }

    #[test]
    fn bridge_executes_distance2_cnot_without_swaps() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot(0, 2)); // distance 2 on a line
        let dev = CouplingGraph::line(3);
        let mut o = opts();
        o.use_bridge = true;
        let r = route(&c, &dev, Layout::trivial(3, 3), &o);
        assert_eq!(r.num_swaps, 0, "bridge avoids swaps");
        assert_eq!(r.circuit.counts().cnot, 4, "bridge costs 4 CNOTs");
        // The bridge implements the same unitary as the original CNOT.
        let u = phoenix_sim::circuit_unitary(&c);
        let v = phoenix_sim::circuit_unitary(&r.circuit);
        assert!(u.approx_eq(&v, 1e-12));
    }

    #[test]
    fn bridge_defers_to_swaps_when_pair_recurs() {
        let mut c = Circuit::new(3);
        for _ in 0..4 {
            c.push(Gate::Cnot(0, 2));
            c.push(Gate::Rx(2, 0.3)); // block trivial cancellation
        }
        let dev = CouplingGraph::line(3);
        let mut o = opts();
        o.use_bridge = true;
        let r = route(&c, &dev, Layout::trivial(3, 3), &o);
        assert!(
            r.num_swaps >= 1,
            "recurring pair should be moved, not bridged"
        );
    }

    #[test]
    fn try_route_rejects_undersized_device() {
        let mut c = Circuit::new(4);
        c.push(Gate::Cnot(0, 3));
        let dev = CouplingGraph::line(2);
        let err = try_route(&c, &dev, Layout::trivial(2, 2), &opts()).unwrap_err();
        assert_eq!(
            err,
            RouteError::DeviceTooSmall {
                logical: 4,
                physical: 2
            }
        );
    }

    #[test]
    fn try_route_rejects_mismatched_layout() {
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot(0, 1));
        let dev = CouplingGraph::line(3);
        let err = try_route(&c, &dev, Layout::trivial(2, 3), &opts()).unwrap_err();
        assert!(matches!(
            err,
            RouteError::LayoutMismatch {
                layout: 2,
                circuit: 3
            }
        ));
    }

    #[test]
    fn tight_swap_budget_is_reported_not_looped() {
        let mut c = Circuit::new(5);
        c.push(Gate::Cnot(0, 4)); // needs ≥3 swaps on a line
        let dev = CouplingGraph::line(5);
        let mut o = opts();
        o.max_swaps = 1;
        let err = try_route(&c, &dev, Layout::trivial(5, 5), &o).unwrap_err();
        assert_eq!(err, RouteError::SwapBudgetExceeded { budget: 1 });
    }

    #[test]
    fn disconnected_region_errs_instead_of_hanging() {
        // Qubit 2 is isolated; the gate can never execute, and without a
        // budget the router would ping-pong forever.
        let mut c = Circuit::new(3);
        c.push(Gate::Cnot(0, 2));
        let dev = CouplingGraph::from_edges(3, [(0, 1)]);
        let err = try_route(&c, &dev, Layout::trivial(3, 3), &opts()).unwrap_err();
        assert!(matches!(
            err,
            RouteError::SwapBudgetExceeded { .. } | RouteError::NoSwapCandidate { .. }
        ));
    }

    #[test]
    fn default_budget_never_trips_on_routable_programs() {
        let o = opts();
        assert_eq!(o.swap_budget(10, 8), 64 + 80);
        let mut tight = opts();
        tight.max_swaps = 7;
        assert_eq!(tight.swap_budget(10, 8), 7);
    }

    #[test]
    fn oneq_only_circuit_routes_trivially() {
        let mut c = Circuit::new(3);
        c.push(Gate::H(0));
        c.push(Gate::Rz(2, 0.4));
        let dev = CouplingGraph::line(3);
        let r = route(&c, &dev, Layout::trivial(3, 3), &opts());
        assert_eq!(r.num_swaps, 0);
        assert_eq!(r.circuit.len(), 2);
    }
}
