//! SABRE-style qubit mapping and SWAP routing for the PHOENIX workspace.
//!
//! Hardware-aware compilation in the paper follows every logical compiler
//! with "a QISKIT O3 pass with SABRE qubit mapping". This crate provides the
//! equivalent substrate: a front-layer + lookahead + decay swap router
//! (Li–Ding–Xie, ASPLOS'19) over any
//! [`CouplingGraph`](phoenix_topology::CouplingGraph).
//!
//! # Examples
//!
//! ```
//! use phoenix_circuit::{Circuit, Gate};
//! use phoenix_router::{route, Layout, RouterOptions};
//! use phoenix_topology::CouplingGraph;
//!
//! let mut c = Circuit::new(3);
//! c.push(Gate::Cnot(0, 2)); // not adjacent on a line
//! let line = CouplingGraph::line(3);
//! let routed = route(&c, &line, Layout::trivial(3, 3), &RouterOptions::default());
//! assert!(routed.num_swaps >= 1);
//! ```

mod layout;
mod place;
mod sabre;

pub use layout::Layout;
pub use place::{
    greedy_layout, route_with_attempt_log, route_with_retry, search_layout, RouteAttempt,
    RouteRetry,
};
pub use sabre::{route, try_route, RouteError, RoutedCircuit, RouterOptions};
