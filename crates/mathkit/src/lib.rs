//! Complex linear-algebra kit and deterministic PRNG for the PHOENIX
//! quantum-compiler workspace.
//!
//! This crate is the numerical ground-truth substrate of the reproduction:
//!
//! - [`Complex`]: a minimal `f64` complex number (no external deps).
//! - [`CMatrix`]: dense complex matrices with the handful of operations the
//!   compiler stack needs — products, Kronecker products, adjoints, traces,
//!   and a scaling-and-squaring matrix exponential ([`CMatrix::expm`]) used to
//!   compute exact Hamiltonian evolutions for algorithmic-error analysis.
//! - [`Xoshiro256`]: a small, seedable, portable PRNG so every synthetic
//!   benchmark in the workspace is bit-reproducible without depending on a
//!   specific `rand` release.
//!
//! # Examples
//!
//! ```
//! use phoenix_mathkit::{CMatrix, Complex};
//!
//! let x = CMatrix::from_rows(&[
//!     &[Complex::ZERO, Complex::ONE],
//!     &[Complex::ONE, Complex::ZERO],
//! ]);
//! let xx = x.matmul(&x);
//! assert!(xx.approx_eq(&CMatrix::identity(2), 1e-12));
//! ```

mod complex;
mod eig;
mod matrix;
mod rng;

pub use complex::Complex;
pub use eig::{jacobi_simultaneous, jacobi_symmetric};
pub use matrix::CMatrix;
pub use rng::Xoshiro256;
