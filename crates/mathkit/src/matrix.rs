//! Dense complex matrices.

use crate::Complex;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, row-major complex matrix.
///
/// `CMatrix` provides the operations the PHOENIX stack needs for ground-truth
/// verification and algorithmic-error analysis: products, Kronecker products,
/// adjoints, traces, norms, and the matrix exponential.
///
/// # Examples
///
/// ```
/// use phoenix_mathkit::{CMatrix, Complex};
///
/// let z = CMatrix::from_rows(&[
///     &[Complex::ONE, Complex::ZERO],
///     &[Complex::ZERO, -Complex::ONE],
/// ]);
/// assert!(z.is_unitary(1e-12));
/// assert!((z.trace() - Complex::ZERO).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have unequal lengths.
    pub fn from_rows(rows: &[&[Complex]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        CMatrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex) -> Self {
        let mut m = CMatrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        // ikj loop order: stream over rhs rows for cache friendliness.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == Complex::ZERO {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[Complex]) -> Vec<Complex> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        let mut out = vec![Complex::ZERO; self.rows];
        for (o, row) in out.iter_mut().zip(self.data.chunks(self.cols)) {
            *o = row.iter().zip(v).map(|(&a, &b)| a * b).sum();
        }
        out
    }

    /// Conjugate transpose `self†`.
    pub fn dagger(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)].conj())
    }

    /// Kronecker product `self ⊗ rhs`.
    pub fn kron(&self, rhs: &CMatrix) -> CMatrix {
        let mut out = CMatrix::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == Complex::ZERO {
                    continue;
                }
                for k in 0..rhs.rows {
                    for l in 0..rhs.cols {
                        out[(i * rhs.rows + k, j * rhs.cols + l)] = a * rhs[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Trace of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> Complex {
        assert_eq!(self.rows, self.cols, "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Multiplies every entry by the complex scalar `s`.
    pub fn scale(&self, s: Complex) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&z| z * s).collect(),
        }
    }

    /// Maximum absolute row sum (induced 1-norm of the transpose); used to
    /// pick the scaling exponent for [`expm`](Self::expm).
    pub fn norm_inf(&self) -> f64 {
        (0..self.rows)
            .map(|i| {
                self.data[i * self.cols..(i + 1) * self.cols]
                    .iter()
                    .map(|z| z.abs())
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Entry-wise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns true when `self† self ≈ I` within `tol` (entry-wise).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        self.dagger()
            .matmul(self)
            .approx_eq(&CMatrix::identity(self.rows), tol)
    }

    /// Matrix exponential `e^{self}` by scaling-and-squaring with a Taylor
    /// series, accurate to near machine precision for well-conditioned
    /// inputs (anti-Hermitian generators in particular).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn expm(&self) -> CMatrix {
        assert_eq!(self.rows, self.cols, "expm requires a square matrix");
        let n = self.rows;
        // Scale so the norm is below 1/2, then square back up.
        let norm = self.norm_inf();
        let s = if norm > 0.5 {
            (norm / 0.5).log2().ceil() as u32
        } else {
            0
        };
        let a = self.scale(Complex::from_re(1.0 / f64::powi(2.0, s as i32)));

        // Taylor series: converges fast since ||a|| <= 1/2.
        let mut result = CMatrix::identity(n);
        let mut term = CMatrix::identity(n);
        for k in 1..=24u32 {
            term = term.matmul(&a).scale(Complex::from_re(1.0 / k as f64));
            result = &result + &term;
            if term.norm_inf() < 1e-18 {
                break;
            }
        }
        for _ in 0..s {
            result = result.matmul(&result);
        }
        result
    }

    /// Hilbert–Schmidt inner-product fidelity-style overlap `|Tr(A† B)| / n`.
    ///
    /// Used by the algorithmic-error analysis: `infidelity = 1 - overlap`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ or the matrices are not square.
    pub fn unitary_overlap(&self, other: &CMatrix) -> f64 {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        assert_eq!(self.rows, self.cols, "overlap requires square matrices");
        let mut tr = Complex::ZERO;
        for i in 0..self.rows {
            for k in 0..self.cols {
                tr += self[(k, i)].conj() * other[(k, i)];
            }
        }
        tr.abs() / self.rows as f64
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &CMatrix {
    type Output = CMatrix;
    fn add(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch");
        assert_eq!(self.cols, rhs.cols, "shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &CMatrix {
    type Output = CMatrix;
    fn sub(self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch");
        assert_eq!(self.cols, rhs.cols, "shape mismatch");
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &CMatrix {
    type Output = CMatrix;
    fn mul(self, rhs: &CMatrix) -> CMatrix {
        self.matmul(rhs)
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{}\t", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pauli_x() -> CMatrix {
        CMatrix::from_rows(&[
            &[Complex::ZERO, Complex::ONE],
            &[Complex::ONE, Complex::ZERO],
        ])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::from_rows(&[
            &[Complex::ONE, Complex::ZERO],
            &[Complex::ZERO, -Complex::ONE],
        ])
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let x = pauli_x();
        let i2 = CMatrix::identity(2);
        assert!(x.matmul(&i2).approx_eq(&x, 0.0));
        assert!(i2.matmul(&x).approx_eq(&x, 0.0));
    }

    #[test]
    fn pauli_algebra_via_matmul() {
        let x = pauli_x();
        let z = pauli_z();
        // XZ = -iY, so (XZ)^2 = -I
        let xz = x.matmul(&z);
        let sq = xz.matmul(&xz);
        assert!(sq.approx_eq(&CMatrix::identity(2).scale(-Complex::ONE), 1e-15));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let z = pauli_z();
        let xz = x.kron(&z);
        assert_eq!(xz.rows(), 4);
        assert_eq!(xz.cols(), 4);
        assert_eq!(xz[(0, 2)], Complex::ONE);
        assert_eq!(xz[(1, 3)], -Complex::ONE);
        assert_eq!(xz[(0, 0)], Complex::ZERO);
    }

    #[test]
    fn dagger_of_product_reverses() {
        let x = pauli_x();
        let z = pauli_z();
        let a = x.matmul(&z);
        assert!(a.dagger().approx_eq(&z.dagger().matmul(&x.dagger()), 1e-15));
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let z = CMatrix::zeros(3, 3);
        assert!(z.expm().approx_eq(&CMatrix::identity(3), 1e-15));
    }

    #[test]
    fn expm_matches_rotation() {
        // exp(-i θ/2 X) = cos(θ/2) I - i sin(θ/2) X
        let theta: f64 = 1.234;
        let gen = pauli_x().scale(Complex::new(0.0, -theta / 2.0));
        let u = gen.expm();
        let expect = &CMatrix::identity(2).scale(Complex::from_re((theta / 2.0).cos()))
            + &pauli_x().scale(Complex::new(0.0, -(theta / 2.0).sin()));
        assert!(u.approx_eq(&expect, 1e-13));
        assert!(u.is_unitary(1e-13));
    }

    #[test]
    fn expm_large_norm_uses_squaring() {
        // exp(-i π X) = -I
        let gen = pauli_x().scale(Complex::new(0.0, -std::f64::consts::PI));
        let u = gen.expm();
        assert!(u.approx_eq(&CMatrix::identity(2).scale(-Complex::ONE), 1e-12));
    }

    #[test]
    fn matvec_agrees_with_matmul() {
        let x = pauli_x();
        let v = vec![Complex::new(0.3, 0.1), Complex::new(-0.2, 0.5)];
        let got = x.matvec(&v);
        assert_eq!(got, vec![v[1], v[0]]);
    }

    #[test]
    fn overlap_of_identical_unitaries_is_one() {
        let x = pauli_x();
        assert!((x.unitary_overlap(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn overlap_is_phase_invariant() {
        let x = pauli_x();
        let y = x.scale(Complex::cis(0.83));
        assert!((x.unitary_overlap(&y) - 1.0).abs() < 1e-13);
    }

    #[test]
    fn norms_behave() {
        let z = pauli_z();
        assert_eq!(z.norm_inf(), 1.0);
        assert!((z.norm_fro() - 2f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
