//! A minimal `f64` complex number.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// Only the operations the PHOENIX stack needs are provided; the type is
/// `Copy` and implements the usual arithmetic operators.
///
/// # Examples
///
/// ```
/// use phoenix_mathkit::Complex;
///
/// let z = Complex::new(1.0, 2.0) * Complex::I;
/// assert_eq!(z, Complex::new(-2.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Returns `e^{iθ}`.
    ///
    /// ```
    /// use phoenix_mathkit::Complex;
    /// let z = Complex::cis(std::f64::consts::PI);
    /// assert!((z - Complex::new(-1.0, 0.0)).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²`; cheaper than [`abs`](Self::abs) when only a
    /// comparison is needed.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }

    /// Returns true when both parts are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Complex, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_re(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn conjugation_and_division() {
        let z = Complex::new(1.0, 2.0);
        let w = z * z.conj();
        assert!(w.approx_eq(Complex::from_re(5.0), 1e-15));
        let q = z / z;
        assert!(q.approx_eq(Complex::ONE, 1e-15));
    }

    #[test]
    fn cis_matches_euler() {
        let t = 0.7321;
        let z = Complex::cis(t);
        assert!((z.re - t.cos()).abs() < 1e-15);
        assert!((z.im - t.sin()).abs() < 1e-15);
        assert!((z.abs() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn sum_over_iterator() {
        let s: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(s, Complex::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, -1.0).to_string(), "1-1i");
        assert_eq!(Complex::new(1.0, 1.0).to_string(), "1+1i");
    }
}
