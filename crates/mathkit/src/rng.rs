//! Deterministic, portable pseudo-random number generation.
//!
//! Benchmarks in this workspace must be bit-reproducible across platforms and
//! over time, so instead of depending on a moving `rand` API we carry a small
//! Xoshiro256** implementation seeded through SplitMix64 (the construction
//! recommended by the xoshiro authors).

/// A seedable Xoshiro256** pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use phoenix_mathkit::Xoshiro256;
///
/// let mut a = Xoshiro256::seed_from_u64(42);
/// let mut b = Xoshiro256::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    state: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro256 {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling on the top bits to avoid modulo bias.
        let bound = bound as u64;
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % bound) as usize;
            }
        }
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut r = Xoshiro256::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let k = r.next_below(5);
            assert!(k < 5);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, (0..32).collect::<Vec<_>>(), "shuffle should move items");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        let mut r = Xoshiro256::seed_from_u64(6);
        let _ = r.next_below(0);
    }
}
