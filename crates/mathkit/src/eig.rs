//! Real symmetric eigendecomposition (cyclic Jacobi) and simultaneous
//! diagonalization of commuting symmetric pairs.
//!
//! These are the numerical kernels behind the Weyl-chamber analysis of
//! two-qubit unitaries: the magic-basis Gram matrix `W = VᵀV` of a unitary
//! splits into commuting real symmetric parts `Re W`, `Im W` whose joint
//! eigenbasis yields the entangling class.

/// Eigendecomposition `A = Q diag(λ) Qᵀ` of a real symmetric matrix given
/// as rows; returns `(λ, q)` with `q[k]` the eigenvector column for `λ[k]`.
///
/// Cyclic Jacobi: unconditionally convergent for symmetric input; intended
/// for the small (4×4) systems in this workspace but correct for any size.
///
/// # Panics
///
/// Panics if the matrix is not square.
pub fn jacobi_symmetric(a: &[Vec<f64>]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    for row in a {
        assert_eq!(row.len(), n, "matrix must be square");
    }
    let mut m: Vec<Vec<f64>> = a.to_vec();
    // q starts as identity; columns become eigenvectors.
    let mut q = vec![vec![0.0; n]; n];
    for (i, row) in q.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..64 {
        let mut off = 0.0;
        for (p, row) in m.iter().enumerate() {
            for &v in &row[p + 1..] {
                off += v * v;
            }
        }
        if off < 1e-28 {
            break;
        }
        for p in 0..n {
            for r in p + 1..n {
                if m[p][r].abs() < 1e-18 {
                    continue;
                }
                // Classic Jacobi rotation annihilating m[p][r].
                let theta = (m[r][r] - m[p][p]) / (2.0 * m[p][r]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for row in m.iter_mut() {
                    let (mkp, mkr) = (row[p], row[r]);
                    row[p] = c * mkp - s * mkr;
                    row[r] = s * mkp + c * mkr;
                }
                let (head, tail) = m.split_at_mut(r);
                for (mpk, mrk) in head[p].iter_mut().zip(tail[0].iter_mut()) {
                    let (vp, vr) = (*mpk, *mrk);
                    *mpk = c * vp - s * vr;
                    *mrk = s * vp + c * vr;
                }
                for row in q.iter_mut() {
                    let (qkp, qkr) = (row[p], row[r]);
                    row[p] = c * qkp - s * qkr;
                    row[r] = s * qkp + c * qkr;
                }
            }
        }
    }
    let eigvals: Vec<f64> = (0..n).map(|i| m[i][i]).collect();
    // Return eigenvector columns.
    let cols: Vec<Vec<f64>> = (0..n).map(|j| (0..n).map(|i| q[i][j]).collect()).collect();
    (eigvals, cols)
}

/// Simultaneously diagonalizes two *commuting* real symmetric matrices:
/// returns `(α, β, q)` with `A q_k = α_k q_k` and `B q_k = β_k q_k`.
///
/// Diagonalizes `A` first, then re-diagonalizes `B` inside each (near-)
/// degenerate eigenspace of `A`.
///
/// # Panics
///
/// Panics if the shapes disagree.
pub fn jacobi_simultaneous(a: &[Vec<f64>], b: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    assert_eq!(b.len(), n, "shapes must match");
    let (alpha, mut q) = jacobi_symmetric(a);
    // Sort the eigenbasis by α so degenerate clusters are contiguous.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| alpha[i].total_cmp(&alpha[j]));
    let alpha: Vec<f64> = order.iter().map(|&i| alpha[i]).collect();
    q = order.iter().map(|&i| q[i].clone()).collect();

    // B in the α-eigenbasis.
    let bq = |col: &[f64]| -> Vec<f64> {
        (0..n)
            .map(|i| (0..n).map(|j| b[i][j] * col[j]).sum())
            .collect()
    };
    let mut bprime = vec![vec![0.0; n]; n];
    for (cj, qj) in q.iter().enumerate() {
        let bv = bq(qj);
        for (ci, qi) in q.iter().enumerate() {
            bprime[ci][cj] = qi.iter().zip(&bv).map(|(x, y)| x * y).sum();
        }
    }
    // Refine inside degenerate clusters of α.
    let mut beta = vec![0.0; n];
    let mut start = 0;
    while start < n {
        let mut end = start + 1;
        while end < n && (alpha[end] - alpha[start]).abs() < 1e-9 {
            end += 1;
        }
        let k = end - start;
        if k == 1 {
            beta[start] = bprime[start][start];
        } else {
            let sub: Vec<Vec<f64>> = (start..end)
                .map(|i| (start..end).map(|j| bprime[i][j]).collect())
                .collect();
            let (lam, vecs) = jacobi_symmetric(&sub);
            // Rotate the cluster's q-columns.
            let old: Vec<Vec<f64>> = q[start..end].to_vec();
            for (local, lam_l) in lam.iter().enumerate() {
                beta[start + local] = *lam_l;
                for i in 0..n {
                    q[start + local][i] = (0..k).map(|m| old[m][i] * vecs[local][m]).sum();
                }
            }
        }
        start = end;
    }
    (alpha, beta, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Xoshiro256;

    fn matvec(a: &[Vec<f64>], v: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|row| row.iter().zip(v).map(|(x, y)| x * y).sum())
            .collect()
    }

    fn random_symmetric(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut a = vec![vec![0.0; n]; n];
        // Symmetric fill: (i, j) and (j, i) get the same draw.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in i..n {
                let x = rng.next_range_f64(-1.0, 1.0);
                a[i][j] = x;
                a[j][i] = x;
            }
        }
        a
    }

    #[test]
    fn diagonal_matrix_is_fixed_point() {
        let a = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ];
        let (vals, vecs) = jacobi_symmetric(&a);
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        assert!((sorted[0] + 1.0).abs() < 1e-12);
        assert!((sorted[2] - 3.0).abs() < 1e-12);
        // Eigenvectors satisfy A v = λ v.
        for (k, v) in vecs.iter().enumerate() {
            let av = matvec(&a, v);
            for i in 0..3 {
                assert!((av[i] - vals[k] * v[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn random_symmetric_reconstructs() {
        for seed in 0..5 {
            let a = random_symmetric(4, seed);
            let (vals, vecs) = jacobi_symmetric(&a);
            for (k, v) in vecs.iter().enumerate() {
                let av = matvec(&a, v);
                for i in 0..4 {
                    assert!(
                        (av[i] - vals[k] * v[i]).abs() < 1e-9,
                        "seed {seed}, pair {k}"
                    );
                }
                // Unit norm.
                let norm: f64 = v.iter().map(|x| x * x).sum();
                assert!((norm - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn simultaneous_diagonalization_of_commuting_pair() {
        // Build commuting A, B sharing an eigenbasis with degeneracy in A.
        let (_, q) = jacobi_symmetric(&random_symmetric(4, 9));
        let build = |d: [f64; 4]| -> Vec<Vec<f64>> {
            let mut m = vec![vec![0.0; 4]; 4];
            for i in 0..4 {
                for j in 0..4 {
                    m[i][j] = (0..4).map(|k| q[k][i] * d[k] * q[k][j]).sum();
                }
            }
            m
        };
        let a = build([1.0, 1.0, 2.0, 3.0]); // degenerate pair in A
        let b = build([5.0, -5.0, 7.0, 9.0]); // split inside the cluster
        let (alpha, beta, vecs) = jacobi_simultaneous(&a, &b);
        for (k, v) in vecs.iter().enumerate() {
            let av = matvec(&a, v);
            let bv = matvec(&b, v);
            for i in 0..4 {
                assert!((av[i] - alpha[k] * v[i]).abs() < 1e-8, "A pair {k}");
                assert!((bv[i] - beta[k] * v[i]).abs() < 1e-8, "B pair {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let _ = jacobi_symmetric(&[vec![1.0, 2.0]]);
    }
}
