//! Criterion micro-benchmarks for stage 2's candidate evaluation: the
//! incremental nibble-class [`CostEvaluator`] vs the naive
//! clone-and-rescore scan, on the largest UCCSD groups (NH- and H2O-scale),
//! plus the observability layer's overhead (instrumentation disabled vs
//! enabled) on the end-to-end logical compile — the disabled arm is the
//! tentpole's < 2% budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phoenix_core::group::group_by_support;
use phoenix_core::simplify::{best_candidate_naive, simplify_terms_with};
use phoenix_core::{CompileRequest, CostEvaluator, SimplifyOptions, Target};
use phoenix_hamil::{uccsd, Molecule};
use phoenix_pauli::Bsf;

/// The largest (most terms) group's tableau for a molecule.
fn largest_group_bsf(mol: Molecule, frozen: bool) -> Bsf {
    let h = uccsd::ansatz(mol, frozen, uccsd::Encoding::JordanWigner, 7);
    let n = h.num_qubits();
    let groups = group_by_support(n, h.terms());
    let grp = groups
        .iter()
        .max_by_key(|g| g.terms().len())
        .expect("nonempty hamiltonian");
    Bsf::from_terms(n, grp.terms().iter().cloned()).expect("group terms fit")
}

fn bench_best_candidate(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage2_best_candidate");
    for (mol, frozen, label) in [
        (Molecule::nh(), true, "NH_frz"),
        (Molecule::h2o(), false, "H2O_cmplt"),
    ] {
        let bsf = largest_group_bsf(mol, frozen);
        g.bench_with_input(BenchmarkId::new("naive", label), &bsf, |b, bsf| {
            b.iter(|| best_candidate_naive(bsf))
        });
        g.bench_with_input(BenchmarkId::new("incremental", label), &bsf, |b, bsf| {
            let mut eval = CostEvaluator::new();
            b.iter(|| {
                eval.prepare(bsf);
                eval.best_candidate(bsf)
            })
        });
    }
    g.finish();
}

fn bench_simplify_full(c: &mut Criterion) {
    let mut g = c.benchmark_group("stage2_simplify");
    g.sample_size(10);
    let h = uccsd::ansatz(Molecule::nh(), true, uccsd::Encoding::JordanWigner, 7);
    let n = h.num_qubits();
    let groups = group_by_support(n, h.terms());
    for (label, opts) in [
        (
            "naive",
            SimplifyOptions {
                naive_cost: true,
                ..SimplifyOptions::default()
            },
        ),
        ("incremental", SimplifyOptions::default()),
    ] {
        g.bench_function(BenchmarkId::new(label, "NH_frz"), |b| {
            b.iter(|| {
                groups
                    .iter()
                    .map(|grp| simplify_terms_with(n, grp.terms(), &opts))
                    .collect::<Vec<_>>()
            })
        });
    }
    g.finish();
}

/// End-to-end CNOT-target compiles with observability off vs on. The
/// "off" arm is the default production path (one relaxed atomic load per
/// instrumentation site); the "on" arm shows the full span/metric cost.
fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);
    let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, 7);
    let n = h.num_qubits();
    for (label, obs) in [("disabled", false), ("enabled", true)] {
        g.bench_function(BenchmarkId::new(label, "LiH_frz"), |b| {
            b.iter(|| {
                CompileRequest::new(n, h.terms())
                    .target(Target::Cnot)
                    .obs(obs)
                    .run()
                    .expect("valid program compiles")
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_best_candidate,
    bench_simplify_full,
    bench_obs_overhead
);
criterion_main!(benches);
