//! Criterion micro-benchmarks for the word-parallel packed-mask kernels:
//! symplectic commutation, Clifford2Q tableau conjugation, and the fused
//! Eq. (6) support/union counts, swept across register widths straddling
//! the inline/heap boundary (32 ≤ 128 inline, 512 heap-backed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phoenix_pauli::{Bsf, BsfRow, Clifford2Q, Clifford2QKind, QubitMask};

const WIDTHS: [usize; 3] = [32, 128, 512];

/// A deterministic dense-ish mask: every third bit below `n` set, offset by
/// `salt` so paired masks overlap without being identical.
fn mask(n: usize, salt: usize) -> QubitMask {
    let mut m = QubitMask::zeros(n);
    let mut q = salt % 3;
    while q < n {
        m.set_bit(q);
        q += 3;
    }
    m
}

/// A tableau of `rows` weight-spread rows on `n` qubits.
fn tableau(n: usize, rows: usize) -> Bsf {
    let mut bsf = Bsf::new(n);
    for r in 0..rows {
        bsf.push_row(BsfRow::from_packed(
            mask(n, r),
            mask(n, r + 1),
            0.1 * (r + 1) as f64,
        ));
    }
    bsf
}

fn bench_commutation(c: &mut Criterion) {
    let mut g = c.benchmark_group("mask_commutation");
    for n in WIDTHS {
        let (x1, z1) = (mask(n, 0), mask(n, 1));
        let (x2, z2) = (mask(n, 1), mask(n, 2));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| QubitMask::symplectic_parity(&x1, &z1, &x2, &z2))
        });
    }
    g.finish();
}

fn bench_conjugation(c: &mut Criterion) {
    let mut g = c.benchmark_group("mask_conjugation");
    for n in WIDTHS {
        let bsf = tableau(n, 64);
        let cliff = Clifford2Q::new(Clifford2QKind::Cxy, 1, n - 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut t = bsf.clone();
                t.apply_clifford2q(cliff);
                t
            })
        });
    }
    g.finish();
}

fn bench_support_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("mask_or4_count");
    for n in WIDTHS {
        let (a, b_, cc, d) = (mask(n, 0), mask(n, 1), mask(n, 2), mask(n, 0));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| QubitMask::or4_count(&a, &b_, &cc, &d))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_commutation,
    bench_conjugation,
    bench_support_counts
);
criterion_main!(benches);
