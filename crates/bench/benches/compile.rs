//! Criterion micro-benchmarks: compile-time scaling of the PHOENIX pipeline
//! and its stages, supporting the paper's "compiles programs of thousands of
//! Pauli strings in dozens of seconds" claim (our Rust implementation is
//! far faster than the paper's Python).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phoenix_baselines::Baseline;
use phoenix_circuit::peephole;
use phoenix_core::{group::group_by_support, simplify::simplify_terms, PhoenixCompiler};
use phoenix_hamil::{qaoa, uccsd, Molecule};
use phoenix_pauli::PauliString;
use phoenix_router::{route, search_layout, RouterOptions};
use phoenix_topology::CouplingGraph;

fn bench_logical_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("logical_compile");
    g.sample_size(10);
    for (mol, frozen, label) in [
        (Molecule::lih(), true, "LiH_frz"),
        (Molecule::nh(), true, "NH_frz"),
        (Molecule::h2o(), false, "H2O_cmplt"),
    ] {
        let h = uccsd::ansatz(mol, frozen, uccsd::Encoding::JordanWigner, 7);
        g.bench_with_input(BenchmarkId::new("phoenix", label), &h, |b, h| {
            b.iter(|| PhoenixCompiler::default().compile_to_cnot(h.num_qubits(), h.terms()))
        });
        g.bench_with_input(BenchmarkId::new("paulihedral", label), &h, |b, h| {
            b.iter(|| {
                peephole::optimize(
                    &Baseline::PaulihedralStyle.compile_logical(h.num_qubits(), h.terms()),
                )
            })
        });
    }
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    let h = uccsd::ansatz(Molecule::nh(), true, uccsd::Encoding::BravyiKitaev, 7);
    let n = h.num_qubits();
    let mut g = c.benchmark_group("stages");
    g.sample_size(10);
    g.bench_function("grouping", |b| b.iter(|| group_by_support(n, h.terms())));
    let groups = group_by_support(n, h.terms());
    g.bench_function("bsf_simplification", |b| {
        b.iter(|| {
            groups
                .iter()
                .map(|grp| simplify_terms(n, grp.terms()))
                .collect::<Vec<_>>()
        })
    });
    let logical = PhoenixCompiler::default().compile_to_cnot(n, h.terms());
    let device = CouplingGraph::manhattan65();
    g.bench_function("layout_search", |b| {
        b.iter(|| search_layout(&logical, &device, &RouterOptions::default(), 3))
    });
    let layout = search_layout(&logical, &device, &RouterOptions::default(), 3);
    g.bench_function("sabre_routing", |b| {
        b.iter(|| route(&logical, &device, layout.clone(), &RouterOptions::default()))
    });
    g.finish();
}

/// A 32-qubit program with exactly `num_groups` IR groups: the first
/// `num_groups` 4-qubit supports in lexicographic order, four weight-4
/// terms each, so per-group BSF simplification does real work.
fn grouped_program(num_groups: usize) -> (usize, Vec<(PauliString, f64)>) {
    const N: usize = 32;
    const PATTERNS: [&str; 4] = ["XXYY", "YZZX", "ZYXZ", "XZYX"];
    let mut terms = Vec::with_capacity(num_groups * PATTERNS.len());
    let mut built = 0usize;
    'supports: for a in 0..N {
        for b in a + 1..N {
            for c in b + 1..N {
                for d in c + 1..N {
                    for (i, pattern) in PATTERNS.iter().enumerate() {
                        let mut label = vec![b'I'; N];
                        for (&q, p) in [a, b, c, d].iter().zip(pattern.bytes()) {
                            label[q] = p;
                        }
                        let p: PauliString = String::from_utf8(label).unwrap().parse().unwrap();
                        terms.push((p, 0.01 * (i + 1) as f64));
                    }
                    built += 1;
                    if built == num_groups {
                        break 'supports;
                    }
                }
            }
        }
    }
    assert_eq!(built, num_groups, "not enough distinct supports");
    (N, terms)
}

fn bench_group_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("group_count_scaling");
    g.sample_size(10);
    for num_groups in [8usize, 32, 128] {
        let (n, terms) = grouped_program(num_groups);
        assert_eq!(group_by_support(n, &terms).len(), num_groups);
        g.bench_with_input(
            BenchmarkId::from_parameter(num_groups),
            &terms,
            |b, terms| b.iter(|| PhoenixCompiler::default().compile_to_cnot(n, terms)),
        );
    }
    g.finish();
}

fn bench_qaoa(c: &mut Criterion) {
    let mut g = c.benchmark_group("qaoa_hardware_aware");
    g.sample_size(10);
    let device = CouplingGraph::manhattan65();
    for n in [16usize, 24] {
        let h = qaoa::benchmark(qaoa::QaoaKind::Rand4, n, 7 + n as u64);
        g.bench_with_input(BenchmarkId::new("phoenix", n), &h, |b, h| {
            b.iter(|| {
                PhoenixCompiler::default().compile_hardware_aware(
                    h.num_qubits(),
                    h.terms(),
                    &device,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_logical_compile,
    bench_stages,
    bench_group_scaling,
    bench_qaoa
);
criterion_main!(benches);
