//! Criterion micro-benchmarks: compile-time scaling of the PHOENIX pipeline
//! and its stages, supporting the paper's "compiles programs of thousands of
//! Pauli strings in dozens of seconds" claim (our Rust implementation is
//! far faster than the paper's Python).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phoenix_baselines::Baseline;
use phoenix_circuit::peephole;
use phoenix_core::{group::group_by_support, simplify::simplify_terms, PhoenixCompiler};
use phoenix_hamil::{qaoa, uccsd, Molecule};
use phoenix_router::{route, search_layout, RouterOptions};
use phoenix_topology::CouplingGraph;

fn bench_logical_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("logical_compile");
    g.sample_size(10);
    for (mol, frozen, label) in [
        (Molecule::lih(), true, "LiH_frz"),
        (Molecule::nh(), true, "NH_frz"),
        (Molecule::h2o(), false, "H2O_cmplt"),
    ] {
        let h = uccsd::ansatz(mol, frozen, uccsd::Encoding::JordanWigner, 7);
        g.bench_with_input(BenchmarkId::new("phoenix", label), &h, |b, h| {
            b.iter(|| PhoenixCompiler::default().compile_to_cnot(h.num_qubits(), h.terms()))
        });
        g.bench_with_input(BenchmarkId::new("paulihedral", label), &h, |b, h| {
            b.iter(|| {
                peephole::optimize(
                    &Baseline::PaulihedralStyle.compile_logical(h.num_qubits(), h.terms()),
                )
            })
        });
    }
    g.finish();
}

fn bench_stages(c: &mut Criterion) {
    let h = uccsd::ansatz(Molecule::nh(), true, uccsd::Encoding::BravyiKitaev, 7);
    let n = h.num_qubits();
    let mut g = c.benchmark_group("stages");
    g.sample_size(10);
    g.bench_function("grouping", |b| b.iter(|| group_by_support(n, h.terms())));
    let groups = group_by_support(n, h.terms());
    g.bench_function("bsf_simplification", |b| {
        b.iter(|| {
            groups
                .iter()
                .map(|grp| simplify_terms(n, grp.terms()))
                .count()
        })
    });
    let logical = PhoenixCompiler::default().compile_to_cnot(n, h.terms());
    let device = CouplingGraph::manhattan65();
    g.bench_function("layout_search", |b| {
        b.iter(|| search_layout(&logical, &device, &RouterOptions::default(), 3))
    });
    let layout = search_layout(&logical, &device, &RouterOptions::default(), 3);
    g.bench_function("sabre_routing", |b| {
        b.iter(|| route(&logical, &device, layout.clone(), &RouterOptions::default()))
    });
    g.finish();
}

fn bench_qaoa(c: &mut Criterion) {
    let mut g = c.benchmark_group("qaoa_hardware_aware");
    g.sample_size(10);
    let device = CouplingGraph::manhattan65();
    for n in [16usize, 24] {
        let h = qaoa::benchmark(qaoa::QaoaKind::Rand4, n, 7 + n as u64);
        g.bench_with_input(BenchmarkId::new("phoenix", n), &h, |b, h| {
            b.iter(|| {
                PhoenixCompiler::default().compile_hardware_aware(
                    h.num_qubits(),
                    h.terms(),
                    &device,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_logical_compile, bench_stages, bench_qaoa);
criterion_main!(benches);
